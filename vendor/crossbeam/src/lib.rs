//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! This workspace is built in environments with no access to crates.io, so
//! the handful of `crossbeam` APIs the runtime actually uses are provided
//! here on top of `std::thread::scope` (stable since Rust 1.63). Only the
//! surface consumed by `polaris-runtime` is implemented:
//!
//! - [`thread::scope`] returning `Result<R, payload>` (an unjoined panicking
//!   child surfaces as `Err`, exactly like crossbeam's contract)
//! - [`thread::Scope::spawn`] whose closure receives a `&Scope` argument
//! - [`thread::ScopedJoinHandle::join`]

pub mod thread {
    use std::any::Any;

    /// A scope for spawning threads that borrow from the enclosing stack
    /// frame. Mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread. Mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives a
        /// reference to the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&Scope { inner })) }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Create a scope, run `f` inside it, and join all threads spawned in it.
    ///
    /// Returns `Err(panic_payload)` if any spawned thread panicked without
    /// being joined explicitly (crossbeam's behaviour); `std`'s scope would
    /// re-raise that panic at scope exit, so it is caught here and converted.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        let counter_ref = &counter;
        let out = thread::scope(|s| {
            let hs: Vec<_> = (0..4)
                .map(|k| {
                    s.spawn(move |_| {
                        counter_ref.fetch_add(k, Ordering::SeqCst);
                        k * 2
                    })
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
        })
        .unwrap();
        assert_eq!(out, 12);
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn joined_panic_is_an_err_on_the_handle() {
        let out = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert!(out.unwrap());
    }

    #[test]
    fn unjoined_panic_surfaces_as_scope_err() {
        let out = thread::scope(|s| {
            s.spawn(|_| panic!("unjoined"));
        });
        assert!(out.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let got = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41usize).join().unwrap() + 1).join().unwrap()
        })
        .unwrap();
        assert_eq!(got, 42);
    }
}

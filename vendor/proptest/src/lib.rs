//! Minimal offline stand-in for the `proptest` crate.
//!
//! The workspace builds in environments without crates.io access, so this
//! crate reimplements the subset of proptest used by the test suite:
//! strategies ([`strategy::Strategy`], ranges, tuples, [`strategy::Just`],
//! string literals, [`strategy::any`], [`collection::vec`],
//! `prop_recursive`), the [`proptest!`]/[`prop_oneof!`] macros, and the
//! `prop_assert*` family.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a deterministic per-test seed (reproducible everywhere,
//! no persistence files), and failing cases are reported without shrinking.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Choose between alternative strategies (optionally `weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $item:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($item))),+
        ])
    };
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($item)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat =
                            $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        err
                    );
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_values_obey_strategies(
            a in -10i64..10,
            (lo, hi) in (0i32..5, 5i32..9),
            name in prop_oneof!["X", "Y"],
            flag in any::<bool>(),
            v in crate::collection::vec(0usize..4, 1..6),
        ) {
            prop_assert!((-10..10).contains(&a));
            prop_assert!(lo < hi, "lo {} hi {}", lo, hi);
            prop_assert!(name == "X" || name == "Y");
            prop_assert_eq!(flag, flag);
            prop_assert!(!v.is_empty() && v.len() < 6);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn failing_property_panics_with_context() {
        let caught = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn inner(x in 0i64..4) {
                    prop_assert!(x < 2, "saw {}", x);
                }
            }
            inner();
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("failed on case"), "{msg}");
        assert!(msg.contains("saw"), "{msg}");
    }
}

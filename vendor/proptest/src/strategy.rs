//! Value-generation strategies: the (non-shrinking) core of the proptest
//! API surface this workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::rc::Rc;

/// Something that can produce random values of a given type.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Type-erase into a cloneable, reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let strategy = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| strategy.new_value(rng)))
    }

    /// Build recursive structures: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into one producing the next layer. Depth is
    /// strictly bounded by `depth`, so generation always terminates. The
    /// `desired_size`/`expected_branch_size` hints are accepted for API
    /// compatibility but not needed by this bounded construction.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let layer = recurse(current).boxed();
            // Bias toward the recursive layer so trees are usually non-trivial
            // while leaves stay reachable at every level.
            current = Union::weighted(vec![(1, base.clone()), (2, layer)]).boxed();
        }
        current
    }
}

/// A cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.new_value(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between strategies of a common value type; backs
/// `prop_oneof!` and the recursion ladder in `prop_recursive`.
pub struct Union<T> {
    entries: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(items: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(items.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(entries: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!entries.is_empty(), "prop_oneof! needs at least one alternative");
        let total_weight = entries.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { entries, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.entries {
            if pick < *weight as u64 {
                return strategy.new_value(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                // Two's-complement wrap-around gives the span for both
                // signed and unsigned operands.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.below_u128(span)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128)
                    .wrapping_sub(*self.start() as u128)
                    .wrapping_add(1);
                if span == 0 {
                    // span wrapped to zero: the range covers the whole
                    // 128-bit domain, so any draw is uniform
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return wide as $t;
                }
                (*self.start() as u128).wrapping_add(rng.below_u128(span)) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

/// String literals act as constant strategies producing themselves (real
/// proptest treats them as regexes; the literals used in this workspace are
/// all plain strings, for which the two behaviours coincide).
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, _rng: &mut TestRng) -> String {
        (*self).to_string()
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// See [`any`].
pub struct Any<A>(PhantomData<A>);

/// The canonical strategy for `A` (`any::<bool>()` et al.).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..2000 {
            let v = (-50i64..50).new_value(&mut rng);
            assert!((-50..50).contains(&v));
            let u = (1u32..6).new_value(&mut rng);
            assert!((1..6).contains(&u));
            let w = (-4i128..5).new_value(&mut rng);
            assert!((-4..5).contains(&w));
            let z = (0usize..=3).new_value(&mut rng);
            assert!(z <= 3);
        }
    }

    #[test]
    fn ranges_reach_both_endpoints() {
        let mut rng = TestRng::new(11);
        let vals: Vec<i64> = (0..500).map(|_| (0i64..4).new_value(&mut rng)).collect();
        for want in 0..4 {
            assert!(vals.contains(&want), "never generated {want}");
        }
    }

    #[test]
    fn map_union_just_and_tuples_compose() {
        let mut rng = TestRng::new(9);
        let s = Union::new(vec![
            Just(1i64).boxed(),
            (10i64..20).prop_map(|v| v * 2).boxed(),
        ]);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(v == 1 || (20..40).contains(&v), "{v}");
        }
        let t = ((0i64..3), Just("x"), any::<bool>());
        let (a, b, _c) = t.new_value(&mut rng);
        assert!((0..3).contains(&a));
        assert_eq!(b, "x");
    }

    #[test]
    fn str_literal_is_constant_string() {
        let mut rng = TestRng::new(1);
        assert_eq!(Strategy::new_value(&"I", &mut rng), "I");
    }

    #[test]
    fn recursive_strategies_terminate_and_nest() {
        #[derive(Debug)]
        enum T {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i64..10).prop_map(T::Leaf).prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(17);
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&s.new_value(&mut rng)));
        }
        assert!(max_depth >= 2, "recursion never fired (max depth {max_depth})");
        assert!(max_depth <= 3, "depth bound violated ({max_depth})");
    }
}

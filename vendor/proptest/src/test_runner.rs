//! Deterministic case runner: seeded RNG, per-test configuration, and the
//! error type `prop_assert!` produces.

use std::fmt;

/// SplitMix64 — small, fast, and deterministic across platforms. Quality is
/// more than adequate for driving value generation in property tests.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero. The modulo
    /// bias is negligible for the small ranges property tests use.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform value in `[0, bound)` over the full 128-bit domain.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }
}

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the configured number of cases with per-case deterministic seeds
/// derived from the fully-qualified test name (so every test gets a distinct
/// but reproducible value stream).
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        // FNV-1a over the test path
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { config, base_seed: h }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::new(self.base_seed.wrapping_add((case as u64).wrapping_mul(0xA076_1D64_78BD_642F)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let r = TestRunner::new(ProptestConfig::with_cases(4), "a::b");
        assert_eq!(r.rng_for(1).next_u64(), r.rng_for(1).next_u64());
        assert_ne!(r.rng_for(1).next_u64(), r.rng_for(2).next_u64());
        let other = TestRunner::new(ProptestConfig::with_cases(4), "a::c");
        assert_ne!(r.rng_for(0).next_u64(), other.rng_for(0).next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
            assert!(rng.below_u128(1 << 80) < (1 << 80));
        }
    }
}

//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate vectors of values from `element` with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty length range for collection::vec");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_and_elements_respect_bounds() {
        let s = vec(0i64..5, 1..4);
        let mut rng = TestRng::new(23);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            seen[v.len() - 1] = true;
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
        assert!(seen.iter().all(|b| *b), "not all lengths generated: {seen:?}");
    }

    #[test]
    fn nests_cleanly() {
        let s = vec(vec((0usize..2, 0usize..6), 0..5), 1..10);
        let mut rng = TestRng::new(29);
        let v = s.new_value(&mut rng);
        assert!(!v.is_empty() && v.len() < 10);
        for inner in v {
            assert!(inner.len() < 5);
        }
    }
}

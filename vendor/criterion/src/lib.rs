//! Minimal offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so this crate implements the
//! subset of criterion's API that the `polaris-bench` targets use, with a
//! real (if simple) measurement loop: warm-up, time-boxed sampling, and a
//! mean/min/max report with optional throughput. It is intentionally small —
//! no statistics machinery, plots, or baselines — but `cargo bench` produces
//! usable numbers and `cargo test` (which runs `harness = false` bench
//! binaries once) completes quickly because sampling is time-capped.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-sample cap so a single bench function cannot stall a `cargo test` run.
const TEST_MODE_SAMPLES: usize = 1;

/// Upper bound on the wall-clock time spent sampling one bench function.
const SAMPLE_TIME_CAP: Duration = Duration::from_millis(1500);

/// How work amounts are reported per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Batch sizing hints for [`Bencher::iter_batched`]; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.id
    }
}

/// Measurement loop handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
}

impl Bencher {
    fn new(max_samples: usize) -> Self {
        Bencher { samples: Vec::new(), max_samples }
    }

    /// Time `routine` repeatedly until the sample budget is exhausted.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // warm-up run, untimed
        std::hint::black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < SAMPLE_TIME_CAP {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; only `routine` is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < SAMPLE_TIME_CAP {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = if self.criterion.test_mode { TEST_MODE_SAMPLES } else { self.sample_size };
        let mut b = Bencher::new(samples);
        f(&mut b);
        self.report(&id.into(), &b.samples);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let samples = if self.criterion.test_mode { TEST_MODE_SAMPLES } else { self.sample_size };
        let mut b = Bencher::new(samples);
        f(&mut b, input);
        self.report(&String::from(id), &b.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{:<28} (no samples)", self.name, id);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "{}/{:<28} time: [{:>10.3?} {:>10.3?} {:>10.3?}]{}  ({} samples)",
            self.name,
            id,
            min,
            mean,
            max,
            rate,
            samples.len()
        );
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs `harness = false` bench binaries once to check
        // they work; keep that path to a single sample per function. Real
        // criterion honours the `--test` flag the same way.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmarking group `{name}`");
        BenchmarkGroup { criterion: self, name, sample_size: 50, throughput: None }
    }

    /// Ungrouped convenience entry point (criterion parity).
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Collect bench functions into a single runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0usize;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("inc", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &p| {
            b.iter(|| p * 2)
        });
        group.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut b = Bencher::new(3);
        let mut setups = 0usize;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        // one warm-up + up to three timed samples
        assert!(setups >= 2);
        assert!(b.samples.len() <= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(String::from(BenchmarkId::new("f", 8)), "f/8");
        assert_eq!(String::from(BenchmarkId::from_parameter(8)), "8");
    }
}

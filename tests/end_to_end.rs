//! End-to-end integration across all crates: source → pipeline →
//! simulated machine → adversarial validation, including the inliner
//! path with multi-unit programs.

use polaris::{parallelize, parallelize_and_run, MachineConfig, PassOptions};

#[test]
fn multi_unit_program_inlines_and_parallelizes() {
    let src = "
      program main
      integer n
      parameter (n = 4000)
      real grid(n), rhs(n)
      real nrm
      call setup(grid, rhs, n)
      call smooth(grid, rhs, n)
      nrm = vnorm(grid, n)
      print *, 'norm', nrm
      end

      subroutine setup(g, r, n)
      integer n
      real g(n), r(n)
      do i = 1, n
        g(i) = 0.0
        r(i) = 1.0/i
      end do
      end

      subroutine smooth(g, r, n)
      integer n
      real g(n), r(n)
      real t
      do i = 2, n - 1
        t = r(i)*0.5
        g(i) = t + r(i - 1)*0.25 + r(i + 1)*0.25
      end do
      end

      real function vnorm(g, n)
      integer n
      real g(n)
      vnorm = g(2)*g(2)
      return
      end
";
    let (serial, parallel, out) =
        parallelize_and_run(src, &PassOptions::polaris(), &MachineConfig::challenge_8()).unwrap();
    assert_eq!(out.report.inline.call_sites_expanded, 2);
    assert_eq!(out.report.inline.function_calls_expanded, 1);
    assert!(out.report.parallel_loops() >= 2, "{:#?}", out.report.loops);
    assert_eq!(serial.output, parallel.output);
    assert!(parallel.cycles < serial.cycles);
    polaris::machine::run_validated(&out.program, &MachineConfig::challenge_8()).unwrap();
}

#[test]
fn annotated_output_is_reanalyzable_fixpoint() {
    // print → parse → analyze must reach the same verdicts: the
    // unparser/parser round-trip preserves the analysis-relevant facts.
    for name in ["TRFD", "OCEAN", "BDNA", "MDG", "SWIM"] {
        let b = polaris::benchmarks::by_name(name).unwrap();
        let first = parallelize(b.source, &PassOptions::polaris()).unwrap();
        let second = parallelize(&first.annotated_source, &PassOptions::polaris()).unwrap();
        assert_eq!(
            first.report.parallel_loops(),
            second.report.parallel_loops(),
            "{name}: verdict drift after round-trip"
        );
        assert_eq!(
            first.report.speculative_loops(),
            second.report.speculative_loops(),
            "{name}"
        );
    }
}

#[test]
fn speculative_program_runs_correctly_under_both_outcomes() {
    // one invocation succeeds, one fails: results must match serial in
    // both cases (commit vs rollback+reexec are both exercised).
    let src = "
      program twoway
      integer n
      parameter (n = 512)
      real h(n), g(n)
      integer key(n)
      do i = 1, n
        g(i) = i*0.25
      end do
      do inv = 1, 2
        do i = 1, n
          if (inv .eq. 1) then
            key(i) = mod(i*77, n) + 1
          else
            key(i) = mod(i, n/4) + 1
          end if
        end do
        do i = 1, n
          h(key(i)) = g(i) + inv*10.0
        end do
      end do
      print *, h(1), h(n/4)
      end
";
    let (serial, parallel, out) =
        parallelize_and_run(src, &PassOptions::polaris(), &MachineConfig::challenge_8()).unwrap();
    assert_eq!(out.report.speculative_loops(), 1, "{:#?}", out.report.loops);
    assert_eq!(serial.output, parallel.output);
    let spec_stats: Vec<_> = parallel
        .loops
        .values()
        .filter(|s| s.spec_success + s.spec_fail > 0)
        .collect();
    assert_eq!(spec_stats.len(), 1);
    assert_eq!(spec_stats[0].spec_success, 1);
    assert_eq!(spec_stats[0].spec_fail, 1);
}

#[test]
fn vfa_and_polaris_agree_on_results_everywhere() {
    // Different parallelization, same semantics: both pipelines'
    // outputs and the original program agree on every benchmark.
    for b in polaris::benchmarks::all() {
        let serial = polaris::machine::run_serial(&b.program()).unwrap();
        for opts in [PassOptions::polaris(), PassOptions::vfa()] {
            let out = parallelize(b.source, &opts).unwrap();
            let r = polaris::machine::run(&out.program, &MachineConfig::challenge_8()).unwrap();
            assert_eq!(serial.output, r.output, "{}", b.name);
        }
    }
}

#[test]
fn cli_binary_smoke() {
    use std::io::Write;
    let dir = std::env::temp_dir().join("polarisc_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo.f");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(
        f,
        "program demo\nreal a(5000)\ndo i = 1, 5000\n  a(i) = i*2.0\nend do\nprint *, a(42)\nend"
    )
    .unwrap();
    drop(f);
    let exe = env!("CARGO_BIN_EXE_polarisc");
    let out = std::process::Command::new(exe)
        .args(["--report", "--run", "--validate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("!$POLARIS DOALL"), "{stdout}");
    assert!(stderr.contains("PARALLEL"), "{stderr}");
    assert!(stderr.contains("speedup"), "{stderr}");
    assert!(stderr.contains("validation"), "{stderr}");
}

/// Regression test for the `--diag`/`--procs` wiring: `--procs` was
/// validated but the diagnostics never consulted it, so `--diag` showed
/// the same (8-proc) numbers whatever the user asked for. The reported
/// simulated speedup must now differ between 2 and 8 processors on a
/// clearly parallel program, and the diag output must name the
/// requested processor count.
#[test]
fn cli_diag_reports_speedup_at_requested_procs() {
    use std::io::Write;
    let dir = std::env::temp_dir().join("polarisc_diag_procs");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("par.f");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(
        f,
        "program par\nreal a(20000)\ndo i = 1, 20000\n  a(i) = i*2.0\nend do\nprint *, a(42)\nend"
    )
    .unwrap();
    drop(f);
    let exe = env!("CARGO_BIN_EXE_polarisc");
    let speedup_at = |procs: &str| -> f64 {
        let out = std::process::Command::new(exe)
            .args(["--quiet", "--diag", "--procs", procs, path.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stderr = String::from_utf8_lossy(&out.stderr);
        let line = stderr
            .lines()
            .find(|l| l.contains(&format!("simulated speedup @ {procs} procs:")))
            .unwrap_or_else(|| panic!("no speedup line for {procs} procs in:\n{stderr}"));
        line.split_whitespace()
            .find_map(|tok| tok.strip_suffix('x').and_then(|v| v.parse().ok()))
            .unwrap_or_else(|| panic!("unparsable speedup line: {line}"))
    };
    let at2 = speedup_at("2");
    let at8 = speedup_at("8");
    assert!(
        at8 > at2 * 1.5,
        "--procs must drive the diag speedup model: got {at2}x @2 vs {at8}x @8"
    );
    assert!(at2 > 1.2 && at2 <= 2.0, "2-proc speedup out of range: {at2}");
}

/// `--run --exec-mode threaded` executes on real threads and reports a
/// wall-clock measurement; output must match the simulated-mode run.
#[test]
fn cli_threaded_exec_mode_runs_and_matches() {
    use std::io::Write;
    let dir = std::env::temp_dir().join("polarisc_threaded");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("red.f");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(
        f,
        "program red\nreal a(10000)\ns = 0.0\ndo i = 1, 10000\n  a(i) = i*1.0\nend do\ndo i = 1, 10000\n  s = s + a(i)\nend do\nprint *, s\nend"
    )
    .unwrap();
    drop(f);
    let exe = env!("CARGO_BIN_EXE_polarisc");
    let run = |extra: &[&str]| {
        let mut args = vec!["--quiet", "--run"];
        args.extend_from_slice(extra);
        args.push(path.to_str().unwrap());
        let out = std::process::Command::new(exe).args(&args).output().unwrap();
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (sim_out, _) = run(&[]);
    let (thr_out, thr_err) = run(&["--exec-mode", "threaded", "--threads", "3"]);
    assert_eq!(sim_out, thr_out, "threaded output diverges from simulated");
    assert!(thr_err.contains("threaded(3 threads)"), "{thr_err}");
    assert!(thr_err.contains("wall"), "{thr_err}");
}

//! Determinism-conformance tier for the adaptive scheduling runtime
//! (the PR-9 tentpole): every kernel in the evaluation suite — the 16
//! Table-1 codes, TRACK, the six irregular kernels, and the skewed-cost
//! SPMVT — must compute **bit-identical output** under every schedule
//! mode (`serial`, `static`, `adaptive`, work-`stealing`), on both
//! execution engines (tree-walker and bytecode VM), at every simulated
//! processor count and real thread count in {1, 2, 4, 8}. On top of
//! bit-identity the tier pins the adaptive dispatcher's *behaviour*:
//! decision tables are stable across repeated invocations, the second
//! invocation of an irregular kernel re-dispatches its hot loop to a
//! non-serial winner, the skewed kernel moves to work-stealing chunking
//! and beats block partitioning in the cost model, and the runtime
//! dependence oracle stays violation-free throughout.

use polaris::{MachineConfig, PassOptions};
use polaris_machine::{audit, run, Engine, Schedule};
use polaris_runtime::AdaptiveController;
use std::sync::Arc;

const STEAL_CHUNK: usize = 4;

/// FNV-1a over newline-joined output, matching `polaris_bench::fnv1a`.
fn fnv1a(lines: &[String]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for line in lines {
        for &byte in line.as_bytes().iter().chain(b"\n") {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// The full conformance kernel set: 17 regular (Table 1 + TRACK) plus
/// the 6 irregular kernels and the skewed-cost kernel.
fn conformance_set() -> Vec<polaris_benchmarks::Benchmark> {
    let mut v = polaris_benchmarks::all();
    v.push(polaris_benchmarks::track());
    v.extend(polaris_benchmarks::irregular().into_iter().map(|(b, _)| b));
    v.push(polaris_benchmarks::skewed());
    v
}

fn sim_cfg(engine: Engine, procs: usize, schedule: Schedule) -> MachineConfig {
    let mut c = MachineConfig::challenge_8().with_procs(procs).with_engine(engine);
    c.schedule = schedule;
    c
}

/// The big matrix: every kernel × {serial, static, adaptive, stealing}
/// × {tree-walk, VM} × 1/2/4/8 simulated processors must reproduce the
/// serial reference bit-for-bit. Adaptive configs run **twice** sharing
/// one controller, so both the measuring invocation and the
/// re-dispatched one are covered.
#[test]
fn all_kernels_bit_identical_across_schedules_engines_and_procs() {
    for b in &conformance_set() {
        let out = polaris::parallelize(b.source, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
        let reference = run(&out.program, &MachineConfig::serial())
            .unwrap_or_else(|e| panic!("{}: reference: {e}", b.name));
        let want = fnv1a(&reference.output);
        for engine in [Engine::TreeWalk, Engine::Vm] {
            // Serial is processor-count independent: once per engine.
            let r = run(&out.program, &MachineConfig::serial().with_engine(engine))
                .unwrap_or_else(|e| panic!("{}: serial/{engine:?}: {e}", b.name));
            assert_eq!(want, fnv1a(&r.output), "{}: serial/{engine:?}", b.name);
            for procs in [1usize, 2, 4, 8] {
                let static_cfg = sim_cfg(engine, procs, Schedule::Static);
                let steal_cfg =
                    sim_cfg(engine, procs, Schedule::Stealing { chunk: STEAL_CHUNK });
                for (label, cfg) in [("static", static_cfg), ("stealing", steal_cfg)] {
                    let r = run(&out.program, &cfg).unwrap_or_else(|e| {
                        panic!("{}: {label}/{engine:?}/p{procs}: {e}", b.name)
                    });
                    assert_eq!(
                        reference.output, r.output,
                        "{}: {label}/{engine:?}/p{procs}: output diverged",
                        b.name
                    );
                }
                // Adaptive: measure then re-dispatch, same controller.
                let ctrl = Arc::new(AdaptiveController::new());
                let cfg = sim_cfg(engine, procs, Schedule::Static)
                    .with_adaptive(Arc::clone(&ctrl));
                for pass in 0..2 {
                    let r = run(&out.program, &cfg).unwrap_or_else(|e| {
                        panic!("{}: adaptive#{pass}/{engine:?}/p{procs}: {e}", b.name)
                    });
                    assert_eq!(
                        reference.output, r.output,
                        "{}: adaptive#{pass}/{engine:?}/p{procs}: output diverged",
                        b.name
                    );
                }
            }
        }
    }
}

/// Real-thread backend: the irregular kernels, SPMVT, and TRACK under
/// static / adaptive / stealing at 2/4/8 worker threads — bit-identical
/// to the serial reference under any victim/steal interleaving.
#[test]
fn threaded_backend_is_bit_identical_for_every_schedule() {
    let mut kernels: Vec<_> =
        polaris_benchmarks::irregular().into_iter().map(|(b, _)| b).collect();
    kernels.push(polaris_benchmarks::skewed());
    kernels.push(polaris_benchmarks::track());
    for b in &kernels {
        let out = polaris::parallelize(b.source, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
        let reference = run(&out.program, &MachineConfig::serial()).unwrap();
        for threads in [2usize, 4, 8] {
            let configs = [
                ("static", MachineConfig::threaded(threads, Schedule::Static)),
                (
                    "stealing",
                    MachineConfig::threaded(threads, Schedule::Stealing { chunk: STEAL_CHUNK }),
                ),
                (
                    "adaptive",
                    MachineConfig::threaded(threads, Schedule::Static)
                        .with_adaptive(Arc::new(AdaptiveController::new())),
                ),
            ];
            for (label, cfg) in configs {
                // Adaptive runs twice (measure, then re-dispatch) on the
                // same shared controller inside `cfg`.
                let passes = if label == "adaptive" { 2 } else { 1 };
                for pass in 0..passes {
                    let r = run(&out.program, &cfg).unwrap_or_else(|e| {
                        panic!("{}: {label}#{pass} x{threads}: {e}", b.name)
                    });
                    assert_eq!(
                        reference.output, r.output,
                        "{}: {label}#{pass} x{threads}: output diverged",
                        b.name
                    );
                }
            }
        }
    }
}

/// Decision-table conformance: tables are deterministic across repeated
/// invocations (the decision for each loop is *stable* once measured —
/// no oscillation), the second invocation of each irregular kernel
/// re-dispatches its hottest loop to a non-serial winner, and the
/// skewed kernel lands on work-stealing chunking.
#[test]
fn decision_tables_are_stable_and_redispatch_to_nonserial_winners() {
    let mut kernels: Vec<_> =
        polaris_benchmarks::irregular().into_iter().map(|(b, _)| b).collect();
    kernels.push(polaris_benchmarks::skewed());
    for b in &kernels {
        let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
        let ctrl = Arc::new(AdaptiveController::new());
        let cfg = MachineConfig::challenge_8().with_adaptive(Arc::clone(&ctrl));
        run(&out.program, &cfg).unwrap();
        run(&out.program, &cfg).unwrap();
        let after_two = ctrl.decision_rows();
        assert!(!after_two.is_empty(), "{}: no loop was adaptively dispatched", b.name);
        let hot = after_two.iter().max_by_key(|r| (r.trip, r.loop_id)).unwrap();
        assert_ne!(
            hot.strategy, "serial",
            "{}: hottest loop {} fell back to serial on re-dispatch",
            b.name, hot.label
        );
        assert_eq!(
            hot.event, "redispatch",
            "{}: hottest loop {} second invocation was `{}`, not a re-dispatch",
            b.name, hot.label, hot.event
        );

        // Two more invocations: every loop's decision must be unchanged
        // (stability), and a fresh controller fed the same program must
        // arrive at the same table (determinism).
        run(&out.program, &cfg).unwrap();
        run(&out.program, &cfg).unwrap();
        let after_four = ctrl.decision_rows();
        let key = |rows: &[polaris_runtime::DecisionRow]| -> Vec<_> {
            rows.iter()
                .map(|r| (r.loop_id, r.strategy, r.chunking.clone(), r.threads))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            key(&after_two),
            key(&after_four),
            "{}: decision table drifted between invocation 2 and 4",
            b.name
        );
        let ctrl2 = Arc::new(AdaptiveController::new());
        let cfg2 = MachineConfig::challenge_8().with_adaptive(Arc::clone(&ctrl2));
        run(&out.program, &cfg2).unwrap();
        run(&out.program, &cfg2).unwrap();
        assert_eq!(
            key(&after_two),
            key(&ctrl2.decision_rows()),
            "{}: decision table is not deterministic across fresh controllers",
            b.name
        );
    }
}

/// The skewed-cost kernel is the case work stealing exists for: the
/// dispatcher must move its hot loop to stealing chunking, and the
/// re-dispatched run must beat uniform block partitioning in the
/// (deterministic) cost model.
#[test]
fn skewed_kernel_moves_to_stealing_and_beats_block() {
    let b = polaris_benchmarks::skewed();
    let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
    let block = run(&out.program, &MachineConfig::challenge_8()).unwrap();

    let ctrl = Arc::new(AdaptiveController::new());
    let cfg = MachineConfig::challenge_8().with_adaptive(Arc::clone(&ctrl));
    run(&out.program, &cfg).unwrap();
    let redispatched = run(&out.program, &cfg).unwrap();

    let rows = ctrl.decision_rows();
    assert!(
        rows.iter().any(|r| r.chunking.starts_with("steal")),
        "SPMVT: no loop moved to work-stealing chunking: {rows:?}"
    );
    assert!(
        redispatched.cycles < block.cycles,
        "SPMVT: adaptive re-dispatch ({} cycles) does not beat block ({} cycles)",
        redispatched.cycles,
        block.cycles
    );
    assert_eq!(block.output, redispatched.output, "SPMVT: stealing changed output bytes");
}

/// Zero oracle violations across the whole conformance set: adaptive
/// dispatch changes *where* iterations run, never what the compiler
/// claimed — so the runtime dependence oracle must stay as clean as it
/// is under static scheduling.
#[test]
fn oracle_stays_clean_across_the_conformance_set() {
    for b in &conformance_set() {
        let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
        let oracle = audit(&out.program, &out.report)
            .unwrap_or_else(|e| panic!("{}: oracle: {e}", b.name));
        assert!(
            !oracle.has_violations(),
            "{}: oracle violations: {:?}",
            b.name,
            oracle.violations().collect::<Vec<_>>()
        );
    }
}

//! Resource-cap and cancellation semantics of the bytecode VM, as a
//! table mirroring `tests/deadline_semantics.rs`: the VM must hit the
//! **exact same** `MachineError` classes, with the same payloads, at the
//! same execution positions as the tree-walker — and a cancelled
//! execution must leave nothing behind (post-cancel re-verification).
//!
//! | cap             | hit                               | not hit            |
//! |-----------------|-----------------------------------|--------------------|
//! | fuel            | `FuelExhausted` at the same step  | output = reference |
//! | memory          | `MemoryCapExceeded`, same payload | output = reference |
//! | cancel (token)  | `Cancelled`, same reason          | output = reference |
//! | wall (service)  | `degraded`, exit 1, not retried   | `ok`, exit 0       |

use polaris::core::PassOptions;
use polaris::{Engine, MachineConfig, Program};
use polaris_machine::{run_with_state, MachineError};
use polarisd::proto::{Request, Status};
use polarisd::service::{Service, ServiceConfig};
use std::time::Duration;

const SRC: &str = "program caps\n\
                   real v(64)\n\
                   s = 0.0\n\
                   do i = 1, 64\n\
                   \x20 v(i) = i * 2.0\n\
                   end do\n\
                   do i = 1, 64\n\
                   \x20 s = s + v(i)\n\
                   end do\n\
                   print *, s\n\
                   end\n";

fn compiled() -> Program {
    let (program, report) =
        polaris::core::parse_and_compile(SRC, &PassOptions::polaris()).unwrap();
    assert!(!report.degraded());
    program
}

fn cfg(engine: Engine) -> MachineConfig {
    MachineConfig::serial().with_engine(engine)
}

fn reference_output(engine: Engine) -> Vec<String> {
    polaris_machine::run(&compiled(), &cfg(engine)).unwrap().output
}

const ENGINES: [Engine; 2] = [Engine::Vm, Engine::TreeWalk];

// ---- fuel ------------------------------------------------------------

/// The exact fuel boundary — the smallest budget under which the program
/// completes — must be the same number for both engines: `Step` is
/// emitted at every statement boundary, so the VM charges fuel at the
/// same program points the tree-walker does.
#[test]
fn fuel_boundary_is_the_same_step_count_in_both_engines() {
    let program = compiled();
    let boundary = |engine: Engine| -> u64 {
        let (mut lo, mut hi) = (1u64, 1_000_000u64);
        assert!(polaris_machine::run(&program, &cfg(engine).with_fuel(hi)).is_ok());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match polaris_machine::run(&program, &cfg(engine).with_fuel(mid)) {
                Ok(_) => hi = mid,
                Err(MachineError::FuelExhausted { limit }) => {
                    assert_eq!(limit, mid);
                    lo = mid + 1;
                }
                Err(other) => panic!("unexpected error class at fuel {mid}: {other}"),
            }
        }
        lo
    };
    let vm = boundary(Engine::Vm);
    let tree = boundary(Engine::TreeWalk);
    assert_eq!(vm, tree, "engines disagree on the exact fuel-exhaustion step");
}

#[test]
fn fuel_hit_is_the_exact_class_in_both_engines() {
    for engine in ENGINES {
        let err = polaris_machine::run(&compiled(), &cfg(engine).with_fuel(10))
            .expect_err("10 steps cannot run this program");
        assert!(
            matches!(err, MachineError::FuelExhausted { limit: 10 }),
            "{engine:?}: {err}"
        );
    }
}

#[test]
fn fuel_not_hit_output_matches_the_reference_in_both_engines() {
    for engine in ENGINES {
        let out = polaris_machine::run(&compiled(), &cfg(engine).with_fuel(2_000_000))
            .unwrap()
            .output;
        assert_eq!(out, reference_output(engine), "{engine:?}");
    }
}

// ---- memory ----------------------------------------------------------

#[test]
fn memory_cap_hit_has_identical_payload_in_both_engines() {
    let mut seen = Vec::new();
    for engine in ENGINES {
        match polaris_machine::run(&compiled(), &cfg(engine).with_memory_cap(8)) {
            Err(MachineError::MemoryCapExceeded { need, cap }) => seen.push((need, cap)),
            other => panic!("{engine:?}: wrong exit class: {other:?}"),
        }
    }
    assert_eq!(seen[0], seen[1], "engines disagree on the memory-cap payload");
    assert_eq!(seen[0].1, 8);
}

// ---- cooperative cancellation ----------------------------------------

/// A token cancelled before the run starts stops both engines at the
/// very first fuel-step boundary, with the canceller's reason preserved
/// verbatim in the error payload.
#[test]
fn pre_cancelled_token_stops_both_engines_with_the_same_reason() {
    for engine in ENGINES {
        let token = polaris::core::CancelToken::new();
        token.cancel("deadline exceeded by 7ms");
        let err = polaris_machine::run(&compiled(), &cfg(engine).with_cancel(token))
            .expect_err("cancelled before the first step");
        match &err {
            MachineError::Cancelled(reason) => {
                assert_eq!(reason, "deadline exceeded by 7ms", "{engine:?}")
            }
            other => panic!("{engine:?}: wrong exit class: {other:?}"),
        }
        assert_eq!(err.to_string(), "execution cancelled: deadline exceeded by 7ms");
    }
}

/// Mid-loop cancellation: a watchdog fires while the interpreter is in
/// the middle of a long loop. Both engines must surface `Cancelled` (the
/// run returns `Err`, so no partial output can be served), and a fresh
/// post-cancel run must still produce the reference output — cancelling
/// leaks no state into subsequent executions.
#[test]
fn mid_loop_cancellation_is_cancelled_class_and_leaks_no_state() {
    let spin = "program spin\n\
                integer s\n\
                s = 0\n\
                do i = 1, 2000000000\n\
                \x20 s = s + 1\n\
                end do\n\
                print *, s\n\
                end\n";
    let program = polaris_ir::parse(spin).unwrap();
    for engine in ENGINES {
        let token = polaris::core::CancelToken::new();
        let watchdog = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(15));
                token.cancel("wall deadline (15ms) exceeded");
            })
        };
        let err = polaris_machine::run(&program, &cfg(engine).with_cancel(token))
            .expect_err("the watchdog must stop the spin loop");
        watchdog.join().unwrap();
        match err {
            MachineError::Cancelled(reason) => {
                assert_eq!(reason, "wall deadline (15ms) exceeded", "{engine:?}")
            }
            other => panic!("{engine:?}: wrong exit class: {other:?}"),
        }
        // Post-cancel re-verification: the same interpreter entry points,
        // called fresh, still produce the uncancelled reference — both
        // output and final state.
        let (ran, state) = run_with_state(&compiled(), &cfg(engine)).unwrap();
        assert_eq!(ran.output, reference_output(engine), "{engine:?}");
        let (_, ref_state) = run_with_state(&compiled(), &cfg(Engine::TreeWalk)).unwrap();
        assert_eq!(state, ref_state, "{engine:?}: post-cancel state drifted");
    }
}

/// Cancellation is checked in threaded workers too (the shared step
/// counter path), under both engines.
#[test]
fn cancellation_reaches_threaded_workers_in_both_engines() {
    use polaris_machine::Schedule;
    let out = polaris::parallelize(SRC, &PassOptions::polaris()).unwrap();
    for engine in ENGINES {
        let token = polaris::core::CancelToken::new();
        token.cancel("cancelled before dispatch");
        let cfg = MachineConfig::threaded(4, Schedule::Static)
            .with_engine(engine)
            .with_cancel(token);
        match polaris_machine::run(&out.program, &cfg) {
            Err(MachineError::Cancelled(_)) => {}
            other => panic!("{engine:?}: expected Cancelled, got {other:?}"),
        }
    }
}

// ---- wall deadline at the service, execution level -------------------

/// With `exec_engine` set, a deadline that passes while the compiled
/// program is *executing* degrades the response exactly like a
/// mid-compile deadline: `degraded`, exit 1, never retried — identically
/// under both engines.
#[test]
fn service_deadline_during_execution_is_degraded_exit_1_in_both_engines() {
    let spin = "program spin\n\
                integer s\n\
                s = 0\n\
                do i = 1, 2000000000\n\
                \x20 s = s + 1\n\
                end do\n\
                print *, s\n\
                end\n";
    for engine in ENGINES {
        let service = Service::new(ServiceConfig {
            workers: 1,
            exec_engine: Some(engine),
            ..ServiceConfig::default()
        });
        let resp = service
            .submit(Request {
                id: 1,
                client: "vmsem".into(),
                vfa: false,
                deadline_ms: Some(40),
                return_program: false,
                source: spin.into(),
            })
            .wait_timeout(Duration::from_secs(30))
            .unwrap();
        assert_eq!(resp.status, Status::Degraded, "{engine:?}: {:?}", resp.reason);
        assert_eq!(resp.exit_code, 1, "{engine:?}");
        assert_eq!(resp.attempts, 1, "{engine:?}: a deadline blow must not be retried");
        assert!(
            resp.reason.as_deref().unwrap_or("").contains("deadline during execution"),
            "{engine:?}: {:?}",
            resp.reason
        );
        assert_eq!(resp.run_checksum, None, "{engine:?}: no output may be served");
        let stats = service.shutdown();
        assert!(stats.deadline_cancels >= 1, "{engine:?}");
        assert_eq!(stats.retries, 0, "{engine:?}");
    }
}

/// The not-hit row: with a generous deadline the service executes the
/// program and both engines report the same output checksum.
#[test]
fn service_execution_ok_run_checksums_match_across_engines() {
    let mut sums = Vec::new();
    for engine in ENGINES {
        let service = Service::new(ServiceConfig {
            workers: 1,
            exec_engine: Some(engine),
            exec_fuel: Some(2_000_000),
            ..ServiceConfig::default()
        });
        let resp = service
            .submit(Request {
                id: 1,
                client: "vmsem".into(),
                vfa: false,
                deadline_ms: Some(10_000),
                return_program: false,
                source: SRC.into(),
            })
            .wait_timeout(Duration::from_secs(30))
            .unwrap();
        assert_eq!(resp.status, Status::Ok, "{engine:?}: {:?}", resp.reason);
        assert_eq!(resp.exit_code, 0, "{engine:?}");
        sums.push(resp.run_checksum.expect("exec_engine set: output checksum present"));
    }
    assert_eq!(sums[0], sums[1], "engines disagree on the executed-output checksum");
}

/// Fuel exhaustion inside the service is a deterministic execution error:
/// answered as `error`, never retried, same class under both engines.
#[test]
fn service_fuel_exhaustion_is_error_not_retried_in_both_engines() {
    for engine in ENGINES {
        let service = Service::new(ServiceConfig {
            workers: 1,
            exec_engine: Some(engine),
            exec_fuel: Some(10),
            ..ServiceConfig::default()
        });
        let resp = service
            .submit(Request {
                id: 1,
                client: "vmsem".into(),
                vfa: false,
                deadline_ms: None,
                return_program: false,
                source: SRC.into(),
            })
            .wait_timeout(Duration::from_secs(30))
            .unwrap();
        assert_eq!(resp.status, Status::Error, "{engine:?}: {:?}", resp.reason);
        assert!(
            resp.reason.as_deref().unwrap_or("").contains("fuel exhausted"),
            "{engine:?}: {:?}",
            resp.reason
        );
        let stats = service.shutdown();
        assert_eq!(stats.retries, 0, "{engine:?}: deterministic failures are not retried");
    }
}

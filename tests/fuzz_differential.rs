//! Differential fuzzing of the whole stack: seeded random F-Mini
//! programs are run serially (the reference semantics) and after
//! restructuring on the simulated parallel machine, and their printed
//! outputs must agree — with and without injected pass faults. A
//! separate corpus of byte-mutated sources checks that the frontend
//! rejects garbage with errors rather than panics.
//!
//! Every test is deterministic: the corpus is derived from fixed seeds
//! via SplitMix64 (see `polaris::fuzz`), so a failure reproduces with
//! `generate_program(seed)`.

use polaris::core::pipeline::{FaultPlan, STAGE_NAMES};
use polaris::fuzz::{generate_program, mutate_bytes};
use polaris::{MachineConfig, PassOptions};
use polaris_machine::exec::outputs_match;
use polaris_machine::MachineError;

/// Generous for the bounded programs the generator emits (loop nests
/// are at most 3 deep over extents <= 24), tight enough that a
/// miscompile into an endless loop fails fast instead of hanging CI.
const FUEL: u64 = 2_000_000;
const TOL: f64 = 1e-6;

fn serial_reference(src: &str, seed: u64) -> Vec<String> {
    let program = polaris_ir::parse(src).unwrap_or_else(|e| panic!("seed {seed}: parse: {e}"));
    let cfg = MachineConfig::serial().with_fuel(FUEL);
    polaris_machine::run(&program, &cfg)
        .unwrap_or_else(|e| panic!("seed {seed}: serial reference: {e}\n{src}"))
        .output
}

/// Serial and restructured-parallel outputs must match for every seed.
fn differential(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let src = generate_program(seed);
        let reference = serial_reference(&src, seed);

        let opts = PassOptions::polaris();
        let out = polaris::parallelize(&src, &opts)
            .unwrap_or_else(|e| panic!("seed {seed}: compile: {e}\n{src}"));
        assert!(
            !out.report.degraded(),
            "seed {seed}: pipeline degraded without any injected fault: {:?}",
            out.report.rolled_back_stages()
        );

        let cfg = MachineConfig::challenge_8().with_fuel(FUEL);
        let parallel = polaris_machine::run(&out.program, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: parallel run: {e}\n{src}"));
        assert!(
            outputs_match(&reference, &parallel.output, TOL),
            "seed {seed}: serial vs restructured output mismatch\n\
             --- source ---\n{src}\n--- serial ---\n{}\n--- parallel ---\n{}",
            reference.join("\n"),
            parallel.output.join("\n"),
        );
    }
}

/// Equivalence property for the real-thread backend: every corpus
/// program, compiled by the full pipeline, must print **bit-identical**
/// checksums under `ExecMode::Threaded` at 2, 4 and 8 threads as the
/// serial interpreter produces. Exact string equality — not the numeric
/// tolerance used elsewhere — is intentional: the chunk-ordered tree
/// merge makes threaded results deterministic, and its reassociation
/// roundoff sits far below the 1e-6 printed precision, so any observed
/// difference is a real bug (lost update, racy commit, wrong
/// privatization), not noise.
fn threaded_equivalence(seeds: std::ops::Range<u64>) {
    use polaris_machine::Schedule;
    for seed in seeds {
        let src = generate_program(seed);
        let reference = serial_reference(&src, seed);
        let out = polaris::parallelize(&src, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("seed {seed}: compile: {e}\n{src}"));
        for threads in [2usize, 4, 8] {
            let cfg = MachineConfig::threaded(threads, Schedule::Static).with_fuel(FUEL);
            let threaded = polaris_machine::run(&out.program, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed} @ {threads} threads: {e}\n{src}"));
            assert_eq!(
                reference,
                threaded.output,
                "seed {seed}: serial vs {threads}-thread output mismatch\n--- source ---\n{src}"
            );
        }
        // one self-scheduled configuration per seed as well
        let cfg = MachineConfig::threaded(4, Schedule::Dynamic { chunk: 3 }).with_fuel(FUEL);
        let threaded = polaris_machine::run(&out.program, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed} (dynamic): {e}\n{src}"));
        assert_eq!(
            reference, threaded.output,
            "seed {seed}: serial vs self-scheduled output mismatch\n--- source ---\n{src}"
        );
    }
}

#[test]
fn corpus_threaded_equivalence_seeds_0_64() {
    threaded_equivalence(0..64);
}

#[test]
fn corpus_threaded_equivalence_seeds_64_128() {
    threaded_equivalence(64..128);
}

#[test]
fn corpus_threaded_equivalence_seeds_128_192() {
    threaded_equivalence(128..192);
}

#[test]
fn corpus_threaded_equivalence_seeds_192_256() {
    threaded_equivalence(192..256);
}

#[test]
fn corpus_differential_seeds_0_64() {
    differential(0..64);
}

#[test]
fn corpus_differential_seeds_64_128() {
    differential(64..128);
}

#[test]
fn corpus_differential_seeds_128_192() {
    differential(128..192);
}

#[test]
fn corpus_differential_seeds_192_256() {
    differential(192..256);
}

/// Same comparison with a panic injected into one pipeline stage per
/// seed (rotating over all eight stages, so each stage is hit 32
/// times across the corpus). The pipeline must roll the faulted stage
/// back and the surviving transformations must still be semantics-
/// preserving.
fn differential_with_fault(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let src = generate_program(seed);
        let reference = serial_reference(&src, seed);

        let stage = STAGE_NAMES[(seed % STAGE_NAMES.len() as u64) as usize];
        let opts = PassOptions::polaris().with_faults(FaultPlan::panic_in(stage));
        let out = polaris::parallelize(&src, &opts)
            .unwrap_or_else(|e| panic!("seed {seed}: compile with fault in {stage}: {e}\n{src}"));
        assert!(
            out.report.rolled_back_stages().contains(&stage),
            "seed {seed}: injected fault in {stage} but the stage was not rolled back"
        );

        let cfg = MachineConfig::challenge_8().with_fuel(FUEL);
        let parallel = polaris_machine::run(&out.program, &cfg).unwrap_or_else(|e| {
            panic!("seed {seed}: parallel run after fault in {stage}: {e}\n{src}")
        });
        assert!(
            outputs_match(&reference, &parallel.output, TOL),
            "seed {seed}: output mismatch after fault in {stage}\n\
             --- source ---\n{src}\n--- serial ---\n{}\n--- parallel ---\n{}",
            reference.join("\n"),
            parallel.output.join("\n"),
        );
    }
}

/// The adaptive-scheduler axis of the fault sweep: each corpus program
/// runs a gauntlet of faulted invocations against one shared
/// [`AdaptiveController`] on the simulated 8-proc machine —
///
/// 1. invocation 1 **panics mid-measurement** (a simulated worker crash
///    partway through statement dispatch), leaving the controller with
///    decided-but-never-observed entries;
/// 2. two clean invocations adapt on top of that half-measured table;
/// 3. the whole decision table suffers a **torn write**
///    (`corrupt_all`), and the next invocation must detect it via the
///    integrity word, reset, and fall back to static dispatch;
/// 4. a final invocation re-adapts from the reset state.
///
/// Every completed invocation's output must match the serial reference
/// — adaptation state is advisory, never load-bearing for correctness —
/// and no garbage (the corruption XORs `invocations` with 0x5a5a) may
/// survive into the post-recovery table: the scheduler never wedges and
/// never mis-merges.
fn differential_adaptive_faults(seeds: std::ops::Range<u64>) {
    use polaris_runtime::AdaptiveController;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    for seed in seeds {
        let src = generate_program(seed);
        let reference = serial_reference(&src, seed);
        let out = polaris::parallelize(&src, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("seed {seed}: compile: {e}\n{src}"));

        let ctrl = Arc::new(AdaptiveController::new());
        let cfg = MachineConfig::challenge_8()
            .with_fuel(FUEL)
            .with_adaptive(Arc::clone(&ctrl));

        // 1. Crash mid-measurement. Tiny programs can finish before the
        //    trigger step — then this is just a clean first invocation,
        //    which must (also) match the reference.
        let mut crash_cfg = cfg.clone();
        crash_cfg.panic_at_step = Some(20 + seed % 60);
        let crashed =
            catch_unwind(AssertUnwindSafe(|| polaris_machine::run(&out.program, &crash_cfg)));
        if let Ok(completed) = crashed {
            let r = completed
                .unwrap_or_else(|e| panic!("seed {seed}: uncrashed adaptive run: {e}\n{src}"));
            assert!(
                outputs_match(&reference, &r.output, TOL),
                "seed {seed}: adaptive output diverged on the uncrashed first invocation\n{src}"
            );
        }

        // 2. Adapt on the half-measured table.
        for pass in 0..2 {
            let r = polaris_machine::run(&out.program, &cfg).unwrap_or_else(|e| {
                panic!("seed {seed}: adaptive pass {pass} after crash: {e}\n{src}")
            });
            assert!(
                outputs_match(&reference, &r.output, TOL),
                "seed {seed}: adaptive pass {pass} diverged after a mid-measurement crash\n{src}"
            );
        }

        // 3. Torn write across the whole table; the next invocation must
        //    reset every damaged entry and still merge correctly.
        let dispatched = ctrl.len();
        ctrl.corrupt_all();
        let r = polaris_machine::run(&out.program, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: run on corrupted table: {e}\n{src}"));
        assert!(
            outputs_match(&reference, &r.output, TOL),
            "seed {seed}: output diverged on a corrupted decision table\n{src}"
        );
        let rows = ctrl.decision_rows();
        assert!(
            rows.len() >= dispatched,
            "seed {seed}: decision table lost entries in recovery ({} -> {})",
            dispatched,
            rows.len()
        );
        for row in &rows {
            // The torn write XORs invocation counts with 0x5a5a.
            // Corruption is detected *lazily*, at the next `decide` for
            // that loop — and a nested eligible loop whose enclosing
            // loop ran parallel is not consulted every run, so its
            // damage may sit dormant. The invariant is therefore: every
            // entry is either sane (reset and re-adapted, count < 0x1000
            // for this bounded corpus) or still *exactly* the torn write
            // (count ^ 0x5a5a sane). A count matching neither would mean
            // `decide`/`observe` folded fresh data into a corrupt entry,
            // laundering the bad state behind a valid check word.
            assert!(
                row.invocations < 0x1000 || (row.invocations ^ 0x5a5a) < 0x1000,
                "seed {seed}: corrupt adaptation state was laundered, not reset: {row:?}"
            );
        }

        // 4. One more clean invocation from the reset state.
        let r = polaris_machine::run(&out.program, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: post-recovery run: {e}\n{src}"));
        assert!(
            outputs_match(&reference, &r.output, TOL),
            "seed {seed}: post-recovery adaptive output diverged\n{src}"
        );
    }
}

#[test]
fn corpus_adaptive_fault_seeds_0_64() {
    differential_adaptive_faults(0..64);
}

#[test]
fn corpus_adaptive_fault_seeds_64_128() {
    differential_adaptive_faults(64..128);
}

#[test]
fn corpus_fault_injection_seeds_0_64() {
    differential_with_fault(0..64);
}

#[test]
fn corpus_fault_injection_seeds_64_128() {
    differential_with_fault(64..128);
}

#[test]
fn corpus_fault_injection_seeds_128_192() {
    differential_with_fault(128..192);
}

#[test]
fn corpus_fault_injection_seeds_192_256() {
    differential_with_fault(192..256);
}

/// The frontend must reject corrupted input with a `CompileError`,
/// never a panic or a stack overflow. (A panic here aborts the test
/// process, so merely surviving the loop is the assertion.)
#[test]
fn parser_never_panics_on_mutated_inputs() {
    let mut rejected = 0u32;
    let mut accepted = 0u32;
    for seed in 0..256u64 {
        let src = generate_program(seed);
        for round in 0..8u64 {
            let mutated = mutate_bytes(&src, seed * 8 + round);
            match polaris_ir::parse(&mutated) {
                Ok(_) => accepted += 1,
                Err(_) => rejected += 1,
            }
        }
        // Prefix truncations model interrupted reads of otherwise-valid
        // source (open DO/IF blocks, dangling operators, split tokens).
        for frac in [1, 2, 3] {
            let cut = src.len() * frac / 4;
            let _ = polaris_ir::parse(&src[..cut]);
        }
    }
    // Sanity: the mutator produces real negatives (and the occasional
    // still-valid program is fine — parse accepting it is not a bug).
    assert!(rejected > 500, "mutator produced too few invalid programs: {rejected}");
    let _ = accepted;
}

/// A program that would loop effectively forever must terminate with
/// `FuelExhausted` instead of hanging (or allocating an iteration
/// vector for two billion values).
#[test]
fn runaway_loop_exhausts_fuel() {
    let src = "program spin\n\
               integer s\n\
               s = 0\n\
               do i = 1, 2000000000\n\
                 s = s + 1\n\
               end do\n\
               print *, s\n\
               end\n";
    let program = polaris_ir::parse(src).unwrap();
    let cfg = MachineConfig::serial().with_fuel(10_000);
    match polaris_machine::run(&program, &cfg) {
        Err(MachineError::FuelExhausted { limit }) => assert_eq!(limit, 10_000),
        other => panic!("expected FuelExhausted, got {other:?}"),
    }
}

/// Fuel applies to restructured parallel execution too.
#[test]
fn fuel_limits_apply_to_restructured_programs() {
    let src = generate_program(3);
    let out = polaris::parallelize(&src, &PassOptions::polaris()).unwrap();
    let cfg = MachineConfig::challenge_8().with_fuel(5);
    match polaris_machine::run(&out.program, &cfg) {
        Err(MachineError::FuelExhausted { limit }) => assert_eq!(limit, 5),
        other => panic!("expected FuelExhausted under a 5-step budget, got {other:?}"),
    }
}

/// An over-large allocation is refused up front by the memory cap.
#[test]
fn memory_cap_rejects_huge_allocations() {
    let src = "program big\n\
               real z(100000000)\n\
               z(1) = 1.0\n\
               print *, z(1)\n\
               end\n";
    let program = polaris_ir::parse(src).unwrap();
    let cfg = MachineConfig::serial().with_memory_cap(1 << 20);
    match polaris_machine::run(&program, &cfg) {
        Err(MachineError::MemoryCapExceeded { need, cap }) => {
            assert_eq!(cap, 1 << 20);
            assert!(need >= 100_000_000);
        }
        other => panic!("expected MemoryCapExceeded, got {other:?}"),
    }
}

//! Conformance net for the nest-transformation stages over the two
//! locality kernels: MMT must be interchanged and STENCIL2D tiled (plus
//! its tail loops fused), each under a [`polaris_ir::LegalityCert`] that
//! the independent `polaris-verify` re-prover re-derives from the final
//! IR. The transformed programs must then compute bit-identical results
//! to their **untransformed** serial baselines on every backend — the
//! tree-walking interpreter, the bytecode VM, the threaded executor at
//! several widths, and the adaptive controller — with zero runtime
//! oracle violations. Finally the compiler-side stride-penalty table is
//! cross-checked against the machine cost model's copy.

use std::sync::Arc;

use polaris::verify::{agreement, verify_compiled};
use polaris::{MachineConfig, PassOptions};
use polaris_ir::cert::CertKind;
use polaris_machine::{audit, run, CostModel, Engine, Schedule};
use polaris_runtime::AdaptiveController;

/// FNV-1a over newline-joined output, matching the checksum recorded
/// in `BENCH_figure7.json` (`polaris_bench::fnv1a`).
fn fnv1a(lines: &[String]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for line in lines {
        for &byte in line.as_bytes().iter().chain(b"\n") {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

#[test]
fn locality_kernels_receive_their_pinned_transformations() {
    for (b, expected) in &polaris_benchmarks::locality() {
        let out = polaris::parallelize(b.source, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
        let nest = &out.report.nest;
        assert!(nest.summarized > 0, "{}: no nest was ever summarized", b.name);
        let applied: Vec<&str> = nest.certs.iter().map(|c| c.stage()).collect();
        assert!(
            applied.contains(expected),
            "{}: pinned transformation `{expected}` missing; applied {applied:?}\n\
             rejections: {:?}",
            b.name,
            nest.rejections
        );
    }
}

#[test]
fn mmt_is_interchanged_to_unit_stride_order() {
    let b = polaris_benchmarks::by_name("MMT").unwrap();
    let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
    let cert = out
        .report
        .nest
        .certs
        .iter()
        .find(|c| c.loop_vars == ["K", "I", "J"])
        .unwrap_or_else(|| panic!("no cert for the (K,I,J) nest: {:?}", out.report.nest.certs));
    let CertKind::Interchange { perm } = &cert.kind else {
        panic!("expected an interchange cert, got {:?}", cert.kind);
    };
    assert_eq!(perm.as_slice(), &[2, 1, 0], "expected the (J, I, K) dot-product order");
    // The relaxable-reduction model is load-bearing here: the scalar
    // accumulator S would otherwise contribute an all-* blocking row.
    assert!(
        cert.vectors.iter().any(|v| v.array == "S" && v.relaxable),
        "S reduction row missing or not relaxable: {:?}",
        cert.vectors
    );
}

#[test]
fn stencil2d_is_tiled_and_its_tail_loops_fused() {
    let b = polaris_benchmarks::by_name("STENCIL2D").unwrap();
    let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
    let nest = &out.report.nest;
    let tile = nest
        .certs
        .iter()
        .find(|c| matches!(c.kind, CertKind::Tile { .. }))
        .unwrap_or_else(|| panic!("no tile cert: {:?}", nest.certs));
    let CertKind::Tile { band, sizes } = &tile.kind else { unreachable!() };
    assert_eq!(band.as_slice(), &[0, 1]);
    assert!(sizes.iter().all(|&s| s == 8), "{sizes:?}");
    assert!(
        nest.certs.iter().any(|c| matches!(c.kind, CertKind::Fuse { .. })),
        "tail loops did not fuse: {:?}",
        nest.certs
    );
}

#[test]
fn disabling_nest_opts_leaves_the_nests_alone() {
    let mut opts = PassOptions::polaris();
    opts.nest_interchange = false;
    opts.nest_tiling = false;
    opts.nest_fusion = false;
    for (b, _) in &polaris_benchmarks::locality() {
        let out = polaris::parallelize(b.source, &opts).unwrap();
        assert!(out.report.nest.certs.is_empty(), "{}: {:?}", b.name, out.report.nest.certs);
        assert_eq!(out.report.nest.candidates, 0, "{}", b.name);
    }
}

/// Both kernels, both engines, serial / threaded / adaptive: the
/// transformed program must reproduce the *untransformed* program's
/// serial output byte for byte. The kernels keep integer-valued data
/// precisely so that reordered and re-merged sums stay exact.
#[test]
fn transformed_nests_are_bit_identical_to_untransformed_baselines() {
    for (b, _) in &polaris_benchmarks::locality() {
        let reference = run(&b.program(), &MachineConfig::serial())
            .unwrap_or_else(|e| panic!("{}: reference run: {e}", b.name));
        assert!(
            reference.output.iter().any(|l| l.contains("checksum")),
            "{}: kernel prints no checksum line",
            b.name
        );
        let want = fnv1a(&reference.output);

        let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
        assert!(!out.report.nest.certs.is_empty(), "{}: nothing was transformed", b.name);
        let mut configs: Vec<(String, MachineConfig)> = vec![
            ("tree-walk serial".into(), MachineConfig::serial().with_engine(Engine::TreeWalk)),
            ("vm serial".into(), MachineConfig::serial().with_engine(Engine::Vm)),
        ];
        for threads in [2usize, 4, 8] {
            configs.push((
                format!("threaded x{threads}"),
                MachineConfig::threaded(threads, Schedule::Static),
            ));
        }
        configs.push((
            "adaptive x4".into(),
            MachineConfig::threaded(4, Schedule::Static)
                .with_adaptive(Arc::new(AdaptiveController::new())),
        ));
        for (label, cfg) in configs {
            // Adaptive runs twice (measure, then re-dispatch) on the
            // same shared controller inside `cfg`.
            let passes = if label.starts_with("adaptive") { 2 } else { 1 };
            for pass in 0..passes {
                let r = run(&out.program, &cfg)
                    .unwrap_or_else(|e| panic!("{}: {label}#{pass}: {e}", b.name));
                assert_eq!(
                    reference.output, r.output,
                    "{}: {label}#{pass}: output diverged from the untransformed serial baseline",
                    b.name
                );
                assert_eq!(want, fnv1a(&r.output), "{}: {label}#{pass}: checksum drift", b.name);
            }
        }
    }
}

/// Zero oracle violations and zero re-prover disagreements on the
/// transformed kernels; static race `clean` verdicts must survive the
/// oracle cross-check.
#[test]
fn transformed_kernels_are_oracle_clean_and_cert_sound() {
    for (b, _) in &polaris_benchmarks::locality() {
        let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
        let oracle = audit(&out.program, &out.report)
            .unwrap_or_else(|e| panic!("{}: oracle: {e}", b.name));
        assert!(
            !oracle.has_violations(),
            "{}: oracle violations: {:?}",
            b.name,
            oracle.violations().collect::<Vec<_>>()
        );
        let v = verify_compiled(&out.program, &out.report);
        assert!(v.ok(), "{}: {:?} / rejected certs {:?}", b.name, v.final_violations, v.rejected_certs());
        assert!(
            v.certs_ok(),
            "{}: re-prover rejected a cert: {:?}",
            b.name,
            v.rejected_certs()
        );
        assert_eq!(v.cert_checks.len(), out.report.nest.certs.len(), "{}", b.name);
        let race = v.race.as_ref().unwrap_or_else(|| panic!("{}: no race report", b.name));
        let a = agreement(race, &oracle);
        assert!(
            a.sound(),
            "{}: static `clean` contradicted by the oracle on {:?}",
            b.name,
            a.soundness_failures
        );
    }
}

/// The compiler's stride-penalty table and the machine cost model's
/// copy must agree cell for cell (core cannot depend on the machine
/// crate, so the table is mirrored, not shared).
#[test]
fn stride_penalty_tables_agree_between_compiler_and_machine() {
    let m = CostModel::default();
    for coeff in [-3i64, -1, 0, 1, 2, 34] {
        for varies in [false, true] {
            assert_eq!(
                polaris_core::nestdeps::stride_penalty(coeff, varies),
                m.stride_penalty(coeff, varies),
                "tables diverge at coeff={coeff} varies={varies}"
            );
        }
    }
}

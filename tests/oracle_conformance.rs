//! Pass-level conformance suite for the dependence oracle: every
//! PARALLEL claim the pipeline publishes is audited against the exact
//! cross-iteration dependences the program exhibits at run time
//! (`polaris_machine::oracle`). A claim contradicted by an observed,
//! undischarged dependence is a soundness violation and fails hard;
//! serial loops that turn out dynamically independent are completeness
//! misses and are only *reported* (figure7 folds them into the bench
//! trajectory).
//!
//! The corpus is the full 17-kernel benchmark suite (Table 1 + TRACK)
//! plus the 256-seed deterministic fuzz corpus shared with
//! `fuzz_differential.rs`.

use polaris::fuzz::generate_program;
use polaris::{MachineConfig, PassOptions};
use polaris_machine::{audit, audit_with};

/// Matches `fuzz_differential.rs`: bounded generated programs finish
/// well under this; a miscompiled endless loop fails fast.
const FUEL: u64 = 2_000_000;

#[test]
fn kernels_have_zero_soundness_violations() {
    let mut kernels = polaris_benchmarks::all();
    kernels.push(polaris_benchmarks::track());
    assert_eq!(kernels.len(), 17, "the paper's suite is 16 codes + TRACK");

    let mut serial_exercised = 0usize;
    let mut misses = 0usize;
    for b in &kernels {
        let out = polaris::parallelize(b.source, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
        let report = audit(&out.program, &out.report)
            .unwrap_or_else(|e| panic!("{}: oracle run: {e}", b.name));
        assert!(
            !report.has_violations(),
            "{}: PARALLEL claim contradicted by observed dependence:\n{:#?}",
            b.name,
            report.violations().collect::<Vec<_>>()
        );
        serial_exercised += report.serial_loops_exercised();
        misses += report.completeness_misses();
    }
    // The suite is built to exercise both sides of the precision story:
    // it must contain serial loops (the range test is not vacuous) and
    // at least one known dynamic-independence miss (WAVE5/TRACK-style
    // subscripted subscripts when speculation is charged to run time).
    assert!(serial_exercised > 0, "no serial loops exercised across the suite");
    assert!(
        misses <= serial_exercised,
        "miss count {misses} exceeds exercised serial loops {serial_exercised}"
    );
}

/// Each kernel audited individually with speculation disabled: the
/// loops Polaris hands to the LRPD test become plain serial loops, so
/// dynamically-independent ones must show up as completeness misses —
/// this is the paper's motivation for the run-time test, measured.
#[test]
fn disabling_speculation_surfaces_completeness_misses() {
    let mut opts = PassOptions::polaris();
    opts.speculation = false;
    let mut total_misses = 0usize;
    for b in [polaris_benchmarks::by_name("WAVE5").unwrap(), polaris_benchmarks::track()] {
        let out = polaris::parallelize(b.source, &opts)
            .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
        let report = audit(&out.program, &out.report)
            .unwrap_or_else(|e| panic!("{}: oracle run: {e}", b.name));
        assert!(!report.has_violations(), "{}: violations without speculation", b.name);
        total_misses += report.completeness_misses() + report.privatizable_misses();
    }
    assert!(
        total_misses > 0,
        "WAVE5/TRACK are the run-time-test codes; with speculation off the \
         oracle must observe at least one dynamically independent serial loop"
    );
}

fn fuzz_corpus_clean(seeds: std::ops::Range<u64>) {
    let cfg = MachineConfig::serial().with_fuel(FUEL);
    for seed in seeds {
        let src = generate_program(seed);
        let out = polaris::parallelize(&src, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("seed {seed}: compile: {e}\n{src}"));
        let report = audit_with(&out.program, &out.report, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: oracle run: {e}\n{src}"));
        assert!(
            !report.has_violations(),
            "seed {seed}: PARALLEL claim contradicted by observed dependence\n\
             --- source ---\n{src}\n--- violations ---\n{:#?}",
            report.violations().collect::<Vec<_>>()
        );
    }
}

#[test]
fn fuzz_corpus_oracle_clean_seeds_0_64() {
    fuzz_corpus_clean(0..64);
}

#[test]
fn fuzz_corpus_oracle_clean_seeds_64_128() {
    fuzz_corpus_clean(64..128);
}

#[test]
fn fuzz_corpus_oracle_clean_seeds_128_192() {
    fuzz_corpus_clean(128..192);
}

#[test]
fn fuzz_corpus_oracle_clean_seeds_192_256() {
    fuzz_corpus_clean(192..256);
}

//! The differential net holding the bytecode VM to the tree-walker.
//!
//! `Engine::Vm` is the workspace default, so every other suite already
//! runs on the VM; this file is the *explicit* two-engine comparison:
//! for the 17 paper kernels and the 256-seed fuzz corpus, under both the
//! simulated and the threaded backend, the two engines must produce
//!
//! * bit-identical printed output (checksums included),
//! * identical simulated cycle counts,
//! * identical final machine state (every scalar exactly, every array
//!   by FNV-1a over element bit patterns — [`StateDump`]),
//! * identical dependence-oracle verdicts,
//!
//! plus a proptest generator of adversarial units (nested loops, STOP,
//! reductions, lastprivate temporaries) run through both engines per
//! case.
//!
//! [`StateDump`]: polaris_machine::StateDump

use polaris::fuzz::generate_program;
use polaris::{Engine, MachineConfig, PassOptions, Program};
use polaris_machine::{run_with_state, RunResult, Schedule, StateDump};
use proptest::prelude::*;

const FUEL: u64 = 20_000_000;

/// Run under both engines with otherwise-identical configs and assert
/// output, cycles and final state all match bit for bit.
fn assert_engines_agree(program: &Program, cfg: &MachineConfig, what: &str) -> RunResult {
    let (vm, tree) = run_both(program, cfg, what);
    let (vm, vm_state) = vm.unwrap_or_else(|e| panic!("{what}: vm run: {e}"));
    let (tree, tree_state) = tree.unwrap_or_else(|e| panic!("{what}: tree-walk run: {e}"));
    assert_eq!(vm.output, tree.output, "{what}: output differs between engines");
    assert_eq!(vm.cycles, tree.cycles, "{what}: simulated cycles differ between engines");
    assert_state_eq(&vm_state, &tree_state, what);
    vm
}

type EngineOutcome = Result<(RunResult, StateDump), polaris_machine::MachineError>;

fn run_both(program: &Program, cfg: &MachineConfig, what: &str) -> (EngineOutcome, EngineOutcome) {
    let _ = what;
    let vm = run_with_state(program, &cfg.clone().with_engine(Engine::Vm));
    let tree = run_with_state(program, &cfg.clone().with_engine(Engine::TreeWalk));
    (vm, tree)
}

fn assert_state_eq(vm: &StateDump, tree: &StateDump, what: &str) {
    assert_eq!(
        vm.scalars, tree.scalars,
        "{what}: final scalar state differs between engines"
    );
    assert_eq!(
        vm.arrays, tree.arrays,
        "{what}: final array state differs between engines"
    );
}

fn kernels() -> Vec<polaris_benchmarks::Benchmark> {
    let mut ks = polaris_benchmarks::all();
    ks.push(polaris_benchmarks::track());
    ks
}

fn compiled(src: &str, what: &str) -> Program {
    let out = polaris::parallelize(src, &PassOptions::polaris())
        .unwrap_or_else(|e| panic!("{what}: compile: {e}"));
    out.program
}

// ---- the 17 kernels --------------------------------------------------

/// Serial + simulated-parallel, both engines, all 17 kernels. Also pins
/// the untransformed program (the serial reference everything else in
/// the workspace compares against).
#[test]
fn kernels_serial_and_simulated_parallel_agree_across_engines() {
    for k in kernels() {
        let original = k.program();
        assert_engines_agree(
            &original,
            &MachineConfig::serial().with_fuel(FUEL),
            &format!("{} (untransformed, serial)", k.name),
        );
        let program = compiled(k.source, k.name);
        let serial = assert_engines_agree(
            &program,
            &MachineConfig::serial().with_fuel(FUEL),
            &format!("{} (serial)", k.name),
        );
        let parallel = assert_engines_agree(
            &program,
            &MachineConfig::challenge_8().with_fuel(FUEL),
            &format!("{} (simulated 8-proc)", k.name),
        );
        // The engines agreeing with *each other* is necessary; the
        // parallel schedule agreeing with serial semantics keeps the
        // net anchored to ground truth.
        assert_eq!(serial.output, parallel.output, "{}: parallel output drifted", k.name);
    }
}

/// Real-thread backend, both engines, all 17 kernels: checksums must be
/// bit-identical (the chunk-ordered merge makes threading deterministic,
/// so exact equality is the right bar — see tests/fuzz_differential.rs).
#[test]
fn kernels_threaded_agree_across_engines() {
    for k in kernels() {
        let program = compiled(k.source, k.name);
        let serial = assert_engines_agree(
            &program,
            &MachineConfig::serial().with_fuel(FUEL),
            &format!("{} (serial)", k.name),
        );
        for threads in [2usize, 8] {
            let cfg = MachineConfig::threaded(threads, Schedule::Static).with_fuel(FUEL);
            let threaded = assert_engines_agree(
                &program,
                &cfg,
                &format!("{} (threaded x{threads})", k.name),
            );
            assert_eq!(
                serial.output, threaded.output,
                "{}: threaded x{threads} output drifted from serial",
                k.name
            );
        }
    }
}

/// The dependence oracle must reach the same verdict on every kernel no
/// matter which engine drove the traced execution.
#[test]
fn kernels_oracle_verdicts_agree_across_engines() {
    for k in kernels() {
        let out = polaris::parallelize(k.source, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("{}: compile: {e}", k.name));
        let mut cfg = MachineConfig::serial().with_fuel(FUEL);
        cfg.engine = Engine::Vm;
        let vm = polaris_machine::audit_with(&out.program, &out.report, &cfg)
            .unwrap_or_else(|e| panic!("{}: vm audit: {e}", k.name));
        cfg.engine = Engine::TreeWalk;
        let tree = polaris_machine::audit_with(&out.program, &out.report, &cfg)
            .unwrap_or_else(|e| panic!("{}: tree-walk audit: {e}", k.name));
        assert_eq!(
            vm.to_json(),
            tree.to_json(),
            "{}: oracle verdict differs between engines",
            k.name
        );
    }
}

// ---- the 256-seed corpus ---------------------------------------------

fn corpus_slice(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let src = generate_program(seed);
        let program = compiled(&src, &format!("seed {seed}"));
        assert_engines_agree(
            &program,
            &MachineConfig::serial().with_fuel(FUEL),
            &format!("seed {seed} (serial)\n{src}"),
        );
        assert_engines_agree(
            &program,
            &MachineConfig::challenge_8().with_fuel(FUEL),
            &format!("seed {seed} (simulated 8-proc)\n{src}"),
        );
        let cfg = MachineConfig::threaded(4, Schedule::Static).with_fuel(FUEL);
        assert_engines_agree(&program, &cfg, &format!("seed {seed} (threaded x4)\n{src}"));
    }
}

#[test]
fn corpus_seeds_0_64_agree_across_engines() {
    corpus_slice(0..64);
}

#[test]
fn corpus_seeds_64_128_agree_across_engines() {
    corpus_slice(64..128);
}

#[test]
fn corpus_seeds_128_192_agree_across_engines() {
    corpus_slice(128..192);
}

#[test]
fn corpus_seeds_192_256_agree_across_engines() {
    corpus_slice(192..256);
}

// ---- adversarial proptest units --------------------------------------

/// Parameters for one adversarial unit. Rendered to F-Mini source below;
/// the shapes are chosen to stress exactly what the bytecode compiler
/// does differently from the tree-walker: nested loop bodies (CallLoop
/// re-entry), STOP mid-loop (Flow::Stop propagation out of dispatch),
/// reductions and lastprivate temporaries (register/scalar interaction),
/// and IF arms (jump-table branches).
#[derive(Debug, Clone)]
struct Adversarial {
    extent: i64,
    inner_extent: i64,
    depth2: bool,
    stop_at: Option<i64>,
    reduction_mul: bool,
    lastprivate: bool,
    guard: bool,
}

fn adversarial_source(a: &Adversarial) -> String {
    let mut s = String::new();
    s.push_str("program adv\n");
    s.push_str(&format!("real a({}), b({})\n", a.extent, a.extent));
    s.push_str("s = 0.0\np = 1.0\n");
    s.push_str(&format!("do i = 1, {}\n", a.extent));
    s.push_str("  a(i) = i * 0.5\n");
    if a.depth2 {
        s.push_str(&format!("  do j = 1, {}\n", a.inner_extent));
        s.push_str("    a(i) = a(i) + j * 0.25\n");
        s.push_str("  end do\n");
    }
    if a.lastprivate {
        s.push_str("  t = a(i) * 2.0\n  b(i) = t\n");
    } else {
        s.push_str("  b(i) = a(i) + 1.0\n");
    }
    s.push_str("  s = s + b(i)\n");
    if a.reduction_mul {
        s.push_str("  p = p * 1.0625\n");
    }
    if a.guard {
        s.push_str(&format!("  if (i .gt. {}) then\n", a.extent / 2));
        s.push_str("    s = s + 0.125\n  else\n    s = s - 0.125\n  end if\n");
    }
    if let Some(at) = a.stop_at {
        s.push_str(&format!("  if (i .eq. {at}) then\n    print *, 'stop', s\n    stop\n  end if\n"));
    }
    s.push_str("end do\n");
    if a.lastprivate {
        s.push_str("print *, s, p, t\n");
    } else {
        s.push_str("print *, s, p\n");
    }
    s.push_str("end\n");
    s
}

fn adversarial_strategy() -> impl Strategy<Value = Adversarial> {
    (
        (2i64..40, 1i64..6, any::<bool>()),
        (any::<bool>(), 1i64..40),
        (any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(
                (extent, inner_extent, depth2),
                (stops, stop_at),
                (reduction_mul, lastprivate, guard),
            )| {
                Adversarial {
                    extent,
                    inner_extent,
                    depth2,
                    stop_at: (stops && stop_at <= extent).then_some(stop_at),
                    reduction_mul,
                    lastprivate,
                    guard,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every generated unit, untransformed and restructured, must agree
    /// across engines serially and under the simulated parallel machine.
    #[test]
    fn adversarial_units_agree_across_engines(a in adversarial_strategy()) {
        let src = adversarial_source(&a);
        let original = polaris_ir::parse(&src)
            .unwrap_or_else(|e| panic!("adversarial unit does not parse: {e}\n{src}"));
        assert_engines_agree(
            &original,
            &MachineConfig::serial().with_fuel(FUEL),
            &format!("adversarial (untransformed)\n{src}"),
        );
        let program = compiled(&src, &format!("adversarial\n{src}"));
        assert_engines_agree(
            &program,
            &MachineConfig::serial().with_fuel(FUEL),
            &format!("adversarial (serial)\n{src}"),
        );
        assert_engines_agree(
            &program,
            &MachineConfig::challenge_8().with_fuel(FUEL),
            &format!("adversarial (simulated 8-proc)\n{src}"),
        );
    }
}

//! Compiler soundness property test: random loop nests are compiled
//! with the full Polaris pipeline and then executed **adversarially**
//! (parallel loops in reverse order with real privatization/reduction
//! semantics and poisoned private storage). If the dependence driver
//! ever claims parallelism it cannot justify, the final memory state
//! diverges from sequential execution and this test fails.
//!
//! The generator mixes the idioms the passes actually target: affine
//! array writes with offsets, read-modify chains, scalar temporaries,
//! sum reductions, conditional writes, and inner loops.
//!
//! A second generator targets the subscripted-subscript tier: an index
//! array is filled by a randomly chosen defining loop (affine,
//! prefix-sum, opaque permutation, duplicate-heavy, or clobbered by a
//! second fill), then consumed by scatter/accumulate/gather loops. The
//! property pass may prove the provable fills, but a duplicate-entry
//! array must never yield a statically `clean` PARALLEL claim.

use proptest::prelude::*;

/// One statement template for the loop body.
#[derive(Debug, Clone)]
enum BodyStmt {
    /// `A(a*i + c) = <expr>`
    Write { a: i64, c: i64 },
    /// `A(a*i + c) = A(a2*i + c2) + 1.0` — potential cross-iteration flow
    ReadWrite { a: i64, c: i64, a2: i64, c2: i64 },
    /// `T = B(i) * 2.0 ; A(a*i + c) = T` — privatizable temp
    Temp { a: i64, c: i64 },
    /// `S = S + A(a*i + c)` — sum reduction
    Reduce { a: i64, c: i64 },
    /// `IF (B(i) > 0.5) A(a*i + c) = B(i)` — conditional write
    CondWrite { a: i64, c: i64 },
    /// inner loop `DO j = 1, 4: A(a*i + j + c) = B(j)` — region write
    Inner { a: i64, c: i64 },
    /// coupled 2-D subscripts over the nest: `M(i, j) = M(i, j) + B(j)`
    /// (or the transposed access `M(j, i)`), both loop variables live in
    /// one reference
    Coupled { transpose: bool },
    /// `A(kk*i + c) = B(i)` — symbolic stride: `kk` is only known at run
    /// time (assigned under a data-dependent branch), so the dependence
    /// tests must reason symbolically or stay conservative
    SymStride { c: i64 },
    /// wrap-around induction chain: `A(i + c) = B(jwrap); jwrap = i` —
    /// the read sees the *previous* iteration's induction value
    WrapAround { c: i64 },
}

const N_ITERS: i64 = 16;
const ASIZE: i64 = 120;

impl BodyStmt {
    fn emit(&self, out: &mut String) {
        match self {
            BodyStmt::Write { a, c } => {
                out.push_str(&format!("  a({a}*i + {c}) = b(i) + 1.0\n"));
            }
            BodyStmt::ReadWrite { a, c, a2, c2 } => {
                out.push_str(&format!("  a({a}*i + {c}) = a({a2}*i + {c2}) + 1.0\n"));
            }
            BodyStmt::Temp { a, c } => {
                out.push_str("  t = b(i) * 2.0\n");
                out.push_str(&format!("  a({a}*i + {c}) = t\n"));
            }
            BodyStmt::Reduce { a, c } => {
                out.push_str(&format!("  s = s + a({a}*i + {c})\n"));
            }
            BodyStmt::CondWrite { a, c } => {
                out.push_str(&format!("  if (b(i) > 0.5) a({a}*i + {c}) = b(i)\n"));
            }
            BodyStmt::Inner { a, c } => {
                out.push_str("  do j = 1, 4\n");
                out.push_str(&format!("    a({a}*i + j + {c}) = b(j)\n"));
                out.push_str("  end do\n");
            }
            BodyStmt::Coupled { transpose } => {
                out.push_str("  do j = 1, 4\n");
                if *transpose {
                    out.push_str("    m(j, i) = m(j, i) + b(j)\n");
                } else {
                    out.push_str("    m(i, j) = m(i, j) + b(j)\n");
                }
                out.push_str("  end do\n");
            }
            BodyStmt::SymStride { c } => {
                out.push_str(&format!("  a(kk*i + {c}) = b(i)\n"));
            }
            BodyStmt::WrapAround { c } => {
                out.push_str(&format!("  a(i + {c}) = b(jwrap) + 1.0\n"));
                out.push_str("  jwrap = i\n");
            }
        }
    }
}

/// Keep every generated subscript inside [1, ASIZE] for i in [1, N_ITERS]
/// (and j in [1,4]).
fn clamp(a: i64, c: i64, extra: i64) -> (i64, i64) {
    let a = a.rem_euclid(4); // 0..3
    let max_wo_c = a * N_ITERS + extra;
    let c = 1 + c.rem_euclid((ASIZE - max_wo_c).max(1));
    (a, c)
}

fn stmt_strategy() -> impl Strategy<Value = BodyStmt> {
    let coef = -8i64..8;
    let off = 0i64..128;
    prop_oneof![
        (coef.clone(), off.clone()).prop_map(|(a, c)| {
            let (a, c) = clamp(a, c, 0);
            BodyStmt::Write { a, c }
        }),
        (coef.clone(), off.clone(), coef.clone(), off.clone()).prop_map(|(a, c, a2, c2)| {
            let (a, c) = clamp(a, c, 0);
            let (a2, c2) = clamp(a2, c2, 0);
            BodyStmt::ReadWrite { a, c, a2, c2 }
        }),
        (coef.clone(), off.clone()).prop_map(|(a, c)| {
            let (a, c) = clamp(a, c, 0);
            BodyStmt::Temp { a, c }
        }),
        (coef.clone(), off.clone()).prop_map(|(a, c)| {
            let (a, c) = clamp(a, c, 0);
            BodyStmt::Reduce { a, c }
        }),
        (coef.clone(), off.clone()).prop_map(|(a, c)| {
            let (a, c) = clamp(a, c, 0);
            BodyStmt::CondWrite { a, c }
        }),
        (coef, off.clone()).prop_map(|(a, c)| {
            let (a, c) = clamp(a, c, 4);
            BodyStmt::Inner { a, c }
        }),
        any::<bool>().prop_map(|transpose| BodyStmt::Coupled { transpose }),
        // kk is at most 3 at run time: keep kk*i + c inside the array
        off.clone()
            .prop_map(|c| BodyStmt::SymStride { c: 1 + c.rem_euclid(ASIZE - 3 * N_ITERS) }),
        off.prop_map(|c| BodyStmt::WrapAround { c: 1 + c.rem_euclid(ASIZE - N_ITERS) }),
    ]
}

fn program_from(stmts: &[BodyStmt]) -> String {
    let mut src = String::new();
    src.push_str("program fuzz\n");
    src.push_str(&format!("real a({ASIZE}), b({ASIZE}), m(20, 20)\n"));
    src.push_str("real s, t\n");
    src.push_str(&format!("do k = 1, {ASIZE}\n  a(k) = k*0.125\n  b(k) = 1.0/k\nend do\n"));
    src.push_str("do k1 = 1, 20\n  do k2 = 1, 20\n    m(k1, k2) = k1*0.5 + k2\n  end do\nend do\n");
    // Runtime-only stride for SymStride: the branch depends on array
    // data, so constant propagation cannot fold `kk`.
    src.push_str("kk = 3\nif (b(1) > 0.0) kk = 2\n");
    src.push_str("jwrap = 1\n");
    src.push_str("s = 0.0\n");
    src.push_str(&format!("do i = 1, {N_ITERS}\n"));
    for s in stmts {
        s.emit(&mut src);
    }
    src.push_str("end do\n");
    // make everything observable
    src.push_str(&format!("print *, s, a(1), a({}), a({ASIZE})\n", ASIZE / 2));
    src.push_str("print *, m(3, 3), m(4, 7), jwrap\n");
    src.push_str("w = 0.0\n");
    src.push_str(&format!("do k = 1, {ASIZE}\n  w = w + a(k)\nend do\n"));
    src.push_str("print *, 'sum', w\nend\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_programs_survive_adversarial_validation(
        stmts in proptest::collection::vec(stmt_strategy(), 1..5)
    ) {
        let src = program_from(&stmts);
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let cfg = polaris::MachineConfig::challenge_8();
        // adversarial validation: reverse-order parallel execution must
        // match sequential semantics exactly
        polaris::machine::run_validated(&out.program, &cfg).unwrap_or_else(|e| {
            panic!("UNSOUND parallelization: {e}\n--- source ---\n{src}\n--- annotated ---\n{}",
                   out.annotated_source)
        });
    }

    /// Every generated program must also be oracle-clean: the serial
    /// traced execution may not observe any cross-iteration dependence
    /// that contradicts a published PARALLEL claim.
    #[test]
    fn generated_programs_are_oracle_clean(
        stmts in proptest::collection::vec(stmt_strategy(), 1..5)
    ) {
        let src = program_from(&stmts);
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let report = polaris::machine::audit(&out.program, &out.report)
            .unwrap_or_else(|e| panic!("oracle run failed: {e}\n{src}"));
        prop_assert!(
            !report.has_violations(),
            "oracle observed a race in a PARALLEL loop\n--- source ---\n{}\n--- annotated ---\n{}\n--- violations ---\n{:#?}",
            src, out.annotated_source, report.violations().collect::<Vec<_>>()
        );
    }

    #[test]
    fn vfa_is_also_sound(
        stmts in proptest::collection::vec(stmt_strategy(), 1..5)
    ) {
        let src = program_from(&stmts);
        let out = polaris::parallelize(&src, &polaris::PassOptions::vfa())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        polaris::machine::run_validated(&out.program, &polaris::MachineConfig::challenge_8())
            .unwrap_or_else(|e| {
                panic!("UNSOUND baseline parallelization: {e}\n{src}\n{}", out.annotated_source)
            });
    }
}

/// How the index array `idx(16)` gets its values before the consumer
/// loops run. The first four are provable by the `idxprop` recognizers;
/// the last three must defeat them.
#[derive(Debug, Clone, Copy)]
enum IdxFill {
    /// `idx(i) = i` — strict identity permutation
    Identity,
    /// `idx(i) = 17 - i` — reversal, slope −1
    Reverse,
    /// `idx(i) = 2*i + c` — strided injective, not a permutation
    Affine { c: i64 },
    /// `idx(1) = 1; idx(i) = idx(i-1) + 1 + mod(i, 2)` — prefix sum
    PrefixSum,
    /// `idx(i) = mod(i*m, 16) + 1`, odd `m` — a run-time permutation
    /// the recognizers cannot see through (LRPD territory)
    ModPerm { m: i64 },
    /// `idx(i) = mod(i, m) + 1` — genuine duplicate entries; any
    /// static `clean` claim on a scatter through this is unsound
    Duplicates { m: i64 },
    /// injective fill, then a second loop overwrites half the entries
    /// with duplicates — the pass must poison its earlier proof
    Clobbered,
}

impl IdxFill {
    fn emit(self, out: &mut String) {
        match self {
            IdxFill::Identity => {
                out.push_str("do i = 1, 16\n  idx(i) = i\nend do\n");
            }
            IdxFill::Reverse => {
                out.push_str("do i = 1, 16\n  idx(i) = 17 - i\nend do\n");
            }
            IdxFill::Affine { c } => {
                out.push_str(&format!("do i = 1, 16\n  idx(i) = 2*i + {c}\nend do\n"));
            }
            IdxFill::PrefixSum => {
                out.push_str("idx(1) = 1\n");
                out.push_str("do i = 2, 16\n  idx(i) = idx(i - 1) + 1 + mod(i, 2)\nend do\n");
            }
            IdxFill::ModPerm { m } => {
                out.push_str(&format!("do i = 1, 16\n  idx(i) = mod(i*{m}, 16) + 1\nend do\n"));
            }
            IdxFill::Duplicates { m } => {
                out.push_str(&format!("do i = 1, 16\n  idx(i) = mod(i, {m}) + 1\nend do\n"));
            }
            IdxFill::Clobbered => {
                out.push_str("do i = 1, 16\n  idx(i) = i\nend do\n");
                out.push_str("do i = 1, 8\n  idx(i + 8) = i\nend do\n");
            }
        }
    }

    /// Whether two iterations of a consumer loop can hit one cell.
    fn may_alias(self) -> bool {
        matches!(self, IdxFill::Duplicates { .. } | IdxFill::Clobbered)
    }
}

/// One consumer statement over `a(idx(i))`.
#[derive(Debug, Clone, Copy)]
enum IdxUse {
    /// `a(idx(i)) = b(i)*1.5 + 0.25` — order-sensitive under duplicates
    Scatter,
    /// `a(idx(i)) = a(idx(i)) + b(i)` — cross-iteration flow under
    /// duplicates
    Accum,
    /// `g(i) = a(idx(i))*0.5 + b(i)` — read-only indirection, always
    /// parallel
    Gather,
}

impl IdxUse {
    fn emit(self, out: &mut String) {
        match self {
            IdxUse::Scatter => out.push_str("  a(idx(i)) = b(i)*1.5 + 0.25\n"),
            IdxUse::Accum => out.push_str("  a(idx(i)) = a(idx(i)) + b(i)\n"),
            IdxUse::Gather => out.push_str("  g(i) = a(idx(i))*0.5 + b(i)\n"),
        }
    }
}

fn idx_fill_strategy() -> impl Strategy<Value = IdxFill> {
    prop_oneof![
        Just(IdxFill::Identity),
        Just(IdxFill::Reverse),
        // 2*16 + c <= 64
        (1i64..=31).prop_map(|c| IdxFill::Affine { c }),
        Just(IdxFill::PrefixSum),
        (0i64..8).prop_map(|k| IdxFill::ModPerm { m: 2 * k + 1 }),
        (2i64..9).prop_map(|m| IdxFill::Duplicates { m }),
        Just(IdxFill::Clobbered),
    ]
}

fn idx_use_strategy() -> impl Strategy<Value = IdxUse> {
    prop_oneof![Just(IdxUse::Scatter), Just(IdxUse::Accum), Just(IdxUse::Gather)]
}

fn idx_program_from(fill: IdxFill, uses: &[IdxUse]) -> String {
    let mut src = String::new();
    src.push_str("program idxfuzz\n");
    src.push_str("real a(64), b(16), g(16)\n");
    src.push_str("integer idx(16)\n");
    src.push_str("do k = 1, 64\n  a(k) = k*0.125\nend do\n");
    src.push_str("do k = 1, 16\n  b(k) = 1.0/k\n  g(k) = 0.0\nend do\n");
    fill.emit(&mut src);
    src.push_str("do i = 1, 16\n");
    for u in uses {
        u.emit(&mut src);
    }
    src.push_str("end do\n");
    src.push_str("print *, a(1), a(13), a(32), a(64)\n");
    src.push_str("print *, g(1), g(16), idx(1), idx(16)\n");
    src.push_str("w = 0.0\n");
    src.push_str("do k = 1, 64\n  w = w + a(k)\nend do\n");
    src.push_str("print *, 'sum', w\nend\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Subscripted-subscript soundness: whatever the property pass
    /// proves (or speculates) about the generated index array, the
    /// adversarial reverse-order execution must match sequential
    /// semantics, and the traced oracle must see no violation. A
    /// duplicate-entry fill additionally pins that the props
    /// disjointness rule proved nothing.
    #[test]
    fn index_array_programs_are_sound(
        fill in idx_fill_strategy(),
        uses in proptest::collection::vec(idx_use_strategy(), 1..3)
    ) {
        let src = idx_program_from(fill, &uses);
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        if fill.may_alias() {
            prop_assert_eq!(
                out.report.dd_props.1, 0,
                "props rule claimed disjointness through a duplicate-entry \
                 index array\n--- source ---\n{}\n--- annotated ---\n{}",
                src, out.annotated_source
            );
        }
        polaris::machine::run_validated(&out.program, &polaris::MachineConfig::challenge_8())
            .unwrap_or_else(|e| {
                panic!("UNSOUND parallelization: {e}\n--- source ---\n{src}\n--- annotated ---\n{}",
                       out.annotated_source)
            });
        let report = polaris::machine::audit(&out.program, &out.report)
            .unwrap_or_else(|e| panic!("oracle run failed: {e}\n{src}"));
        prop_assert!(
            !report.has_violations(),
            "oracle observed a race through the index array\n--- source ---\n{}\n\
             --- annotated ---\n{}\n--- violations ---\n{:#?}",
            src, out.annotated_source, report.violations().collect::<Vec<_>>()
        );
    }
}

/// A randomly-shaped 2-D nest carrying a `(<, >)` dependence:
/// `a(i, j) = a(i - d1, j + d2) + 1.0` with `d1, d2 >= 1`. The flow
/// dependence has distance `(d1, -d2)` — positive then negative — so
/// swapping the loops (or tiling the band) would invert a `<`-leading
/// direction vector. The legality prover must reject both, and a
/// `ForceIllegal` fault that applies the rejected interchange anyway
/// must be caught by the independent `polaris-verify` re-prover with
/// the blame pinned on the `interchange` stage.
fn skew_program(d1: i64, d2: i64, n: i64) -> String {
    format!(
        "program skew\nreal a({n}, {n})\nreal w\n\
         do j0 = 1, {n}\n  do i0 = 1, {n}\n    a(i0, j0) = mod(i0*3 + j0, 7) * 1.0\n  end do\nend do\n\
         do i = {}, {}\n  do j = 1, {}\n    a(i, j) = a(i - {d1}, j + {d2}) + 1.0\n  end do\nend do\n\
         w = 0.0\n\
         do jj = 1, {n}\n  do ii = 1, {n}\n    w = w + a(ii, jj)\n  end do\nend do\n\
         print *, 'skew sum', w\nend\n",
        1 + d1,
        n,
        n - d2,
    )
}

/// Two conformable loops where the second reads **ahead** of the
/// first's writes: `a(i) = ...` then `c(i) = a(i + off) + ...`. Fused,
/// iteration `i` would read a cell the original second loop only saw
/// after the first loop finished writing — a `(>)`-feasible
/// cross-body dependence. The fusion prover must reject the pair, and
/// a forced fusion must be caught by the re-prover with the blame
/// pinned on the `fuse` stage.
fn antifuse_program(off: i64, n: i64) -> String {
    format!(
        "program af\nreal a({}), b({n}), c({n})\nreal w\n\
         do k = 1, {}\n  a(k) = mod(k, 5) * 1.0\nend do\n\
         do k = 1, {n}\n  b(k) = mod(k*3, 7) * 1.0\n  c(k) = 0.0\nend do\n\
         do i = 1, {n}\n  a(i) = b(i) * 2.0\nend do\n\
         do i = 1, {n}\n  c(i) = a(i + {off}) + 1.0\nend do\n\
         w = 0.0\n\
         do k = 1, {n}\n  w = w + a(k) + c(k)\nend do\n\
         print *, 'af sum', w\nend\n",
        n + off,
        n + off,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The interchange/tiling prover must reject every `(<, >)`-skewed
    /// nest — no interchange or tile certificate may be emitted for it —
    /// and the untransformed result must stay sound under adversarial
    /// execution.
    #[test]
    fn skewed_nests_are_never_interchanged_or_tiled(
        d1 in 1i64..4,
        d2 in 1i64..4,
        n in 12i64..24,
    ) {
        use polaris_ir::cert::CertKind;
        let src = skew_program(d1, d2, n);
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        for cert in &out.report.nest.certs {
            prop_assert!(
                !matches!(cert.kind, CertKind::Interchange { .. } | CertKind::Tile { .. })
                    || cert.loop_vars != ["I", "J"],
                "prover licensed a transformation of the skewed (I, J) nest: {cert:?}\n{src}"
            );
        }
        polaris::machine::run_validated(&out.program, &polaris::MachineConfig::challenge_8())
            .unwrap_or_else(|e| panic!("UNSOUND: {e}\n{src}\n{}", out.annotated_source));
    }

    /// A `ForceIllegal` fault in the interchange stage applies the
    /// rejected permutation anyway (the IR stays well-formed, so only
    /// cert re-derivation can notice). The re-prover must reject the
    /// certificate and attribute it to the `interchange` stage.
    #[test]
    fn forced_illegal_interchange_is_caught_by_the_reprover(
        d1 in 1i64..4,
        d2 in 1i64..4,
        n in 12i64..24,
    ) {
        let src = skew_program(d1, d2, n);
        let opts = polaris::PassOptions::polaris()
            .with_faults(polaris::core::pipeline::FaultPlan::force_in("interchange"));
        let out = polaris::parallelize(&src, &opts)
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let forced: Vec<_> = out
            .report
            .nest
            .certs
            .iter()
            .filter(|c| c.loop_vars == ["I", "J"] && c.stage() == "interchange")
            .collect();
        prop_assert!(
            !forced.is_empty(),
            "ForceIllegal did not apply an interchange to the skewed nest\n{src}"
        );
        let checks = polaris::verify::recheck_certs(&out.program, &out.report);
        let caught = checks
            .iter()
            .filter(|c| !c.accepted && c.stage == "interchange")
            .count();
        prop_assert!(
            caught >= forced.len(),
            "re-prover missed a forced illegal interchange\nchecks: {checks:#?}\n{src}"
        );
    }

    /// The fusion prover must reject every read-ahead pair — the
    /// candidate is judged (so it shows up in the rejection ledger) but
    /// no fuse certificate is emitted — and a forced fusion must be
    /// caught by the re-prover with the blame pinned on `fuse`.
    #[test]
    fn read_ahead_pairs_are_never_fused_and_forced_fusion_is_caught(
        off in 1i64..5,
        n in 12i64..24,
    ) {
        use polaris_ir::cert::CertKind;
        let src = antifuse_program(off, n);
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        prop_assert!(
            !out.report.nest.certs.iter().any(|c| matches!(c.kind, CertKind::Fuse { .. })),
            "prover licensed a read-ahead fusion\n{src}\n{:#?}",
            out.report.nest.certs
        );
        prop_assert!(
            out.report.nest.rejected > 0,
            "the read-ahead pair never reached the prover (gate too strict?)\n{src}"
        );
        polaris::machine::run_validated(&out.program, &polaris::MachineConfig::challenge_8())
            .unwrap_or_else(|e| panic!("UNSOUND: {e}\n{src}\n{}", out.annotated_source));

        let opts = polaris::PassOptions::polaris()
            .with_faults(polaris::core::pipeline::FaultPlan::force_in("fuse"));
        let forced_out = polaris::parallelize(&src, &opts)
            .unwrap_or_else(|e| panic!("forced compile failed: {e}\n{src}"));
        let forced = forced_out
            .report
            .nest
            .certs
            .iter()
            .filter(|c| matches!(c.kind, CertKind::Fuse { .. }))
            .count();
        prop_assert!(forced > 0, "ForceIllegal did not apply the fusion\n{src}");
        let checks = polaris::verify::recheck_certs(&forced_out.program, &forced_out.report);
        let caught =
            checks.iter().filter(|c| !c.accepted && c.stage == "fuse").count();
        prop_assert!(
            caught >= forced,
            "re-prover missed a forced illegal fusion\nchecks: {checks:#?}\n{src}"
        );
    }
}

/// One raw (strategy, chunking) choice for the adversarial adaptation
/// cycle. The controller clamps strategies to the compiler's soundness
/// envelope, so the generator is free to demand speculation on proven
/// loops or static dispatch on unproven ones.
fn forced_choice_strategy(
) -> impl Strategy<Value = (polaris::runtime::Strategy, polaris::runtime::Chunking)> {
    use polaris::runtime::{Chunking as Ck, Strategy as St};
    let strat = prop_oneof![Just(St::Serial), Just(St::Static), Just(St::Speculative)];
    let chunk = prop_oneof![
        Just(Ck::Block),
        (1usize..8).prop_map(|c| Ck::SelfSched { chunk: c }),
        (1usize..8).prop_map(|c| Ck::Stealing { chunk: c }),
    ];
    (strat, chunk)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adversarial adaptation schedules: a forced cycle of raw
    /// (strategy, chunking) choices — serial flips, speculation where
    /// static was proven, stealing with tiny chunks — must never change
    /// a program's output bytes, on any invocation, compared to the
    /// serial reference.
    #[test]
    fn forced_adaptation_schedules_never_change_output(
        stmts in proptest::collection::vec(stmt_strategy(), 1..5),
        cycle in proptest::collection::vec(forced_choice_strategy(), 1..6),
    ) {
        let src = program_from(&stmts);
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let reference = polaris::machine::run(&out.program, &polaris::MachineConfig::serial())
            .unwrap_or_else(|e| panic!("reference run failed: {e}\n{src}"));
        let ctrl = std::sync::Arc::new(
            polaris::runtime::AdaptiveController::with_forced_cycle(cycle.clone()),
        );
        let cfg = polaris::MachineConfig::challenge_8().with_adaptive(ctrl);
        for pass in 0..3 {
            let r = polaris::machine::run(&out.program, &cfg)
                .unwrap_or_else(|e| panic!("forced pass {pass} failed: {e}\n{src}"));
            prop_assert_eq!(
                &reference.output, &r.output,
                "forced cycle {:?} pass {} changed output bytes\n--- source ---\n{}\n--- annotated ---\n{}",
                cycle, pass, src, out.annotated_source
            );
        }
    }

    /// Misspeculation storms: a duplicate-entry index array makes every
    /// LRPD attempt fail, driving the adaptive throttle ladder through
    /// speculation → serial hold → probe → re-arm. Output bytes must be
    /// identical on every invocation, and no PARALLEL claim may be
    /// laundered past the traced oracle.
    #[test]
    fn misspeculation_storms_are_invisible_in_output(
        m in 2i64..9,
        uses in proptest::collection::vec(idx_use_strategy(), 1..3),
    ) {
        let src = idx_program_from(IdxFill::Duplicates { m }, &uses);
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let reference = polaris::machine::run(&out.program, &polaris::MachineConfig::serial())
            .unwrap_or_else(|e| panic!("reference run failed: {e}\n{src}"));
        let ctrl = std::sync::Arc::new(polaris::runtime::AdaptiveController::new());
        let cfg = polaris::MachineConfig::challenge_8()
            .with_adaptive(std::sync::Arc::clone(&ctrl));
        // Enough invocations to traverse the whole throttle ladder
        // (measure, streak, hold, probe, re-arm) at least once.
        for pass in 0..8 {
            let r = polaris::machine::run(&out.program, &cfg)
                .unwrap_or_else(|e| panic!("storm pass {pass} failed: {e}\n{src}"));
            prop_assert_eq!(
                &reference.output, &r.output,
                "misspeculation storm pass {} changed output bytes\n--- source ---\n{}",
                pass, src
            );
        }
        let report = polaris::machine::audit(&out.program, &out.report)
            .unwrap_or_else(|e| panic!("oracle run failed: {e}\n{src}"));
        prop_assert!(
            !report.has_violations(),
            "oracle observed a race under the adaptive storm\n{:#?}",
            report.violations().collect::<Vec<_>>()
        );
    }
}

/// Steal-heavy adaptation on skewed per-iteration costs: the SPMVT
/// kernel (row cost grows linearly) under forced work-stealing with
/// tiny chunks — maximum steal traffic — on the real threaded backend
/// at several worker counts. Output bytes must match the serial
/// reference under every victim/steal interleaving.
#[test]
fn steal_heavy_skewed_costs_preserve_output_bytes() {
    use polaris::runtime::{AdaptiveController, Chunking, Strategy as AStrategy};
    let b = polaris_benchmarks::skewed();
    let out = polaris::parallelize(b.source, &polaris::PassOptions::polaris()).unwrap();
    let reference =
        polaris::machine::run(&out.program, &polaris::MachineConfig::serial()).unwrap();
    let forced = vec![
        (AStrategy::Static, Chunking::Stealing { chunk: 1 }),
        (AStrategy::Static, Chunking::Stealing { chunk: 3 }),
    ];
    for threads in [2usize, 4, 8] {
        let ctrl = std::sync::Arc::new(AdaptiveController::with_forced_cycle(forced.clone()));
        let cfg = polaris::MachineConfig::threaded(threads, polaris::machine::Schedule::Static)
            .with_adaptive(ctrl);
        for pass in 0..2 {
            let r = polaris::machine::run(&out.program, &cfg)
                .unwrap_or_else(|e| panic!("x{threads} pass {pass}: {e}"));
            assert_eq!(
                reference.output, r.output,
                "x{threads} pass {pass}: steal-heavy run changed output bytes"
            );
        }
    }
}

/// Deterministic regression shapes that once looked risky.
#[test]
fn known_tricky_shapes_are_sound() {
    let cases = [
        // same-cell accumulation without reduction form
        "do i = 1, 16\n  a(5) = a(5) + b(i)\nend do",
        // write overlapping its own read range through an inner loop
        "do i = 1, 16\n  do j = 1, 4\n    a(i + j) = a(i) + 1.0\n  end do\nend do",
        // coupled strides
        "do i = 1, 16\n  a(2*i) = b(i)\n  a(2*i + 1) = a(2*i) * 0.5\nend do",
        // reduction mixed with an independent write
        "do i = 1, 16\n  s = s + b(i)\n  a(i) = s*0.0 + b(i)\nend do",
        // temp used before definition on one path only
        "do i = 1, 16\n  if (b(i) > 0.2) t = b(i)\n  a(i) = t\nend do",
        // zero-coefficient writes (every iteration hits the same cell)
        "do i = 1, 16\n  a(7) = b(i)\nend do",
    ];
    for body in cases {
        let src = format!(
            "program t\nreal a(64), b(64)\nreal s, t\nt = 0.5\ns = 0.0\n\
             do k = 1, 64\n  a(k) = k*0.5\n  b(k) = 1.0/k\nend do\n{body}\n\
             print *, s, a(1), a(7), a(33)\nend\n"
        );
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris()).unwrap();
        polaris::machine::run_validated(&out.program, &polaris::MachineConfig::challenge_8())
            .unwrap_or_else(|e| panic!("{e}\n{src}\n{}", out.annotated_source));
    }
}

/// Deterministic index-array shapes with the outcome pinned on both
/// sides: the provable fills must actually be proved (precision), the
/// adversarial ones must not be (soundness), and every one must
/// survive reverse-order execution and the traced oracle.
#[test]
fn index_array_shapes_are_pinned_and_sound() {
    // (fill, expect the props disjointness rule to prove the scatter)
    let cases: [(IdxFill, bool); 5] = [
        (IdxFill::Identity, true),
        (IdxFill::Reverse, true),
        (IdxFill::PrefixSum, true),
        (IdxFill::Duplicates { m: 4 }, false),
        (IdxFill::Clobbered, false),
    ];
    for (fill, provable) in cases {
        let src = idx_program_from(fill, &[IdxUse::Scatter]);
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris()).unwrap();
        if provable {
            assert!(
                out.report.dd_props.1 > 0,
                "{fill:?}: the props rule failed to prove a provable scatter\n{src}\n{}",
                out.annotated_source
            );
        } else {
            assert_eq!(
                out.report.dd_props.1, 0,
                "{fill:?}: the props rule proved an aliasing scatter\n{src}\n{}",
                out.annotated_source
            );
        }
        polaris::machine::run_validated(&out.program, &polaris::MachineConfig::challenge_8())
            .unwrap_or_else(|e| panic!("{fill:?}: {e}\n{src}\n{}", out.annotated_source));
        let report = polaris::machine::audit(&out.program, &out.report).unwrap();
        assert!(
            !report.has_violations(),
            "{fill:?}: {:#?}",
            report.violations().collect::<Vec<_>>()
        );
    }
}

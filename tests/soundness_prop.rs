//! Compiler soundness property test: random loop nests are compiled
//! with the full Polaris pipeline and then executed **adversarially**
//! (parallel loops in reverse order with real privatization/reduction
//! semantics and poisoned private storage). If the dependence driver
//! ever claims parallelism it cannot justify, the final memory state
//! diverges from sequential execution and this test fails.
//!
//! The generator mixes the idioms the passes actually target: affine
//! array writes with offsets, read-modify chains, scalar temporaries,
//! sum reductions, conditional writes, and inner loops.

use proptest::prelude::*;

/// One statement template for the loop body.
#[derive(Debug, Clone)]
enum BodyStmt {
    /// `A(a*i + c) = <expr>`
    Write { a: i64, c: i64 },
    /// `A(a*i + c) = A(a2*i + c2) + 1.0` — potential cross-iteration flow
    ReadWrite { a: i64, c: i64, a2: i64, c2: i64 },
    /// `T = B(i) * 2.0 ; A(a*i + c) = T` — privatizable temp
    Temp { a: i64, c: i64 },
    /// `S = S + A(a*i + c)` — sum reduction
    Reduce { a: i64, c: i64 },
    /// `IF (B(i) > 0.5) A(a*i + c) = B(i)` — conditional write
    CondWrite { a: i64, c: i64 },
    /// inner loop `DO j = 1, 4: A(a*i + j + c) = B(j)` — region write
    Inner { a: i64, c: i64 },
    /// coupled 2-D subscripts over the nest: `M(i, j) = M(i, j) + B(j)`
    /// (or the transposed access `M(j, i)`), both loop variables live in
    /// one reference
    Coupled { transpose: bool },
    /// `A(kk*i + c) = B(i)` — symbolic stride: `kk` is only known at run
    /// time (assigned under a data-dependent branch), so the dependence
    /// tests must reason symbolically or stay conservative
    SymStride { c: i64 },
    /// wrap-around induction chain: `A(i + c) = B(jwrap); jwrap = i` —
    /// the read sees the *previous* iteration's induction value
    WrapAround { c: i64 },
}

const N_ITERS: i64 = 16;
const ASIZE: i64 = 120;

impl BodyStmt {
    fn emit(&self, out: &mut String) {
        match self {
            BodyStmt::Write { a, c } => {
                out.push_str(&format!("  a({a}*i + {c}) = b(i) + 1.0\n"));
            }
            BodyStmt::ReadWrite { a, c, a2, c2 } => {
                out.push_str(&format!("  a({a}*i + {c}) = a({a2}*i + {c2}) + 1.0\n"));
            }
            BodyStmt::Temp { a, c } => {
                out.push_str("  t = b(i) * 2.0\n");
                out.push_str(&format!("  a({a}*i + {c}) = t\n"));
            }
            BodyStmt::Reduce { a, c } => {
                out.push_str(&format!("  s = s + a({a}*i + {c})\n"));
            }
            BodyStmt::CondWrite { a, c } => {
                out.push_str(&format!("  if (b(i) > 0.5) a({a}*i + {c}) = b(i)\n"));
            }
            BodyStmt::Inner { a, c } => {
                out.push_str("  do j = 1, 4\n");
                out.push_str(&format!("    a({a}*i + j + {c}) = b(j)\n"));
                out.push_str("  end do\n");
            }
            BodyStmt::Coupled { transpose } => {
                out.push_str("  do j = 1, 4\n");
                if *transpose {
                    out.push_str("    m(j, i) = m(j, i) + b(j)\n");
                } else {
                    out.push_str("    m(i, j) = m(i, j) + b(j)\n");
                }
                out.push_str("  end do\n");
            }
            BodyStmt::SymStride { c } => {
                out.push_str(&format!("  a(kk*i + {c}) = b(i)\n"));
            }
            BodyStmt::WrapAround { c } => {
                out.push_str(&format!("  a(i + {c}) = b(jwrap) + 1.0\n"));
                out.push_str("  jwrap = i\n");
            }
        }
    }
}

/// Keep every generated subscript inside [1, ASIZE] for i in [1, N_ITERS]
/// (and j in [1,4]).
fn clamp(a: i64, c: i64, extra: i64) -> (i64, i64) {
    let a = a.rem_euclid(4); // 0..3
    let max_wo_c = a * N_ITERS + extra;
    let c = 1 + c.rem_euclid((ASIZE - max_wo_c).max(1));
    (a, c)
}

fn stmt_strategy() -> impl Strategy<Value = BodyStmt> {
    let coef = -8i64..8;
    let off = 0i64..128;
    prop_oneof![
        (coef.clone(), off.clone()).prop_map(|(a, c)| {
            let (a, c) = clamp(a, c, 0);
            BodyStmt::Write { a, c }
        }),
        (coef.clone(), off.clone(), coef.clone(), off.clone()).prop_map(|(a, c, a2, c2)| {
            let (a, c) = clamp(a, c, 0);
            let (a2, c2) = clamp(a2, c2, 0);
            BodyStmt::ReadWrite { a, c, a2, c2 }
        }),
        (coef.clone(), off.clone()).prop_map(|(a, c)| {
            let (a, c) = clamp(a, c, 0);
            BodyStmt::Temp { a, c }
        }),
        (coef.clone(), off.clone()).prop_map(|(a, c)| {
            let (a, c) = clamp(a, c, 0);
            BodyStmt::Reduce { a, c }
        }),
        (coef.clone(), off.clone()).prop_map(|(a, c)| {
            let (a, c) = clamp(a, c, 0);
            BodyStmt::CondWrite { a, c }
        }),
        (coef, off.clone()).prop_map(|(a, c)| {
            let (a, c) = clamp(a, c, 4);
            BodyStmt::Inner { a, c }
        }),
        any::<bool>().prop_map(|transpose| BodyStmt::Coupled { transpose }),
        // kk is at most 3 at run time: keep kk*i + c inside the array
        off.clone()
            .prop_map(|c| BodyStmt::SymStride { c: 1 + c.rem_euclid(ASIZE - 3 * N_ITERS) }),
        off.prop_map(|c| BodyStmt::WrapAround { c: 1 + c.rem_euclid(ASIZE - N_ITERS) }),
    ]
}

fn program_from(stmts: &[BodyStmt]) -> String {
    let mut src = String::new();
    src.push_str("program fuzz\n");
    src.push_str(&format!("real a({ASIZE}), b({ASIZE}), m(20, 20)\n"));
    src.push_str("real s, t\n");
    src.push_str(&format!("do k = 1, {ASIZE}\n  a(k) = k*0.125\n  b(k) = 1.0/k\nend do\n"));
    src.push_str("do k1 = 1, 20\n  do k2 = 1, 20\n    m(k1, k2) = k1*0.5 + k2\n  end do\nend do\n");
    // Runtime-only stride for SymStride: the branch depends on array
    // data, so constant propagation cannot fold `kk`.
    src.push_str("kk = 3\nif (b(1) > 0.0) kk = 2\n");
    src.push_str("jwrap = 1\n");
    src.push_str("s = 0.0\n");
    src.push_str(&format!("do i = 1, {N_ITERS}\n"));
    for s in stmts {
        s.emit(&mut src);
    }
    src.push_str("end do\n");
    // make everything observable
    src.push_str(&format!("print *, s, a(1), a({}), a({ASIZE})\n", ASIZE / 2));
    src.push_str("print *, m(3, 3), m(4, 7), jwrap\n");
    src.push_str("w = 0.0\n");
    src.push_str(&format!("do k = 1, {ASIZE}\n  w = w + a(k)\nend do\n"));
    src.push_str("print *, 'sum', w\nend\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_programs_survive_adversarial_validation(
        stmts in proptest::collection::vec(stmt_strategy(), 1..5)
    ) {
        let src = program_from(&stmts);
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let cfg = polaris::MachineConfig::challenge_8();
        // adversarial validation: reverse-order parallel execution must
        // match sequential semantics exactly
        polaris::machine::run_validated(&out.program, &cfg).unwrap_or_else(|e| {
            panic!("UNSOUND parallelization: {e}\n--- source ---\n{src}\n--- annotated ---\n{}",
                   out.annotated_source)
        });
    }

    /// Every generated program must also be oracle-clean: the serial
    /// traced execution may not observe any cross-iteration dependence
    /// that contradicts a published PARALLEL claim.
    #[test]
    fn generated_programs_are_oracle_clean(
        stmts in proptest::collection::vec(stmt_strategy(), 1..5)
    ) {
        let src = program_from(&stmts);
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let report = polaris::machine::audit(&out.program, &out.report)
            .unwrap_or_else(|e| panic!("oracle run failed: {e}\n{src}"));
        prop_assert!(
            !report.has_violations(),
            "oracle observed a race in a PARALLEL loop\n--- source ---\n{}\n--- annotated ---\n{}\n--- violations ---\n{:#?}",
            src, out.annotated_source, report.violations().collect::<Vec<_>>()
        );
    }

    #[test]
    fn vfa_is_also_sound(
        stmts in proptest::collection::vec(stmt_strategy(), 1..5)
    ) {
        let src = program_from(&stmts);
        let out = polaris::parallelize(&src, &polaris::PassOptions::vfa())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        polaris::machine::run_validated(&out.program, &polaris::MachineConfig::challenge_8())
            .unwrap_or_else(|e| {
                panic!("UNSOUND baseline parallelization: {e}\n{src}\n{}", out.annotated_source)
            });
    }
}

/// Deterministic regression shapes that once looked risky.
#[test]
fn known_tricky_shapes_are_sound() {
    let cases = [
        // same-cell accumulation without reduction form
        "do i = 1, 16\n  a(5) = a(5) + b(i)\nend do",
        // write overlapping its own read range through an inner loop
        "do i = 1, 16\n  do j = 1, 4\n    a(i + j) = a(i) + 1.0\n  end do\nend do",
        // coupled strides
        "do i = 1, 16\n  a(2*i) = b(i)\n  a(2*i + 1) = a(2*i) * 0.5\nend do",
        // reduction mixed with an independent write
        "do i = 1, 16\n  s = s + b(i)\n  a(i) = s*0.0 + b(i)\nend do",
        // temp used before definition on one path only
        "do i = 1, 16\n  if (b(i) > 0.2) t = b(i)\n  a(i) = t\nend do",
        // zero-coefficient writes (every iteration hits the same cell)
        "do i = 1, 16\n  a(7) = b(i)\nend do",
    ];
    for body in cases {
        let src = format!(
            "program t\nreal a(64), b(64)\nreal s, t\nt = 0.5\ns = 0.0\n\
             do k = 1, 64\n  a(k) = k*0.5\n  b(k) = 1.0/k\nend do\n{body}\n\
             print *, s, a(1), a(7), a(33)\nend\n"
        );
        let out = polaris::parallelize(&src, &polaris::PassOptions::polaris()).unwrap();
        polaris::machine::run_validated(&out.program, &polaris::MachineConfig::challenge_8())
            .unwrap_or_else(|e| panic!("{e}\n{src}\n{}", out.annotated_source));
    }
}

//! Counter-consistency invariants of the observability layer, checked
//! over the 256-seed fuzz corpus (the same seeded F-Mini programs the
//! differential and oracle suites use). Every corpus program is
//! compiled and executed with a virtual-clock `Recorder` attached, and
//! the resulting trace must be internally consistent:
//!
//! * the compile-side loop partition (`parallel + speculative + serial`)
//!   equals `compile.loops.total`, which equals the report's loop count;
//! * range-test outcomes partition the queries
//!   (`proved + disproved + abstained = run`);
//! * the exec-side dispatch partition
//!   (`parallel + speculative + serial + adversarial`) equals
//!   `exec.loops.total`, which equals the number of exec loop spans;
//! * the span stream is well-nested (every `E` closes the matching
//!   open `B`, nothing left open);
//! * every exec `loop:` span carries a `LoopId` the compile report
//!   knows — the provenance join the whole layer is keyed on.
//!
//! A proptest over the same seed domain rides along so a failing seed
//! shrinks toward the smallest misbehaving corpus index.

use polaris::fuzz::generate_program;
use polaris::obs::{validate_nesting, Phase, Recorder};
use polaris::{MachineConfig, PassOptions};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Same bound the differential fuzz harness uses: generous for the
/// bounded corpus programs, tight enough to fail fast on a runaway.
const FUEL: u64 = 2_000_000;

fn check_seed(seed: u64) {
    let src = generate_program(seed);
    let rec = Recorder::virtual_clock();
    let (program, report) =
        polaris::core::parse_and_compile_recorded(&src, &PassOptions::polaris(), &rec)
            .unwrap_or_else(|e| panic!("seed {seed}: compile: {e}\n{src}"));
    let cfg = MachineConfig::challenge_8().with_fuel(FUEL);
    polaris_machine::run_recorded(&program, &cfg, &rec)
        .unwrap_or_else(|e| panic!("seed {seed}: run: {e}\n{src}"));

    let counters = rec.counters();
    let get = |k: &str| counters.get(k).copied().unwrap_or(0);

    assert_eq!(
        get("compile.loops.parallel")
            + get("compile.loops.speculative")
            + get("compile.loops.serial"),
        get("compile.loops.total"),
        "seed {seed}: compile-side loop modes must partition the total\n{src}"
    );
    assert_eq!(
        get("compile.loops.total"),
        report.loops.len() as u64,
        "seed {seed}: compile.loops.total must equal the report's loop count\n{src}"
    );

    assert_eq!(
        get("compile.dd.range.proved")
            + get("compile.dd.range.disproved")
            + get("compile.dd.range.abstained"),
        get("compile.dd.range.run"),
        "seed {seed}: range-test outcomes must partition the queries run\n{src}"
    );

    assert_eq!(
        get("exec.loops.parallel")
            + get("exec.loops.speculative")
            + get("exec.loops.serial")
            + get("exec.loops.adversarial"),
        get("exec.loops.total"),
        "seed {seed}: exec-side dispatch modes must partition the total\n{src}"
    );

    let events = rec.events();
    validate_nesting(&events)
        .unwrap_or_else(|e| panic!("seed {seed}: ill-nested span stream: {e}\n{src}"));

    let known: BTreeSet<_> = report.loops.iter().map(|l| l.loop_id).collect();
    let mut exec_loop_begins = 0u64;
    for e in &events {
        if e.cat == "exec" && e.phase == Phase::Begin && e.name.starts_with("loop:") {
            exec_loop_begins += 1;
            let id = e
                .loop_id
                .unwrap_or_else(|| panic!("seed {seed}: exec span `{}` without LoopId", e.name));
            assert!(
                known.contains(&id),
                "seed {seed}: exec span `{}` carries LoopId {id:?} unknown to the compile report\n{src}",
                e.name
            );
        }
    }
    assert_eq!(
        exec_loop_begins,
        get("exec.loops.total"),
        "seed {seed}: one exec loop span per dispatch decision\n{src}"
    );
}

#[test]
fn corpus_counter_invariants_seeds_0_64() {
    (0..64).for_each(check_seed);
}

#[test]
fn corpus_counter_invariants_seeds_64_128() {
    (64..128).for_each(check_seed);
}

#[test]
fn corpus_counter_invariants_seeds_128_192() {
    (128..192).for_each(check_seed);
}

#[test]
fn corpus_counter_invariants_seeds_192_256() {
    (192..256).for_each(check_seed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random re-draws from the corpus domain; a failure shrinks toward
    /// the smallest misbehaving seed.
    #[test]
    fn counter_invariants_hold_for_sampled_seeds(seed in 0u64..256) {
        check_seed(seed);
    }
}

//! Golden-file snapshot tests: the pretty-printed restructured output
//! of every benchmark kernel is committed under `tests/golden/`, so any
//! drift in the pass pipeline (a loop gaining or losing a PARALLEL
//! directive, a changed privatization set, different induction
//! rewriting) shows up as a reviewable diff instead of a silent
//! behavior change.
//!
//! Regeneration: `UPDATE_GOLDEN=1 cargo test --test golden_kernels`
//! rewrites the snapshots from the current pipeline; commit the diff if
//! (and only if) the change is intentional.

use polaris::benchmarks::{all, track};
use polaris::{parallelize, PassOptions};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn restructured(name: &str, source: &str) -> String {
    let out = parallelize(source, &PassOptions::polaris())
        .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
    assert!(
        !out.report.degraded(),
        "{name}: pipeline degraded while producing golden output: {:?}",
        out.report.rolled_back_stages()
    );
    polaris::ir::printer::print_program(&out.program)
}

#[test]
fn restructured_kernels_match_golden_snapshots() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut mismatches = Vec::new();
    for b in all().into_iter().chain([track()]) {
        let got = restructured(b.name, b.source);
        let path = dir.join(format!("{}.golden.f", b.name));
        if update {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden file {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_kernels`",
                b.name,
                path.display()
            )
        });
        if got != want {
            mismatches.push(format!(
                "--- {} drifted from {} ---\n{}",
                b.name,
                path.display(),
                diff_excerpt(&want, &got)
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} kernel(s) drifted from their golden snapshots \
         (UPDATE_GOLDEN=1 regenerates if intentional):\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn golden_snapshots_cover_all_kernels_exactly() {
    // No stale snapshots for kernels that no longer exist, and none
    // missing — the directory is exactly the 17 current kernels.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        // regeneration run: the sibling test is rewriting the directory
        return;
    }
    let mut expected: Vec<String> = all()
        .into_iter()
        .chain([track()])
        .map(|b| format!("{}.golden.f", b.name))
        .collect();
    expected.sort();
    let mut present: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden exists (run UPDATE_GOLDEN=1 once)")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".golden.f"))
        .collect();
    present.sort();
    assert_eq!(expected, present);
}

/// First few differing lines, for a readable failure message.
fn diff_excerpt(want: &str, got: &str) -> String {
    let mut out = String::new();
    let mut shown = 0;
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            out.push_str(&format!("line {}:\n  golden: {w}\n  actual: {g}\n", i + 1));
            shown += 1;
            if shown == 5 {
                out.push_str("  ...\n");
                break;
            }
        }
    }
    let (wl, gl) = (want.lines().count(), got.lines().count());
    if wl != gl {
        out.push_str(&format!("line counts differ: golden {wl} vs actual {gl}\n"));
    }
    out
}

      PROGRAM APPLU
      INTEGER N
      INTEGER NSWEEP
      REAL R(160, 160)
      INTEGER SW
      REAL U(160, 160)
      PARAMETER (N = 160)
      PARAMETER (NSWEEP = 3)
!$POLARIS DOALL PRIVATE(I0)
        DO J0 = 1, 160
!$POLARIS DOALL
          DO I0 = 1, 160
            U(I0, J0) = 0.0
            R(I0, J0) = 1.0/(I0+J0)
          END DO
        END DO
!$POLARIS DOALL
        DO J0 = 1, 160
          U(1, J0) = 1.0
        END DO
!$POLARIS DOALL
        DO I0 = 1, 160
          U(I0, 1) = 1.0
        END DO
        DO SW = 1, 3
          DO J = 2, 160
            DO I = 2, 160
              U(I, J) = 0.45*(U(I-1, J)+U(I, J-1))+R(I, J)
            END DO
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL REDUCTION(+:CSUM)
        DO JJ = 1, 160
          CSUM = CSUM+U(160, JJ)
        END DO
        PRINT *, 'applu checksum', CSUM
      END

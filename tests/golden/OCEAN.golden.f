      PROGRAM OCEAN
      REAL A(127066)
      INTEGER ASIZE
      INTEGER NX
      INTEGER X
      INTEGER Z(8)
      INTEGER ZMAX
      PARAMETER (ASIZE = 127066)
      PARAMETER (NX = 8)
      PARAMETER (ZMAX = 60)
        X = 0
        IF (.TRUE.) THEN
          X = 8
        END IF
!$ASSERT (X .GE. 1)
!$ASSERT (X .LE. 8)
!$POLARIS DOALL
        DO K0 = 1, X
          Z(K0) = 40+MOD(K0*7, 20)
        END DO
!$POLARIS DOALL PRIVATE(I, J)
        DO K = 0, X-1
!$POLARIS DOALL PRIVATE(I)
          DO J = 0, Z(K+1)
!$POLARIS DOALL
            DO I = 0, 128
              A(258*X*J+129*K+I+1) = I*0.5+J
              A(258*X*J+129*K+I+1+129*X) = I*0.25-J
            END DO
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL REDUCTION(+:CSUM)
        DO II = 1, 127066
          CSUM = CSUM+A(II)
        END DO
        PRINT *, 'ocean checksum', CSUM
      END

      PROGRAM TRFD
      REAL A(70560)
      INTEGER M
      INTEGER N
      INTEGER NVIR
      REAL V(48, 48)
      INTEGER X
      INTEGER X0
      PARAMETER (M = 60)
      PARAMETER (N = 48)
      PARAMETER (NVIR = 70560)
!$POLARIS DOALL PRIVATE(I0)
        DO J0 = 1, 48
!$POLARIS DOALL
          DO I0 = 1, 48
            V(I0, J0) = 1.0/(I0+J0)
          END DO
        END DO
!$POLARIS DOALL PRIVATE(J, K, X)
        DO I = 0, 59
          X = 1176*I
!$POLARIS DOALL PRIVATE(K)
          DO J = 0, 47
!$POLARIS DOALL
            DO K = 0, J-1
              A((2-J+J**2+2*K+2*X)/2) = V(J+1, K+1)*2.0+V(K+1, J+1)
            END DO
          END DO
          X = X+1128
        END DO
        XSUM = 0.0
!$POLARIS DOALL REDUCTION(+:XSUM)
        DO II = 1, 70560
          XSUM = XSUM+A(II)
        END DO
        PRINT *, 'trfd checksum', XSUM
      END

      PROGRAM MDG
      REAL F(150)
      INTEGER NM
      REAL X(150)
      PARAMETER (NM = 150)
!$POLARIS DOALL
        DO I0 = 1, 150
          X(I0) = I0*0.37
          F(I0) = 0.0
        END DO
!$POLARIS DOALL PRIVATE(GG, J, RS) REDUCTION(+:F[])
        DO I = 1, 150
!$POLARIS DOALL PRIVATE(GG, RS) REDUCTION(+:F[])
          DO J = 1, 150
            RS = X(I)-X(J)
            GG = RS/(RS*RS+0.01)
            F(I) = F(I)+GG
            F(J) = F(J)-GG
          END DO
        END DO
        FSUM = 0.0
!$POLARIS DOALL REDUCTION(+:FSUM)
        DO II = 1, 150
          FSUM = FSUM+F(II)*F(II)
        END DO
        PRINT *, 'mdg checksum', FSUM
      END

      PROGRAM SWIM
      REAL FL(130)
      INTEGER M
      INTEGER N
      INTEGER NSTEPS
      REAL PP(130, 130)
      REAL U(130, 130)
      REAL V(130, 130)
      PARAMETER (M = 130)
      PARAMETER (N = 130)
      PARAMETER (NSTEPS = 2)
!$POLARIS DOALL PRIVATE(I0)
        DO J0 = 1, 130
!$POLARIS DOALL
          DO I0 = 1, 130
            U(I0, J0) = 0.01*I0
            V(I0, J0) = 0.01*J0
            PP(I0, J0) = 50.0+0.1*(I0+J0)
          END DO
        END DO
        DO NC = 1, 2
!$POLARIS DOALL PRIVATE(FL, I)
          DO J = 2, 129
!$POLARIS DOALL
            DO I = 1, 130
              FL(I) = U(I, J)*PP(I, J)
            END DO
!$POLARIS DOALL
            DO I = 2, 129
              U(I, J) = U(I, J)-0.05*(FL(I+1)-FL(I-1))
              V(I, J) = V(I, J)-0.05*(PP(I, J+1)-PP(I, J-1))
            END DO
          END DO
!$POLARIS DOALL PRIVATE(I, IT, J)
          DO JT = 2, 129, 8
!$POLARIS DOALL PRIVATE(I, J)
            DO IT = 2, 129, 8
!$POLARIS DOALL PRIVATE(I)
              DO J = JT, JT+7
!$POLARIS DOALL
                DO I = IT, IT+7
                  PP(I, J) = PP(I, J)-0.1*(U(I+1, J)-U(I-1, J)+V(I, J+1)-V(I, J-1))
                END DO
              END DO
            END DO
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL PRIVATE(II) REDUCTION(+:CSUM)
        DO JJ = 1, 130
!$POLARIS DOALL REDUCTION(+:CSUM)
          DO II = 1, 130
            CSUM = CSUM+PP(II, JJ)
          END DO
        END DO
        PRINT *, 'swim checksum', CSUM
      END

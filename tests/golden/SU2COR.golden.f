      PROGRAM SU2COR
      REAL G(600)
      INTEGER N
      INTEGER NS
      INTEGER S
      INTEGER TOT
      REAL U(24000)
      PARAMETER (N = 600)
      PARAMETER (NS = 40)
      PARAMETER (TOT = 24000)
!$POLARIS DOALL
        DO I0 = 1, 600
          G(I0) = 1.0/(3+MOD(I0, 7))
        END DO
!$POLARIS DOALL
        DO I0 = 1, 24000
          U(I0) = 0.5
        END DO
!$POLARIS DOALL PRIVATE(I)
        DO S = 1, 40
!$POLARIS DOALL
          DO I = 1, 600
            U(-600+I+600*S) = U(-600+I+600*S)*0.99+G(I)
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL REDUCTION(+:CSUM)
        DO II = 1, 24000
          CSUM = CSUM+U(II)
        END DO
        PRINT *, 'su2cor checksum', CSUM
      END

      PROGRAM FLO52
      REAL DW(110, 110)
      INTEGER NCYC
      INTEGER NI
      INTEGER NJ
      REAL WQ(110, 110)
      PARAMETER (NCYC = 3)
      PARAMETER (NI = 110)
      PARAMETER (NJ = 110)
!$POLARIS DOALL PRIVATE(I0)
        DO J0 = 1, 110
!$POLARIS DOALL
          DO I0 = 1, 110
            WQ(I0, J0) = I0*1.0/(J0+3)
            DW(I0, J0) = 0.0
          END DO
        END DO
        DO NC = 1, 3
!$POLARIS DOALL PRIVATE(I)
          DO J = 2, 109
!$POLARIS DOALL
            DO I = 2, 109
              DW(I, J) = 0.25*(WQ(I-1, J)+WQ(I+1, J)+WQ(I, J-1)+WQ(I, J+1))-WQ(I, J)
            END DO
          END DO
!$POLARIS DOALL PRIVATE(I)
          DO J = 2, 109
!$POLARIS DOALL
            DO I = 2, 109
              WQ(I, J) = WQ(I, J)+0.6*DW(I, J)
            END DO
          END DO
        END DO
        RES = 0.0
!$POLARIS DOALL PRIVATE(II) REDUCTION(+:RES)
        DO JJ = 2, 109
!$POLARIS DOALL REDUCTION(+:RES)
          DO II = 2, 109
            RES = RES+DW(II, JJ)*DW(II, JJ)
          END DO
        END DO
        PRINT *, 'flo52 residual', RES
      END

      PROGRAM APPSP
      REAL D(90, 120)
      INTEGER N
      INTEGER NSYS
      REAL RHS(90, 120)
      INTEGER S
      INTEGER S0
      INTEGER SS
      PARAMETER (N = 90)
      PARAMETER (NSYS = 120)
!$POLARIS DOALL PRIVATE(I0)
        DO S0 = 1, 120
!$POLARIS DOALL
          DO I0 = 1, 90
            D(I0, S0) = 2.0+MOD(I0+S0, 5)*0.1
            RHS(I0, S0) = 1.0/(I0+S0)
          END DO
        END DO
!$POLARIS DOALL PRIVATE(I, PIV)
        DO S = 1, 120
          DO I = 2, 90
            PIV = D(I-1, S)
            IF (PIV .LT. 0.5) THEN
              PIV = 0.5
            END IF
            D(I, S) = D(I, S)-0.3/PIV
            RHS(I, S) = RHS(I, S)-0.3*RHS(I-1, S)/PIV
          END DO
!$POLARIS DOALL
          DO I = 1, 90
            IF (D(I, S) .GT. 0.0) THEN
              RHS(I, S) = RHS(I, S)/D(I, S)
            END IF
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL REDUCTION(+:CSUM)
        DO SS = 1, 120
          CSUM = CSUM+RHS(90, SS)
        END DO
        PRINT *, 'appsp checksum', CSUM
      END

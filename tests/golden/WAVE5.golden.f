      PROGRAM WAVE5
      REAL E(2048)
      INTEGER IPOS(2048)
      INTEGER NG
      INTEGER NSTEPS
      INTEGER P
      REAL Q(2048)
      REAL V(2048)
      PARAMETER (NG = 2048)
      PARAMETER (NSTEPS = 3)
!$POLARIS DOALL
        DO I0 = 1, 2048
          Q(I0) = 1.0+MOD(I0, 3)*0.1
          V(I0) = 0.0
          IPOS(I0) = MOD(I0*77, 2048)+1
        END DO
        DO NC = 1, 3
!$POLARIS DOALL
          DO I = 1, 2048
            E(I) = 0.5*Q(I)+0.001*I+NC*0.01
          END DO
!$POLARIS DOALL SPECULATIVE(V)
          DO P = 1, 2048
            V(IPOS(P)) = E(P)*Q(P)+NC*0.5
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL REDUCTION(+:CSUM)
        DO II = 1, 2048
          CSUM = CSUM+V(II)
        END DO
        PRINT *, 'wave5 checksum', CSUM
      END

      PROGRAM CMHOG
      INTEGER NJ
      INTEGER NK
      REAL Q(400, 300)
      REAL W(400)
      PARAMETER (NJ = 400)
      PARAMETER (NK = 300)
!$POLARIS DOALL PRIVATE(J0)
        DO K0 = 1, 300
!$POLARIS DOALL
          DO J0 = 1, 400
            Q(J0, K0) = 1.0+0.01*MOD(J0+K0, 13)
          END DO
        END DO
!$POLARIS DOALL PRIVATE(J, W)
        DO K = 1, 300
!$POLARIS DOALL
          DO J = 1, 400
            W(J) = Q(J, K)*1.02+0.3
          END DO
!$POLARIS DOALL
          DO J = 2, 399
            Q(J, K) = Q(J, K)-0.02*(W(J+1)-W(J-1))
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL REDUCTION(+:CSUM)
        DO KK = 1, 300
          CSUM = CSUM+Q(3, KK)
        END DO
        PRINT *, 'cmhog checksum', CSUM
      END

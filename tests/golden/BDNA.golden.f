      PROGRAM BDNA
      REAL A(220)
      INTEGER IND(220)
      INTEGER N
      INTEGER P
      REAL X(220, 220)
      REAL Y(220, 220)
      PARAMETER (N = 220)
!$POLARIS DOALL PRIVATE(I0)
        DO J0 = 1, 220
!$POLARIS DOALL
          DO I0 = 1, 220
            X(I0, J0) = 1.0/(I0+2*J0)
            Y(I0, J0) = 1.0/(2*I0+J0)
          END DO
        END DO
!$POLARIS DOALL PRIVATE(A, IND, J, K, L, M, P, R)
        DO I = 2, 220
!$POLARIS DOALL PRIVATE(R)
          DO J = 1, I-1
            IND(J) = 0
            A(J) = X(I, J)-Y(I, J)
            R = A(J)+0.05
            IF (R .LT. 0.9) THEN
              IND(J) = 1
            END IF
          END DO
          P = 0
          DO K = 1, I-1
            IF (IND(K) .NE. 0) THEN
              P = P+1
              IND(P) = K
            END IF
          END DO
!$POLARIS DOALL PRIVATE(M)
          DO L = 1, P
            M = IND(L)
            X(I, L) = A(M)+1.5
          END DO
        END DO
        FSUM = 0.0
!$POLARIS DOALL REDUCTION(+:FSUM)
        DO II = 1, 220
          FSUM = FSUM+X(220, II)
        END DO
        PRINT *, 'bdna checksum', FSUM
      END

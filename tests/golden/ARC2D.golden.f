      PROGRAM ARC2D
      INTEGER JMAX
      INTEGER KMAX
      INTEGER NSTEPS
      REAL P(120, 120)
      REAL W(120, 120)
      PARAMETER (JMAX = 120)
      PARAMETER (KMAX = 120)
      PARAMETER (NSTEPS = 3)
!$POLARIS DOALL PRIVATE(J0)
        DO K0 = 1, 120
!$POLARIS DOALL
          DO J0 = 1, 120
            P(J0, K0) = 1.0/(J0+K0)
            W(J0, K0) = 0.0
          END DO
        END DO
        DO NN = 1, 3
!$POLARIS DOALL PRIVATE(J)
          DO K = 2, 119
!$POLARIS DOALL
            DO J = 2, 119
              W(J, K) = 0.25*(P(J-1, K)+P(J+1, K)+P(J, K-1)+P(J, K+1))
            END DO
          END DO
!$POLARIS DOALL PRIVATE(J)
          DO K = 2, 119
!$POLARIS DOALL
            DO J = 2, 119
              P(J, K) = P(J, K)*0.2+W(J, K)*0.8
            END DO
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL PRIVATE(JJ) REDUCTION(+:CSUM)
        DO KK = 1, 120
!$POLARIS DOALL REDUCTION(+:CSUM)
          DO JJ = 1, 120
            CSUM = CSUM+P(JJ, KK)
          END DO
        END DO
        PRINT *, 'arc2d checksum', CSUM
      END

      PROGRAM TOMCATV
      INTEGER N
      INTEGER NITER
      REAL RXM(120, 120)
      REAL XX(120, 120)
      REAL YY(120, 120)
      PARAMETER (N = 120)
      PARAMETER (NITER = 3)
!$POLARIS DOALL PRIVATE(I0)
        DO J0 = 1, 120
!$POLARIS DOALL
          DO I0 = 1, 120
            XX(I0, J0) = I0*0.3+J0*0.01
            YY(I0, J0) = J0*0.3-I0*0.01
            RXM(I0, J0) = 0.0
          END DO
        END DO
        DO IT = 1, 3
!$POLARIS DOALL PRIVATE(D, I)
          DO J = 2, 119
!$POLARIS DOALL PRIVATE(D)
            DO I = 2, 119
              D = XX(I+1, J)-2.0*XX(I, J)+XX(I-1, J)
              IF (D .GT. 0.5) THEN
                D = 0.5
              ELSE IF (D .LT. -0.5) THEN
                D = -0.5
              END IF
              RXM(I, J) = D+0.25*(YY(I, J+1)-YY(I, J-1))
            END DO
          END DO
!$POLARIS DOALL PRIVATE(I)
          DO J = 2, 119
!$POLARIS DOALL
            DO I = 2, 119
              IF (RXM(I, J) .GT. 0.0) THEN
                XX(I, J) = XX(I, J)+0.1*RXM(I, J)
              ELSE
                XX(I, J) = XX(I, J)+0.05*RXM(I, J)
              END IF
            END DO
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL PRIVATE(II) REDUCTION(+:CSUM)
        DO JJ = 1, 120
!$POLARIS DOALL REDUCTION(+:CSUM)
          DO II = 1, 120
            CSUM = CSUM+XX(II, JJ)
          END DO
        END DO
        PRINT *, 'tomcatv checksum', CSUM
      END

      PROGRAM TFFT2
      INTEGER B
      REAL F(3072)
      INTEGER LEN
      INTEGER NT
      INTEGER T
      REAL W(64)
      PARAMETER (LEN = 64)
      PARAMETER (NT = 48)
!$POLARIS DOALL
        DO I0 = 1, 3072
          F(I0) = MOD(I0, 17)*0.25
        END DO
!$POLARIS DOALL PRIVATE(B, I, I1, I2, ISTAGE, J, LE2, T1, T2, W)
        DO T = 1, 48
!$POLARIS DOALL
          DO I = 1, 64
            W(I) = F(I+(T-1)*64)
          END DO
          DO ISTAGE = 1, 6
            LE2 = 2*2**(ISTAGE-1)/2
            DO B = 0, 64/(2*2**(ISTAGE-1))-1
!$POLARIS DOALL PRIVATE(I1, I2, T1, T2)
              DO J = 1, LE2
                I1 = B*(2*2**(ISTAGE-1))+J
                I2 = I1+LE2
                T1 = W(I1)+W(I2)
                T2 = W(I1)-W(I2)
                W(I1) = T1
                W(I2) = T2*0.7071
              END DO
            END DO
          END DO
!$POLARIS DOALL
          DO I = 1, 64
            F(I+(T-1)*64) = W(I)
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL REDUCTION(+:CSUM)
        DO II = 1, 3072
          CSUM = CSUM+F(II)
        END DO
        PRINT *, 'tfft2 checksum', CSUM
      END

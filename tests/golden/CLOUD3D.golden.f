      PROGRAM CLOUD3D
      INTEGER C
      INTEGER C0
      INTEGER NCOL
      INTEGER NSTEPS
      INTEGER NZ
      REAL S(60, 24)
      INTEGER STEP
      REAL TGT(24)
      INTEGER Z
      INTEGER Z0
      INTEGER ZZ
      PARAMETER (NCOL = 60)
      PARAMETER (NSTEPS = 40)
      PARAMETER (NZ = 24)
!$POLARIS DOALL PRIVATE(C0)
        DO Z0 = 1, 24
          TGT(Z0) = 0.5+0.01*Z0
!$POLARIS DOALL
          DO C0 = 1, 60
            S(C0, Z0) = 0.3+0.001*C0
          END DO
        END DO
        DO STEP = 1, 40
!$POLARIS DOALL
          DO Z = 1, 24
            TGT(Z) = TGT(Z)*0.999+0.001*Z
          END DO
          DO Z = 2, 24
            DO C = 2, 60
              S(C, Z) = S(C, Z-1)*0.7+S(C-1, Z)*0.1+TGT(Z)*0.2
            END DO
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL REDUCTION(+:CSUM)
        DO ZZ = 1, 24
          CSUM = CSUM+S(7, ZZ)
        END DO
        PRINT *, 'cloud3d checksum', CSUM
      END

      PROGRAM TRACK
      REAL G(2048)
      REAL H(2048)
      INTEGER KEY(2048)
      INTEGER N
      INTEGER NINV
      PARAMETER (N = 2048)
      PARAMETER (NINV = 10)
!$POLARIS DOALL
        DO I0 = 1, 2048
          G(I0) = 1.0+MOD(I0, 9)*0.05
          H(I0) = 0.0
        END DO
        DO INV = 1, 10
!$POLARIS DOALL
          DO I = 1, 2048
            IF (MOD(INV, 10) .EQ. 0) THEN
              KEY(I) = MOD(I, 1024)+1
            ELSE
              KEY(I) = MOD(I*77+INV, 2048)+1
            END IF
          END DO
!$POLARIS DOALL SPECULATIVE(H)
          DO I = 1, 2048
            H(KEY(I)) = G(I)*1.01+INV*0.1
          END DO
        END DO
        CSUM = 0.0
!$POLARIS DOALL REDUCTION(+:CSUM)
        DO II = 1, 2048
          CSUM = CSUM+H(II)
        END DO
        PRINT *, 'track checksum', CSUM
      END

      PROGRAM HYDRO2D
      INTEGER NJ
      INTEGER NK
      INTEGER NSTEPS
      REAL RO(350, 120)
      REAL VX(350, 120)
      REAL WR(350)
      PARAMETER (NJ = 350)
      PARAMETER (NK = 120)
      PARAMETER (NSTEPS = 2)
!$POLARIS DOALL PRIVATE(J0)
        DO K0 = 1, 120
!$POLARIS DOALL
          DO J0 = 1, 350
            RO(J0, K0) = 1.0+0.001*J0
            VX(J0, K0) = 0.02*K0-0.01*J0
          END DO
        END DO
        DO NC = 1, 2
!$POLARIS DOALL PRIVATE(J, WR)
          DO K = 1, 120
!$POLARIS DOALL
            DO J = 1, 350
              WR(J) = RO(J, K)*VX(J, K)
            END DO
!$POLARIS DOALL
            DO J = 2, 349
              RO(J, K) = RO(J, K)-0.05*(WR(J+1)-WR(J-1))
            END DO
          END DO
          DTM = 0.0
!$POLARIS DOALL PRIVATE(J) REDUCTION(MAX:DTM)
          DO K = 1, 120
!$POLARIS DOALL REDUCTION(MAX:DTM)
            DO J = 1, 350
              DTM = MAX(DTM, ABS(VX(J, K)))
            END DO
          END DO
          VX(1, 1) = VX(1, 1)+DTM*0.001
        END DO
        CSUM = 0.0
!$POLARIS DOALL REDUCTION(+:CSUM)
        DO KK = 1, 120
          CSUM = CSUM+RO(175, KK)
        END DO
        PRINT *, 'hydro2d checksum', CSUM
      END

//! Conformance net for the six irregular (subscripted-subscript)
//! kernels: each must land in its pinned execution tier — `static`
//! (the hot loop is proved parallel at compile time, directly or via
//! the index-array property pass) or `lrpd` (the loop ships as a
//! run-time speculation instead of serializing) — and must compute a
//! bit-identical result on every backend we have: the tree-walking
//! interpreter, the bytecode VM, and the threaded executor. The
//! runtime dependence oracle and the static race detector then
//! cross-check every PARALLEL claim; a statically-clean loop the
//! oracle sees violate a dependence fails the suite.

use polaris::verify::{agreement, verify_compiled};
use polaris::{MachineConfig, PassOptions};
use polaris_machine::{audit, run, Engine, Schedule};

/// FNV-1a over newline-joined output, matching the checksum recorded
/// in `BENCH_figure7.json` (`polaris_bench::fnv1a`).
fn fnv1a(lines: &[String]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for line in lines {
        for &byte in line.as_bytes().iter().chain(b"\n") {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// The tier the compiled plan actually landed in, derived the same way
/// `figure7` derives it: any speculative loop means the kernel needed
/// the run-time test; otherwise any parallel loop means a static win.
fn landed_tier(report: &polaris::CompileReport) -> &'static str {
    let spec = report.loops.iter().filter(|l| l.speculative).count();
    let par = report.loops.iter().filter(|l| l.parallel && !l.speculative).count();
    if spec > 0 {
        "lrpd"
    } else if par > 0 {
        "static"
    } else {
        "serial"
    }
}

#[test]
fn irregular_kernels_land_in_their_pinned_tiers() {
    let kernels = polaris_benchmarks::irregular();
    assert_eq!(kernels.len(), 6);
    let mut statics = 0usize;
    for (b, expected) in &kernels {
        let out = polaris::parallelize(b.source, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
        let got = landed_tier(&out.report);
        assert_eq!(
            got, *expected,
            "{}: landed in tier `{got}`, pinned `{expected}`\n--- annotated ---\n{}",
            b.name, out.annotated_source
        );
        if got == "static" {
            statics += 1;
        }
        // No irregular kernel may silently serialize its scatter: every
        // kernel has at least one parallel or speculative loop.
        assert!(
            out.report.loops.iter().any(|l| l.parallel),
            "{}: no loop parallelized at all",
            b.name
        );
    }
    assert!(statics >= 3, "at least 3 of 6 kernels must be proved statically, got {statics}");
}

#[test]
fn static_kernels_are_proved_by_the_property_pass_or_classic_analysis() {
    // The two scatter kernels (GATHER, PREFIX) are parallel *only*
    // because `idxprop` proved their index arrays injective — pin that
    // attribution so a regression that re-proves them some weaker way
    // (or stops proving them) is visible.
    for name in ["GATHER", "PREFIX"] {
        let b = polaris_benchmarks::by_name(name).unwrap();
        let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
        assert!(
            out.report.idxprop.proved > 0,
            "{name}: idxprop proved nothing, yet the kernel depends on it"
        );
        assert!(
            out.report.dd_props.1 > 0,
            "{name}: the props disjointness rule never fired (dd_props = {:?})",
            out.report.dd_props
        );
        let scatter = out
            .report
            .loops
            .iter()
            .find(|l| l.parallel && !l.index_facts.is_empty())
            .unwrap_or_else(|| panic!("{name}: no parallel loop carries index-array facts"));
        assert!(
            scatter.index_facts.iter().any(|f| f.contains("injective")),
            "{name}: facts {:?} lack injectivity",
            scatter.index_facts
        );
    }
}

#[test]
fn lrpd_kernels_ship_as_speculation_not_serial() {
    for name in ["BUCKET", "COMPACT"] {
        let b = polaris_benchmarks::by_name(name).unwrap();
        let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
        let spec: Vec<_> = out.report.loops.iter().filter(|l| l.speculative).collect();
        assert!(!spec.is_empty(), "{name}: expected a speculative loop, got none");
        // A speculative loop is *not* a static PARALLEL claim — the
        // race detector and oracle treat those tiers differently, so
        // the flags must stay mutually exclusive.
        for l in &spec {
            assert!(
                !l.parallel,
                "{name}: loop {} is both statically parallel and speculative",
                l.label
            );
        }
    }
}

/// Every kernel, both engines, serial and threaded: bit-identical
/// output and checksum against the uncompiled program's serial run.
#[test]
fn irregular_outputs_are_bit_identical_across_engines_and_threads() {
    for (b, _) in &polaris_benchmarks::irregular() {
        let reference = run(&b.program(), &MachineConfig::serial())
            .unwrap_or_else(|e| panic!("{}: reference run: {e}", b.name));
        assert!(
            reference.output.iter().any(|l| l.contains("checksum")),
            "{}: kernel prints no checksum line",
            b.name
        );
        let want = fnv1a(&reference.output);

        let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
        let configs: [(&str, MachineConfig); 4] = [
            ("tree-walk serial", MachineConfig::serial().with_engine(Engine::TreeWalk)),
            ("vm serial", MachineConfig::serial().with_engine(Engine::Vm)),
            ("threaded x2", MachineConfig::threaded(2, Schedule::Static)),
            ("threaded x4", MachineConfig::threaded(4, Schedule::Static)),
        ];
        for (label, cfg) in configs {
            let r = run(&out.program, &cfg)
                .unwrap_or_else(|e| panic!("{}: {label}: {e}", b.name));
            assert_eq!(
                reference.output, r.output,
                "{}: {label}: output diverged from the serial reference",
                b.name
            );
            assert_eq!(want, fnv1a(&r.output), "{}: {label}: checksum drift", b.name);
        }
    }
}

/// Zero tolerance for static-clean-but-oracle-dirty: on every irregular
/// kernel the runtime dependence oracle must observe no violation, and
/// the static race detector's `clean` verdicts must survive the
/// cross-check.
#[test]
fn irregular_kernels_are_oracle_clean_and_race_sound() {
    let mut statics_compared = 0usize;
    for (b, expected) in &polaris_benchmarks::irregular() {
        let out = polaris::parallelize(b.source, &PassOptions::polaris()).unwrap();
        let oracle = audit(&out.program, &out.report)
            .unwrap_or_else(|e| panic!("{}: oracle: {e}", b.name));
        assert!(
            !oracle.has_violations(),
            "{}: oracle violations: {:?}",
            b.name,
            oracle.violations().collect::<Vec<_>>()
        );
        let v = verify_compiled(&out.program, &out.report);
        assert!(v.ok(), "{}: {:?}", b.name, v.final_violations);
        let race = v.race.as_ref().unwrap_or_else(|| panic!("{}: no race report", b.name));
        let a = agreement(race, &oracle);
        assert!(
            a.sound(),
            "{}: static `clean` contradicted by the oracle on {:?}",
            b.name,
            a.soundness_failures
        );
        if *expected == "static" {
            statics_compared += a.compared;
        }
    }
    assert!(statics_compared > 0, "no static claim was ever joined against the oracle");
}

//! Semantic-equivalence tests for loop normalization: the normalized
//! program must produce identical output on the simulated machine,
//! including F77's exhausted loop-variable values.

use polaris::core::normalize;
use polaris::machine::run_serial;

fn check(src: &str) {
    let original = polaris_ir::parse(src).unwrap();
    let r1 = run_serial(&original).unwrap();
    let mut p2 = polaris_ir::parse(src).unwrap();
    normalize::run(&mut p2);
    polaris_ir::validate::validate_program(&p2).unwrap();
    let r2 = run_serial(&p2).unwrap();
    assert_eq!(r1.output, r2.output, "normalization changed semantics:\n{src}");
}

#[test]
fn positive_stride() {
    check("program t\nreal a(20)\ndo i = 2, 19, 3\n  a(i) = i*1.0\nend do\nprint *, a(2), a(5), a(17), i\nend\n");
}

#[test]
fn negative_stride() {
    check("program t\nreal a(20)\ndo i = 19, 2, -3\n  a(i) = i*1.0\nend do\nprint *, a(19), a(4), i\nend\n");
}

#[test]
fn empty_strided_loop() {
    check("program t\nk = 0\ndo i = 10, 2, 3\n  k = k + 1\nend do\nprint *, k, i\nend\n");
}

#[test]
fn nested_strided_loops() {
    check("program t\nreal a(30,30)\ns = 0.0\ndo i = 1, 29, 2\n  do j = 30, 3, -4\n    a(i, j) = i*1.0 + j\n    s = s + a(i, j)\n  end do\nend do\nprint *, s, i, j\nend\n");
}

#[test]
fn exit_value_matches_f77() {
    // DO I = 2, 11, 3 -> iterations 2,5,8,11; exhausted value 14
    let src = "program t\nk = 0\ndo i = 2, 11, 3\n  k = k + 1\nend do\nprint *, i, k\nend\n";
    check(src);
    let mut p = polaris_ir::parse(src).unwrap();
    normalize::run(&mut p);
    let r = run_serial(&p).unwrap();
    assert_eq!(r.output[0], "14 4");
}

#[test]
fn full_pipeline_handles_strided_kernels() {
    // strided scatter through the whole pipeline + adversarial check
    let src = "program t\nreal a(200)\ns = 0.0\ndo i = 1, 199, 2\n  a(i) = i*0.5\nend do\ndo i = 2, 200, 2\n  a(i) = a(i - 1) + 1.0\nend do\ndo k = 1, 200\n  s = s + a(k)\nend do\nprint *, s\nend\n";
    let out = polaris::parallelize(src, &polaris::PassOptions::polaris()).unwrap();
    assert!(out.report.normalize.loops_normalized >= 2, "{:?}", out.report.normalize);
    assert!(out.report.parallel_loops() >= 2, "{:#?}", out.report.loops);
    polaris::machine::run_validated(&out.program, &polaris::MachineConfig::challenge_8())
        .unwrap_or_else(|e| panic!("{e}\n{}", out.annotated_source));
}

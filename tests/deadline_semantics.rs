//! Resource-cap semantics, as a table: for each cap — execution fuel,
//! wall-clock deadline, memory — in both the *hit* and *not hit* case,
//! the exact exit class is pinned, partial state is shown to be rolled
//! back (never served), and the compiler invariants are re-checked after
//! a mid-pipeline cancellation.
//!
//! | cap            | hit                                  | not hit            |
//! |----------------|--------------------------------------|--------------------|
//! | fuel           | `MachineError::FuelExhausted`        | output = reference |
//! | memory         | `MachineError::MemoryCapExceeded`    | output = reference |
//! | wall (compile) | stages after cancel rolled back      | report clean       |
//! | wall (service) | `degraded`, exit 1, never retried    | `ok`, exit 0       |

use polaris::core::pipeline::{FaultPlan, StageOutcome, CANCELLED_PREFIX};
use polaris::core::{CancelToken, PassOptions};
use polaris::{MachineConfig, Program};
use polaris_machine::MachineError;
use polaris_obs::Recorder;
use polarisd::chaos::ChaosPlan;
use polarisd::proto::{Request, Status};
use polarisd::service::{Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

const SRC: &str = "program caps\n\
                   real v(64)\n\
                   s = 0.0\n\
                   do i = 1, 64\n\
                   \x20 v(i) = i * 2.0\n\
                   end do\n\
                   do i = 1, 64\n\
                   \x20 s = s + v(i)\n\
                   end do\n\
                   print *, s\n\
                   end\n";

fn compiled() -> Program {
    let (program, report) =
        polaris::core::parse_and_compile(SRC, &PassOptions::polaris()).unwrap();
    assert!(!report.degraded());
    program
}

fn reference_output() -> Vec<String> {
    polaris_machine::run(&compiled(), &MachineConfig::serial()).unwrap().output
}

// ---- fuel ------------------------------------------------------------

#[test]
fn fuel_cap_hit_is_the_exact_exit_class_and_serves_nothing() {
    let err = polaris_machine::run(&compiled(), &MachineConfig::serial().with_fuel(10))
        .expect_err("10 units of fuel cannot run this program");
    // Exact class with the configured limit — and because `run` returns
    // `Err`, no partial output can leak to a caller.
    assert!(matches!(err, MachineError::FuelExhausted { limit: 10 }), "{err}");
}

#[test]
fn fuel_cap_not_hit_output_matches_the_uncapped_reference() {
    let out = polaris_machine::run(&compiled(), &MachineConfig::serial().with_fuel(2_000_000))
        .expect("generous fuel")
        .output;
    assert_eq!(out, reference_output());
}

// ---- memory ----------------------------------------------------------

#[test]
fn memory_cap_hit_is_the_exact_exit_class_with_need_and_cap() {
    let err = polaris_machine::run(&compiled(), &MachineConfig::serial().with_memory_cap(8))
        .expect_err("v(64) cannot fit in 8 elements");
    match err {
        MachineError::MemoryCapExceeded { need, cap } => {
            assert_eq!(cap, 8);
            assert!(need >= 64, "need {need} must count the 64-element array");
        }
        other => panic!("wrong exit class: {other}"),
    }
}

#[test]
fn memory_cap_not_hit_output_matches_the_uncapped_reference() {
    let out =
        polaris_machine::run(&compiled(), &MachineConfig::serial().with_memory_cap(1 << 20))
            .expect("generous memory cap")
            .output;
    assert_eq!(out, reference_output());
}

// ---- wall deadline, compile level -----------------------------------

/// A mid-pipeline cancellation (the service's wall deadline mechanism)
/// must leave a consistent program: completed stages keep their effect,
/// every remaining stage is rolled back with the cancellation reason, and
/// both the IR validator and the compiler-invariant verifier still pass.
#[test]
fn wall_deadline_hit_mid_compile_rolls_back_remaining_stages_and_keeps_invariants() {
    let mut program = polaris::ir::parse(SRC).unwrap();
    // The induction stage stalls 200ms; a watchdog cancels at 20ms —
    // exactly what polarisd's watchdog does to an in-flight compile.
    let opts = PassOptions::polaris().with_faults(FaultPlan::stall_in("induction", 200));
    let cancel = CancelToken::new();
    let watchdog = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            cancel.cancel("wall deadline (20ms) exceeded");
        })
    };
    let report = polaris::core::compile_cancellable(
        &mut program,
        &opts,
        &Recorder::disabled(),
        &cancel,
    )
    .unwrap();
    watchdog.join().unwrap();

    let cancelled: Vec<&str> = report
        .stages
        .iter()
        .filter(|s| match &s.outcome {
            StageOutcome::RolledBack { reason } => reason.starts_with(CANCELLED_PREFIX),
            _ => false,
        })
        .map(|s| s.name)
        .collect();
    assert!(
        cancelled.contains(&"analyze"),
        "stages after the stall must be cancelled: {:?}",
        report.stages
    );
    // Partial state is kept for *completed* stages only…
    assert!(matches!(report.stage("inline").unwrap().outcome, StageOutcome::Ok));
    // …and what remains is a consistent program: both validators agree.
    polaris::ir::validate::validate_program(&program).expect("IR valid after cancel");
    let verify = polaris::verify::verify_compiled(&program, &report);
    assert!(verify.ok(), "invariants must hold after mid-pipeline cancel");
    // The cancelled compile still runs (degraded ≠ broken).
    let out = polaris_machine::run(&program, &MachineConfig::serial()).unwrap().output;
    assert_eq!(out, reference_output());
}

#[test]
fn wall_deadline_not_hit_compile_is_clean() {
    let mut program = polaris::ir::parse(SRC).unwrap();
    let cancel = CancelToken::new(); // never fired
    let report = polaris::core::compile_cancellable(
        &mut program,
        &PassOptions::polaris(),
        &Recorder::disabled(),
        &cancel,
    )
    .unwrap();
    assert!(!report.degraded());
    assert!(report.stages.iter().all(|s| !matches!(
        &s.outcome,
        StageOutcome::RolledBack { reason } if reason.starts_with(CANCELLED_PREFIX)
    )));
}

// ---- wall deadline, service level -----------------------------------

fn service_request(deadline_ms: Option<u64>) -> Request {
    Request {
        id: 1,
        client: "caps".into(),
        vfa: false,
        deadline_ms,
        return_program: false,
        source: SRC.into(),
    }
}

#[test]
fn wall_deadline_hit_at_the_service_is_degraded_exit_1_never_retried() {
    let chaos = Arc::new(ChaosPlan::seeded(1).with_stall(100, 300));
    let service = Service::with_chaos(
        ServiceConfig { workers: 1, ..ServiceConfig::default() },
        Recorder::disabled(),
        chaos,
    );
    let resp = service
        .submit(service_request(Some(25)))
        .wait_timeout(Duration::from_secs(20))
        .unwrap();
    assert_eq!(resp.status, Status::Degraded);
    assert_eq!(resp.exit_code, 1);
    assert_eq!(resp.attempts, 1, "a deadline blow must not be retried");
    let stats = service.shutdown();
    assert!(stats.deadline_cancels >= 1);
    assert_eq!(stats.retries, 0);
}

#[test]
fn wall_deadline_not_hit_at_the_service_is_ok_exit_0() {
    let service = Service::new(ServiceConfig::default());
    let resp = service
        .submit(service_request(Some(10_000)))
        .wait_timeout(Duration::from_secs(20))
        .unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.exit_code, 0);
    assert_eq!(service.stats().deadline_cancels, 0);
}

//! Golden-file snapshot tests for the `polarisc` CLI surfaces that CI
//! and downstream tooling consume: the `--diag` per-stage diagnostics
//! table and the `--oracle` JSON audit report, on MDG (histogram
//! reductions, fully parallel) and TRACK (the partially parallel
//! PD-test loop). Timing columns are normalized before comparison; the
//! cycle counts, stage outcomes, IR deltas, and the entire oracle JSON
//! are deterministic.
//!
//! Regeneration: `UPDATE_GOLDEN=1 cargo test --test golden_cli`
//! rewrites the snapshots; commit the diff if (and only if) the change
//! is intentional.

use std::path::PathBuf;
use std::process::Command;

fn repo() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn kernel(file: &str) -> String {
    repo().join("crates/benchmarks/codes").join(file).to_str().unwrap().to_string()
}

fn golden_path(name: &str) -> PathBuf {
    repo().join("tests/golden").join(name)
}

/// Run polarisc, asserting it exits 0 (no violation, not degraded).
fn polarisc(args: &[&str]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_polarisc")).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "polarisc {args:?} exited {:?}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    (String::from_utf8_lossy(&out.stdout).into_owned(), String::from_utf8_lossy(&out.stderr).into_owned())
}

/// Replace the wall-clock duration column of `--diag` stage rows with a
/// stable `<time>` token. Row layout is fixed-width: name(16) sp
/// outcome(12) sp delta(10) sp duration — everything before the
/// duration is deterministic.
fn normalize_diag(stderr: &str) -> String {
    let mut out = String::new();
    for line in stderr.lines() {
        let is_stage_row =
            polaris::core::pipeline::STAGE_NAMES.iter().any(|s| line.starts_with(s));
        if is_stage_row && line.len() > 40 {
            out.push_str(line[..40].trim_end());
            out.push_str(" <time>\n");
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_cli`",
            path.display()
        )
    });
    assert!(
        got == want,
        "{name} drifted from its golden snapshot (UPDATE_GOLDEN=1 regenerates if intentional)\n\
         --- want ---\n{want}\n--- got ---\n{got}"
    );
}

#[test]
fn diag_table_matches_golden_for_mdg_and_track() {
    for (kern, golden) in [("mdg.f", "MDG.diag.txt"), ("track.f", "TRACK.diag.txt")] {
        let (_, stderr) = polarisc(&["--diag", "--quiet", &kernel(kern)]);
        check_golden(golden, &normalize_diag(&stderr));
    }
}

#[test]
fn oracle_json_matches_golden_for_mdg_and_track() {
    for (kern, golden) in [("mdg.f", "MDG.oracle.json"), ("track.f", "TRACK.oracle.json")] {
        let (stdout, _) = polarisc(&["--oracle", &kernel(kern)]);
        check_golden(golden, &stdout);
    }
}

//! Golden-file snapshot tests for the `polarisc` CLI surfaces that CI
//! and downstream tooling consume: the `--diag` per-stage diagnostics
//! table, the `--oracle` JSON audit report, and the observability
//! documents (`--trace` Chrome trace and `--metrics` JSON, under the
//! deterministic `--clock virtual`), on MDG (histogram reductions,
//! fully parallel) and TRACK (the partially parallel PD-test loop).
//! Timing columns of `--diag` are normalized before comparison; the
//! cycle counts, stage outcomes, IR deltas, the oracle JSON, and the
//! virtual-clock trace/metrics documents are deterministic.
//!
//! Regeneration: `UPDATE_GOLDEN=1 cargo test --test golden_cli`
//! rewrites the snapshots; commit the diff if (and only if) the change
//! is intentional.

use std::path::PathBuf;
use std::process::Command;

fn repo() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn kernel(file: &str) -> String {
    repo().join("crates/benchmarks/codes").join(file).to_str().unwrap().to_string()
}

fn golden_path(name: &str) -> PathBuf {
    repo().join("tests/golden").join(name)
}

/// Run polarisc, asserting it exits 0 (no violation, not degraded).
fn polarisc(args: &[&str]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_polarisc")).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "polarisc {args:?} exited {:?}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    (String::from_utf8_lossy(&out.stdout).into_owned(), String::from_utf8_lossy(&out.stderr).into_owned())
}

/// Replace the wall-clock duration column of `--diag` stage rows with a
/// stable `<time>` token. Row layout is fixed-width: name(16) sp
/// outcome(12) sp delta(10) sp duration — everything before the
/// duration is deterministic.
fn normalize_diag(stderr: &str) -> String {
    let mut out = String::new();
    for line in stderr.lines() {
        let is_stage_row =
            polaris::core::pipeline::STAGE_NAMES.iter().any(|s| line.starts_with(s));
        if is_stage_row && line.len() > 40 {
            out.push_str(line[..40].trim_end());
            out.push_str(" <time>\n");
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_cli`",
            path.display()
        )
    });
    assert!(
        got == want,
        "{name} drifted from its golden snapshot (UPDATE_GOLDEN=1 regenerates if intentional)\n\
         --- want ---\n{want}\n--- got ---\n{got}"
    );
}

/// Regression: an empty, blank-only, or comment-only source file must
/// produce a "no program unit" diagnostic and exit 1 — not exit 0 with
/// no output.
#[test]
fn empty_or_comment_only_source_is_a_no_program_unit_error() {
    let dir = std::env::temp_dir().join("polarisc_empty_test");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, contents) in [
        ("empty.f", ""),
        ("blank.f", "\n\n\n"),
        ("comment_only.f", "! header comment\n* fixed-form comment\n\n! trailing\n"),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        let out = Command::new(env!("CARGO_BIN_EXE_polarisc"))
            .arg(path.to_str().unwrap())
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name}: expected exit 1, got {:?}\n--- stderr ---\n{stderr}",
            out.status.code()
        );
        assert!(
            stderr.contains("no program unit"),
            "{name}: missing `no program unit` diagnostic\n--- stderr ---\n{stderr}"
        );
        assert!(
            out.stdout.is_empty(),
            "{name}: expected empty stdout, got:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn diag_table_matches_golden_for_mdg_and_track() {
    for (kern, golden) in [("mdg.f", "MDG.diag.txt"), ("track.f", "TRACK.diag.txt")] {
        let (_, stderr) = polarisc(&["--diag", "--quiet", &kernel(kern)]);
        check_golden(golden, &normalize_diag(&stderr));
    }
}

#[test]
fn oracle_json_matches_golden_for_mdg_and_track() {
    for (kern, golden) in [("mdg.f", "MDG.oracle.json"), ("track.f", "TRACK.oracle.json")] {
        let (stdout, _) = polarisc(&["--oracle", &kernel(kern)]);
        check_golden(golden, &stdout);
    }
}

/// Observability snapshots: the Chrome trace of a full compile +
/// simulated run under the deterministic virtual clock. Determinism is
/// pinned twice over — an explicit double-run byte-identity assertion,
/// and the golden compare.
#[test]
fn virtual_clock_trace_matches_golden_for_mdg_and_track() {
    let dir = std::env::temp_dir().join("polarisc_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    for (kern, golden) in [("mdg.f", "MDG.trace.json"), ("track.f", "TRACK.trace.json")] {
        let run = |tag: &str| -> String {
            let path = dir.join(format!("{golden}.{tag}"));
            let _ = polarisc(&[
                "--trace",
                path.to_str().unwrap(),
                "--clock",
                "virtual",
                "--run",
                "--quiet",
                &kernel(kern),
            ]);
            std::fs::read_to_string(&path).unwrap()
        };
        let (first, second) = (run("a"), run("b"));
        assert_eq!(first, second, "{kern}: virtual-clock trace not byte-identical across runs");
        check_golden(golden, &first);
    }
}

/// Same for the metrics document (`--metrics` makes stdout exactly the
/// JSON document, so the snapshot is the whole stdout).
#[test]
fn virtual_clock_metrics_match_golden_for_mdg_and_track() {
    for (kern, golden) in [("mdg.f", "MDG.metrics.json"), ("track.f", "TRACK.metrics.json")] {
        let (first, _) = polarisc(&["--metrics", "--clock", "virtual", "--run", &kernel(kern)]);
        let (second, _) = polarisc(&["--metrics", "--clock", "virtual", "--run", &kernel(kern)]);
        assert_eq!(first, second, "{kern}: virtual-clock metrics not byte-identical across runs");
        check_golden(golden, &first);
    }
}

/// The `--verify` JSON report (schema `polaris-verify/v1`): invariant
/// totals, static race verdicts, no rollbacks. Both kernels are clean,
/// so the exit-0 assertion inside `polarisc` doubles as the pin on
/// "clean program under --verify exits 0".
#[test]
fn verify_json_matches_golden_for_mdg_and_track() {
    for (kern, golden) in [("mdg.f", "MDG.verify.json"), ("track.f", "TRACK.verify.json")] {
        let (stdout, _) = polarisc(&["--verify", &kernel(kern)]);
        check_golden(golden, &stdout);
    }
}

/// Irregular-kernel snapshots: GATHER (scatter proved parallel purely
/// by the index-array property pass — its `--diag` row pins the
/// `idxprop` stage outcome and the `--verify` race table pins the
/// `clean` verdict on the scatter) and BUCKET (the MOD-keyed scatter
/// that must ship as LRPD speculation, not serialize).
#[test]
fn diag_and_verify_match_golden_for_irregular_kernels() {
    for (kern, diag, verify) in [
        ("gather.f", "GATHER.diag.txt", "GATHER.verify.json"),
        ("bucket.f", "BUCKET.diag.txt", "BUCKET.verify.json"),
    ] {
        let (_, stderr) = polarisc(&["--diag", "--quiet", &kernel(kern)]);
        check_golden(diag, &normalize_diag(&stderr));
        let (stdout, _) = polarisc(&["--verify", &kernel(kern)]);
        check_golden(verify, &stdout);
    }
}

/// Nest-transformation snapshots: MMT (the transposed matmul whose
/// (K,I,J) nest must be interchanged to the unit-stride (J,I,K) order
/// under an interchange certificate, with the scalar accumulator's row
/// tagged relaxable) and STENCIL2D (the 5-point stencil whose interior
/// nest must be 8x8 tiled, plus a conformable tail pair that fuses).
/// The `--diag` snapshot pins the legality-certificate table — stage,
/// nest, direction/distance matrix, chosen variant — and the `--verify`
/// snapshot pins the re-prover's `certs` block re-accepting every one
/// of them from the emitted IR.
#[test]
fn diag_and_verify_match_golden_for_nest_kernels() {
    for (kern, diag, verify) in [
        ("mmt.f", "MMT.diag.txt", "MMT.verify.json"),
        ("stencil2d.f", "STENCIL2D.diag.txt", "STENCIL2D.verify.json"),
    ] {
        let (_, stderr) = polarisc(&["--diag", "--quiet", &kernel(kern)]);
        check_golden(diag, &normalize_diag(&stderr));
        let (stdout, _) = polarisc(&["--verify", &kernel(kern)]);
        check_golden(verify, &stdout);
    }
}

/// `--no-nest-opts` must suppress every nest transformation: no
/// legality-certificate table in `--diag`, and a `--verify` certs block
/// with zero checks.
#[test]
fn no_nest_opts_suppresses_certs() {
    let (_, stderr) = polarisc(&["--diag", "--quiet", "--no-nest-opts", &kernel("mmt.f")]);
    assert!(
        !stderr.contains("legality certificates"),
        "--no-nest-opts still printed a cert table:\n{stderr}"
    );
    let (stdout, _) = polarisc(&["--verify", "--no-nest-opts", &kernel("mmt.f")]);
    assert!(
        stdout.contains("\"checked\": 0"),
        "--no-nest-opts still emitted cert checks:\n{stdout}"
    );
}

/// `--inject-fault STAGE:force` makes a nest stage apply its best
/// *rejected* candidate while still emitting a certificate for it — a
/// lie that only the `--verify` re-prover can catch. On a skewed nest
/// (`A(I,J) = A(I-1,J+1)`, direction vector (<,>)) the forced
/// interchange inverts a dependence, so the re-derived matrix rejects
/// it and the violation exit code fires. A `:force` on a non-nest stage
/// is a usage error naming the valid stages.
#[test]
fn forced_illegal_interchange_is_rejected_by_the_verify_reprover() {
    let dir = std::env::temp_dir().join("polarisc_force_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("skew.f");
    std::fs::write(
        &path,
        "      program skew\n      parameter (n = 16)\n      real a(20, 20)\n      do j0 = 1, n\n        do i0 = 1, n\n          a(i0, j0) = 1.0\n        end do\n      end do\n      do i = 2, n\n        do j = 1, n-1\n          a(i, j) = a(i-1, j+1) + 1.0\n        end do\n      end do\n      s = 0.0\n      do jj = 1, n\n        do ii = 1, n\n          s = s + a(ii, jj)\n        end do\n      end do\n      print *, 'skew sum', s\n      end\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_polarisc"))
        .args(["--verify", "--inject-fault", "interchange:force", path.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(2),
        "forced illegal interchange should be a violation exit:\n{stdout}"
    );
    assert!(
        stdout.contains("\"accepted\": false")
            && stdout.contains("re-derived matrix rejects the permutation"),
        "re-prover did not reject the forced interchange:\n{stdout}"
    );
    // Without the fault the same program verifies clean.
    let clean = Command::new(env!("CARGO_BIN_EXE_polarisc"))
        .args(["--verify", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0), "clean skew program should verify");
    // `:force` only makes sense on a nest-transformation stage.
    let bad = Command::new(env!("CARGO_BIN_EXE_polarisc"))
        .args(["--verify", "--inject-fault", "analyze:force", path.to_str().unwrap()])
        .output()
        .unwrap();
    let bad_err = String::from_utf8_lossy(&bad.stderr);
    assert_eq!(bad.status.code(), Some(1), "bad :force stage should be a usage error");
    assert!(
        bad_err.contains("interchange, tile, fuse"),
        "usage error should list the nest stages:\n{bad_err}"
    );
}

/// Adaptive-dispatch snapshots: the `--schedule adaptive` decision
/// table printed under `--diag` (per-loop strategy / chunking / thread
/// count / event, deterministic because the dispatcher is fed simulated
/// cycles, never wall time) and the virtual-clock Chrome trace of a
/// compile + adaptive simulated run (which pins the `adaptive.*` spans
/// and counters), for MDG (uniform-cost, fully parallel — adaptive must
/// keep block chunking) and the irregular SPMV (the decision table over
/// an idxprop-proven scatter). Byte-identity across two fresh processes
/// is asserted before the golden compare.
#[test]
fn adaptive_diag_and_trace_match_golden_for_mdg_and_spmv() {
    let dir = std::env::temp_dir().join("polarisc_adaptive_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    for (kern, diag, trace) in [
        ("mdg.f", "MDG.adaptive.diag.txt", "MDG.adaptive.trace.json"),
        ("spmv.f", "SPMV.adaptive.diag.txt", "SPMV.adaptive.trace.json"),
    ] {
        let run_diag = || -> String {
            let (_, stderr) =
                polarisc(&["--diag", "--quiet", "--schedule", "adaptive", &kernel(kern)]);
            normalize_diag(&stderr)
        };
        let (d1, d2) = (run_diag(), run_diag());
        assert_eq!(d1, d2, "{kern}: adaptive decision table not identical across runs");
        check_golden(diag, &d1);

        let run_trace = |tag: &str| -> String {
            let path = dir.join(format!("{trace}.{tag}"));
            let _ = polarisc(&[
                "--trace",
                path.to_str().unwrap(),
                "--clock",
                "virtual",
                "--schedule",
                "adaptive",
                "--run",
                "--quiet",
                &kernel(kern),
            ]);
            std::fs::read_to_string(&path).unwrap()
        };
        let (first, second) = (run_trace("a"), run_trace("b"));
        assert_eq!(
            first, second,
            "{kern}: adaptive virtual-clock trace not byte-identical across runs"
        );
        check_golden(trace, &first);
    }
}

/// The `--lint` JSON report (schema `polaris-verify/lint/v1`). Both
/// kernels lint clean — zero findings is itself the interesting
/// snapshot: a new lint that starts firing on them shows up as drift
/// here before it ships.
#[test]
fn lint_json_matches_golden_for_mdg_and_track() {
    for (kern, golden) in [("mdg.f", "MDG.lint.json"), ("track.f", "TRACK.lint.json")] {
        let (stdout, _) = polarisc(&["--lint", &kernel(kern)]);
        check_golden(golden, &stdout);
    }
}

/// Pin the uniform exit-code contract across `--verify` / `--lint` /
/// fault injection: 0 ok, 1 degraded, 2 violation, `--strict`
/// escalating only the degraded case.
#[test]
fn exit_codes_are_uniform_across_verify_lint_and_faults() {
    let dir = std::env::temp_dir().join("polarisc_exit_test");
    std::fs::create_dir_all(&dir).unwrap();
    let warn = dir.join("warn.f");
    // Dead store: a lint *warning* → degraded (1), strict escalates (2).
    std::fs::write(
        &warn,
        "program w\nreal a(10)\nt = 1.0\nt = 2.0\ndo i = 1, 10\n  a(i) = t\nend do\n\
         print *, a(1)\nend\n",
    )
    .unwrap();
    let bad = dir.join("bad.f");
    // Constant out-of-bounds subscript: a lint *error* → violation (2),
    // with or without --strict.
    std::fs::write(
        &bad,
        "program b\nreal a(10)\ndo i = 1, 10\n  a(i) = 1.0\nend do\na(11) = 2.0\n\
         print *, a(1)\nend\n",
    )
    .unwrap();
    let code = |args: &[&str]| -> i32 {
        Command::new(env!("CARGO_BIN_EXE_polarisc")).args(args).output().unwrap().status.code().unwrap()
    };
    let mdg = kernel("mdg.f");
    let warn = warn.to_str().unwrap();
    let bad = bad.to_str().unwrap();
    for (args, want) in [
        (vec!["--verify", mdg.as_str()], 0),
        (vec!["--lint", mdg.as_str()], 0),
        // panic fault → rollback → degraded 1; --strict escalates to 2
        (vec!["--inject-fault", "dce", "--quiet", mdg.as_str()], 1),
        (vec!["--inject-fault", "dce", "--strict", "--quiet", mdg.as_str()], 2),
        (vec!["--inject-fault", "dce", "--verify", mdg.as_str()], 1),
        (vec!["--lint", warn], 1),
        (vec!["--lint", "--strict", warn], 2),
        (vec!["--lint", bad], 2),
        (vec!["--lint", "--strict", bad], 2),
        (vec!["--verify", bad], 0),
    ] {
        assert_eq!(code(&args), want, "polarisc {args:?}");
    }
}

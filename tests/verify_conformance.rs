//! Conformance suite for the static verifier (`polaris-verify`): every
//! program the pipeline emits must pass the full invariant set, and the
//! static race detector's verdicts must agree with the runtime
//! dependence oracle on the safe side — a loop the detector calls
//! `clean` that the oracle then sees violate a dependence is a
//! soundness failure and fails hard. The reverse (static abstention on
//! a dynamically clean loop) is a precision miss and is only counted.
//!
//! The corpus matches `oracle_conformance.rs`: the full 17-kernel
//! benchmark suite (Table 1 + TRACK) plus the 256-seed deterministic
//! fuzz corpus shared with `fuzz_differential.rs`.

use polaris::fuzz::generate_program;
use polaris::verify::{agreement, verify_compiled, RaceVerdict};
use polaris::{MachineConfig, PassOptions};
use polaris_machine::{audit, audit_with};

/// Matches `fuzz_differential.rs`: bounded generated programs finish
/// well under this; a miscompiled endless loop fails fast.
const FUEL: u64 = 2_000_000;

#[test]
fn kernels_verify_clean_and_static_race_agrees_with_oracle() {
    let mut kernels = polaris_benchmarks::all();
    kernels.push(polaris_benchmarks::track());
    kernels.extend(polaris_benchmarks::irregular().into_iter().map(|(b, _)| b));
    assert_eq!(
        kernels.len(),
        23,
        "the paper's suite is 16 codes + TRACK + 6 irregular kernels"
    );

    let mut compared = 0usize;
    let mut precision_misses = 0usize;
    let mut clean = 0usize;
    for b in &kernels {
        let out = polaris::parallelize(b.source, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
        let v = verify_compiled(&out.program, &out.report);
        assert!(v.ok(), "{}: {:?}", b.name, v.final_violations);
        assert!(v.verifier_rollbacks.is_empty(), "{}: {:?}", b.name, v.verifier_rollbacks);
        assert!(v.invariants_checked > 0, "{}: verifier never ran", b.name);
        let race = v.race.as_ref().unwrap_or_else(|| panic!("{}: no race report", b.name));
        clean += race.count(RaceVerdict::Clean);
        let oracle = audit(&out.program, &out.report)
            .unwrap_or_else(|e| panic!("{}: oracle run: {e}", b.name));
        let a = agreement(race, &oracle);
        assert!(
            a.sound(),
            "{}: static `clean` contradicted by the oracle on {:?}",
            b.name,
            a.soundness_failures
        );
        compared += a.compared;
        precision_misses += a.precision_misses.len();
    }
    // The cross-check must not be vacuous, and the detector must prove
    // most claims outright rather than abstaining everywhere.
    assert!(compared > 0, "no PARALLEL claims joined across the suite");
    assert!(clean > 0, "the detector never proved a claim clean");
    assert!(
        precision_misses <= compared,
        "precision misses {precision_misses} exceed compared claims {compared}"
    );
}

fn fuzz_corpus_verifies(seeds: std::ops::Range<u64>) {
    let cfg = MachineConfig::serial().with_fuel(FUEL);
    for seed in seeds {
        let src = generate_program(seed);
        let out = polaris::parallelize(&src, &PassOptions::polaris())
            .unwrap_or_else(|e| panic!("seed {seed}: compile: {e}\n{src}"));
        let v = verify_compiled(&out.program, &out.report);
        assert!(
            v.ok(),
            "seed {seed}: verifier violation\n--- source ---\n{src}\n--- violations ---\n{:?}",
            v.final_violations
        );
        assert!(v.verifier_rollbacks.is_empty(), "seed {seed}: {:?}", v.verifier_rollbacks);
        let Some(race) = &v.race else { continue };
        let oracle = audit_with(&out.program, &out.report, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: oracle run: {e}\n{src}"));
        let a = agreement(race, &oracle);
        assert!(
            a.sound(),
            "seed {seed}: static `clean` contradicted by the oracle\n\
             --- source ---\n{src}\n--- failures ---\n{:?}",
            a.soundness_failures
        );
    }
}

#[test]
fn fuzz_corpus_verifies_seeds_0_64() {
    fuzz_corpus_verifies(0..64);
}

#[test]
fn fuzz_corpus_verifies_seeds_64_128() {
    fuzz_corpus_verifies(64..128);
}

#[test]
fn fuzz_corpus_verifies_seeds_128_192() {
    fuzz_corpus_verifies(128..192);
}

#[test]
fn fuzz_corpus_verifies_seeds_192_256() {
    fuzz_corpus_verifies(192..256);
}

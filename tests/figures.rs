//! Integration tests reproducing the paper's worked figures (1–5) as
//! assertions over the whole pipeline. The evaluation figures (6, 7)
//! and Table 1 are covered by the `polaris-bench` harnesses and the
//! `polaris-benchmarks` suite tests.

use polaris::{parallelize, PassOptions};

/// Figure 1: substitution of cascaded inductions in a triangular nest.
#[test]
fn figure1_cascaded_inductions() {
    let src = "
      program fig1
      real b(100000)
      integer k1, k2
      k1 = 0
      k2 = 0
      do i = 1, n
        k1 = k1 + 1
        do j = 1, i
          k2 = k2 + k1
          b(k2) = 1.0
        end do
      end do
      end
";
    let out = parallelize(src, &PassOptions::polaris()).unwrap();
    assert_eq!(out.report.induction.additive_removed, 2, "{:#?}", out.report.induction);
    assert!(!out.annotated_source.contains("K2 = K2+"), "{}", out.annotated_source);
    // the closed form is cubic in I (sum over triangular nest of a
    // linear induction) — check the unparsed text carries a power
    assert!(
        out.annotated_source.contains("I**3") || out.annotated_source.contains("I**2"),
        "{}",
        out.annotated_source
    );
}

/// Figure 2: the TRFD/OLDA nest — all three loops parallel after
/// substitution, and the subscript is the paper's closed form.
#[test]
fn figure2_trfd() {
    let src = "
      program trfd
      real a(100000)
      integer x, x0
!$assert (n >= 1)
      x0 = 0
      do i = 0, m - 1
        x = x0
        do j = 0, n - 1
          do k = 0, j - 1
            x = x + 1
            a(x) = 1.0
          end do
        end do
        x0 = x0 + (n**2 + n)/2
      end do
      end
";
    let out = parallelize(src, &PassOptions::polaris()).unwrap();
    assert_eq!(out.report.parallel_loops(), 3, "{:#?}", out.report.loops);
    // baseline leaves the outer loops serial
    let vfa = parallelize(src, &PassOptions::vfa()).unwrap();
    assert!(!vfa.report.loop_report("do7").unwrap().parallel);
    assert!(!vfa.report.loop_report("do9").unwrap().parallel);
}

/// Figure 3: OCEAN/FTRVMT — parallel only via loop permutation.
#[test]
fn figure3_ocean_permutation() {
    let src = "
      program ocean
      real a(2000000)
      integer x
!$assert (x >= 1)
!$assert (zk >= 0)
      do k = 0, x - 1
        do j = 0, zk
          do i = 0, 128
            a(258*x*j + 129*k + i + 1) = 1.0
            a(258*x*j + 129*k + i + 1 + 129*x) = 2.0
          end do
        end do
      end do
      end
";
    let out = parallelize(src, &PassOptions::polaris()).unwrap();
    assert_eq!(out.report.parallel_loops(), 3, "{:#?}", out.report.loops);
    let (_, _, _, perms) = out.report.dd_counters;
    assert!(perms >= 1, "permutation step must be exercised");
    // without permutation the outer loop fails
    let mut opts = PassOptions::polaris();
    opts.permutation = false;
    let cut = parallelize(src, &opts).unwrap();
    assert!(!cut.report.loop_report("do7").unwrap().parallel, "{:#?}", cut.report.loops);
}

/// Figure 4: array privatization requiring the global MP = M*P fact.
#[test]
fn figure4_global_defuse() {
    let src = "
      program fig4
      real a(10000), b(100, 100), c(100, 100)
      integer mp, m, p
!$assert (m >= 1)
!$assert (p >= 1)
      mp = m*p
      do i = 1, 100
        do j = 1, mp
          a(j) = b(i, j)
        end do
        do k = 1, m*p
          c(i, k) = a(k)
        end do
      end do
      end
";
    let out = parallelize(src, &PassOptions::polaris()).unwrap();
    let outer = out.report.loop_report("do8").unwrap();
    assert!(outer.parallel && outer.private.contains(&"A".to_string()), "{outer:?}");
    // breaking the def-use fact (M redefined in between) kills the proof
    let broken = src.replace("      mp = m*p\n", "      mp = m*p\n      m = m + 1\n");
    let out2 = parallelize(&broken, &PassOptions::polaris()).unwrap();
    let outer2 = out2.report.loop_report("do9").unwrap();
    assert!(!outer2.parallel, "{outer2:?}");
}

/// Figure 5: the BDNA compaction idiom.
#[test]
fn figure5_bdna_compaction() {
    let src = "
      program fig5
      real a(500), x(500, 500), y(500, 500)
      integer ind(500), p, m
      do i = 2, n
        do j = 1, i - 1
          ind(j) = 0
          a(j) = x(i, j) - y(i, j)
          r = a(j) + w
          if (r .lt. rcuts) ind(j) = 1
        end do
        p = 0
        do k = 1, i - 1
          if (ind(k) .ne. 0) then
            p = p + 1
            ind(p) = k
          end if
        end do
        do l = 1, p
          m = ind(l)
          x(i, l) = a(m) + z
        end do
      end do
      end
";
    let out = parallelize(src, &PassOptions::polaris()).unwrap();
    let outer = out.report.loop_report("do5").unwrap();
    assert!(outer.parallel, "{outer:?}");
    for name in ["A", "IND", "P", "R", "M"] {
        assert!(outer.private.contains(&name.to_string()), "{name} missing: {outer:?}");
    }
    // the directive in the output carries the privatization
    assert!(out.annotated_source.contains("PRIVATE("), "{}", out.annotated_source);
}

/// §3.5: a loop with input-dependent subscripts is parallelized
/// speculatively and annotated as such.
#[test]
fn section35_speculative_annotation() {
    let src = "
      program spec
      real v(1000), e(1000)
      integer ipos(1000)
      do i = 1, 1000
        v(ipos(i)) = e(i)
      end do
      print *, v(1)
      end
";
    let out = parallelize(src, &PassOptions::polaris()).unwrap();
    assert_eq!(out.report.speculative_loops(), 1, "{:#?}", out.report.loops);
    assert!(out.annotated_source.contains("SPECULATIVE(V)"), "{}", out.annotated_source);
    // baseline: plain serial
    let vfa = parallelize(src, &PassOptions::vfa()).unwrap();
    assert_eq!(vfa.report.speculative_loops(), 0);
}

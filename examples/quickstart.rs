//! Quickstart: feed a small Fortran program through the Polaris
//! pipeline, look at the annotated output, and execute it on the
//! simulated 8-processor machine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use polaris::{parallelize_and_run, MachineConfig, PassOptions};

const SOURCE: &str = "
      program quick
      integer n
      parameter (n = 20000)
      real a(n), b(n)
      real s

! data setup
      do i = 1, n
        b(i) = 1.0/i
      end do

! a privatizable temporary plus a sum reduction: both are recognized
! and the loops below run as DOALLs
      s = 0.0
      do i = 1, n
        t = b(i)*2.0 + 1.0
        a(i) = t*t
        s = s + a(i)
      end do

      print *, 'sum of squares', s
      end
";

fn main() {
    let (serial, parallel, out) = parallelize_and_run(
        SOURCE,
        &PassOptions::polaris(),
        &MachineConfig::challenge_8(),
    )
    .expect("pipeline failed");

    println!("--- annotated program ---------------------------------------");
    print!("{}", out.annotated_source);
    println!("--- analysis ------------------------------------------------");
    for l in &out.report.loops {
        println!(
            "  {:<14} parallel={} private={:?} reductions={:?}",
            l.label, l.parallel, l.private, l.reductions
        );
    }
    println!("--- execution (simulated SGI Challenge, 8 procs) -------------");
    for line in &parallel.output {
        println!("  {line}");
    }
    println!(
        "  serial {:.1} Mcycles, parallel {:.1} Mcycles -> speedup {:.2}x",
        serial.cycles as f64 / 1e6,
        parallel.cycles as f64 / 1e6,
        serial.cycles as f64 / parallel.cycles as f64
    );
    assert_eq!(serial.output, parallel.output);
}

//! The paper's running example (Figures 1 and 2): cascaded induction
//! variables in a triangular loop nest, substituted into closed forms
//! whose nonlinear subscripts only the range test can analyze.
//!
//! ```sh
//! cargo run --example trfd_induction
//! ```

use polaris::{parallelize, InductionMode, PassOptions};

const TRFD: &str = "
      program trfd
      real a(100000)
      integer x, x0
!$assert (n >= 1)
      x0 = 0
      do i = 0, m - 1
        x = x0
        do j = 0, n - 1
          do k = 0, j - 1
            x = x + 1
            a(x) = 1.0
          end do
        end do
        x0 = x0 + (n**2 + n)/2
      end do
      end
";

fn main() {
    println!("=== original (Figure 2, left column) =========================");
    println!("{TRFD}");

    let out = parallelize(TRFD, &PassOptions::polaris()).unwrap();
    println!("=== after Polaris (cf. Figure 2, right column) ===============");
    print!("{}", out.annotated_source);
    println!();
    println!(
        "induction variables removed: {} additive (X and the cascaded X0)",
        out.report.induction.additive_removed
    );
    println!("loop verdicts:");
    for l in &out.report.loops {
        println!(
            "  {:<12} {}",
            l.label,
            if l.parallel { "PARALLEL" } else { "serial" }
        );
    }
    assert_eq!(out.report.parallel_loops(), 3, "all three loops of the nest");

    // The same program through the baseline: the recurrence survives
    // (simple induction only handles loop-invariant increments placed
    // directly in the loop body) and everything stays serial.
    let vfa = parallelize(TRFD, &PassOptions::vfa()).unwrap();
    println!();
    println!("baseline (simple induction + linear tests) for comparison:");
    for l in &vfa.report.loops {
        println!(
            "  {:<12} {}",
            l.label,
            if l.parallel {
                "PARALLEL".to_string()
            } else {
                format!("serial — {}", l.serial_reason.as_deref().unwrap_or("?"))
            }
        );
    }
    assert!(!vfa.report.loop_report("do7").map(|l| l.parallel).unwrap_or(true));

    // And with induction disabled entirely, nothing can happen at all.
    let mut off = PassOptions::polaris();
    off.induction = InductionMode::Off;
    let none = parallelize(TRFD, &off).unwrap();
    println!();
    println!(
        "with induction substitution disabled entirely: {} parallel loops",
        none.report.parallel_loops()
    );
}

//! Figure 3: the OCEAN/FTRVMT loop nest whose outer loop can only be
//! proven parallel by the range test *with loop permutation* — the
//! middle loop's stride (258·X) exceeds the outer loop's stride (129),
//! interleaving the per-iteration access ranges.
//!
//! ```sh
//! cargo run --example ocean_rangetest
//! ```

use polaris::core::ddtest::{range_test, DdStats};
use polaris::symbolic::poly::{DivPolicy, Poly};
use polaris::symbolic::{Range, RangeEnv};
use polaris::{parallelize, PassOptions};

const FTRVMT: &str = "
      program ocean
      real a(2000000)
      integer x
!$assert (x >= 1)
!$assert (zk >= 0)
      do k = 0, x - 1
        do j = 0, zk
          do i = 0, 128
            a(258*x*j + 129*k + i + 1) = 1.0
            a(258*x*j + 129*k + i + 1 + 129*x) = 2.0
          end do
        end do
      end do
      end
";

fn poly(src: &str) -> Poly {
    let full = format!("program t\nv = {src}\nend\n");
    let prog = polaris::ir::parse(&full).unwrap();
    match &prog.units[0].body.0[0].kind {
        polaris::ir::StmtKind::Assign { rhs, .. } => Poly::from_expr(rhs, DivPolicy::Exact).unwrap(),
        _ => unreachable!(),
    }
}

fn main() {
    println!("Figure 3 nest:\n{FTRVMT}");

    // Full pipeline: all three loops parallel.
    let out = parallelize(FTRVMT, &PassOptions::polaris()).unwrap();
    println!("pipeline verdicts:");
    for l in &out.report.loops {
        println!("  {:<12} {}", l.label, if l.parallel { "PARALLEL" } else { "serial" });
    }
    let (_, _, probes, perms) = out.report.dd_counters;
    println!("  range-test probes: {probes}, permutations used: {perms}");
    assert!(perms >= 1, "the permutation step must fire");
    assert_eq!(out.report.parallel_loops(), 3);

    // The same question asked directly of the range test, showing the
    // permutation making the difference.
    let il = |var: &str, lo: &str, hi: &str| range_test::InnerLoop {
        var: var.into(),
        lo: poly(lo),
        hi: poly(hi),
        step: 1,
    };
    let inner = vec![il("J", "0", "zk"), il("I", "0", "128")];
    let f = range_test::RefSpec { subs: vec![poly("258*x*j + 129*k + i + 1")], inner: inner.clone() };
    let mut env = RangeEnv::new();
    env.set("K", Range::new(Some(Poly::int(0)), Some(poly("x - 1"))));
    env.set("X", Range::at_least(Poly::int(1)));
    env.set("ZK", Range::at_least(Poly::int(0)));
    let self_loop = il("K", "0", "x - 1");
    let stats = DdStats::new();
    let direct = range_test::no_carried_dependence(&f, &f, "K", 1, &self_loop, &env, &stats, false);
    let permuted = range_test::no_carried_dependence(&f, &f, "K", 1, &self_loop, &env, &stats, true);
    println!();
    println!("range test on the outer K loop, permutation disabled: {direct}");
    println!("range test on the outer K loop, permutation enabled:  {permuted}");
    assert!(!direct && permuted);
}

//! §3.5 with real threads: the Privatizing-Doall (LRPD) test from
//! `polaris-runtime`, applied to loops whose access patterns are a
//! function of the input data.
//!
//! ```sh
//! cargo run --release --example runtime_speculation
//! ```

use polaris::runtime::{run_sequential, speculative_doall, ArrayView};

fn main() {
    let n = 1 << 14;
    let threads = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(4);

    // Case 1: an input-dependent permutation — fully parallel, but no
    // compile-time test can know that.
    let perm: Vec<usize> = (0..n).map(|i| (i * 77 + 13) % n).collect();
    let mut data = vec![0f64; n];
    let out = speculative_doall(&mut data, n, threads, false, |i, v| {
        v.write(perm[i], (i as f64).sqrt());
    });
    println!(
        "permutation scatter: success={} (flow/anti={}, output={}, np={})",
        out.success(),
        out.flow_anti,
        out.output_dep,
        out.not_privatizable
    );
    println!(
        "  exec {:?}, pd-test {:?}, {} writes / {} marks",
        out.exec_time, out.test_time, out.writes, out.marks
    );
    assert!(out.success());

    // Case 2: colliding indices — the PD test detects the output
    // dependence, nothing is committed, and we fall back to sequential.
    let collide: Vec<usize> = (0..n).map(|i| i % (n / 4)).collect();
    let mut data2 = vec![0f64; n];
    let out2 = speculative_doall(&mut data2, n, threads, false, |i, v| {
        v.write(collide[i], i as f64);
    });
    println!();
    println!(
        "colliding scatter: success={} (output dependence={})",
        out2.success(),
        out2.output_dep
    );
    assert!(!out2.success());
    assert!(data2.iter().all(|&x| x == 0.0), "failed speculation must not commit");
    run_sequential(&mut data2, n, |i, v| {
        v.write(collide[i], i as f64);
    });
    println!("  re-executed sequentially; final element = {}", data2[0]);

    // Case 3: per-iteration scratch usage — not a plain doall (output
    // dependences on the scratch), but valid when privatized, which the
    // same test verifies at run time.
    let mut scratch = vec![0f64; 8];
    let body = |i: usize, v: &mut dyn ArrayView<f64>| {
        for k in 0..8 {
            v.write(k, (i + k) as f64);
        }
        let mut acc = 0.0;
        for k in 0..8 {
            acc += v.read(k);
        }
        v.write(0, acc);
    };
    let plain = speculative_doall(&mut scratch, 64, threads, false, body);
    let mut scratch2 = vec![0f64; 8];
    let privatized = speculative_doall(&mut scratch2, 64, threads, true, body);
    println!();
    println!(
        "scratch array: plain doall valid={}, privatized valid={}",
        plain.parallel_valid, privatized.privatized_valid
    );
    assert!(!plain.parallel_valid && privatized.privatized_valid);
    let mut reference = vec![0f64; 8];
    run_sequential(&mut reference, 64, body);
    assert_eq!(scratch2, reference, "last-value commit matches sequential");
    println!("  committed values match sequential execution");
}

//! Figures 4 and 5: array privatization.
//!
//! Figure 4 needs the *global def-use* fact `MP = M*P` to prove the
//! defined region `A(1:MP)` covers the used region `A(1:M*P)`.
//! Figure 5 (from BDNA) needs the compaction-idiom recognizer: the
//! values stored in `IND(1:P)` are loop indices from `[1, I-1]`, so the
//! uses `A(IND(L))` fall inside the defined region `A(1:I-1)`.
//!
//! ```sh
//! cargo run --example bdna_privatization
//! ```

use polaris::{parallelize, PassOptions};

const FIGURE4: &str = "
      program fig4
      real a(10000), b(100, 100), c(100, 100)
      integer mp, m, p
!$assert (m >= 1)
!$assert (p >= 1)
      mp = m*p
      do i = 1, 100
        do j = 1, mp
          a(j) = b(i, j)
        end do
        do k = 1, m*p
          c(i, k) = a(k)
        end do
      end do
      end
";

const FIGURE5: &str = "
      program fig5
      real a(500), x(500, 500), y(500, 500)
      integer ind(500), p, m
      do i = 2, n
        do j = 1, i - 1
          ind(j) = 0
          a(j) = x(i, j) - y(i, j)
          r = a(j) + w
          if (r .lt. rcuts) ind(j) = 1
        end do
        p = 0
        do k = 1, i - 1
          if (ind(k) .ne. 0) then
            p = p + 1
            ind(p) = k
          end if
        end do
        do l = 1, p
          m = ind(l)
          x(i, l) = a(m) + z
        end do
      end do
      end
";

fn main() {
    println!("=== Figure 4: MP = M*P proved through flow-sensitive ranges ===");
    let out4 = parallelize(FIGURE4, &PassOptions::polaris()).unwrap();
    let outer4 = out4.report.loop_report("do8").expect("outer loop");
    println!(
        "outer loop: parallel={} private={:?}",
        outer4.parallel, outer4.private
    );
    assert!(outer4.parallel);
    assert!(outer4.private.contains(&"A".to_string()), "{outer4:?}");

    println!();
    println!("=== Figure 5: the BDNA compaction idiom =======================");
    let out5 = parallelize(FIGURE5, &PassOptions::polaris()).unwrap();
    let outer5 = out5.report.loop_report("do5").expect("outer loop");
    println!(
        "outer loop: parallel={} private={:?}",
        outer5.parallel, outer5.private
    );
    assert!(outer5.parallel, "{outer5:?}");
    for name in ["A", "IND", "P", "R", "M"] {
        assert!(
            outer5.private.contains(&name.to_string()),
            "{name} should be private: {outer5:?}"
        );
    }
    println!();
    println!("without array privatization the same loop stays serial:");
    let mut off = PassOptions::polaris();
    off.array_privatization = false;
    let cut = parallelize(FIGURE5, &off).unwrap();
    let outer_cut = cut.report.loop_report("do5").unwrap();
    println!(
        "outer loop: parallel={} reason={:?}",
        outer_cut.parallel, outer_cut.serial_reason
    );
    assert!(!outer_cut.parallel);
}

//! # polaris — a Rust reproduction of the Polaris parallelizing compiler
//!
//! This crate is the facade over the workspace that reproduces
//! *"Restructuring Programs for High-Speed Computers with Polaris"*
//! (Blume et al., ICPP 1996): a source-to-source automatic parallelizer
//! for a Fortran-77 subset, together with the run-time speculative
//! parallelization framework and the evaluation substrate used to
//! regenerate the paper's tables and figures.
//!
//! ```
//! use polaris::{parallelize, PassOptions};
//!
//! let source = "
//!     program demo
//!     real a(100), b(100)
//!     do i = 1, 100
//!       t = b(i) * 2.0
//!       a(i) = t + 1.0
//!     end do
//!     print *, a(1)
//!     end
//! ";
//! let output = parallelize(source, &PassOptions::polaris()).unwrap();
//! assert!(output.annotated_source.contains("!$POLARIS DOALL PRIVATE(T)"));
//! assert_eq!(output.report.parallel_loops(), 1);
//! ```
//!
//! The sub-crates, one per system the paper describes (see `DESIGN.md`):
//!
//! | crate | paper section |
//! |---|---|
//! | [`ir`] (`polaris-ir`) | §2 — the Fortran IR, parser, pattern matching, unparser |
//! | [`symbolic`] (`polaris-symbolic`) | §3.3 — polynomials, ranges, monotonicity, Faulhaber sums |
//! | [`core`](mod@core) (`polaris-core`) | §3 — the restructurer: inlining, induction, reductions, range test, privatization |
//! | [`runtime`] (`polaris-runtime`) | §3.5 — the threaded LRPD / Privatizing-Doall test |
//! | [`machine`] (`polaris-machine`) | §4 — the simulated multiprocessor and validation harness |
//! | [`benchmarks`] (`polaris-benchmarks`) | §4.1 — the 16 Table-1 kernels plus TRACK |
//! | [`obs`] (`polaris-obs`) | observability: spans, typed counters, chrome-trace / metrics export |
//! | [`verify`] (`polaris-verify`) | verification: inter-pass invariant checking, static race detection, lints |
//! | [`daemon`] (`polarisd`) | the crash-only compile service: deadlines, retry, circuit-breaker quarantine |

pub mod fuzz;

pub use polaris_benchmarks as benchmarks;
pub use polaris_core as core;
pub use polaris_ir as ir;
pub use polaris_machine as machine;
pub use polaris_obs as obs;
pub use polaris_runtime as runtime;
pub use polaris_symbolic as symbolic;
pub use polaris_verify as verify;
pub use polarisd as daemon;

pub use polaris_core::{CompileReport, InductionMode, LoopReport, PassOptions};
pub use polaris_ir::{CompileError, Program};
pub use polaris_machine::{Engine, MachineConfig, RunResult};

/// The result of [`parallelize`].
#[derive(Debug, Clone)]
pub struct ParallelizeOutput {
    /// The transformed program (annotations attached to its loops).
    pub program: Program,
    /// The transformed program unparsed with `!$POLARIS` directives.
    pub annotated_source: String,
    /// What every pass did.
    pub report: CompileReport,
}

/// One-call driver: parse F-Mini source, run the restructuring pipeline,
/// and return the annotated program.
pub fn parallelize(
    source: &str,
    opts: &PassOptions,
) -> Result<ParallelizeOutput, CompileError> {
    let (program, report) = polaris_core::parse_and_compile(source, opts)?;
    let annotated_source = polaris_ir::printer::print_program(&program);
    Ok(ParallelizeOutput { program, annotated_source, report })
}

/// Parse + compile + execute on the simulated machine, returning
/// `(serial result, parallel result)`; convenience for examples/tests.
pub fn parallelize_and_run(
    source: &str,
    opts: &PassOptions,
    config: &MachineConfig,
) -> Result<(RunResult, RunResult, ParallelizeOutput), Box<dyn std::error::Error>> {
    let mut original = polaris_ir::parse(source)?;
    // The machine executes call-free programs; inline the reference copy
    // too when needed (inlining is semantics-preserving, so the serial
    // baseline is unchanged).
    let has_calls = original
        .main()
        .map(|m| {
            let mut found = false;
            m.body.walk(&mut |s| {
                if matches!(s.kind, polaris_ir::StmtKind::Call { .. }) {
                    found = true;
                }
            });
            found
        })
        .unwrap_or(false);
    if has_calls {
        polaris_core::inline::inline_all(&mut original)?;
    }
    let serial = polaris_machine::run_serial(&original)?;
    let out = parallelize(source, opts)?;
    let parallel = polaris_machine::run(&out.program, config)?;
    Ok((serial, parallel, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_round_trip() {
        let src = "program t\nreal a(2000)\ndo i = 1, 2000\n  a(i) = i*1.5\nend do\nprint *, a(9)\nend\n";
        let (serial, parallel, out) =
            parallelize_and_run(src, &PassOptions::polaris(), &MachineConfig::challenge_8())
                .unwrap();
        assert_eq!(serial.output, parallel.output);
        assert!(parallel.cycles < serial.cycles);
        assert_eq!(out.report.parallel_loops(), 1);
        // the annotated source re-parses and re-analyzes identically
        let again = parallelize(&out.annotated_source, &PassOptions::polaris()).unwrap();
        assert_eq!(again.report.parallel_loops(), 1);
    }
}

//! `polarisd-client` — a one-shot client for the `polarisd` compile
//! service: read an F-Mini source file, submit it as a `polarisd/v1`
//! request, print the response line, and exit with the response's
//! `exit_code` (so shell scripts and CI gates see the same 0/1/2
//! contract as `polarisc`).
//!
//! ```text
//! polarisd-client [OPTIONS] FILE.f
//!   --connect ADDR    send the request to a running `polarisd` TCP
//!                     listener (e.g. 127.0.0.1:7878); without this the
//!                     client spins up an in-process service, which is
//!                     the zero-setup path for local use
//!   --vfa             request the PFA-like baseline configuration
//!   --deadline-ms MS  per-request wall deadline; a blown deadline comes
//!                     back `degraded` (partial compile), never a hang
//!   --client NAME     client identity for the service's per-client
//!                     fair queueing (default "cli")
//!   --id N            request id echoed in the response (default 1)
//!   --return-program  include the annotated program text in the response
//! ```
//!
//! Exit code = the response's `exit_code`: `0` for `ok`/`cached`, `1`
//! for `degraded`/`timeout`/`quarantined`/`rejected`/`error`, `2` for a
//! degraded compile with invariant violations. A transport failure
//! (unreachable daemon, malformed response) also exits 1.

use polarisd::proto::{Request, Response};
use polarisd::service::{Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: polarisd-client [--connect ADDR] [--vfa] [--deadline-ms MS] \
                     [--client NAME] [--id N] [--return-program] FILE.f";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut file: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut vfa = false;
    let mut deadline_ms: Option<u64> = None;
    let mut client = "cli".to_string();
    let mut id = 1u64;
    let mut return_program = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => match args.next() {
                Some(addr) => connect = Some(addr),
                None => return fail("--connect needs an address"),
            },
            "--vfa" => vfa = true,
            "--deadline-ms" => {
                deadline_ms = match args.next().and_then(|v| v.parse().ok()) {
                    Some(ms) => Some(ms),
                    None => return fail("--deadline-ms needs a number"),
                };
            }
            "--client" => match args.next() {
                Some(name) => client = name,
                None => return fail("--client needs a name"),
            },
            "--id" => {
                id = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => return fail("--id needs a number"),
                };
            }
            "--return-program" => return_program = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => return fail(&format!("unknown option `{other}`")),
        }
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {file}: {e}")),
    };

    let req = Request { id, client, vfa, deadline_ms, return_program, source };
    let resp = match &connect {
        Some(addr) => match over_tcp(addr, &req) {
            Ok(r) => r,
            Err(e) => return fail(&e),
        },
        None => in_process(req),
    };
    println!("{}", resp.to_json());
    ExitCode::from(resp.exit_code)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("polarisd-client: {msg}");
    ExitCode::FAILURE
}

/// One request over a live daemon's TCP listener.
fn over_tcp(addr: &str, req: &Request) -> Result<Response, String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(format!("{}\n", req.to_json()).as_bytes())
        .and_then(|_| writer.flush())
        .map_err(|e| format!("write to {addr} failed: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("read from {addr} failed: {e}"))?;
    if line.trim().is_empty() {
        return Err(format!("{addr} closed the connection without answering"));
    }
    Response::parse(line.trim()).map_err(|e| format!("malformed response: {e}"))
}

/// Zero-setup path: a short-lived in-process service with the default
/// resilience stack (deadline watchdog, retry, breaker, cache).
fn in_process(req: Request) -> Response {
    let service = Service::new(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    let id = req.id;
    let resp = service
        .submit(req)
        .wait_timeout(Duration::from_secs(120))
        .unwrap_or_else(|| {
            // The service's own watchdog makes this unreachable short of a
            // harness bug; answer in-protocol anyway.
            let mut r = Response::empty(id, polarisd::proto::Status::Rejected);
            r.reason = Some("client-side wait timed out".into());
            r
        });
    service.shutdown();
    resp
}

//! `polarisc` — the command-line driver, playing the role of the
//! original compiler's front door: read F-Mini source, restructure,
//! print the annotated program, optionally execute it on the simulated
//! multiprocessor.
//!
//! ```text
//! polarisc [OPTIONS] FILE.f
//!   --vfa           use the PFA-like baseline pipeline instead of Polaris
//!   --no-nest-opts  disable the loop-nest restructuring stages
//!                   (interchange, tiling, fusion); analysis still runs,
//!                   but no nest is transformed and no legality
//!                   certificate is emitted
//!   --report        print the per-loop analysis report
//!   --diag          print the per-stage pipeline diagnostics table, the
//!                   legality certificates behind every applied nest
//!                   transformation (direction-vector matrix included),
//!                   and the simulated speedup at --procs processors
//!   --run           execute on the machine and print speedup
//!   --oracle        execute serially with the dependence oracle attached
//!                   and audit every PARALLEL claim against the observed
//!                   cross-iteration dependences; prints the JSON report
//!                   to stdout (implies --quiet so stdout stays valid
//!                   JSON) and exits 2 on a soundness violation
//!   --procs N       processor count for --run/--diag (default 8, >= 1)
//!   --exec-mode M   parallel-loop backend for --run: `simulated`
//!                   (default; cycle-model multiprocessor) or `threaded`
//!                   (real OS threads, chunked scheduling)
//!   --threads N     worker threads for --exec-mode threaded
//!                   (default: the --procs value)
//!   --schedule S    parallel-loop scheduling policy for --run/--diag:
//!                   `static` (default; contiguous blocks, one per
//!                   worker), `stealing` (per-worker chunk deques with
//!                   work stealing — better balance for skewed
//!                   per-iteration costs), or `adaptive` (per-loop
//!                   runtime dispatcher: first invocation measures,
//!                   later invocations re-dispatch to the measured
//!                   winner, sustained LRPD misspeculation throttles
//!                   speculation with hysteresis; --diag prints the
//!                   decision table, persisted in the compile report)
//!   --engine E      statement execution engine for --run/--diag/--oracle:
//!                   `vm` (default; compact bytecode + register VM) or
//!                   `tree-walk` (the recursive reference interpreter kept
//!                   as the VM's differential oracle)
//!   --fuel N        execution step budget for --run (default unlimited)
//!   --validate      run the adversarial validation after --run
//!   --profile       print the per-loop execution profile after --run
//!   --verify        print the verification JSON report: inter-pass
//!                   invariant-checker totals, a final re-validation of
//!                   the emitted program, and the static race detector's
//!                   verdict for every PARALLEL claim; with --oracle the
//!                   report gains a static-vs-dynamic agreement block
//!                   (implies --quiet so stdout stays valid JSON)
//!   --lint          print the F-Mini lint findings as a JSON document
//!                   with line:col spans (implies --quiet); lint errors
//!                   are violations, lint warnings degrade the exit code
//!   --strict        escalate a degraded compile (rolled-back stage, lint
//!                   warnings) from exit 1 to exit 2
//!   --quiet         suppress the annotated source
//!   --trace PATH    record an observability trace of the compile (and of
//!                   --run / --oracle) and write it to PATH in Chrome
//!                   trace-event format (load in chrome://tracing or Perfetto)
//!   --metrics       print the observability counters/spans as a JSON
//!                   metrics document on stdout (implies --quiet and
//!                   suppresses --run's program-output echo, so stdout is
//!                   exactly the document)
//!   --clock MODE    observability clock: `monotonic` (default; real
//!                   microseconds) or `virtual` (deterministic tick per
//!                   event — two identical runs give byte-identical traces)
//!   --inject-fault STAGE
//!                   deliberately panic inside the named pipeline stage
//!                   (testing aid: exercises rollback and the degraded
//!                   exit path end to end); `STAGE:force` instead makes a
//!                   nest stage (interchange/tile/fuse) apply its best
//!                   *rejected* candidate — the emitted certificate is a
//!                   lie only the `--verify` re-prover catches
//! ```
//!
//! Exit codes, uniform across `--oracle`, `--verify` and `--lint`:
//!
//! * `0` — success: compiled cleanly, nothing flagged.
//! * `1` — *degraded* (a pipeline stage rolled back, or lint warnings),
//!   or a hard failure (bad input, compile error, execution error,
//!   output mismatch).
//! * `2` — *violation*: an invariant violation caught by the inter-pass
//!   verifier, an `--oracle` PARALLEL claim contradicted by an observed
//!   dependence, a static-clean/oracle-violating agreement soundness
//!   failure, or a lint error. Violations exit 2 with or without
//!   `--strict`.
//!
//! `--strict` escalates the degraded exit from `1` to `2` for CI gates
//! that want full optimization or nothing.

use polaris::machine::{Engine, Schedule};
use polaris::{MachineConfig, PassOptions};
use std::process::ExitCode;

const USAGE: &str = "usage: polarisc [--vfa] [--no-nest-opts] [--report] [--diag] [--run] \
                     [--oracle] [--verify] \
                     [--lint] [--procs N] [--exec-mode simulated|threaded] [--threads N] \
                     [--schedule static|adaptive|stealing] [--engine vm|tree-walk] [--fuel N] \
                     [--validate] [--profile] [--strict] [--quiet] [--trace PATH] [--metrics] \
                     [--clock monotonic|virtual] FILE.f";

/// Work-stealing chunk size when `--schedule stealing` is given without
/// further tuning: a few chunks per worker at the default trip counts.
const STEAL_CHUNK: usize = 4;

const EXIT_DEGRADED: u8 = 1;
const EXIT_VIOLATION: u8 = 2;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut file: Option<String> = None;
    let mut vfa = false;
    let mut no_nest_opts = false;
    let mut report = false;
    let mut diag = false;
    let mut run = false;
    let mut oracle = false;
    let mut verify = false;
    let mut lint = false;
    let mut validate = false;
    let mut profile = false;
    let mut strict = false;
    let mut quiet = false;
    let mut procs = 8usize;
    let mut threaded = false;
    let mut threads: Option<usize> = None;
    let mut schedule = Schedule::Static;
    let mut adaptive_ctrl: Option<std::sync::Arc<polaris::runtime::AdaptiveController>> = None;
    let mut engine = Engine::default();
    let mut fuel: Option<u64> = None;
    let mut inject: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut metrics = false;
    let mut clock = polaris::obs::ClockMode::Monotonic;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--vfa" => vfa = true,
            "--no-nest-opts" => no_nest_opts = true,
            "--report" => report = true,
            "--diag" => diag = true,
            "--run" => run = true,
            "--oracle" => {
                oracle = true;
                quiet = true;
            }
            "--verify" => {
                verify = true;
                quiet = true;
            }
            "--lint" => {
                lint = true;
                quiet = true;
            }
            "--validate" => validate = true,
            "--profile" => profile = true,
            "--strict" => strict = true,
            "--quiet" => quiet = true,
            "--procs" => {
                procs = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("polarisc: --procs needs a number");
                        return ExitCode::FAILURE;
                    }
                };
                if procs < 1 {
                    eprintln!("polarisc: --procs must be at least 1 (got {procs})");
                    return ExitCode::FAILURE;
                }
            }
            "--exec-mode" => match args.next().as_deref() {
                Some("simulated") => threaded = false,
                Some("threaded") => threaded = true,
                other => {
                    eprintln!(
                        "polarisc: --exec-mode needs `simulated` or `threaded` (got {})",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => {
                threads = match args.next().and_then(|v| v.parse().ok()) {
                    Some(0) | None => {
                        eprintln!("polarisc: --threads needs a positive count");
                        return ExitCode::FAILURE;
                    }
                    some => some,
                };
            }
            "--schedule" => match args.next().as_deref() {
                Some("static") => {
                    schedule = Schedule::Static;
                    adaptive_ctrl = None;
                }
                Some("stealing") => {
                    schedule = Schedule::Stealing { chunk: STEAL_CHUNK };
                    adaptive_ctrl = None;
                }
                Some("adaptive") => {
                    schedule = Schedule::Static;
                    adaptive_ctrl =
                        Some(std::sync::Arc::new(polaris::runtime::AdaptiveController::new()));
                }
                other => {
                    eprintln!(
                        "polarisc: --schedule needs `static`, `adaptive` or `stealing` (got {})",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--engine" => {
                engine = match args.next().as_deref().and_then(Engine::parse) {
                    Some(e) => e,
                    None => {
                        eprintln!("polarisc: --engine needs `vm` or `tree-walk`");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--fuel" => {
                fuel = match args.next().and_then(|v| v.parse().ok()) {
                    Some(0) | None => {
                        eprintln!("polarisc: --fuel needs a positive step count");
                        return ExitCode::FAILURE;
                    }
                    some => some,
                }
            }
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path),
                None => {
                    eprintln!("polarisc: --trace needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics" => {
                metrics = true;
                quiet = true;
            }
            "--clock" => match args.next().as_deref() {
                Some("monotonic") => clock = polaris::obs::ClockMode::Monotonic,
                Some("virtual") => clock = polaris::obs::ClockMode::Virtual,
                other => {
                    eprintln!(
                        "polarisc: --clock needs `monotonic` or `virtual` (got {})",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--inject-fault" => match args.next() {
                Some(stage) => inject.push(stage),
                None => {
                    eprintln!("polarisc: --inject-fault needs a stage name");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("polarisc: unknown option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("polarisc: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Parse exactly once; the untransformed program is kept as the
    // serial reference and the transformed copy goes through the
    // pipeline.
    let original = match polaris_ir::parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("polarisc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut opts = if vfa { PassOptions::vfa() } else { PassOptions::polaris() };
    if no_nest_opts {
        opts.nest_interchange = false;
        opts.nest_tiling = false;
        opts.nest_fusion = false;
    }
    if !inject.is_empty() {
        let known = polaris::core::pipeline::STAGE_NAMES;
        const NEST_STAGES: [&str; 3] = ["interchange", "tile", "fuse"];
        let mut plan = polaris::core::pipeline::FaultPlan::none();
        for spec in &inject {
            if let Some(stage) = spec.strip_suffix(":force") {
                if !NEST_STAGES.contains(&stage) {
                    eprintln!(
                        "polarisc: `:force` needs a nest stage (stages: {})",
                        NEST_STAGES.join(", ")
                    );
                    return ExitCode::FAILURE;
                }
                plan = plan.and_point(polaris::core::pipeline::FaultPoint {
                    stage: stage.to_string(),
                    unit: None,
                    kind: polaris::core::pipeline::FaultKind::ForceIllegal,
                });
            } else if known.contains(&spec.as_str()) {
                plan = plan.and_panic_in(spec.clone());
            } else {
                eprintln!("polarisc: unknown stage `{spec}` (stages: {})", known.join(", "));
                return ExitCode::FAILURE;
            }
        }
        opts = opts.with_faults(plan);
    }
    // One recorder for the whole invocation: compile, execution and the
    // oracle audit all land in the same trace/metrics document. Disabled
    // (every hook a no-op) unless --trace or --metrics asked for it.
    let rec = if trace_path.is_some() || metrics {
        polaris::obs::Recorder::with_clock(clock)
    } else {
        polaris::obs::Recorder::disabled()
    };

    let mut program = original.clone();
    let mut rep = match polaris::core::compile_recorded(&mut program, &opts, &rec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("polarisc: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !quiet {
        print!("{}", polaris_ir::printer::print_program(&program));
    }
    if report {
        eprintln!();
        eprintln!(
            "pipeline: {} call sites inlined, {} inductions removed, {} reductions flagged",
            rep.inline.call_sites_expanded,
            rep.induction.additive_removed + rep.induction.multiplicative_removed,
            rep.reductions_flagged
        );
        for l in &rep.loops {
            let verdict = if l.parallel {
                "PARALLEL".to_string()
            } else if l.speculative {
                "SPECULATIVE".to_string()
            } else {
                format!("serial ({})", l.serial_reason.as_deref().unwrap_or("?"))
            };
            let mut extra = String::new();
            if !l.private.is_empty() {
                extra.push_str(&format!(" private={:?}", l.private));
            }
            if !l.reductions.is_empty() {
                extra.push_str(&format!(" reductions={:?}", l.reductions));
            }
            if !l.index_facts.is_empty() {
                extra.push_str(&format!(" index-facts={:?}", l.index_facts));
            }
            eprintln!("  {:<24} {verdict}{extra}", l.label);
        }
        if rep.idxprop.proved > 0 {
            eprintln!(
                "idxprop: {}/{} index arrays proved ({} injective, {} monotone, {} bounded, {} permutations); property rule {}/{} proved",
                rep.idxprop.proved,
                rep.idxprop.arrays_analyzed,
                rep.idxprop.injective,
                rep.idxprop.monotone,
                rep.idxprop.bounded,
                rep.idxprop.permutations,
                rep.dd_props.1,
                rep.dd_props.0,
            );
        }
    }
    if diag {
        eprintln!();
        eprintln!("{:<16} {:<12} {:>10} {:>9}", "stage", "outcome", "ir delta", "time");
        for s in &rep.stages {
            let outcome = match &s.outcome {
                polaris::core::StageOutcome::Ok => "ok".to_string(),
                polaris::core::StageOutcome::Skipped => "skipped".to_string(),
                polaris::core::StageOutcome::RolledBack { reason } => {
                    format!("ROLLED BACK ({reason})")
                }
            };
            eprintln!(
                "{:<16} {:<12} {:>+10} {:>8.1?}",
                s.name, outcome, s.ir_delta, s.duration
            );
        }
        // The legality certificates behind every applied nest
        // transformation: the direction/distance matrix the prover
        // judged, and the transformation it licenses. `--verify`
        // re-derives each of these from the emitted IR.
        if !rep.nest.certs.is_empty() {
            eprintln!();
            eprintln!(
                "legality certificates ({} applied, {} candidate(s) rejected):",
                rep.nest.certs.len(),
                rep.nest.rejected
            );
            for cert in &rep.nest.certs {
                eprintln!(
                    "  {:<12} {}/{} over ({}): {}",
                    cert.kind.stage(),
                    cert.unit,
                    cert.label,
                    cert.loop_vars.join(", "),
                    cert.kind.describe()
                );
                for v in &cert.vectors {
                    eprintln!("      {}", v.render());
                }
            }
            for reason in &rep.nest.rejections {
                eprintln!("  rejected     {reason}");
            }
        }
        // Simulated speedup of the restructured program at the requested
        // processor count. (--procs used to be accepted here but never
        // consulted; the diagnostics always reflected the 8-proc
        // default.)
        let diag_fuel = fuel.unwrap_or(50_000_000);
        let serial_cfg = MachineConfig::serial().with_fuel(diag_fuel).with_engine(engine);
        let mut par_cfg = MachineConfig::challenge_8()
            .with_procs(procs)
            .with_fuel(diag_fuel)
            .with_engine(engine);
        par_cfg.schedule = schedule;
        if let Some(ctrl) = &adaptive_ctrl {
            par_cfg = par_cfg.with_adaptive(std::sync::Arc::clone(ctrl));
        }
        match (
            polaris_machine::run(&original, &serial_cfg),
            polaris_machine::run(&program, &par_cfg),
        ) {
            (Ok(serial), Ok(parallel)) => eprintln!(
                "simulated speedup @ {procs} procs: {:.2}x ({} -> {} cycles)",
                serial.cycles as f64 / parallel.cycles as f64,
                serial.cycles,
                parallel.cycles
            ),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("simulated speedup @ {procs} procs: n/a ({e})")
            }
        }
        if let Some(ctrl) = &adaptive_ctrl {
            eprintln!();
            eprintln!("adaptive decision table:");
            eprintln!(
                "{:<20} {:>4} {:<12} {:<10} {:>7} {:>8} {:>8} {:<12}",
                "loop", "inv", "strategy", "chunking", "threads", "trip", "cv", "event"
            );
            for r in ctrl.decision_rows() {
                eprintln!(
                    "{:<20} {:>4} {:<12} {:<10} {:>7} {:>8} {:>8.3} {:<12}",
                    r.label,
                    r.invocations,
                    r.strategy,
                    r.chunking,
                    r.threads,
                    r.trip,
                    r.cost_cv,
                    r.event
                );
            }
        }
    }

    if run {
        let serial_cfg = match fuel {
            Some(f) => MachineConfig::serial().with_fuel(f),
            None => MachineConfig::serial(),
        }
        .with_engine(engine);
        let serial = match polaris_machine::run(&original, &serial_cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("polarisc: serial execution failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut cfg = if threaded {
            MachineConfig::threaded(threads.unwrap_or(procs), schedule)
        } else {
            let mut c = MachineConfig::challenge_8().with_procs(procs);
            c.schedule = schedule;
            c
        }
        .with_engine(engine);
        if let Some(ctrl) = &adaptive_ctrl {
            cfg = cfg.with_adaptive(std::sync::Arc::clone(ctrl));
        }
        if let Some(f) = fuel {
            cfg = cfg.with_fuel(f);
        }
        let parallel = match polaris_machine::run_recorded(&program, &cfg, &rec) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("polarisc: parallel execution failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!();
        if !metrics {
            for line in &parallel.output {
                println!("{line}");
            }
        }
        if threaded {
            let n = threads.unwrap_or(procs);
            eprintln!(
                "serial {:.3}s(sim)  threaded({n} threads) wall {:.3}ms  simulated-model speedup {:.2}x",
                serial.seconds(),
                parallel.wall.as_secs_f64() * 1e3,
                serial.cycles as f64 / parallel.cycles as f64
            );
        } else {
            eprintln!(
                "serial {:.3}s  parallel({procs} procs) {:.3}s  speedup {:.2}x",
                serial.seconds(),
                parallel.seconds(),
                serial.cycles as f64 / parallel.cycles as f64
            );
        }
        if profile {
            eprintln!();
            eprint!("{}", parallel.profile());
        }
        if serial.output != parallel.output {
            eprintln!("polarisc: OUTPUT MISMATCH between serial and parallel runs!");
            return ExitCode::FAILURE;
        }
        if validate {
            match polaris_machine::run_validated(&program, &cfg) {
                Ok(_) => eprintln!("validation: adversarial execution matches sequential"),
                Err(e) => {
                    eprintln!("validation FAILED: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // Persist the adaptive decision table into the compile report once
    // all executions (--diag and/or --run) have fed the controller.
    if let Some(ctrl) = &adaptive_ctrl {
        rep.schedule_decisions = ctrl
            .decision_rows()
            .into_iter()
            .map(|r| polaris::core::ScheduleDecision {
                loop_id: r.loop_id,
                label: r.label,
                invocations: r.invocations,
                strategy: r.strategy.to_string(),
                chunking: r.chunking,
                threads: r.threads,
                trip: r.trip,
                cost_cv: r.cost_cv,
                misspec_streak: r.misspec_streak,
                event: r.event.to_string(),
            })
            .collect();
    }

    let mut audit_report = None;
    if oracle {
        let mut cfg = MachineConfig::serial().with_engine(engine);
        cfg.fuel = fuel;
        let audit = match polaris_machine::audit_recorded(&program, &rep, &cfg, &rec) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("polarisc: oracle execution failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", audit.to_json());
        for v in audit.violations() {
            eprintln!(
                "polarisc: ORACLE VIOLATION in {} ({} dependence on `{}`): {}",
                v.label, v.dep.kind, v.dep.var, v.detail
            );
        }
        audit_report = Some(audit);
    }

    let mut verify_violation = false;
    if verify {
        let v = polaris::verify::verify_compiled(&program, &rep);
        v.record(&rec);
        let agreement = match (&audit_report, &v.race) {
            (Some(audit), Some(race)) => Some(polaris::verify::agreement(race, audit)),
            _ => None,
        };
        println!("{}", v.to_json(agreement.as_ref()));
        for violation in &v.final_violations {
            eprintln!("polarisc: VERIFIER VIOLATION in emitted program: {violation}");
        }
        if let Some(a) = &agreement {
            for label in &a.soundness_failures {
                eprintln!(
                    "polarisc: AGREEMENT SOUNDNESS FAILURE: static race detector said \
                     `clean` for {label} but the oracle observed a dependence violation"
                );
            }
            verify_violation |= !a.sound();
        }
        verify_violation |= !v.ok();
    }

    let (mut lint_errors, mut lint_warnings) = (0, 0);
    if lint {
        let findings = polaris::verify::lint_program(&original, &source);
        rec.count(polaris::obs::Counter::VerifyLintFindings, findings.findings.len() as u64);
        print!("{}", findings.to_json());
        lint_errors = findings.errors();
        lint_warnings = findings.warnings();
    }

    // Emit the observability documents before the exit-code decisions so
    // a degraded compile or a violation still leaves a trace.
    if let Some(path) = &trace_path {
        if let Err(e) = std::fs::write(path, rec.chrome_trace_json()) {
            eprintln!("polarisc: cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if metrics {
        println!("{}", rec.metrics_json());
    }

    // Exit-code contract (uniform across --oracle/--verify/--lint):
    // violations always exit 2; a degraded-but-sound result exits 1, or
    // 2 under --strict; hard failures exited 1 above.
    let oracle_violation = audit_report.as_ref().is_some_and(|a| a.has_violations());
    let invariant_violation = rep.verify.violations > 0;
    if oracle_violation || invariant_violation || verify_violation || lint_errors > 0 {
        if invariant_violation {
            eprintln!(
                "polarisc: inter-pass verifier caught {} invariant violation(s) \
                 (rolled back: {})",
                rep.verify.violations,
                rep.rolled_back_stages().join(", ")
            );
        }
        if lint_errors > 0 {
            eprintln!("polarisc: {lint_errors} lint error(s)");
        }
        return ExitCode::from(EXIT_VIOLATION);
    }

    let degraded = rep.degraded() || lint_warnings > 0;
    if degraded {
        if rep.degraded() {
            let rolled = rep.rolled_back_stages().join(", ");
            eprintln!("polarisc: warning: pipeline degraded (rolled back: {rolled})");
        }
        if lint_warnings > 0 {
            eprintln!("polarisc: {lint_warnings} lint warning(s)");
        }
        if strict {
            eprintln!("polarisc: degraded result escalated under --strict");
            return ExitCode::from(EXIT_VIOLATION);
        }
        return ExitCode::from(EXIT_DEGRADED);
    }
    ExitCode::SUCCESS
}

//! `polarisc` — the command-line driver, playing the role of the
//! original compiler's front door: read F-Mini source, restructure,
//! print the annotated program, optionally execute it on the simulated
//! multiprocessor.
//!
//! ```text
//! polarisc [OPTIONS] FILE.f
//!   --vfa           use the PFA-like baseline pipeline instead of Polaris
//!   --report        print the per-loop analysis report
//!   --run           execute on the simulated machine and print speedup
//!   --procs N       processor count for --run (default 8)
//!   --validate      run the adversarial validation after --run
//!   --profile       print the per-loop execution profile after --run
//!   --quiet         suppress the annotated source
//! ```

use polaris::{parallelize, MachineConfig, PassOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut file: Option<String> = None;
    let mut vfa = false;
    let mut report = false;
    let mut run = false;
    let mut validate = false;
    let mut profile = false;
    let mut quiet = false;
    let mut procs = 8usize;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--vfa" => vfa = true,
            "--report" => report = true,
            "--run" => run = true,
            "--validate" => validate = true,
            "--profile" => profile = true,
            "--quiet" => quiet = true,
            "--procs" => {
                procs = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--procs needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: polarisc [--vfa] [--report] [--run] [--procs N] [--validate] [--quiet] FILE.f");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("unknown option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: polarisc [--vfa] [--report] [--run] [--procs N] [--validate] [--quiet] FILE.f");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("polarisc: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = if vfa { PassOptions::vfa() } else { PassOptions::polaris() };
    let out = match parallelize(&source, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("polarisc: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        print!("{}", out.annotated_source);
    }
    if report {
        eprintln!();
        eprintln!(
            "pipeline: {} call sites inlined, {} inductions removed, {} reductions flagged",
            out.report.inline.call_sites_expanded,
            out.report.induction.additive_removed + out.report.induction.multiplicative_removed,
            out.report.reductions_flagged
        );
        for l in &out.report.loops {
            let verdict = if l.parallel {
                "PARALLEL".to_string()
            } else if l.speculative {
                "SPECULATIVE".to_string()
            } else {
                format!("serial ({})", l.serial_reason.as_deref().unwrap_or("?"))
            };
            let mut extra = String::new();
            if !l.private.is_empty() {
                extra.push_str(&format!(" private={:?}", l.private));
            }
            if !l.reductions.is_empty() {
                extra.push_str(&format!(" reductions={:?}", l.reductions));
            }
            eprintln!("  {:<24} {verdict}{extra}", l.label);
        }
    }
    if run {
        let original = polaris_ir::parse(&source).expect("already parsed once");
        let serial = match polaris_machine::run_serial(&original) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("polarisc: serial execution failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cfg = MachineConfig::challenge_8().with_procs(procs);
        let parallel = match polaris_machine::run(&out.program, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("polarisc: parallel execution failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!();
        for line in &parallel.output {
            println!("{line}");
        }
        eprintln!(
            "serial {:.3}s  parallel({procs} procs) {:.3}s  speedup {:.2}x",
            serial.seconds(),
            parallel.seconds(),
            serial.cycles as f64 / parallel.cycles as f64
        );
        if profile {
            eprintln!();
            eprint!("{}", parallel.profile());
        }
        if serial.output != parallel.output {
            eprintln!("polarisc: OUTPUT MISMATCH between serial and parallel runs!");
            return ExitCode::FAILURE;
        }
        if validate {
            match polaris_machine::run_validated(&out.program, &cfg) {
                Ok(_) => eprintln!("validation: adversarial execution matches sequential"),
                Err(e) => {
                    eprintln!("validation FAILED: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}

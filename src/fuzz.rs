//! Seeded random F-Mini program generation and byte-level mutation.
//!
//! The differential fuzz harness (`tests/fuzz_differential.rs`) is built
//! on two generators, both fully deterministic from a `u64` seed:
//!
//! * [`generate_program`] emits a *well-formed* F-Mini program by
//!   construction: every array subscript is provably in `1..=N`, every
//!   loop has a bounded trip count, real arithmetic is restricted to
//!   non-negative monotone forms (so reduction reassociation stays
//!   within the validator's relative tolerance), and integer arithmetic
//!   is wrapping-safe. Such programs must compile, must validate at
//!   every pipeline stage boundary, and must produce identical output
//!   serially and restructured — any divergence is a compiler bug, not
//!   a fuzzer artifact.
//! * [`mutate_bytes`] takes well-formed source and corrupts it (bit
//!   flips, splices, truncations, token-ish insertions). The frontend
//!   must refuse such inputs with a [`CompileError`](crate::CompileError)
//!   — never a panic, never a stack overflow.
//!
//! The generator deliberately produces the idioms the restructurer
//! targets — additive inductions, sum/histogram reductions, privatizable
//! temporaries, loop-invariant conditionals — so the differential tests
//! exercise the transformation paths, not just the parser.

/// SplitMix64: tiny, seedable, and good enough for corpus generation.
/// (Same construction as the vendored proptest's `TestRng`.)
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// True with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

const REAL_SCALARS: [&str; 4] = ["S", "T", "U", "V"];
const INT_SCALARS: [&str; 2] = ["L", "M"];
const ARRAYS: [&str; 3] = ["A", "B", "C"];
const LOOP_VARS: [&str; 3] = ["I", "J", "K"];
/// Positive constants only: keeps every generated real value
/// non-negative, so reductions are monotone sums and parallel
/// reassociation cannot leave the comparison tolerance.
const REAL_CONSTS: [&str; 7] = ["0.25", "0.5", "1.0", "1.5", "2.0", "2.5", "3.0"];

struct Gen {
    rng: FuzzRng,
    /// The shared array extent (PARAMETER N).
    n: u64,
    out: String,
    indent: usize,
}

impl Gen {
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.rng.chance(num, den)
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    // ---- expressions --------------------------------------------------

    /// An array subscript guaranteed inside `1..=n` for any loop variable
    /// in `vars` (all loops run over subranges of `1..=n`).
    fn subscript(&mut self, vars: &[&'static str]) -> String {
        if !vars.is_empty() && self.chance(3, 4) {
            let v = *self.rng.pick(vars);
            if self.chance(1, 3) {
                format!("n + 1 - {v}")
            } else {
                v.to_string()
            }
        } else {
            format!("{}", 1 + self.rng.below(self.n))
        }
    }

    /// A real-valued expression. `forbid` excludes one name from the
    /// operands (the assignment target, so self-reference stays under the
    /// caller's control and multiplicative self-feedback cannot compound
    /// values to infinity).
    fn rexpr(&mut self, depth: u32, forbid: &str, vars: &[&'static str]) -> String {
        if depth == 0 || self.chance(2, 5) {
            // leaf
            loop {
                match self.rng.below(4) {
                    0 => return self.rng.pick(&REAL_CONSTS).to_string(),
                    1 => {
                        let s = *self.rng.pick(&REAL_SCALARS);
                        if s != forbid {
                            return s.to_string();
                        }
                    }
                    2 => {
                        let a = *self.rng.pick(&ARRAYS);
                        if a != forbid {
                            let sub = self.subscript(vars);
                            return format!("{a}({sub})");
                        }
                    }
                    _ => {
                        if let Some(v) = vars.last() {
                            return v.to_string();
                        }
                    }
                }
            }
        }
        let lhs = self.rexpr(depth - 1, forbid, vars);
        match self.rng.below(10) {
            0..=5 => {
                let rhs = self.rexpr(depth - 1, forbid, vars);
                format!("{lhs} + {rhs}")
            }
            6..=8 => {
                let c = *self.rng.pick(&REAL_CONSTS);
                format!("({lhs}) * {c}")
            }
            _ => {
                let c = *self.rng.pick(&["2.0", "4.0", "8.0"]);
                format!("({lhs}) / {c}")
            }
        }
    }

    /// An integer-valued expression over small operands (wrapping-safe:
    /// magnitudes stay far from `i64` limits for any bounded loop nest).
    fn iexpr(&mut self, depth: u32, forbid: &str, vars: &[&'static str]) -> String {
        if depth == 0 || self.chance(1, 2) {
            loop {
                match self.rng.below(3) {
                    0 => return format!("{}", self.rng.below(6)),
                    1 => {
                        let s = *self.rng.pick(&INT_SCALARS);
                        if s != forbid {
                            return s.to_string();
                        }
                    }
                    _ => {
                        if let Some(v) = vars.last() {
                            return v.to_string();
                        }
                    }
                }
            }
        }
        let lhs = self.iexpr(depth - 1, forbid, vars);
        match self.rng.below(4) {
            0 | 1 => format!("{lhs} + {}", self.iexpr(depth - 1, forbid, vars)),
            2 => format!("{lhs} - {}", 1 + self.rng.below(4)),
            _ => format!("({lhs}) * {}", 1 + self.rng.below(3)),
        }
    }

    fn condition(&mut self, vars: &[&'static str]) -> String {
        let op = *self.rng.pick(&["<", "<=", ">", ">=", "==", "/="]);
        match self.rng.below(3) {
            0 if !vars.is_empty() => {
                let v = *self.rng.pick(vars);
                format!("{v} {op} {}", 1 + self.rng.below(self.n))
            }
            1 => {
                let s = *self.rng.pick(&REAL_SCALARS);
                format!("{s} {op} {}", self.rng.pick(&REAL_CONSTS))
            }
            _ => {
                let a = *self.rng.pick(&INT_SCALARS);
                let b = *self.rng.pick(&INT_SCALARS);
                format!("{a} {op} {b}")
            }
        }
    }

    // ---- statements ---------------------------------------------------

    fn gen_stmt(&mut self, depth: u32, vars: &mut Vec<&'static str>) {
        let can_loop = depth < 3 && vars.len() < LOOP_VARS.len();
        match self.rng.below(if can_loop { 10 } else { 7 }) {
            // scalar assignment (privatizable temporary when re-read)
            0 | 1 => {
                let s = *self.rng.pick(&REAL_SCALARS);
                let e = self.rexpr(2, s, vars);
                self.line(&format!("{s} = {e}"));
            }
            // plain array store
            2 | 3 => {
                let a = *self.rng.pick(&ARRAYS);
                let sub = self.subscript(vars);
                let e = self.rexpr(2, a, vars);
                self.line(&format!("{a}({sub}) = {e}"));
            }
            // sum reduction into a scalar
            4 => {
                let s = *self.rng.pick(&REAL_SCALARS);
                let e = self.rexpr(1, s, vars);
                self.line(&format!("{s} = {s} + {e}"));
            }
            // histogram (single-address) reduction into an array cell
            5 => {
                let a = *self.rng.pick(&ARRAYS);
                let sub = self.subscript(vars);
                let e = self.rexpr(1, a, vars);
                self.line(&format!("{a}({sub}) = {a}({sub}) + {e}"));
            }
            // integer scalar update (induction candidate when additive)
            6 => {
                let s = *self.rng.pick(&INT_SCALARS);
                let e = self.iexpr(1, "", vars);
                self.line(&format!("{s} = {s} + {e}"));
            }
            // IF block (or logical IF)
            7 => {
                let cond = self.condition(vars);
                if self.chance(1, 3) {
                    let s = *self.rng.pick(&REAL_SCALARS);
                    let e = self.rexpr(1, s, vars);
                    self.line(&format!("if ({cond}) {s} = {e}"));
                } else {
                    self.line(&format!("if ({cond}) then"));
                    self.indent += 1;
                    let then_stmts = 1 + self.rng.below(2);
                    self.gen_block(depth + 1, vars, then_stmts);
                    self.indent -= 1;
                    if self.chance(1, 2) {
                        self.line("else");
                        self.indent += 1;
                        let else_stmts = 1 + self.rng.below(2);
                        self.gen_block(depth + 1, vars, else_stmts);
                        self.indent -= 1;
                    }
                    self.line("end if");
                }
            }
            // DO loop
            _ => self.gen_loop(depth, vars),
        }
    }

    fn gen_loop(&mut self, depth: u32, vars: &mut Vec<&'static str>) {
        let v = LOOP_VARS[vars.len()];
        let header = match self.rng.below(4) {
            0 => format!("do {v} = 1, n"),
            1 => format!("do {v} = 2, n"),
            2 => format!("do {v} = 1, n, 2"),
            _ => format!("do {v} = n, 1, -1"),
        };
        self.line(&header);
        self.indent += 1;
        vars.push(v);
        let stmts = 1 + self.rng.below(3);
        self.gen_block(depth + 1, vars, stmts);
        vars.pop();
        self.indent -= 1;
        self.line("end do");
    }

    fn gen_block(&mut self, depth: u32, vars: &mut Vec<&'static str>, stmts: u64) {
        for _ in 0..stmts {
            self.gen_stmt(depth, vars);
        }
    }

    /// The TRFD-style idiom the paper's induction substitution exists
    /// for: a wrap-around counter threading a loop nest, used as a
    /// subscript. `M` is reset so it stays inside `1..=n`.
    fn gen_induction_idiom(&mut self) {
        let a = *self.rng.pick(&ARRAYS);
        let e = self.rexpr(1, a, &["I"]);
        self.line("m = 0");
        self.line("do i = 1, n");
        self.indent += 1;
        self.line("m = m + 1");
        self.line(&format!("{a}(m) = {a}(m) + {e}"));
        self.indent -= 1;
        self.line("end do");
    }
}

/// Generate a self-contained, well-formed F-Mini program from `seed`.
///
/// Guarantees (by construction, for every seed):
/// * parses and compiles under any [`PassOptions`](crate::PassOptions),
/// * executes without traps: all subscripts in bounds, no division by a
///   variable, bounded loops only,
/// * prints a result checksum, so semantic divergence is observable.
pub fn generate_program(seed: u64) -> String {
    let mut rng = FuzzRng::new(seed);
    let n = 8 + rng.below(17); // array extent 8..=24
    let mut g = Gen { rng, n, out: String::new(), indent: 0 };

    g.line("program fuzz");
    g.line(&format!("parameter (n = {n})"));
    g.line("real a(n), b(n), c(n)");
    g.line("real s, t, u, v");
    g.line("integer l, m");
    // Deterministic initial state.
    for (i, s) in REAL_SCALARS.iter().enumerate() {
        let c = REAL_CONSTS[(i + g.rng.below(3) as usize) % REAL_CONSTS.len()];
        g.line(&format!("{s} = {c}"));
    }
    g.line("l = 1");
    g.line("m = 2");
    g.line("do i = 1, n");
    g.indent += 1;
    g.line("a(i) = i * 0.5");
    g.line("b(i) = n + 1 - i");
    g.line("c(i) = 1.0");
    g.indent -= 1;
    g.line("end do");

    // Main body: a few top-level constructs, loops preferred.
    let top = 2 + g.rng.below(3);
    let mut vars: Vec<&'static str> = Vec::new();
    for _ in 0..top {
        if g.chance(3, 5) {
            g.gen_loop(0, &mut vars);
        } else if g.chance(1, 3) {
            g.gen_induction_idiom();
        } else {
            g.gen_stmt(0, &mut vars);
        }
    }

    // Observable checksum: scalars plus a full-array sum.
    g.line("print *, s, t, u, v, l, m");
    g.line("do i = 1, n");
    g.indent += 1;
    g.line("s = s + a(i) + b(i) + c(i)");
    g.indent -= 1;
    g.line("end do");
    g.line("print *, s");
    g.line("end");
    g.out
}

/// Characters the mutator splices in: F-Mini's own alphabet, so
/// mutations explore the parser's decision space instead of dying at
/// the lexer's first "unexpected character".
const SPLICE: &[u8] = b"()*,+-=/.<>:' \n0123456789abcdefghijklmnopqrstuvwxyz!$&";

/// Corrupt well-formed `source` into an arbitrary byte soup the
/// frontend must reject gracefully. Applies 1–8 random edits; the
/// result is lossily re-encoded as UTF-8 (the parser takes `&str`).
pub fn mutate_bytes(source: &str, seed: u64) -> String {
    let mut rng = FuzzRng::new(seed ^ 0xDEAD_BEEF_CAFE_F00D);
    let mut bytes = source.as_bytes().to_vec();
    let edits = 1 + rng.below(8);
    for _ in 0..edits {
        if bytes.is_empty() {
            bytes.push(*rng.pick(SPLICE));
            continue;
        }
        let pos = rng.below(bytes.len() as u64) as usize;
        match rng.below(6) {
            // flip a bit
            0 => bytes[pos] ^= 1 << rng.below(8),
            // overwrite with an alphabet byte
            1 => bytes[pos] = *rng.pick(SPLICE),
            // insert an alphabet byte
            2 => bytes.insert(pos, *rng.pick(SPLICE)),
            // delete a byte
            3 => {
                bytes.remove(pos);
            }
            // truncate (tests incomplete-input handling)
            4 => bytes.truncate(pos),
            // duplicate a random slice (tests repeated-construct handling)
            _ => {
                let end = pos + rng.below((bytes.len() - pos).min(32) as u64 + 1) as usize;
                let slice: Vec<u8> = bytes[pos..end].to_vec();
                let at = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.splice(at..at, slice);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_program(42), generate_program(42));
        assert_ne!(generate_program(1), generate_program(2));
        assert_eq!(mutate_bytes("x = 1", 7), mutate_bytes("x = 1", 7));
    }

    #[test]
    fn generated_programs_parse_and_have_observable_output() {
        for seed in 0..64 {
            let src = generate_program(seed);
            let p = polaris_ir::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert_eq!(p.units.len(), 1);
            assert!(src.contains("print *"), "seed {seed} has no output");
        }
    }

    #[test]
    fn mutations_actually_change_the_source() {
        let src = generate_program(0);
        let mut changed = 0;
        for seed in 0..32 {
            if mutate_bytes(&src, seed) != src {
                changed += 1;
            }
        }
        assert!(changed >= 30, "mutator too tame: {changed}/32");
    }
}

//! # polaris-obs — the observability layer
//!
//! The paper's evaluation attributes speedup to individual passes
//! (inlining, induction substitution, the range test, privatization —
//! the Figure 7 ablations), which requires knowing *where time,
//! rewrites, and dependence-test outcomes actually go*. This crate
//! provides the workspace-wide instrumentation substrate:
//!
//! * a [`Recorder`] handle, threaded through `polaris-core::pipeline`,
//!   `polaris-machine` (exec, threaded, oracle) and
//!   `polaris-runtime::lrpd`, collecting **hierarchical spans**
//!   (compile → unit → pass → loop; exec → loop → chunk) and **typed
//!   [`Counter`]s**;
//! * a clock abstraction with a real monotonic clock and a
//!   deterministic **virtual clock** (each observation advances time by
//!   exactly one tick), so traces of deterministic executions are
//!   byte-identical across runs and can be pinned by golden tests;
//! * two stable export formats: a JSON **metrics document**
//!   ([`Recorder::metrics_json`], schema `polaris-obs/metrics/v1`) and
//!   the **Chrome trace-event format**
//!   ([`Recorder::chrome_trace_json`], load in `chrome://tracing` or
//!   Perfetto).
//!
//! Spans that describe a loop carry the loop's [`LoopId`] — the same
//! provenance key `CompileReport`, `ParallelInfo` and the run-time
//! dependence oracle join on — so a trace row can be matched against
//! the compile-time verdict and the oracle's observations for the same
//! loop.
//!
//! A disabled recorder ([`Recorder::disabled`], also the `Default`)
//! costs one branch per hook, mirroring the machine's
//! `Option<Box<OracleState>>` pattern; every instrumented call site is
//! free when observability is off.

use polaris_ir::stmt::LoopId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cap on recorded span events (begin + end each count as one). A
/// runaway loop nest cannot grow the trace without bound: once the cap
/// is reached new spans are dropped *whole* (their `E` is suppressed
/// with their `B`, so the surviving stream stays well-nested) and the
/// drop count is reported in the metrics document.
pub const MAX_EVENTS: usize = 1 << 20;

/// Which clock drives span timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Real wall-clock time (microseconds since the recorder was
    /// created). For humans profiling a run.
    Monotonic,
    /// Deterministic virtual time: every timestamp observation advances
    /// the clock by exactly one tick (reported as 1 "µs"). Two runs
    /// that make the same sequence of recording calls produce
    /// byte-identical traces — the property the golden tests pin.
    Virtual,
}

/// Typed counters. Each maps to a stable dotted name in the exported
/// documents; the compile-side group is recorded by the pipeline after
/// its stages run, the exec-side group by the machine as it executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// Range-test queries attempted (run = proved + disproved + abstained).
    RangeTestsRun,
    /// Range test proved independence for the pair.
    RangeProved,
    /// Range test ran but could not prove independence.
    RangeDisproved,
    /// Range test could not be applied (subscripts/bounds not symbolic).
    RangeAbstained,
    /// Banerjee direction-vector trials (the §3.3 complexity metric).
    BanerjeeVectors,
    /// GCD test invocations.
    GcdTests,
    /// Range-test pair probes (one per loop/pair/permutation attempt).
    RangeProbes,
    /// Range-test successes that needed a loop permutation.
    PermutationsUsed,
    /// Range facts propagated into the analysis environment.
    RangesPropagated,
    /// Index arrays that earned a proven content property (idxprop).
    IdxPropsProved,
    /// Property-rule disjointness queries (subscripted subscripts).
    PropsTestsRun,
    /// Property-rule queries that proved the loop's pairs disjoint.
    PropsProved,
    /// Induction variables substituted (additive + multiplicative).
    InductionSubstitutions,
    /// Reduction statements recognized by the pattern matcher.
    ReductionsRecognized,
    /// Arrays privatized across all analyzed loops.
    ArraysPrivatized,
    /// Call sites spliced by full inline expansion.
    InlineSplices,
    /// Loops proven parallel at compile time.
    CompileLoopsParallel,
    /// Loops selected for run-time (LRPD) speculation.
    CompileLoopsSpeculative,
    /// Loops left serial.
    CompileLoopsSerial,
    /// All analyzed loops (= parallel + speculative + serial).
    CompileLoopsTotal,
    /// Loop invocations executed by a parallel backend.
    ExecLoopsParallel,
    /// Loop invocations executed under the speculative protocol.
    ExecLoopsSpeculative,
    /// Loop invocations executed serially.
    ExecLoopsSerial,
    /// Loop invocations executed by the adversarial validator.
    ExecLoopsAdversarial,
    /// All loop invocations (= the four above summed).
    ExecLoopsTotal,
    /// Chunks scheduled onto the real-thread backend.
    ThreadedChunks,
    /// Bytes committed while merging worker results (array diff-merge,
    /// reduction tree merges, copy-out scalars).
    ThreadedMergeBytes,
    /// LRPD / PD-test attempts that validated and committed.
    LrpdPass,
    /// LRPD / PD-test attempts that failed (serial re-execution).
    LrpdFail,
    /// Soundness violations found by the run-time dependence oracle.
    OracleViolations,
    /// IR invariant sweeps run by the pipeline's post-stage verifier
    /// (one per invariant class per checked stage).
    VerifyInvariantChecks,
    /// Invariant violations caught by the post-stage verifier (each one
    /// rolled the offending stage back).
    VerifyInvariantViolations,
    /// PARALLEL plans the static race detector proved clean.
    VerifyRaceClean,
    /// PARALLEL plans with uncovered writes that privatization or
    /// lastprivate annotations would discharge.
    VerifyRaceNeedsPrivatization,
    /// PARALLEL plans with a possible cross-iteration flow dependence
    /// the detector could not discharge.
    VerifyRacePotentialRace,
    /// Findings emitted by the `--lint` suite (all severities).
    VerifyLintFindings,
    /// Requests admitted into the `polarisd` service queue.
    PolarisdAccepted,
    /// Responses sent (every accepted request gets exactly one).
    PolarisdAnswered,
    /// Requests shed by admission control (bounded queue, shed-oldest).
    PolarisdShed,
    /// Compile-cache hits served without touching the pipeline.
    PolarisdCacheHits,
    /// Compile-cache misses (fresh compiles).
    PolarisdCacheMisses,
    /// Poisoned cache entries detected by integrity check and purged.
    PolarisdCachePoisonPurged,
    /// Transient-failure retries (attempt 2+), after backoff.
    PolarisdRetries,
    /// Compiles cancelled by the deadline watchdog.
    PolarisdDeadlineCancels,
    /// Circuit-breaker transitions into quarantine (Closed/HalfOpen → Open).
    PolarisdQuarantined,
    /// Half-open probe compiles attempted for quarantined units.
    PolarisdProbes,
    /// Quarantined units recovered via a successful half-open probe.
    PolarisdRecovered,
    /// Service workers respawned after dying mid-request.
    PolarisdWorkerRespawns,
    /// Dispatch decisions taken by the adaptive scheduling runtime.
    AdaptiveDecisions,
    /// First-invocation measurement runs (profile not yet established).
    AdaptiveMeasurements,
    /// Invocations re-dispatched to a strategy other than the measuring
    /// default because the observed profile picked a different winner.
    AdaptiveRedispatch,
    /// Speculation throttled back to serial by sustained misspeculation.
    AdaptiveThrottled,
    /// Hysteresis probes: a throttled loop retrying speculation after
    /// the hold-down expired.
    AdaptiveProbes,
    /// Decision-table entries that failed their integrity check and were
    /// reset (the consumer fell back to static dispatch).
    AdaptiveTableCorrupt,
    /// Chunks obtained by stealing from another worker's deque.
    StealChunks,
    /// Steal attempts (successful or not) against victim deques.
    StealAttempts,
}

impl Counter {
    /// The stable dotted name used in the exported JSON documents.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RangeTestsRun => "compile.dd.range.run",
            Counter::RangeProved => "compile.dd.range.proved",
            Counter::RangeDisproved => "compile.dd.range.disproved",
            Counter::RangeAbstained => "compile.dd.range.abstained",
            Counter::BanerjeeVectors => "compile.dd.banerjee_vectors",
            Counter::GcdTests => "compile.dd.gcd_tests",
            Counter::RangeProbes => "compile.dd.range_probes",
            Counter::PermutationsUsed => "compile.dd.permutations",
            Counter::RangesPropagated => "compile.ranges.propagated",
            Counter::IdxPropsProved => "compile.idxprop.proved",
            Counter::PropsTestsRun => "compile.dd.props.run",
            Counter::PropsProved => "compile.dd.props.proved",
            Counter::InductionSubstitutions => "compile.induction.substitutions",
            Counter::ReductionsRecognized => "compile.reductions.recognized",
            Counter::ArraysPrivatized => "compile.arrays.privatized",
            Counter::InlineSplices => "compile.inline.splices",
            Counter::CompileLoopsParallel => "compile.loops.parallel",
            Counter::CompileLoopsSpeculative => "compile.loops.speculative",
            Counter::CompileLoopsSerial => "compile.loops.serial",
            Counter::CompileLoopsTotal => "compile.loops.total",
            Counter::ExecLoopsParallel => "exec.loops.parallel",
            Counter::ExecLoopsSpeculative => "exec.loops.speculative",
            Counter::ExecLoopsSerial => "exec.loops.serial",
            Counter::ExecLoopsAdversarial => "exec.loops.adversarial",
            Counter::ExecLoopsTotal => "exec.loops.total",
            Counter::ThreadedChunks => "exec.threaded.chunks",
            Counter::ThreadedMergeBytes => "exec.threaded.merge_bytes",
            Counter::LrpdPass => "lrpd.pass",
            Counter::LrpdFail => "lrpd.fail",
            Counter::OracleViolations => "oracle.violations",
            Counter::VerifyInvariantChecks => "verify.invariants.checks",
            Counter::VerifyInvariantViolations => "verify.invariants.violations",
            Counter::VerifyRaceClean => "verify.race.clean",
            Counter::VerifyRaceNeedsPrivatization => "verify.race.needs_privatization",
            Counter::VerifyRacePotentialRace => "verify.race.potential_race",
            Counter::VerifyLintFindings => "verify.lint.findings",
            Counter::PolarisdAccepted => "polarisd.requests.accepted",
            Counter::PolarisdAnswered => "polarisd.requests.answered",
            Counter::PolarisdShed => "polarisd.requests.shed",
            Counter::PolarisdCacheHits => "polarisd.cache.hits",
            Counter::PolarisdCacheMisses => "polarisd.cache.misses",
            Counter::PolarisdCachePoisonPurged => "polarisd.cache.poison_purged",
            Counter::PolarisdRetries => "polarisd.retry.attempts",
            Counter::PolarisdDeadlineCancels => "polarisd.deadline.cancels",
            Counter::PolarisdQuarantined => "polarisd.breaker.quarantined",
            Counter::PolarisdProbes => "polarisd.breaker.probes",
            Counter::PolarisdRecovered => "polarisd.breaker.recovered",
            Counter::PolarisdWorkerRespawns => "polarisd.workers.respawned",
            Counter::AdaptiveDecisions => "adaptive.decisions",
            Counter::AdaptiveMeasurements => "adaptive.measure",
            Counter::AdaptiveRedispatch => "adaptive.redispatch",
            Counter::AdaptiveThrottled => "adaptive.throttle",
            Counter::AdaptiveProbes => "adaptive.probe",
            Counter::AdaptiveTableCorrupt => "adaptive.table.corrupt",
            Counter::StealChunks => "exec.steal.chunks",
            Counter::StealAttempts => "exec.steal.attempts",
        }
    }
}

/// `B` (span begin) or `E` (span end), Chrome trace-event phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Begin,
    End,
}

/// One recorded trace event. Events are appended in call order under a
/// single lock, so within each `tid` the `B`/`E` stream is well-nested
/// by construction (spans close in LIFO order — enforced by the
/// [`Span`] guard's scoping).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub phase: Phase,
    /// Span category: `"compile"` or `"exec"`.
    pub cat: &'static str,
    /// Span name, e.g. `"pass:induction"`, `"loop:do5"`, `"chunk:3"`.
    pub name: String,
    /// Trace thread id (1 = the driver; threaded chunks use 1 + bucket).
    pub tid: u32,
    /// Timestamp in (possibly virtual) microseconds.
    pub ts_us: u64,
    /// The loop this span describes, if any — the provenance join key
    /// against `CompileReport` and the dependence oracle.
    pub loop_id: Option<LoopId>,
    /// The program unit this span describes, if any.
    pub unit: Option<String>,
}

#[derive(Debug, Default)]
struct State {
    events: Vec<Event>,
    counters: BTreeMap<&'static str, u64>,
    dropped: u64,
}

#[derive(Debug)]
struct Inner {
    mode: ClockMode,
    epoch: Instant,
    vticks: AtomicU64,
    max_events: usize,
    state: Mutex<State>,
}

/// The recording handle. Cheap to clone (an `Arc`); a disabled handle
/// is a `None` and costs one branch per call.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that records nothing (the default). All hooks are
    /// single-branch no-ops.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder driven by the given clock.
    pub fn with_clock(mode: ClockMode) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                mode,
                epoch: Instant::now(),
                vticks: AtomicU64::new(0),
                max_events: MAX_EVENTS,
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// An enabled recorder on the real monotonic clock.
    pub fn monotonic() -> Recorder {
        Recorder::with_clock(ClockMode::Monotonic)
    }

    /// An enabled recorder on the deterministic virtual clock.
    pub fn virtual_clock() -> Recorder {
        Recorder::with_clock(ClockMode::Virtual)
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `"monotonic"`, `"virtual"`, or `"disabled"`.
    pub fn clock_name(&self) -> &'static str {
        match self.inner.as_deref() {
            None => "disabled",
            Some(i) => match i.mode {
                ClockMode::Monotonic => "monotonic",
                ClockMode::Virtual => "virtual",
            },
        }
    }

    fn now_us(inner: &Inner) -> u64 {
        match inner.mode {
            ClockMode::Monotonic => inner.epoch.elapsed().as_micros() as u64,
            ClockMode::Virtual => inner.vticks.fetch_add(1, Ordering::Relaxed) + 1,
        }
    }

    /// Add `n` to a counter. `n == 0` still materializes the key, so
    /// documents have a stable key set once a code path has run.
    pub fn count(&self, c: Counter, n: u64) {
        if let Some(inner) = self.inner.as_deref() {
            let mut st = inner.state.lock().unwrap();
            *st.counters.entry(c.name()).or_default() += n;
        }
    }

    /// Open a span on the driver thread (`tid` 1).
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> Span {
        self.span_with(cat, name, 1, None, None)
    }

    /// Open a span describing a specific loop. This sits on the
    /// interpreter's per-loop-invocation path, so the disabled recorder
    /// must not even format the name.
    pub fn loop_span(&self, cat: &'static str, label: &str, id: LoopId) -> Span {
        if self.inner.is_none() {
            return Span {
                rec: self.clone(),
                cat,
                name: String::new(),
                tid: 1,
                recorded: false,
                closed: true,
            };
        }
        self.span_with(cat, format!("loop:{label}"), 1, Some(id), None)
    }

    /// Open a span with explicit trace-thread id and provenance.
    pub fn span_with(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        tid: u32,
        loop_id: Option<LoopId>,
        unit: Option<String>,
    ) -> Span {
        let name = name.into();
        let recorded = match self.inner.as_deref() {
            None => false,
            Some(inner) => {
                let ts_us = Recorder::now_us(inner);
                let mut st = inner.state.lock().unwrap();
                // +1: reserve room for this span's own E event.
                if st.events.len() + 1 >= inner.max_events {
                    st.dropped += 1;
                    false
                } else {
                    st.events.push(Event {
                        phase: Phase::Begin,
                        cat,
                        name: name.clone(),
                        tid,
                        ts_us,
                        loop_id,
                        unit,
                    });
                    true
                }
            }
        };
        Span { rec: self.clone(), cat, name, tid, recorded, closed: !recorded }
    }

    fn end_span(&self, cat: &'static str, name: &str, tid: u32) {
        if let Some(inner) = self.inner.as_deref() {
            let ts_us = Recorder::now_us(inner);
            let mut st = inner.state.lock().unwrap();
            st.events.push(Event {
                phase: Phase::End,
                cat,
                name: name.to_string(),
                tid,
                ts_us,
                loop_id: None,
                unit: None,
            });
        }
    }

    /// Snapshot of the counters (stable dotted name → value).
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        match self.inner.as_deref() {
            None => BTreeMap::new(),
            Some(inner) => inner.state.lock().unwrap().counters.clone(),
        }
    }

    /// Snapshot of the recorded events, in record order.
    pub fn events(&self) -> Vec<Event> {
        match self.inner.as_deref() {
            None => Vec::new(),
            Some(inner) => inner.state.lock().unwrap().events.clone(),
        }
    }

    /// Spans dropped because the [`MAX_EVENTS`] cap was reached.
    pub fn events_dropped(&self) -> u64 {
        match self.inner.as_deref() {
            None => 0,
            Some(inner) => inner.state.lock().unwrap().dropped,
        }
    }

    /// Chrome trace-event document (`chrome://tracing` / Perfetto).
    /// Events appear in record order as `B`/`E` pairs on `pid` 1;
    /// counters ride along under the non-standard top-level key
    /// `"counters"`, which viewers ignore.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events();
        let counters = self.counters();
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"displayTimeUnit\": \"ms\",\n");
        s.push_str("  \"traceEvents\": [\n");
        for (i, e) in events.iter().enumerate() {
            let ph = match e.phase {
                Phase::Begin => "B",
                Phase::End => "E",
            };
            s.push_str(&format!(
                "    {{\"ph\": \"{ph}\", \"cat\": \"{}\", \"name\": \"{}\", \
                 \"pid\": 1, \"tid\": {}, \"ts\": {}",
                json_escape(e.cat),
                json_escape(&e.name),
                e.tid,
                e.ts_us
            ));
            if e.loop_id.is_some() || e.unit.is_some() {
                s.push_str(", \"args\": {");
                let mut first = true;
                if let Some(id) = e.loop_id {
                    s.push_str(&format!("\"loop_id\": {}", id.0));
                    first = false;
                }
                if let Some(u) = &e.unit {
                    if !first {
                        s.push_str(", ");
                    }
                    s.push_str(&format!("\"unit\": \"{}\"", json_escape(u)));
                }
                s.push('}');
            }
            s.push('}');
            s.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"counters\": {");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {v}", json_escape(k)));
        }
        s.push_str("}\n");
        s.push_str("}\n");
        s
    }

    /// Stable JSON metrics document (schema `polaris-obs/metrics/v1`):
    /// the counters plus per-(cat, name) span aggregates. Under the
    /// virtual clock the whole document is deterministic.
    pub fn metrics_json(&self) -> String {
        let counters = self.counters();
        let spans = aggregate_spans(&self.events());
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"polaris-obs/metrics/v1\",\n");
        s.push_str(&format!("  \"clock\": \"{}\",\n", self.clock_name()));
        s.push_str(&format!("  \"events_dropped\": {},\n", self.events_dropped()));
        s.push_str("  \"counters\": {\n");
        for (i, (k, v)) in counters.iter().enumerate() {
            s.push_str(&format!("    \"{}\": {v}", json_escape(k)));
            s.push_str(if i + 1 == counters.len() { "\n" } else { ",\n" });
        }
        s.push_str("  },\n");
        s.push_str("  \"spans\": [\n");
        for (i, ((cat, name), agg)) in spans.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"cat\": \"{}\", \"name\": \"{}\", \"count\": {}, \"total_us\": {}}}",
                json_escape(cat),
                json_escape(name),
                agg.count,
                agg.total_us
            ));
            s.push_str(if i + 1 == spans.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// RAII span guard: records its `E` event on [`Span::end`] or on drop
/// (so `?`-style early exits and unwinding still close the span, which
/// keeps the per-tid `B`/`E` stream well-nested).
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    cat: &'static str,
    name: String,
    tid: u32,
    recorded: bool,
    closed: bool,
}

impl Span {
    /// Close the span now.
    pub fn end(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            if self.recorded {
                self.rec.end_span(self.cat, &self.name, self.tid);
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Per-(cat, name) span aggregate in the metrics document.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpanAgg {
    pub count: u64,
    pub total_us: u64,
}

/// Pair up `B`/`E` events (per tid, LIFO) and aggregate durations by
/// (cat, name). Unpaired begins (a still-open or capped span) are
/// ignored.
pub fn aggregate_spans(events: &[Event]) -> BTreeMap<(&'static str, String), SpanAgg> {
    let mut stacks: BTreeMap<u32, Vec<&Event>> = BTreeMap::new();
    let mut out: BTreeMap<(&'static str, String), SpanAgg> = BTreeMap::new();
    for e in events {
        match e.phase {
            Phase::Begin => stacks.entry(e.tid).or_default().push(e),
            Phase::End => {
                if let Some(b) = stacks.entry(e.tid).or_default().pop() {
                    let agg = out.entry((b.cat, b.name.clone())).or_default();
                    agg.count += 1;
                    agg.total_us += e.ts_us.saturating_sub(b.ts_us);
                }
            }
        }
    }
    out
}

/// Check the span stream is well-nested: within every tid, each `E`
/// closes the most recent open `B` with the same cat and name, and
/// nothing is left open. The counter-consistency proptest and the
/// serializer unit tests both lean on this.
pub fn validate_nesting(events: &[Event]) -> Result<(), String> {
    let mut stacks: BTreeMap<u32, Vec<(&'static str, &str)>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        match e.phase {
            Phase::Begin => stacks.entry(e.tid).or_default().push((e.cat, &e.name)),
            Phase::End => match stacks.entry(e.tid).or_default().pop() {
                None => return Err(format!("event {i}: E `{}` with empty stack", e.name)),
                Some((cat, name)) => {
                    if cat != e.cat || name != e.name {
                        return Err(format!(
                            "event {i}: E `{}:{}` closes open span `{cat}:{name}`",
                            e.cat, e.name
                        ));
                    }
                }
            },
        }
    }
    for (tid, stack) in stacks {
        if let Some((cat, name)) = stack.last() {
            return Err(format!("tid {tid}: span `{cat}:{name}` left open"));
        }
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested_run(rec: &Recorder) {
        let compile = rec.span("compile", "compile");
        {
            let unit = rec.span_with("compile", "unit:MAIN", 1, None, Some("MAIN".into()));
            {
                let pass = rec.span("compile", "pass:analyze");
                let lp = rec.loop_span("compile", "do5", LoopId(3));
                lp.end();
                pass.end();
            }
            unit.end();
        }
        rec.count(Counter::InlineSplices, 2);
        rec.count(Counter::CompileLoopsTotal, 1);
        compile.end();
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        nested_run(&rec);
        assert!(!rec.is_enabled());
        assert!(rec.events().is_empty());
        assert!(rec.counters().is_empty());
        assert_eq!(rec.clock_name(), "disabled");
        // serializers still produce valid empty documents
        assert!(rec.chrome_trace_json().contains("\"traceEvents\""));
        assert!(rec.metrics_json().contains("polaris-obs/metrics/v1"));
    }

    #[test]
    fn events_are_ordered_and_well_nested_with_stable_pid_tid() {
        let rec = Recorder::virtual_clock();
        nested_run(&rec);
        let events = rec.events();
        assert_eq!(events.len(), 8, "{events:#?}");
        validate_nesting(&events).unwrap();
        // timestamps strictly increase under the virtual clock
        for w in events.windows(2) {
            assert!(w[0].ts_us < w[1].ts_us, "{w:?}");
        }
        // every span here is on the driver tid
        assert!(events.iter().all(|e| e.tid == 1));
        // the chrome doc keeps pid/tid stable across every event
        let doc = rec.chrome_trace_json();
        assert_eq!(doc.matches("\"pid\": 1").count(), 8, "{doc}");
        assert_eq!(doc.matches("\"tid\": 1").count(), 8, "{doc}");
        // B/E pairing: equal counts, and the first E follows its B
        assert_eq!(doc.matches("\"ph\": \"B\"").count(), 4);
        assert_eq!(doc.matches("\"ph\": \"E\"").count(), 4);
    }

    #[test]
    fn chrome_args_carry_loop_id_and_unit() {
        let rec = Recorder::virtual_clock();
        nested_run(&rec);
        let doc = rec.chrome_trace_json();
        assert!(doc.contains("\"args\": {\"loop_id\": 3}"), "{doc}");
        assert!(doc.contains("\"args\": {\"unit\": \"MAIN\"}"), "{doc}");
        assert!(doc.contains("\"counters\": {\"compile.inline.splices\": 2, \
                              \"compile.loops.total\": 1}"),
            "{doc}");
    }

    #[test]
    fn out_of_order_end_is_detected() {
        // Hand-build an ill-nested stream: A opens, B opens, A closes.
        let mk = |phase, name: &str| Event {
            phase,
            cat: "compile",
            name: name.to_string(),
            tid: 1,
            ts_us: 1,
            loop_id: None,
            unit: None,
        };
        let bad = vec![mk(Phase::Begin, "a"), mk(Phase::Begin, "b"), mk(Phase::End, "a")];
        assert!(validate_nesting(&bad).is_err());
        let open = vec![mk(Phase::Begin, "a")];
        assert!(validate_nesting(&open).is_err());
        let stray = vec![mk(Phase::End, "a")];
        assert!(validate_nesting(&stray).is_err());
    }

    #[test]
    fn virtual_clock_runs_are_byte_identical() {
        let runs: Vec<(String, String)> = (0..2)
            .map(|_| {
                let rec = Recorder::virtual_clock();
                nested_run(&rec);
                (rec.chrome_trace_json(), rec.metrics_json())
            })
            .collect();
        assert_eq!(runs[0].0, runs[1].0, "chrome trace not deterministic");
        assert_eq!(runs[0].1, runs[1].1, "metrics not deterministic");
    }

    #[test]
    fn metrics_aggregates_span_durations() {
        let rec = Recorder::virtual_clock();
        nested_run(&rec);
        let spans = aggregate_spans(&rec.events());
        // compile span: B at tick 1, E at tick 8 → 7 virtual µs
        assert_eq!(
            spans[&("compile", "compile".to_string())],
            SpanAgg { count: 1, total_us: 7 }
        );
        assert_eq!(spans[&("compile", "loop:do5".to_string())].count, 1);
        let doc = rec.metrics_json();
        assert!(doc.contains("\"clock\": \"virtual\""), "{doc}");
        assert!(doc.contains("\"compile.inline.splices\": 2"), "{doc}");
        assert!(
            doc.contains("{\"cat\": \"compile\", \"name\": \"compile\", \"count\": 1, \"total_us\": 7}"),
            "{doc}"
        );
    }

    #[test]
    fn drop_closes_spans_on_early_exit() {
        let rec = Recorder::virtual_clock();
        fn may_fail(rec: &Recorder, fail: bool) -> Result<(), ()> {
            let _s = rec.span("exec", "loop:do1");
            if fail {
                return Err(());
            }
            Ok(())
        }
        let _ = may_fail(&rec, true);
        let _ = may_fail(&rec, false);
        validate_nesting(&rec.events()).unwrap();
        assert_eq!(rec.events().len(), 4);
    }

    #[test]
    fn saturation_drops_whole_spans_and_counts_them() {
        let rec = Recorder {
            inner: Some(Arc::new(Inner {
                mode: ClockMode::Virtual,
                epoch: Instant::now(),
                vticks: AtomicU64::new(0),
                max_events: 4,
                state: Mutex::new(State::default()),
            })),
        };
        for _ in 0..5 {
            rec.span("exec", "loop:x").end();
        }
        // cap 4 → two whole spans fit (B E B E), three dropped
        let events = rec.events();
        assert_eq!(events.len(), 4, "{events:#?}");
        validate_nesting(&events).unwrap();
        assert_eq!(rec.events_dropped(), 3);
        assert!(rec.metrics_json().contains("\"events_dropped\": 3"));
    }

    #[test]
    fn counter_names_are_unique_and_zero_counts_materialize() {
        let all = [
            Counter::RangeTestsRun,
            Counter::RangeProved,
            Counter::RangeDisproved,
            Counter::RangeAbstained,
            Counter::BanerjeeVectors,
            Counter::GcdTests,
            Counter::RangeProbes,
            Counter::PermutationsUsed,
            Counter::RangesPropagated,
            Counter::IdxPropsProved,
            Counter::PropsTestsRun,
            Counter::PropsProved,
            Counter::InductionSubstitutions,
            Counter::ReductionsRecognized,
            Counter::ArraysPrivatized,
            Counter::InlineSplices,
            Counter::CompileLoopsParallel,
            Counter::CompileLoopsSpeculative,
            Counter::CompileLoopsSerial,
            Counter::CompileLoopsTotal,
            Counter::ExecLoopsParallel,
            Counter::ExecLoopsSpeculative,
            Counter::ExecLoopsSerial,
            Counter::ExecLoopsAdversarial,
            Counter::ExecLoopsTotal,
            Counter::ThreadedChunks,
            Counter::ThreadedMergeBytes,
            Counter::LrpdPass,
            Counter::LrpdFail,
            Counter::OracleViolations,
            Counter::VerifyInvariantChecks,
            Counter::VerifyInvariantViolations,
            Counter::VerifyRaceClean,
            Counter::VerifyRaceNeedsPrivatization,
            Counter::VerifyRacePotentialRace,
            Counter::VerifyLintFindings,
            Counter::PolarisdAccepted,
            Counter::PolarisdAnswered,
            Counter::PolarisdShed,
            Counter::PolarisdCacheHits,
            Counter::PolarisdCacheMisses,
            Counter::PolarisdCachePoisonPurged,
            Counter::PolarisdRetries,
            Counter::PolarisdDeadlineCancels,
            Counter::PolarisdQuarantined,
            Counter::PolarisdProbes,
            Counter::PolarisdRecovered,
            Counter::PolarisdWorkerRespawns,
            Counter::AdaptiveDecisions,
            Counter::AdaptiveMeasurements,
            Counter::AdaptiveRedispatch,
            Counter::AdaptiveThrottled,
            Counter::AdaptiveProbes,
            Counter::AdaptiveTableCorrupt,
            Counter::StealChunks,
            Counter::StealAttempts,
        ];
        let names: std::collections::BTreeSet<&str> = all.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), all.len());
        let rec = Recorder::virtual_clock();
        for c in all {
            rec.count(c, 0);
        }
        assert_eq!(rec.counters().len(), all.len());
    }

    #[test]
    fn monotonic_clock_produces_nondecreasing_timestamps() {
        let rec = Recorder::monotonic();
        assert_eq!(rec.clock_name(), "monotonic");
        nested_run(&rec);
        let events = rec.events();
        for w in events.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
        validate_nesting(&events).unwrap();
    }
}

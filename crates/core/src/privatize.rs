//! Scalar and array privatization (§3.4).
//!
//! "To prove that a variable is privatizable, every use of that variable
//! must be dominated by a definition of the variable in the same loop
//! iteration." Scalars use a structured def-before-use walk. Arrays
//! require region analysis: the region read by each use must be covered
//! by an unconditional, textually preceding defined region within the
//! iteration, with symbolic region comparisons performed by
//! `polaris-symbolic` (Figure 4's `MP >= M*P` proof arrives through the
//! flow-sensitive range environment, standing in for the paper's
//! GSA-based demand-driven backward substitution).
//!
//! The module also implements the **compaction idiom recognizer** needed
//! for BDNA (Figure 5): a counter `P` starting at 0 and incremented
//! under a condition, with `IND(P) = <loop var>` stores, proves that
//! `IND(1:P)` holds values within the scan loop's index range — which
//! then bounds uses like `A(IND(L))` through the array-value ranges of
//! [`polaris_symbolic::RangeEnv`].

use polaris_ir::expr::{Expr, LValue};
use polaris_ir::stmt::{DoLoop, StmtKind, StmtList};
use polaris_ir::visit::{collect_iteration_accesses, Access};
use polaris_ir::ProgramUnit;
use polaris_symbolic::bounds::min_max_over;
use polaris_symbolic::poly::{Atom, DivPolicy, Poly};
use polaris_symbolic::{prove_ge, prove_le, Range, RangeEnv};

/// Why privatization failed (diagnostics for the listing / tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrivatizeFailure {
    UpwardExposedUse(String),
    ConditionalDefinition(String),
    RegionNotCovered(String),
    LiveAfterLoop(String),
    NotAnalyzable(String),
}

/// Outcome of a scalar privatization query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalarVerdict {
    /// Private; the value does not escape the loop.
    Private,
    /// Private, but live after the loop: needs last-iteration copy-out,
    /// which requires the final write to be unconditional.
    PrivateCopyOut,
    Fail(PrivatizeFailure),
}

// ---------------------------------------------------------------------
// Scalar privatization
// ---------------------------------------------------------------------

/// Definedness state of a scalar during the structured walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defined {
    No,
    Maybe,
    Yes,
}

impl Defined {
    fn join(self, other: Defined) -> Defined {
        use Defined::*;
        match (self, other) {
            (Yes, Yes) => Yes,
            (No, No) => No,
            _ => Maybe,
        }
    }
}

/// Is scalar `name` privatizable in one iteration of `d`'s body: every
/// read of `name` preceded (on every path) by a write in the same
/// iteration?
pub fn scalar_privatizable(d: &DoLoop, name: &str) -> bool {
    fn walk(list: &StmtList, name: &str, mut state: Defined) -> Option<Defined> {
        for s in list {
            match &s.kind {
                StmtKind::Assign { lhs, rhs, .. } => {
                    // reads first (RHS and LHS subscripts)
                    if rhs.references_var(name) && state != Defined::Yes {
                        return None;
                    }
                    for sub in lhs.subs() {
                        if sub.references_var(name) && state != Defined::Yes {
                            return None;
                        }
                    }
                    if lhs.name() == name && lhs.subs().is_empty() {
                        state = Defined::Yes;
                    }
                }
                StmtKind::Do(inner) => {
                    if (inner.init.references_var(name)
                        || inner.limit.references_var(name)
                        || inner.step.as_ref().map(|e| e.references_var(name)).unwrap_or(false))
                        && state != Defined::Yes
                    {
                        return None;
                    }
                    if inner.var == name {
                        // the loop defines it (value after loop is the
                        // exhausted index — treat as defined)
                        state = Defined::Yes;
                        walk(&inner.body, name, state)?;
                        continue;
                    }
                    // The body may execute zero times: definitions inside
                    // only "maybe" reach after the loop; reads inside
                    // must still be dominated.
                    let inner_state = walk(&inner.body, name, state)?;
                    state = state.join(inner_state);
                }
                StmtKind::IfBlock { arms, else_body } => {
                    for arm in arms {
                        if arm.cond.references_var(name) && state != Defined::Yes {
                            return None;
                        }
                    }
                    let mut states = Vec::new();
                    for arm in arms {
                        states.push(walk(&arm.body, name, state)?);
                    }
                    states.push(walk(else_body, name, state)?);
                    let mut joined = states[0];
                    for st in &states[1..] {
                        joined = joined.join(*st);
                    }
                    // With no ELSE the fall-through path keeps `state`.
                    if else_body.is_empty() && !arms.is_empty() {
                        // already included: walk(else_body) on empty list
                        // returns `state` itself.
                    }
                    state = joined;
                }
                StmtKind::Call { args, .. } => {
                    for a in args {
                        if a.references_var(name) && state != Defined::Yes {
                            return None;
                        }
                    }
                }
                StmtKind::Print { items } => {
                    for a in items {
                        if a.references_var(name) && state != Defined::Yes {
                            return None;
                        }
                    }
                }
                StmtKind::Assert { .. }
                | StmtKind::Return
                | StmtKind::Stop
                | StmtKind::Continue => {}
            }
        }
        Some(state)
    }
    walk(&d.body, name, Defined::No).is_some()
}

/// Is the *final* write to scalar `name` in an iteration unconditional
/// (so a last-iteration copy-out is well defined)?
pub fn scalar_write_unconditional(d: &DoLoop, name: &str) -> bool {
    // the last top-level write must exist and not be under an IF / inner DO
    let mut last_uncond = false;
    for s in &d.body {
        match &s.kind {
            StmtKind::Assign { lhs, .. } if lhs.name() == name && lhs.subs().is_empty() => {
                last_uncond = true;
            }
            StmtKind::IfBlock { arms, else_body } => {
                let writes = arms
                    .iter()
                    .any(|a| crate::rangeprop::assigned_vars(&a.body).contains(name))
                    || crate::rangeprop::assigned_vars(else_body).contains(name);
                if writes {
                    last_uncond = false;
                }
            }
            StmtKind::Do(inner)
                if crate::rangeprop::assigned_vars(&inner.body).contains(name) => {
                    // a write inside an inner loop executes only if the
                    // inner loop runs: conditional
                    last_uncond = false;
                }
            _ => {}
        }
    }
    last_uncond
}

/// Is `name` (scalar or array) used after the loop with statement id
/// `loop_id` — or is it visible outside the unit (argument / COMMON)?
/// Conservative textual liveness.
pub fn live_after(unit: &ProgramUnit, loop_id: polaris_ir::StmtId, name: &str) -> bool {
    if let Some(sym) = unit.symbols.get(name) {
        if sym.is_arg || sym.common.is_some() {
            return true;
        }
    }
    // Execution-order walk: anything read after the loop statement
    // counts; if the loop sits inside an enclosing loop, reads anywhere
    // in that enclosing loop's body (outside our loop) also count, which
    // the "after in pre-order OR enclosing-loop sibling" rule captures
    // conservatively: we simply mark every read outside the loop's own
    // body that is not strictly before the loop at the top level.
    let mut seen_loop = false;
    let mut live = false;
    fn reads_name(s: &polaris_ir::Stmt, name: &str) -> bool {
        let mut found = false;
        polaris_ir::stmt::for_each_stmt_expr(s, &mut |e| match e {
            Expr::Var(n) | Expr::Index { array: n, .. }
                if n == name => {
                    found = true;
                }
            _ => {}
        });
        found
    }
    fn walk(
        list: &StmtList,
        loop_id: polaris_ir::StmtId,
        name: &str,
        seen: &mut bool,
        live: &mut bool,
        inside_enclosing_loop: bool,
    ) {
        for s in list {
            if s.id == loop_id {
                *seen = true;
                continue; // skip the loop's own body
            }
            let relevant = *seen || inside_enclosing_loop;
            match &s.kind {
                StmtKind::Do(d) => {
                    let contains = crate::rangeprop::contains(&d.body, loop_id);
                    if contains {
                        walk(&d.body, loop_id, name, seen, live, true);
                    } else if relevant && reads_name(s, name) {
                        *live = true;
                    } else if relevant {
                        walk(&d.body, loop_id, name, seen, live, inside_enclosing_loop);
                    }
                }
                StmtKind::IfBlock { arms, else_body } => {
                    let contains = arms
                        .iter()
                        .any(|a| crate::rangeprop::contains(&a.body, loop_id))
                        || crate::rangeprop::contains(else_body, loop_id);
                    if contains {
                        for arm in arms {
                            walk(&arm.body, loop_id, name, seen, live, inside_enclosing_loop);
                        }
                        walk(else_body, loop_id, name, seen, live, inside_enclosing_loop);
                    } else if relevant && reads_name(s, name) {
                        *live = true;
                    }
                }
                _ => {
                    if relevant && reads_name(s, name) {
                        *live = true;
                    }
                }
            }
        }
    }
    walk(&unit.body, loop_id, name, &mut seen_loop, &mut live, false);
    live
}

// ---------------------------------------------------------------------
// Array privatization
// ---------------------------------------------------------------------

/// A rectangular per-dimension region `[lo, hi]` of an array access,
/// computed over the access's inner-loop context.
#[derive(Debug, Clone)]
pub struct RegionBox {
    pub dims: Vec<(Poly, Poly)>,
    /// Textual order index of the access (for precedes checks).
    pub order: usize,
}

/// Compute the per-iteration region of an access: eliminate the
/// reference's inner-loop variables from each subscript.
fn access_region(a: &Access, env: &RangeEnv) -> Option<RegionBox> {
    let mut env = env.clone();
    for c in &a.ctx {
        let lo = Poly::from_expr(&c.init, DivPolicy::Opaque)?;
        let hi = Poly::from_expr(&c.limit, DivPolicy::Opaque)?;
        let step = c.step.simplified().as_int().unwrap_or(1);
        let range = if step >= 0 {
            Range::new(Some(lo), Some(hi))
        } else {
            Range::new(Some(hi), Some(lo))
        };
        env.set_fresh(c.var.clone(), range);
    }
    let ctx_atoms: Vec<Atom> = a.ctx.iter().rev().map(|c| Atom::var(c.var.clone())).collect();
    let mut dims = Vec::new();
    for sub in &a.subs {
        let p = Poly::from_expr(sub, DivPolicy::Exact)?;
        // Opaque atoms with registered value ranges (e.g. the compaction
        // idiom's IND(L)) are eliminated first; they typically mention
        // the inner loop variable, which would otherwise block its
        // elimination.
        let mut atoms: Vec<Atom> = p
            .atoms()
            .into_iter()
            .filter(|at| {
                matches!(at, Atom::Opaque { .. }) && !env.atom_range(at).is_unknown()
            })
            .collect();
        atoms.extend(ctx_atoms.iter().cloned());
        let (lo, hi) = min_max_over(&p, &atoms, &env);
        dims.push((lo?, hi?));
    }
    Some(RegionBox { dims, order: a.order })
}

/// Micro-GSA: resolve scalar subscripts of an access through reaching
/// definitions inside the iteration (the paper's demand-driven backward
/// substitution — Figure 5's `M = IND(L)`, and the strength-reduced
/// induction form `X = f(I)` that the dependence driver must see through).
///
/// A scalar `v` in a subscript is substituted by the RHS of the *latest*
/// write preceding the use, provided
/// * that write is unconditional and placed at the top level of the loop
///   body (so it dominates the use),
/// * no other write to `v` lies between it and the use,
/// * the RHS does not reference `v` itself, and
/// * no array the RHS reads is written between the definition and the use.
pub fn resolve_scalar_subscripts(accesses: &[Access], a: &Access) -> Vec<Expr> {
    let mut out = Vec::new();
    for sub in &a.subs {
        let mut resolved = sub.clone();
        for _ in 0..2 {
            let vars = resolved.variables();
            let mut changed = false;
            for v in vars {
                // loop-context variables resolve through ranges, not defs
                if a.ctx.iter().any(|c| c.var == v) {
                    continue;
                }
                let writes: Vec<&Access> = accesses
                    .iter()
                    .filter(|w| w.is_write && w.name == v && w.is_scalar())
                    .collect();
                // latest write strictly before the use
                let Some(def) = writes
                    .iter()
                    .filter(|w| w.order < a.order)
                    .max_by_key(|w| w.order)
                else {
                    continue;
                };
                // it must dominate the use: unconditional, and its loop
                // context must be a prefix of the use's (same or
                // enclosing nesting path)
                if def.conditional
                    || def.ctx.len() > a.ctx.len()
                    || !def.ctx.iter().zip(&a.ctx).all(|(dc, ac)| dc.var == ac.var)
                {
                    continue;
                }
                // no other write between the def and the use
                if writes.iter().any(|w| w.order > def.order && w.order < a.order) {
                    continue;
                }
                let Some(rhs) = def.def_rhs.clone() else { continue };
                if rhs.references_var(&v) {
                    continue;
                }
                // arrays feeding the definition must be quiescent between
                // the definition and the use
                let rhs_arrays = rhs.arrays();
                let dirty = accesses.iter().any(|w| {
                    w.is_write
                        && !w.is_scalar()
                        && rhs_arrays.contains(&w.name)
                        && w.order > def.order
                        && w.order < a.order
                });
                if dirty {
                    continue;
                }
                let new = resolved.substitute_var(&v, &rhs);
                if new != resolved {
                    resolved = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        out.push(resolved);
    }
    out
}

/// Is a write access *dense* — does it actually define every element of
/// its rectangular region? True when each subscript is either invariant
/// in the access's inner loops or affine with coefficient ±1 in exactly
/// one unit-step inner loop.
fn write_is_dense(a: &Access) -> bool {
    for sub in &a.subs {
        let Some(p) = Poly::from_expr(sub, DivPolicy::Exact) else { return false };
        let mut hit_loops = 0usize;
        for c in &a.ctx {
            if p.var_hidden_in_opaque(&c.var) {
                return false;
            }
            let deg = p.degree_in(&c.var);
            if deg == 0 {
                continue;
            }
            if deg > 1 {
                return false;
            }
            let Some(parts) = p.by_powers_of(&c.var) else { return false };
            let Some(coef) = parts[1].as_constant() else { return false };
            let step = c.step.simplified().as_int().unwrap_or(0);
            if !(coef.as_integer() == Some(1) || coef.as_integer() == Some(-1)) {
                return false;
            }
            if step.abs() != 1 {
                return false;
            }
            hit_loops += 1;
        }
        if hit_loops > 1 {
            return false;
        }
    }
    true
}

/// Can array `name` be privatized for loop `d`? Every read of `name` in
/// an iteration must fall within the region of an unconditional,
/// textually preceding, dense write of the same iteration. `env` holds
/// ranges valid inside the loop body (including compaction-idiom
/// array-value facts). Reads/writes flagged as reductions are exempt.
pub fn array_privatizable(d: &DoLoop, name: &str, env: &RangeEnv) -> Result<(), PrivatizeFailure> {
    array_privatizable_with_decl(d, name, env, None)
}

/// Like [`array_privatizable`], but when the declared dimensions of the
/// array are supplied, a use whose region cannot be computed (opaque
/// subscripts) falls back to the *whole declared region* — sound under
/// Fortran's rule that subscripts stay within declared bounds, and
/// exactly what lets an FFT-style workspace (`copy-in; transform
/// in-place; copy-out`) privatize even though the butterfly indices are
/// symbolic. The fallback only helps when a preceding dense write covers
/// the entire array.
pub fn array_privatizable_with_decl(
    d: &DoLoop,
    name: &str,
    env: &RangeEnv,
    declared: Option<&[(Poly, Poly)]>,
) -> Result<(), PrivatizeFailure> {
    let accesses = collect_iteration_accesses(d);
    let mut def_regions: Vec<RegionBox> = Vec::new();
    let mut reads: Vec<&Access> = Vec::new();
    for a in accesses.iter().filter(|a| a.name == name && a.reduction.is_none()) {
        if a.is_write {
            if !a.conditional && write_is_dense(a) {
                if let Some(r) = access_region(a, env) {
                    def_regions.push(r);
                }
            }
        } else {
            reads.push(a);
        }
    }
    if def_regions.is_empty() {
        return Err(PrivatizeFailure::ConditionalDefinition(name.to_string()));
    }
    'reads: for r in reads {
        // Resolve scalar subscripts through their in-iteration reaching
        // definitions first (Figure 5's M = IND(L)).
        let mut r = (*r).clone();
        r.subs = resolve_scalar_subscripts(&accesses, &r);
        let r = &r;
        let use_region = match access_region(r, env) {
            Some(reg) => reg,
            None => match declared {
                // Fall back to the declared bounds (see doc comment).
                Some(dims) => RegionBox { dims: dims.to_vec(), order: r.order },
                None => {
                    return Err(PrivatizeFailure::NotAnalyzable(format!(
                        "{name}: use region not computable"
                    )))
                }
            },
        };
        for def in &def_regions {
            if def.order < use_region.order && region_covers(def, &use_region, env) {
                continue 'reads;
            }
        }
        return Err(PrivatizeFailure::RegionNotCovered(name.to_string()));
    }
    Ok(())
}

/// Does `def` cover `use_`: `def.lo <= use.lo` and `use.hi <= def.hi`
/// in every dimension (symbolically proven)?
fn region_covers(def: &RegionBox, use_: &RegionBox, env: &RangeEnv) -> bool {
    debug_assert_eq!(def.dims.len(), use_.dims.len());
    def.dims.iter().zip(&use_.dims).all(|((dlo, dhi), (ulo, uhi))| {
        prove_le(dlo, ulo, env) && prove_ge(dhi, uhi, env)
    })
}

// ---------------------------------------------------------------------
// Compaction idiom (BDNA, Figure 5)
// ---------------------------------------------------------------------

/// A recognized compaction: `P = 0; DO K = lo, hi; IF (c) THEN
/// P = P + 1; IND(P) = K; END IF; END DO`.
#[derive(Debug, Clone)]
pub struct Compaction {
    /// The counter (`P`).
    pub counter: String,
    /// The index array (`IND`).
    pub array: String,
    /// Scan loop bounds: values stored into `array` lie in `[lo, hi]`.
    pub lo: Expr,
    pub hi: Expr,
}

/// Scan the *top level* of a loop body for compaction idioms and
/// register their facts in `env`:
/// * the values of `array` lie within the scan range,
/// * the counter `P` is at most the scan trip count and at least 0.
pub fn recognize_compactions(body: &StmtList, env: &mut RangeEnv) -> Vec<Compaction> {
    let mut found = Vec::new();
    let mut counter_zeroed: Option<String> = None;
    for s in body {
        match &s.kind {
            StmtKind::Assign { lhs: LValue::Var(v), rhs, .. }
                if rhs.simplified().as_int() == Some(0) => {
                    counter_zeroed = Some(v.clone());
                }
            StmtKind::Do(scan) => {
                if let Some(p) = &counter_zeroed {
                    if let Some(c) = match_compaction(scan, p) {
                        // Register facts: IND values ∈ [lo, hi]; P ∈ [0, trip].
                        let lo = Poly::from_expr(&c.lo, DivPolicy::Opaque);
                        let hi = Poly::from_expr(&c.hi, DivPolicy::Opaque);
                        env.set_array_values(c.array.clone(), Range::new(lo.clone(), hi.clone()));
                        let trip = match (lo, hi) {
                            (Some(l), Some(h)) => {
                                h.checked_sub(&l).and_then(|d| d.checked_add(&Poly::int(1)))
                            }
                            _ => None,
                        };
                        env.set_fresh(c.counter.clone(), Range::new(Some(Poly::int(0)), trip));
                        found.push(c);
                    }
                }
                counter_zeroed = None;
            }
            _ => {
                counter_zeroed = None;
            }
        }
    }
    found
}

/// Match the scan loop of the idiom: its body (possibly after other
/// statements) contains exactly one IF whose arm is
/// `P = P + 1; IND(P) = <scan var or affine of it>` and `P`/`IND` are
/// not otherwise assigned in the loop.
fn match_compaction(scan: &DoLoop, counter: &str) -> Option<Compaction> {
    if scan.step_expr().simplified().as_int() != Some(1) {
        return None;
    }
    let mut result: Option<Compaction> = None;
    for s in &scan.body {
        if let StmtKind::IfBlock { arms, else_body } = &s.kind {
            if arms.len() != 1 || !else_body.is_empty() {
                continue;
            }
            let body = &arms[0].body;
            if body.len() != 2 {
                continue;
            }
            // P = P + 1
            let incr_ok = matches!(
                &body.0[0].kind,
                StmtKind::Assign { lhs: LValue::Var(v), rhs, .. }
                    if v == counter
                        && *rhs == Expr::add(Expr::var(counter), Expr::Int(1))
            );
            if !incr_ok {
                continue;
            }
            // IND(P) = <expr involving only the scan variable in [lo,hi]>
            if let StmtKind::Assign { lhs: LValue::Index { array, subs }, rhs, .. } =
                &body.0[1].kind
            {
                if subs.len() == 1
                    && subs[0] == Expr::var(counter)
                    && *rhs == Expr::var(&scan.var)
                {
                    if result.is_some() {
                        return None; // two idioms on one counter: bail
                    }
                    result = Some(Compaction {
                        counter: counter.to_string(),
                        array: array.clone(),
                        lo: scan.init.clone(),
                        hi: scan.limit.clone(),
                    });
                    continue;
                }
            }
            return None;
        }
        // Other assignments to the counter or the array invalidate.
        if let StmtKind::Assign { lhs, .. } = &s.kind {
            if lhs.name() == counter {
                return None;
            }
            if let Some(c) = &result {
                if lhs.name() == c.array {
                    return None;
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_of(src: &str) -> ProgramUnit {
        let full = format!("program t\n{src}\nend\n");
        polaris_ir::parse(&full).unwrap().units.remove(0)
    }

    fn loop_named<'a>(u: &'a ProgramUnit, var: &str) -> &'a DoLoop {
        u.body.loops().into_iter().find(|d| d.var == var).unwrap()
    }

    // ----- scalar privatization -------------------------------------

    #[test]
    fn def_before_use_is_private() {
        let u = unit_of("do i = 1, n\n  t = a(i) * 2.0\n  b(i) = t + 1.0\nend do");
        assert!(scalar_privatizable(loop_named(&u, "I"), "T"));
    }

    #[test]
    fn upward_exposed_use_fails() {
        let u = unit_of("do i = 1, n\n  b(i) = t\n  t = a(i)\nend do");
        assert!(!scalar_privatizable(loop_named(&u, "I"), "T"));
    }

    #[test]
    fn both_branches_define_then_use_ok() {
        let u = unit_of(
            "do i = 1, n\n  if (a(i) > 0.0) then\n    t = 1.0\n  else\n    t = 2.0\n  end if\n  b(i) = t\nend do",
        );
        assert!(scalar_privatizable(loop_named(&u, "I"), "T"));
    }

    #[test]
    fn one_branch_defines_then_use_fails() {
        let u = unit_of(
            "do i = 1, n\n  if (a(i) > 0.0) then\n    t = 1.0\n  end if\n  b(i) = t\nend do",
        );
        assert!(!scalar_privatizable(loop_named(&u, "I"), "T"));
    }

    #[test]
    fn def_and_use_inside_inner_loop() {
        // BDNA's R: defined and used within the same inner iteration.
        let u = unit_of(
            "real a(100)\ndo i = 2, n\n  do j = 1, i - 1\n    r = a(j) + w\n    if (r < rc) b(j) = r\n  end do\nend do",
        );
        assert!(scalar_privatizable(loop_named(&u, "I"), "R"));
    }

    #[test]
    fn def_in_inner_loop_used_after_fails() {
        // the inner loop may run zero times: T not guaranteed defined
        let u = unit_of(
            "do i = 1, n\n  do j = 1, m\n    t = a(j)\n  end do\n  b(i) = t\nend do",
        );
        assert!(!scalar_privatizable(loop_named(&u, "I"), "T"));
    }

    #[test]
    fn copy_out_requires_unconditional_final_write() {
        let u = unit_of("do i = 1, n\n  t = a(i)\n  b(i) = t\nend do");
        assert!(scalar_write_unconditional(loop_named(&u, "I"), "T"));
        let u2 = unit_of(
            "do i = 1, n\n  t = 0.0\n  if (a(i) > 0.0) then\n    t = a(i)\n  end if\n  b(i) = t\nend do",
        );
        assert!(!scalar_write_unconditional(loop_named(&u2, "I"), "T"));
    }

    // ----- liveness ----------------------------------------------------

    #[test]
    fn live_after_textual() {
        let u = unit_of("do i = 1, n\n  t = a(i)\n  b(i) = t\nend do\nc = t");
        let id = u.body.0[0].id;
        assert!(live_after(&u, id, "T"));
        let u2 = unit_of("do i = 1, n\n  t = a(i)\n  b(i) = t\nend do\nc = 1.0");
        let id2 = u2.body.0[0].id;
        assert!(!live_after(&u2, id2, "T"));
    }

    #[test]
    fn args_and_commons_always_live() {
        let src = "subroutine s(t)\nreal t\ndo i = 1, 10\n  t = 1.0\n  b(i) = t\nend do\nend\n";
        let u = polaris_ir::parse(src).unwrap().units.remove(0);
        let id = u.body.0[0].id;
        assert!(live_after(&u, id, "T"));
    }

    #[test]
    fn read_in_enclosing_loop_before_is_live() {
        // our loop nested in an outer loop; T read earlier in the outer
        // body (previous outer iteration reads it): live.
        let u = unit_of(
            "do k = 1, 3\n  c = t\n  do i = 1, n\n    t = a(i)\n    b(i) = t\n  end do\nend do",
        );
        let mut inner_id = None;
        u.body.walk(&mut |s| {
            if let StmtKind::Do(d) = &s.kind {
                if d.var == "I" {
                    inner_id = Some(s.id);
                }
            }
        });
        assert!(live_after(&u, inner_id.unwrap(), "T"));
    }

    // ----- array privatization ------------------------------------------

    #[test]
    fn figure4_array_privatization() {
        // Paper Figure 4: A(1:MP) defined, A(1:M*P) used, MP = M*P.
        let src = "mp = m*p\ndo i = 1, 10\n  do j = 1, mp\n    a(j) = b(i, j)\n  end do\n  do k = 1, m*p\n    c(i, k) = a(k)\n  end do\nend do";
        let u = unit_of(&format!(
            "real a(1000), b(10,1000), c(10,1000)\ninteger mp, m, p\n{src}"
        ));
        let d = loop_named(&u, "I");
        // env at the loop: rangeprop provides MP = M*P
        let mut loop_id = None;
        u.body.walk(&mut |s| {
            if let StmtKind::Do(dd) = &s.kind {
                if dd.var == "I" && loop_id.is_none() {
                    loop_id = Some(s.id);
                }
            }
        });
        let mut env = crate::rangeprop::env_in_loop(&u, loop_id.unwrap());
        // analyzing the body assumes the defining J loop is nonempty
        env.assume_cond(&Expr::bin(
            polaris_ir::BinOp::Ge,
            Expr::var("MP"),
            Expr::int(1),
        ));
        assert_eq!(array_privatizable(d, "A", &env), Ok(()));
    }

    #[test]
    fn uncovered_use_fails() {
        // defines A(1:M), uses A(1:M+1)
        let src = "do i = 1, 10\n  do j = 1, m\n    a(j) = b(i, j)\n  end do\n  do k = 1, m + 1\n    c(i, k) = a(k)\n  end do\nend do";
        let u = unit_of(&format!("real a(1000), b(10,1000), c(10,1000)\ninteger m\n{src}"));
        let d = loop_named(&u, "I");
        let env = RangeEnv::new();
        assert!(matches!(
            array_privatizable(d, "A", &env),
            Err(PrivatizeFailure::RegionNotCovered(_))
        ));
    }

    #[test]
    fn conditional_write_not_a_must_def() {
        let src = "do i = 1, 10\n  do j = 1, m\n    if (b(i,j) > 0.0) then\n      a(j) = b(i, j)\n    end if\n  end do\n  do k = 1, m\n    c(i, k) = a(k)\n  end do\nend do";
        let u = unit_of(&format!("real a(1000), b(10,1000), c(10,1000)\ninteger m\n{src}"));
        let d = loop_named(&u, "I");
        let env = RangeEnv::new();
        assert!(array_privatizable(d, "A", &env).is_err());
    }

    #[test]
    fn strided_write_not_dense() {
        let src = "do i = 1, 10\n  do j = 1, m\n    a(2*j) = b(i, j)\n  end do\n  do k = 1, m\n    c(i, k) = a(k)\n  end do\nend do";
        let u = unit_of(&format!("real a(1000), b(10,1000), c(10,1000)\ninteger m\n{src}"));
        let d = loop_named(&u, "I");
        let env = RangeEnv::new();
        assert!(array_privatizable(d, "A", &env).is_err());
    }

    #[test]
    fn use_before_def_order_fails() {
        let src = "do i = 1, 10\n  do k = 1, m\n    c(i, k) = a(k)\n  end do\n  do j = 1, m\n    a(j) = b(i, j)\n  end do\nend do";
        let u = unit_of(&format!("real a(1000), b(10,1000), c(10,1000)\ninteger m\n{src}"));
        let d = loop_named(&u, "I");
        let env = RangeEnv::new();
        assert!(matches!(
            array_privatizable(d, "A", &env),
            Err(PrivatizeFailure::RegionNotCovered(_))
        ));
    }

    // ----- compaction idiom -----------------------------------------------

    fn bdna_body() -> &'static str {
        "real a(1000), x(100,1000), y(100,1000), z\ninteger ind(1000), p, m\n\
         do i = 2, n\n\
         \x20 do j = 1, i - 1\n\
         \x20   ind(j) = 0\n\
         \x20   a(j) = x(i,j) - y(i,j)\n\
         \x20   r = a(j) + w\n\
         \x20   if (r < rcuts) ind(j) = 1\n\
         \x20 end do\n\
         \x20 p = 0\n\
         \x20 do k = 1, i - 1\n\
         \x20   if (ind(k) /= 0) then\n\
         \x20     p = p + 1\n\
         \x20     ind(p) = k\n\
         \x20   end if\n\
         \x20 end do\n\
         \x20 do l = 1, p\n\
         \x20   m = ind(l)\n\
         \x20   x(i, l) = a(m) + z\n\
         \x20 end do\n\
         end do"
    }

    #[test]
    fn compaction_recognized() {
        let u = unit_of(bdna_body());
        let d = loop_named(&u, "I");
        let mut env = RangeEnv::new();
        let found = recognize_compactions(&d.body, &mut env);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].counter, "P");
        assert_eq!(found[0].array, "IND");
        // facts registered: IND values in [1, I-1]
        let atom = Atom::opaque(Expr::index("IND", vec![Expr::var("L")]));
        let r = env.atom_range(&atom);
        assert!(r.lo.is_some() && r.hi.is_some());
    }

    #[test]
    fn figure5_bdna_array_a_privatizable() {
        // The paper's Figure 5 analysis: A(1:I-1) defined in loop J;
        // uses A(IND(L)) with IND(1:P) ⊆ [1, I-1] — covered.
        let u = unit_of(bdna_body());
        let mut loop_id = None;
        u.body.walk(&mut |s| {
            if let StmtKind::Do(dd) = &s.kind {
                if dd.var == "I" && loop_id.is_none() {
                    loop_id = Some(s.id);
                }
            }
        });
        let d = loop_named(&u, "I");
        let mut env = crate::rangeprop::env_in_loop(&u, loop_id.unwrap());
        recognize_compactions(&d.body, &mut env);
        assert_eq!(array_privatizable(d, "A", &env), Ok(()));
        // IND itself: defined 1:I-1 then compacted 1:P ⊆ [1, I-1];
        // element 0-writes first. The dense first write IND(J)=0 covers
        // reads IND(K) and IND(L).
        assert_eq!(array_privatizable(d, "IND", &env), Ok(()));
        // without the compaction facts A is NOT provably private
        let env2 = crate::rangeprop::env_in_loop(&u, loop_id.unwrap());
        assert!(array_privatizable(d, "A", &env2).is_err());
    }

    #[test]
    fn compaction_with_extra_write_rejected() {
        let src = "integer ind(100), p\nreal q(100)\ndo i = 2, n\n  p = 0\n  do k = 1, i - 1\n    if (q(k) > 0.0) then\n      p = p + 1\n      ind(p) = k\n    end if\n  end do\n  p = p + 1\nend do";
        let u = unit_of(src);
        let d = loop_named(&u, "I");
        let mut env = RangeEnv::new();
        // the trailing p = p + 1 is outside the scan loop: the idiom match
        // itself still fires (facts hold at the point after the scan), but
        // a *second zeroing pattern* is what we guard; here we simply
        // check the recognizer does not crash and registers the scan facts.
        let found = recognize_compactions(&d.body, &mut env);
        assert_eq!(found.len(), 1);
    }
}

//! Nest-level dependence summaries and the transformation legality
//! prover, driving loop interchange, rectangular tiling and
//! adjacent-loop fusion.
//!
//! The per-loop dependence driver ([`crate::deps`]) answers one question
//! per loop: *can this loop run in parallel?* Iteration-reordering
//! transformations need a richer answer: the full matrix of dependence
//! **direction/distance vectors** over a whole loop nest. This module
//! lifts the per-pair `ddtest::banerjee` machinery (via the exhaustive
//! [`banerjee::direction_vector_trials`] refinement) to nest summaries:
//!
//! * every perfect band of a loop nest is summarized as a
//!   [`NestSummary`] — one canonical (lexicographically non-negative)
//!   [`DepVector`] row per feasible dependence direction, with constant
//!   distances where the subscripts determine them;
//! * pairs outside the affine fragment (symbolic bounds, non-linear or
//!   context-nested subscripts) fall back to an all-`*` row — sound,
//!   never silent;
//! * dependences whose both endpoints are *validated reduction*
//!   statements on the same target with the same operator are tagged
//!   **relaxable** (the Polly reductions model): a reduction update may
//!   be reordered freely, so relaxable rows are exempt from legality
//!   blocking while remaining visible as evidence.
//!
//! On top of the summary sits the **legality prover**:
//! [`interchange_legal`] (no non-relaxable vector becomes
//! lexicographically negative under the permutation), [`tiling_legal`]
//! (the band is fully permutable: every non-relaxable vector is carried
//! outside the band or has only `=`/`<` components inside it), and
//! [`fusion_legal`] (no `>`-feasible cross-body dependence, which would
//! invert producer/consumer order after fusion). Each applied
//! transformation emits a machine-checkable [`LegalityCert`] that
//! `polaris-verify` independently re-derives from the transformed IR —
//! the `idxprop` refusal pattern; a cert the re-prover cannot reproduce
//! is rejected, never believed.
//!
//! Variant selection uses a stride-based locality cost model
//! ([`stride_penalty`], [`permutation_score`]) over the machine's
//! column-major layout: unit-stride innermost access is cheap, a
//! column-crossing access pays a memory-class penalty. The same penalty
//! table is mirrored in `polaris_machine::CostModel::stride_penalty`
//! and cross-checked by the conformance tier.

use crate::ddtest::{banerjee, DdStats, Dir};
use crate::reduction;
use polaris_ir::cert::{CertKind, DepVector, LegalityCert, NestDir};
use polaris_ir::expr::Expr;
use polaris_ir::stmt::{DoLoop, LoopId, Stmt, StmtId, StmtKind, StmtList};
use polaris_ir::symbol::Symbol;
use polaris_ir::types::DataType;
use polaris_ir::visit::{collect_accesses, Access};
use polaris_ir::ProgramUnit;
use polaris_symbolic::poly::{DivPolicy, Poly};
use std::collections::BTreeMap;

/// Tile size for rectangular tiling. Tiling is applied only when every
/// band trip count is a constant multiple of this, so the synthesized
/// point-loop bounds stay affine (`DO I = IT, IT + 7`) and every
/// downstream analysis keeps working — no `MIN` guard needed.
pub const TILE: i64 = 8;

/// Minimum constant trip count before tiling is worth the extra loop
/// bookkeeping.
pub const TILE_MIN_TRIP: i64 = 16;

/// Deepest nest the interchange cost model enumerates permutations for.
const MAX_PERM_DEPTH: usize = 4;

/// Unknown-bound sentinel (matches the dependence driver's convention:
/// the real iteration space is a subset, so the test stays sound).
const WIDE: i128 = 1 << 24;

// ---------------------------------------------------------------------
// Nest discovery and summaries
// ---------------------------------------------------------------------

/// One loop of a summarized band, outermost first.
#[derive(Debug, Clone)]
pub struct NestLoop {
    pub var: String,
    pub loop_id: LoopId,
    pub label: String,
    /// Constant lower/upper bound when known.
    pub lo: Option<i64>,
    pub hi: Option<i64>,
    /// Step is the constant 1 (the only shape the vector builder
    /// handles precisely; anything else falls back to `*`).
    pub unit_step: bool,
}

impl NestLoop {
    pub fn of(d: &DoLoop) -> NestLoop {
        NestLoop {
            var: d.var.clone(),
            loop_id: d.loop_id,
            label: d.label.clone(),
            lo: d.init.simplified().as_int(),
            hi: d.limit.simplified().as_int(),
            unit_step: d.step_expr().simplified().as_int() == Some(1),
        }
    }

    /// Constant trip count, if both bounds are known.
    pub fn trip(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) if self.unit_step && hi >= lo => Some(hi - lo + 1),
            _ => None,
        }
    }
}

/// Whole-nest dependence summary: the direction/distance matrix the
/// legality prover judges transformations against.
#[derive(Debug, Clone)]
pub struct NestSummary {
    pub unit: String,
    /// Band loops, outermost first.
    pub loops: Vec<NestLoop>,
    /// Canonical dependence rows (lexicographically non-negative).
    pub vectors: Vec<DepVector>,
}

impl NestSummary {
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    pub fn vars(&self) -> Vec<String> {
        self.loops.iter().map(|l| l.var.clone()).collect()
    }
}

/// The maximal perfect band rooted at `d`: follows sole-statement `DO`
/// bodies downward. The last returned loop owns the (possibly
/// imperfect) innermost body.
pub fn band_of(d: &DoLoop) -> Vec<&DoLoop> {
    let mut band = vec![d];
    let mut cur = d;
    while let [only] = cur.body.0.as_slice() {
        match only.as_do() {
            Some(inner) => {
                band.push(inner);
                cur = inner;
            }
            None => break,
        }
    }
    band
}

/// Summarize the perfect band rooted at `d` as a dependence matrix.
pub fn summarize_nest(unit_name: &str, d: &DoLoop, stats: &DdStats) -> NestSummary {
    let band = band_of(d);
    let loops: Vec<NestLoop> = band.iter().map(|l| NestLoop::of(l)).collect();
    let innermost = *band.last().expect("band is nonempty");
    summarize_band_with(unit_name, loops, &innermost.body, d, stats)
}

/// Summarize `body`'s accesses against an explicit loop-order list.
/// This is the re-derivation entry point `polaris-verify` uses: it can
/// pass the band loops in **original** (pre-transformation) order —
/// reconstructed from a certificate — while reading the accesses from
/// the transformed IR, recovering the matrix the legality judgment must
/// be made over without trusting the pass that claimed it.
/// `reduction_root` scopes reduction validation (header permutations do
/// not change which statements a nest contains, so the transformed
/// outermost loop is a faithful scope).
pub fn summarize_band_with(
    unit_name: &str,
    loops: Vec<NestLoop>,
    body: &StmtList,
    reduction_root: &DoLoop,
    stats: &DdStats,
) -> NestSummary {
    let accesses = collect_accesses(body);
    let validated = reduction::validated_reductions(reduction_root);
    let relaxable = |f: &Access, g: &Access| -> bool {
        match (f.reduction, g.reduction) {
            (Some(a), Some(b)) if a == b => {
                validated.iter().any(|r| r.var == f.name && r.op == a)
            }
            _ => false,
        }
    };

    let mut vectors: Vec<DepVector> = Vec::new();
    let mut push = |row: DepVector| {
        if !vectors.contains(&row) {
            vectors.push(row);
        }
    };
    let n = loops.len();

    // Group by name; scalars get the classification rules, arrays the
    // pairwise affine test.
    let mut by_name: BTreeMap<&str, Vec<&Access>> = BTreeMap::new();
    for a in &accesses {
        by_name.entry(a.name.as_str()).or_default().push(a);
    }
    for (name, refs) in by_name {
        if !refs.iter().any(|a| a.is_write) {
            continue; // read-only: no dependence
        }
        if refs[0].is_scalar() {
            if loops.iter().any(|l| l.var == name) {
                continue; // a band variable is never assigned in the body
            }
            let first = refs.iter().min_by_key(|a| a.order).expect("nonempty");
            if first.is_write && !first.conditional && first.ctx.is_empty() {
                continue; // iteration-local: privatizable, no dependence
            }
            let relax = refs
                .iter()
                .all(|a| a.reduction.is_some() && a.reduction == refs[0].reduction)
                && refs
                    .first()
                    .map(|a| relaxable(a, a))
                    .unwrap_or(false);
            push(DepVector {
                array: name.to_string(),
                dirs: vec![NestDir::Star; n],
                distance: vec![None; n],
                relaxable: relax,
            });
            continue;
        }
        // Arrays: every (write, other) pair contributes rows.
        for (i, w) in refs.iter().enumerate() {
            if !w.is_write {
                continue;
            }
            for (j, o) in refs.iter().enumerate() {
                if i == j || (j < i && o.is_write) {
                    continue; // (w2, w1) already produced as (w1, w2)
                }
                let relax = relaxable(w, o);
                for row in pair_rows(w, o, &loops, relax, stats) {
                    push(row);
                }
            }
        }
    }
    NestSummary { unit: unit_name.to_string(), loops, vectors }
}

// ---------------------------------------------------------------------
// Per-pair direction vectors
// ---------------------------------------------------------------------

/// Raw feasibility analysis for one access pair over the band: the
/// feasible direction leaves of `f`'s iteration relative to `g`'s
/// (`Lt` = f strictly earlier), or `None` when the pair falls outside
/// the affine fragment.
struct PairDirs {
    leaves: Option<Vec<Vec<Dir>>>,
    /// Exact constant `g − f` iteration difference per loop, where a
    /// unit-coefficient subscript dimension determines it.
    exact: Vec<Option<i64>>,
}

fn non_affine(n: usize) -> PairDirs {
    PairDirs { leaves: None, exact: vec![None; n] }
}

/// Compute the feasible direction leaves for accesses `f`, `g` over the
/// band loops via per-dimension Banerjee refinement: a direction vector
/// is feasible for the pair only if it is feasible in **every**
/// subscript dimension (all dimensions must hit the same element
/// simultaneously), so the per-dimension leaf sets are intersected.
fn analyze_pair(f: &Access, g: &Access, loops: &[NestLoop], stats: &DdStats) -> PairDirs {
    let n = loops.len();
    if !f.ctx.is_empty() || !g.ctx.is_empty() {
        return non_affine(n); // nested below the band: out of fragment
    }
    if f.subs.len() != g.subs.len() || f.subs.is_empty() {
        return non_affine(n);
    }
    if !loops.iter().all(|l| l.unit_step) {
        return non_affine(n);
    }
    let vars: Vec<String> = loops.iter().map(|l| l.var.clone()).collect();
    let mut acc: Option<Vec<Vec<Dir>>> = None;
    let mut exact: Vec<Option<i64>> = vec![None; n];
    for dim in 0..f.subs.len() {
        let (Some(fp), Some(gp)) = (
            Poly::from_expr(&f.subs[dim], DivPolicy::Exact),
            Poly::from_expr(&g.subs[dim], DivPolicy::Exact),
        ) else {
            return non_affine(n);
        };
        let (Some((frest, fco)), Some((grest, gco))) =
            (fp.linear_in(&vars), gp.linear_in(&vars))
        else {
            return non_affine(n);
        };
        let Some(diff) = frest.checked_sub(&grest) else { return non_affine(n) };
        let Some(c0) = diff.as_constant().and_then(|r| r.as_integer()) else {
            return non_affine(n);
        };
        let (Some(fci), Some(gci)) = (int_coeffs(&fco), int_coeffs(&gco)) else {
            return non_affine(n);
        };
        let common: Vec<banerjee::Coupled> = (0..n)
            .map(|i| banerjee::Coupled {
                a: fci[i],
                b: gci[i],
                lo: loops[i].lo.map(i128::from).unwrap_or(-WIDE),
                hi: loops[i].hi.map(i128::from).unwrap_or(WIDE),
            })
            .collect();
        let leaves =
            banerjee::feasible_leaves(&banerjee::direction_vector_trials(c0, &common, &[], stats));
        acc = Some(match acc {
            None => leaves,
            Some(mut prev) => {
                prev.retain(|l| leaves.contains(l));
                prev
            }
        });
        // A dimension of the form `v_i + const` on both sides pins the
        // exact iteration difference in loop i: f's v_i + cf = g's
        // v_i + cg forces (g − f) at i to equal cf − cg = c0.
        for i in 0..n {
            if fci[i] == 1 && gci[i] == 1 && (0..n).all(|k| k == i || (fci[k] == 0 && gci[k] == 0))
            {
                let c = c0 as i64;
                match exact[i] {
                    Some(prev) if prev != c => {
                        // Two dimensions demand different differences in
                        // the same loop: the pair can never intersect.
                        return PairDirs { leaves: Some(Vec::new()), exact };
                    }
                    _ => exact[i] = Some(c),
                }
            }
        }
    }
    // Prune leaves inconsistent with an exactly-determined difference
    // (Banerjee's interval reasoning can keep such leaves alive).
    let mut leaves = acc.unwrap_or_default();
    leaves.retain(|l| {
        (0..n).all(|i| match exact[i] {
            Some(c) if c > 0 => l[i] == Dir::Lt,
            Some(0) => l[i] == Dir::Eq,
            Some(_) => l[i] == Dir::Gt,
            None => true,
        })
    });
    PairDirs { leaves: Some(leaves), exact }
}

fn int_coeffs(co: &[polaris_symbolic::Rat]) -> Option<Vec<i128>> {
    co.iter().map(|r| r.as_integer()).collect()
}

fn to_nest_dir(d: Dir) -> NestDir {
    match d {
        Dir::Lt => NestDir::Lt,
        Dir::Eq => NestDir::Eq,
        Dir::Gt => NestDir::Gt,
        Dir::Any => NestDir::Star,
    }
}

/// Canonical dependence rows for one pair: each feasible leaf becomes a
/// lexicographically non-negative row (a leading-`>` leaf is the same
/// dependence with source and sink swapped, so it is flipped).
fn pair_rows(
    f: &Access,
    g: &Access,
    loops: &[NestLoop],
    relaxable: bool,
    stats: &DdStats,
) -> Vec<DepVector> {
    let n = loops.len();
    let pd = analyze_pair(f, g, loops, stats);
    let Some(leaves) = pd.leaves else {
        return vec![DepVector {
            array: f.name.clone(),
            dirs: vec![NestDir::Star; n],
            distance: vec![None; n],
            relaxable,
        }];
    };
    let mut rows = Vec::new();
    for leaf in leaves {
        let mut dirs: Vec<NestDir> = leaf.iter().map(|d| to_nest_dir(*d)).collect();
        let mut distance = pd.exact.clone();
        let flip = dirs.iter().find(|d| **d != NestDir::Eq) == Some(&NestDir::Gt);
        if flip {
            for d in &mut dirs {
                *d = match *d {
                    NestDir::Lt => NestDir::Gt,
                    NestDir::Gt => NestDir::Lt,
                    other => other,
                };
            }
            for c in &mut distance {
                *c = c.map(|v| -v);
            }
        }
        let row = DepVector { array: f.name.clone(), dirs, distance, relaxable };
        if !rows.contains(&row) {
            rows.push(row);
        }
    }
    rows
}

// ---------------------------------------------------------------------
// The legality prover
// ---------------------------------------------------------------------

/// Is a direction vector lexicographically non-negative? (`*` may hide
/// a `>`, so it only passes behind an earlier `<`.)
pub fn lex_nonneg(dirs: &[NestDir]) -> bool {
    for d in dirs {
        match d {
            NestDir::Lt => return true,
            NestDir::Eq => {}
            NestDir::Gt | NestDir::Star => return false,
        }
    }
    true
}

/// Interchange legality: under the permutation, no non-relaxable
/// dependence vector may become lexicographically negative (that would
/// execute a sink before its source).
pub fn interchange_legal(vectors: &[DepVector], perm: &[usize]) -> Result<(), String> {
    for v in vectors.iter().filter(|v| !v.relaxable) {
        let permuted: Vec<NestDir> = perm.iter().map(|&i| v.dirs[i]).collect();
        if !lex_nonneg(&permuted) {
            return Err(format!("dependence {} inverted under permutation {perm:?}", v.render()));
        }
    }
    Ok(())
}

/// Rectangular-tiling legality for the band `band_start..depth`: the
/// band must be fully permutable — every non-relaxable vector is either
/// carried by a `<` before the band or has only `=`/`<` components
/// inside it (so intra-tile and inter-tile orders both respect it).
pub fn tiling_legal(vectors: &[DepVector], band_start: usize) -> Result<(), String> {
    for v in vectors.iter().filter(|v| !v.relaxable) {
        if v.dirs[..band_start].contains(&NestDir::Lt) {
            continue;
        }
        if v.dirs[band_start..].iter().all(|d| matches!(d, NestDir::Eq | NestDir::Lt)) {
            continue;
        }
        return Err(format!("dependence {} blocks tiling the band", v.render()));
    }
    Ok(())
}

/// Adjacent-loop fusion legality for two conformable loops (same
/// variable, bounds and step): fusion is illegal iff some cross-body
/// conflict can have the first body's access in a **later** iteration
/// than the second body's (`>` feasible) — after fusion that pair's
/// execution order inverts. On success returns the cross-body evidence
/// rows for the certificate.
pub fn fusion_legal(
    l1: &DoLoop,
    l2: &DoLoop,
    stats: &DdStats,
) -> Result<Vec<DepVector>, String> {
    let merged = NestLoop::of(l1);
    let loops = [merged];
    let a1 = collect_accesses(&l1.body);
    let a2 = collect_accesses(&l2.body);
    let v1 = reduction::validated_reductions(l1);
    let v2 = reduction::validated_reductions(l2);
    let relaxable = |x: &Access, y: &Access| -> bool {
        match (x.reduction, y.reduction) {
            (Some(a), Some(b)) if a == b => {
                v1.iter().any(|r| r.var == x.name && r.op == a)
                    && v2.iter().any(|r| r.var == x.name && r.op == a)
            }
            _ => false,
        }
    };
    let mut evidence: Vec<DepVector> = Vec::new();
    let mut push = |row: DepVector| {
        if !evidence.contains(&row) {
            evidence.push(row);
        }
    };
    for x in &a1 {
        for y in &a2 {
            if x.name != y.name || (!x.is_write && !y.is_write) {
                continue;
            }
            if x.name == l1.var {
                continue; // the shared loop variable itself
            }
            let relax = relaxable(x, y);
            if x.is_scalar() || y.is_scalar() {
                if relax {
                    push(DepVector {
                        array: x.name.clone(),
                        dirs: vec![NestDir::Star],
                        distance: vec![None],
                        relaxable: true,
                    });
                    continue;
                }
                return Err(format!("scalar {} conflicts across the fused bodies", x.name));
            }
            let pd = analyze_pair(x, y, &loops, stats);
            let Some(leaves) = pd.leaves else {
                if relax {
                    push(DepVector {
                        array: x.name.clone(),
                        dirs: vec![NestDir::Star],
                        distance: vec![None],
                        relaxable: true,
                    });
                    continue;
                }
                return Err(format!("{}: non-affine cross-body access pair", x.name));
            };
            if !relax && leaves.iter().any(|l| l[0] == Dir::Gt) {
                return Err(format!(
                    "{}: fusion-preventing `>` dependence between the bodies",
                    x.name
                ));
            }
            for leaf in leaves {
                push(DepVector {
                    array: x.name.clone(),
                    dirs: vec![to_nest_dir(leaf[0])],
                    distance: pd.exact.clone(),
                    relaxable: relax,
                });
            }
        }
    }
    Ok(evidence)
}

// ---------------------------------------------------------------------
// Locality cost model
// ---------------------------------------------------------------------

/// Mirror of `polaris_machine::CostModel::default().memory`; the
/// conformance tier cross-checks the two copies stay equal (core cannot
/// depend on the machine crate — the dependency points the other way).
const MEMORY_CYCLES: u64 = 3;

/// Per-access, per-innermost-iteration locality penalty for a given
/// stride class under the machine's column-major layout: a
/// loop-invariant element costs nothing extra (register-resident), a
/// unit-stride walk costs one, and any column-crossing or non-unit
/// stride pays a memory-class penalty.
pub fn stride_penalty(first_dim_coeff: i64, varies_in_outer_dims: bool) -> u64 {
    if varies_in_outer_dims {
        8 * MEMORY_CYCLES
    } else if first_dim_coeff == 0 {
        0
    } else if first_dim_coeff.abs() == 1 {
        1
    } else {
        8 * MEMORY_CYCLES
    }
}

/// Coefficient of `var` in subscript `e`, when `e` is linear in it.
fn dim_coeff(e: &Expr, var: &str) -> Option<i64> {
    if !e.references(var) {
        return Some(0);
    }
    let p = Poly::from_expr(e, DivPolicy::Exact)?;
    let (_, co) = p.linear_in(std::slice::from_ref(&var.to_string()))?;
    co[0].as_integer().map(|v| v as i64)
}

fn access_penalty(a: &Access, var: &str) -> u64 {
    if a.subs.is_empty() {
        return 0;
    }
    let varies_outer =
        a.subs[1..].iter().any(|s| dim_coeff(s, var).map(|c| c != 0).unwrap_or(true));
    match dim_coeff(&a.subs[0], var) {
        Some(c) => stride_penalty(c, varies_outer),
        None => stride_penalty(2, varies_outer), // nonlinear: non-unit class
    }
}

/// Locality score of one loop ordering (`vars` outermost first): lower
/// is better. The innermost level dominates (×100), the next level
/// tie-breaks (×10) — the innermost stride is what the cache sees.
pub fn permutation_score(accesses: &[Access], vars: &[String]) -> u64 {
    let n = vars.len();
    let mut score = 0u64;
    for (lvl, var) in vars.iter().enumerate() {
        let weight = match n - 1 - lvl {
            0 => 100,
            1 => 10,
            _ => 1,
        };
        let level: u64 = accesses.iter().map(|a| access_penalty(a, var)).sum();
        score += weight * level;
    }
    score
}

/// The cheapest **legal** loop order strictly better than the current
/// one: `(perm, identity_score, best_score)`, or `None` when the nest is
/// already locality-optimal among its legal orders (or too deep/shallow
/// to enumerate). Shared by the interchange stage's selection and the
/// `nest-locality` lint.
pub fn better_legal_order(
    summary: &NestSummary,
    accesses: &[Access],
) -> Option<(Vec<usize>, u64, u64)> {
    let depth = summary.depth();
    if !(2..=MAX_PERM_DEPTH).contains(&depth) {
        return None;
    }
    let vars = summary.vars();
    let identity = permutation_score(accesses, &vars);
    let mut best: Option<(u64, Vec<usize>)> = None;
    for p in permutations(depth) {
        if p.iter().enumerate().all(|(i, &x)| i == x) {
            continue;
        }
        let ordered: Vec<String> = p.iter().map(|&i| vars[i].clone()).collect();
        let score = permutation_score(accesses, &ordered);
        if score < identity
            && interchange_legal(&summary.vectors, &p).is_ok()
            && best.as_ref().map(|(s, _)| score < *s).unwrap_or(true)
        {
            best = Some((score, p));
        }
    }
    best.map(|(s, p)| (p, identity, s))
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            prefix.push(x);
            rec(prefix, rest, out);
            prefix.pop();
            rest.insert(i, x);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// What the nest-transformation stages did, aggregated across units.
#[derive(Debug, Clone, Default)]
pub struct NestReport {
    /// Nests summarized (one per band root).
    pub summarized: usize,
    /// Transformation candidates submitted to the prover.
    pub candidates: usize,
    /// Candidates the prover judged legal.
    pub proved: usize,
    /// Candidates the prover rejected (with reasons in `rejections`).
    pub rejected: usize,
    pub interchanges: usize,
    pub tiles: usize,
    pub fusions: usize,
    /// One certificate per applied transformation.
    pub certs: Vec<LegalityCert>,
    /// Human-readable reasons for rejected candidates.
    pub rejections: Vec<String>,
}

impl NestReport {
    /// Fraction of judged candidates proved legal (1.0 when none were
    /// judged): the bench's legality-precision column.
    pub fn precision(&self) -> f64 {
        let judged = self.proved + self.rejected;
        if judged == 0 {
            1.0
        } else {
            self.proved as f64 / judged as f64
        }
    }
}

// ---------------------------------------------------------------------
// Interchange
// ---------------------------------------------------------------------

struct Header {
    var: String,
    init: Expr,
    limit: Expr,
    step: Option<Expr>,
    label: String,
    loop_id: LoopId,
}

fn read_headers(root: &DoLoop, depth: usize) -> Vec<Header> {
    let mut hdrs = Vec::with_capacity(depth);
    let mut cur = root;
    for lvl in 0..depth {
        hdrs.push(Header {
            var: cur.var.clone(),
            init: cur.init.clone(),
            limit: cur.limit.clone(),
            step: cur.step.clone(),
            label: cur.label.clone(),
            loop_id: cur.loop_id,
        });
        if lvl + 1 < depth {
            cur = cur.body.0[0].as_do().expect("perfect band");
        }
    }
    hdrs
}

/// Permute the band's loop headers in place; bodies stay put, so the
/// statement text is untouched and only iteration order changes. Labels
/// and [`LoopId`]s travel with their header — the loop's identity
/// follows its variable.
fn apply_interchange(root: &mut DoLoop, perm: &[usize]) {
    let depth = perm.len();
    let hdrs = read_headers(root, depth);
    let mut cur = root;
    for (lvl, &src) in perm.iter().enumerate() {
        let h = &hdrs[src];
        cur.var = h.var.clone();
        cur.init = h.init.clone();
        cur.limit = h.limit.clone();
        cur.step = h.step.clone();
        cur.label = h.label.clone();
        cur.loop_id = h.loop_id;
        if lvl + 1 < depth {
            cur = cur.body.0[0].as_do_mut().expect("perfect band");
        }
    }
}

/// Run interchange selection over every nest of `unit`. With
/// `force_illegal` (fault injection) the best **rejected** candidate is
/// applied anyway, cert and all — the verify re-prover must catch it.
pub fn interchange_unit(
    unit: &mut ProgramUnit,
    stats: &DdStats,
    force_illegal: bool,
    nr: &mut NestReport,
) {
    let unit_name = unit.name.clone();
    let mut plans: BTreeMap<LoopId, (Vec<usize>, NestSummary)> = BTreeMap::new();
    for_each_nest_root(&unit.body, &mut |d| {
        let summary = summarize_nest(&unit_name, d, stats);
        nr.summarized += 1;
        let depth = summary.depth();
        if !(2..=MAX_PERM_DEPTH).contains(&depth) {
            return;
        }
        let accesses = collect_accesses(&band_of(d).last().expect("band").body);
        let vars = summary.vars();
        let identity_score = permutation_score(&accesses, &vars);
        let mut perms: Vec<(u64, Vec<usize>)> = permutations(depth)
            .into_iter()
            .map(|p| {
                let ordered: Vec<String> = p.iter().map(|&i| vars[i].clone()).collect();
                (permutation_score(&accesses, &ordered), p)
            })
            .collect();
        perms.sort();
        let mut forced: Option<Vec<usize>> = None;
        for (score, perm) in &perms {
            if *score >= identity_score || perm.iter().enumerate().all(|(i, &p)| i == p) {
                break; // no remaining candidate beats the current order
            }
            nr.candidates += 1;
            match interchange_legal(&summary.vectors, perm) {
                Ok(()) => {
                    nr.proved += 1;
                    if !force_illegal {
                        plans.insert(d.loop_id, (perm.clone(), summary));
                        return;
                    }
                }
                Err(reason) => {
                    nr.rejected += 1;
                    nr.rejections.push(format!("{unit_name}/{}: interchange: {reason}", d.label));
                    if force_illegal && forced.is_none() {
                        forced = Some(perm.clone());
                    }
                }
            }
        }
        if force_illegal {
            // Under the fault, apply an illegal candidate if one exists
            // — otherwise any non-identity permutation — so the
            // downstream refusal path has something to refuse.
            let perm = forced.or_else(|| {
                perms
                    .iter()
                    .map(|(_, p)| p.clone())
                    .find(|p| p.iter().enumerate().any(|(i, &x)| i != x))
            });
            if let Some(perm) = perm {
                plans.insert(d.loop_id, (perm, summary));
            }
        }
    });
    apply_interchange_plans(unit, plans, nr);
}

fn apply_interchange_plans(
    unit: &mut ProgramUnit,
    mut plans: BTreeMap<LoopId, (Vec<usize>, NestSummary)>,
    nr: &mut NestReport,
) {
    let unit_name = unit.name.clone();
    unit.body.walk_mut(&mut |s| {
        let Some(d) = s.as_do_mut() else { return };
        let Some((perm, summary)) = plans.remove(&d.loop_id) else { return };
        apply_interchange(d, &perm);
        nr.interchanges += 1;
        nr.certs.push(LegalityCert {
            unit: unit_name.clone(),
            loop_id: d.loop_id,
            label: d.label.clone(),
            loop_vars: summary.vars(),
            vectors: summary.vectors,
            kind: CertKind::Interchange { perm },
        });
    });
}

/// Visit the root loop of every band in the list: each top-level `DO`,
/// then (skipping the band's interior) the bands nested under its
/// innermost body, recursively. `IF` arms are descended through.
pub fn for_each_nest_root(list: &StmtList, f: &mut dyn FnMut(&DoLoop)) {
    for s in list.iter() {
        match &s.kind {
            StmtKind::Do(d) => {
                f(d);
                let innermost = *band_of(d).last().expect("band");
                for_each_nest_root(&innermost.body, f);
            }
            StmtKind::IfBlock { arms, else_body } => {
                for arm in arms {
                    for_each_nest_root(&arm.body, f);
                }
                for_each_nest_root(else_body, f);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Tiling
// ---------------------------------------------------------------------

struct TilePlan {
    depth: usize,
    tile_vars: Vec<String>,
    /// Fresh ids: `[0..depth]` become the tile loops' ids,
    /// `[depth..2*depth]` the point-loop statement wrappers.
    fresh: Vec<StmtId>,
    summary: NestSummary,
}

/// Does the nest body re-read some array at two constant offsets of the
/// same subscript form (stencil reuse — the pattern tiling pays off on)?
fn has_stencil_reuse(accesses: &[Access], loops: &[NestLoop]) -> bool {
    let vars: Vec<String> = loops.iter().map(|l| l.var.clone()).collect();
    let shape = |a: &Access| -> Option<(String, Vec<Vec<i64>>, Vec<i64>)> {
        let mut coeffs = Vec::new();
        let mut consts = Vec::new();
        for s in &a.subs {
            let p = Poly::from_expr(s, DivPolicy::Exact)?;
            let (rest, co) = p.linear_in(&vars)?;
            coeffs.push(co.iter().map(|r| r.as_integer().map(|v| v as i64)).collect::<Option<Vec<i64>>>()?);
            consts.push(rest.as_constant().and_then(|r| r.as_integer())? as i64);
        }
        Some((a.name.clone(), coeffs, consts))
    };
    let reads: Vec<_> = accesses.iter().filter(|a| !a.is_write && !a.is_scalar()).collect();
    for (i, a) in reads.iter().enumerate() {
        for b in reads.iter().skip(i + 1) {
            if a.name != b.name {
                continue;
            }
            if let (Some((_, ca, ka)), Some((_, cb, kb))) = (shape(a), shape(b)) {
                if ca == cb && ka != kb {
                    return true;
                }
            }
        }
    }
    false
}

/// Run rectangular tiling over every nest of `unit`: a nest is a
/// candidate when its body shows stencil reuse and every band loop has
/// a constant trip count ≥ [`TILE_MIN_TRIP`] divisible by [`TILE`] (so
/// the point-loop bounds stay affine with no remainder guard).
pub fn tile_unit(
    unit: &mut ProgramUnit,
    stats: &DdStats,
    force_illegal: bool,
    nr: &mut NestReport,
) {
    let unit_name = unit.name.clone();
    // Plan immutably first: id reservation and symbol synthesis need
    // `&mut unit` while the scan holds `&unit.body`.
    let mut roots: Vec<(LoopId, NestSummary, String)> = Vec::new();
    for_each_nest_root(&unit.body, &mut |d| {
        let summary = summarize_nest(&unit_name, d, stats);
        if summary.depth() < 2 {
            return;
        }
        let trips_ok = summary.loops.iter().all(|l| {
            l.trip().map(|t| t >= TILE_MIN_TRIP && t % TILE == 0).unwrap_or(false)
        });
        let accesses = collect_accesses(&band_of(d).last().expect("band").body);
        if !trips_ok || !has_stencil_reuse(&accesses, &summary.loops) {
            return;
        }
        nr.candidates += 1;
        match tiling_legal(&summary.vectors, 0) {
            Ok(()) => {
                nr.proved += 1;
                if !force_illegal {
                    roots.push((d.loop_id, summary, d.label.clone()));
                }
            }
            Err(reason) => {
                nr.rejected += 1;
                nr.rejections.push(format!("{unit_name}/{}: tile: {reason}", d.label));
                if force_illegal {
                    roots.push((d.loop_id, summary, d.label.clone()));
                }
            }
        }
    });
    let mut plans: BTreeMap<LoopId, TilePlan> = BTreeMap::new();
    for (root_id, summary, _) in roots {
        let depth = summary.depth();
        let mut tile_vars = Vec::with_capacity(depth);
        for l in &summary.loops {
            let name = unit.symbols.unique_name(&format!("{}T", l.var));
            unit.symbols.insert(Symbol::scalar(name.clone(), DataType::Integer));
            tile_vars.push(name);
        }
        let fresh: Vec<StmtId> = (0..2 * depth).map(|_| unit.fresh_stmt_id()).collect();
        plans.insert(root_id, TilePlan { depth, tile_vars, fresh, summary });
    }
    apply_tile_plans(unit, plans, nr);
}

fn apply_tile_plans(
    unit: &mut ProgramUnit,
    mut plans: BTreeMap<LoopId, TilePlan>,
    nr: &mut NestReport,
) {
    let unit_name = unit.name.clone();
    unit.body.walk_mut(&mut |s| {
        let root_id = match s.as_do() {
            Some(d) => d.loop_id,
            None => return,
        };
        let Some(plan) = plans.remove(&root_id) else { return };
        let kind = std::mem::replace(&mut s.kind, StmtKind::Continue);
        let StmtKind::Do(root) = kind else { unreachable!("checked above") };
        s.kind = StmtKind::Do(tile_band(*root, &plan));
        nr.tiles += 1;
        let d = s.as_do().expect("just built");
        nr.certs.push(LegalityCert {
            unit: unit_name.clone(),
            loop_id: d.loop_id,
            label: d.label.clone(),
            loop_vars: plan.summary.vars(),
            vectors: plan.summary.vectors.clone(),
            kind: CertKind::Tile {
                band: (0..plan.depth).collect(),
                sizes: vec![TILE; plan.depth],
            },
        });
    });
}

/// Rebuild one band as tile loops over point loops:
/// `DO I = lo, hi` … becomes `DO IT = lo, hi, 8` over `DO I = IT, IT+7`
/// for every band level, tile loops outermost (in the band's order),
/// then the original loops as point loops around the untouched body.
fn tile_band(root: DoLoop, plan: &TilePlan) -> Box<DoLoop> {
    let depth = plan.depth;
    // Peel the band into owned loops, innermost body staying with the
    // last one.
    let mut band: Vec<DoLoop> = Vec::with_capacity(depth);
    let mut cur = root;
    loop {
        if band.len() + 1 < depth {
            let inner_stmt = cur.body.0.pop().expect("perfect band");
            let StmtKind::Do(inner) = inner_stmt.kind else { unreachable!("perfect band") };
            band.push(cur);
            cur = *inner;
        } else {
            band.push(cur);
            break;
        }
    }
    // Point loops: the original loops re-bounded to their tile.
    for (lvl, b) in band.iter_mut().enumerate() {
        let tv = &plan.tile_vars[lvl];
        b.init = Expr::var(tv);
        b.limit = Expr::add(Expr::var(tv), Expr::int(TILE - 1));
        b.step = None;
    }
    // Reassemble the point nest innermost-out.
    let mut point = band.pop().expect("band is nonempty");
    let mut lvl = band.len();
    while let Some(mut outer) = band.pop() {
        outer.body = StmtList(vec![Stmt::new(plan.fresh[depth + lvl], 0, StmtKind::Do(Box::new(point)))]);
        point = outer;
        lvl -= 1;
    }
    // Wrap in the tile nest, innermost-out. The tile loops get the
    // reserved fresh ids; labels advertise their origin.
    let headers = plan.summary.loops.clone();
    let mut body = StmtList(vec![Stmt::new(plan.fresh[depth], 0, StmtKind::Do(Box::new(point)))]);
    for lvl in (0..depth).rev() {
        let h = &headers[lvl];
        let tile = DoLoop {
            var: plan.tile_vars[lvl].clone(),
            init: Expr::int(h.lo.expect("const bounds checked")),
            limit: Expr::int(h.hi.expect("const bounds checked")),
            step: Some(Expr::int(TILE)),
            body,
            par: Default::default(),
            label: format!("{}_tile", h.label),
            loop_id: LoopId(plan.fresh[lvl].0),
        };
        if lvl == 0 {
            return Box::new(tile);
        }
        body = StmtList(vec![Stmt::new(plan.fresh[lvl], 0, StmtKind::Do(Box::new(tile)))]);
    }
    unreachable!("depth >= 2")
}

// ---------------------------------------------------------------------
// Fusion
// ---------------------------------------------------------------------

/// Are two adjacent loops conformable for fusion? Same variable,
/// structurally equal bounds and step, constant positive step, and both
/// bodies flat (no nested `DO` — fusing flat loops is the classic
/// array-contraction case and never disturbs a band another stage
/// built).
fn fusable_headers(l1: &DoLoop, l2: &DoLoop) -> bool {
    let flat = |d: &DoLoop| !d.body.is_empty() && d.body.iter().all(|s| s.as_do().is_none());
    l1.var == l2.var
        && l1.init == l2.init
        && l1.limit == l2.limit
        && l1.step_expr().simplified() == l2.step_expr().simplified()
        && l1.step_is_positive_const()
        && !l1.body.is_empty()
        && !l2.body.is_empty()
        && flat(l1)
        && flat(l2)
}

/// Do the two bodies touch a common array (the profitability gate:
/// fusion without shared data only grows the loop body)? Sharing an
/// array that some access uses **inside a subscript** disqualifies the
/// pair instead: fusing an index-array fill into its consumer would
/// destroy the precomputed-contents pattern the `idxprop` analysis
/// proves properties from — a pessimization even when legal.
fn bodies_share_array(l1: &DoLoop, l2: &DoLoop) -> bool {
    let arrays = |d: &DoLoop| -> Vec<String> {
        collect_accesses(&d.body).iter().filter(|a| !a.is_scalar()).map(|a| a.name.clone()).collect()
    };
    let a1 = arrays(l1);
    let shared: Vec<String> = arrays(l2).into_iter().filter(|n| a1.contains(n)).collect();
    if shared.is_empty() {
        return false;
    }
    let feeds_subscripts = |d: &DoLoop| {
        collect_accesses(&d.body)
            .iter()
            .any(|a| a.subs.iter().any(|s| shared.iter().any(|n| s.references(n))))
    };
    !feeds_subscripts(l1) && !feeds_subscripts(l2)
}

/// Fuse adjacent conformable loops throughout `unit`, gated by the
/// prover. Fusion keeps the first loop's identity; the second loop's
/// statements are spliced onto the end of the first body and the
/// boundary statement id is recorded in the cert so the verify
/// re-prover can re-split and re-judge.
pub fn fuse_unit(
    unit: &mut ProgramUnit,
    stats: &DdStats,
    force_illegal: bool,
    nr: &mut NestReport,
) {
    let unit_name = unit.name.clone();
    fn walk_lists(
        list: &mut StmtList,
        unit_name: &str,
        stats: &DdStats,
        force_illegal: bool,
        nr: &mut NestReport,
    ) {
        // Depth first, so inner fusions happen before the outer scan.
        for s in list.iter_mut() {
            match &mut s.kind {
                StmtKind::Do(d) => walk_lists(&mut d.body, unit_name, stats, force_illegal, nr),
                StmtKind::IfBlock { arms, else_body } => {
                    for arm in arms {
                        walk_lists(&mut arm.body, unit_name, stats, force_illegal, nr);
                    }
                    walk_lists(else_body, unit_name, stats, force_illegal, nr);
                }
                _ => {}
            }
        }
        let mut i = 0;
        while i + 1 < list.0.len() {
            let (fuse, evidence) = {
                let (Some(l1), Some(l2)) = (list.0[i].as_do(), list.0[i + 1].as_do()) else {
                    i += 1;
                    continue;
                };
                if !fusable_headers(l1, l2) || !bodies_share_array(l1, l2) {
                    i += 1;
                    continue;
                }
                nr.candidates += 1;
                match fusion_legal(l1, l2, stats) {
                    Ok(rows) => {
                        nr.proved += 1;
                        (true, rows)
                    }
                    Err(reason) => {
                        nr.rejected += 1;
                        nr.rejections
                            .push(format!("{unit_name}/{}: fuse: {reason}", l1.label));
                        (force_illegal, Vec::new())
                    }
                }
            };
            if !fuse {
                i += 1;
                continue;
            }
            let second = list.0.remove(i + 1);
            let StmtKind::Do(second) = second.kind else { unreachable!("checked above") };
            let first = list.0[i].as_do_mut().expect("checked above");
            let boundary = second.body.0.first().expect("nonempty body").id;
            let fused_id = second.loop_id;
            first.body.0.extend(second.body.0);
            nr.fusions += 1;
            nr.certs.push(LegalityCert {
                unit: unit_name.to_string(),
                loop_id: first.loop_id,
                label: first.label.clone(),
                loop_vars: vec![first.var.clone()],
                vectors: evidence,
                kind: CertKind::Fuse { fused_loop: fused_id, boundary: boundary.0 },
            });
            // Stay at `i`: the fused loop may fuse with the next one.
        }
    }
    walk_lists(&mut unit.body, &unit_name, stats, force_illegal, nr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_ir::parse;

    fn summarize(src: &str) -> (polaris_ir::Program, NestSummary) {
        let mut p = parse(src).unwrap();
        crate::reduction::flag_reductions(&mut p);
        let stats = DdStats::new();
        let d = p.units[0].body.loops()[0].clone();
        let s = summarize_nest(&p.units[0].name.clone(), &d, &stats);
        (p, s)
    }

    #[test]
    fn stencil_nest_has_no_blocking_vectors() {
        let src = "program t\nreal a(34,34), b(34,34)\n\
                   do j = 2, 33\n  do i = 2, 33\n\
                   \x20   b(i,j) = a(i,j) + a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1)\n\
                   end do\nend do\nend\n";
        let (_, s) = summarize(src);
        assert_eq!(s.depth(), 2);
        // B is only written, A only read: the matrix holds at most
        // loop-independent rows, and every transformation is legal.
        assert!(s.vectors.iter().all(|v| v.dirs.iter().all(|d| *d == NestDir::Eq)), "{:?}", s.vectors);
        assert!(interchange_legal(&s.vectors, &[1, 0]).is_ok());
        assert!(tiling_legal(&s.vectors, 0).is_ok());
    }

    #[test]
    fn flow_recurrence_blocks_interchange_with_lt_gt_vector() {
        // a(i,j) = a(i-1,j+1): dependence vector (<, >) — interchange
        // would invert it.
        let src = "program t\nreal a(64,64)\n\
                   do i = 2, 63\n  do j = 2, 63\n\
                   \x20   a(i,j) = a(i-1,j+1) + 1.0\n\
                   end do\nend do\nend\n";
        let (_, s) = summarize(src);
        let row = s
            .vectors
            .iter()
            .find(|v| v.dirs == vec![NestDir::Lt, NestDir::Gt])
            .unwrap_or_else(|| panic!("no (<,>) row: {:?}", s.vectors));
        assert_eq!(row.distance, vec![Some(1), Some(-1)]);
        assert!(!row.relaxable);
        assert!(interchange_legal(&s.vectors, &[1, 0]).is_err());
        assert!(tiling_legal(&s.vectors, 0).is_err());
    }

    #[test]
    fn lt_eq_recurrence_permits_interchange_but_not_band_inversion() {
        // a(i,j) = a(i-1,j): vector (<, =); swapping to (=, <) stays
        // lexicographically positive, so interchange is legal, and the
        // band is fully permutable so tiling is too.
        let src = "program t\nreal a(64,64)\n\
                   do i = 2, 63\n  do j = 1, 64\n\
                   \x20   a(i,j) = a(i-1,j) + 1.0\n\
                   end do\nend do\nend\n";
        let (_, s) = summarize(src);
        assert!(s.vectors.iter().any(|v| v.dirs == vec![NestDir::Lt, NestDir::Eq]), "{:?}", s.vectors);
        assert!(interchange_legal(&s.vectors, &[1, 0]).is_ok());
        assert!(tiling_legal(&s.vectors, 0).is_ok());
    }

    #[test]
    fn validated_reduction_rows_are_relaxable_and_unblock_reordering() {
        let src = "program t\nreal a(32,32)\ns = 0.0\n\
                   do i = 1, 32\n  do j = 1, 32\n\
                   \x20   s = s + a(i,j)\n\
                   end do\nend do\nprint *, s\nend\n";
        let (_, s) = summarize(src);
        let row = s.vectors.iter().find(|v| v.array == "S").expect("S row");
        assert!(row.relaxable, "{row:?}");
        assert!(interchange_legal(&s.vectors, &[1, 0]).is_ok());
    }

    #[test]
    fn unvalidated_scalar_write_blocks_everything() {
        // t carries a value across iterations (read before write).
        let src = "program t\nreal a(32,32)\nt = 0.0\n\
                   do i = 1, 32\n  do j = 1, 32\n\
                   \x20   a(i,j) = t\n\
                   \x20   t = a(i,j) + 1.0\n\
                   end do\nend do\nprint *, t\nend\n";
        let (_, s) = summarize(src);
        let row = s.vectors.iter().find(|v| v.array == "T").expect("T row");
        assert!(!row.relaxable);
        assert!(row.dirs.iter().all(|d| *d == NestDir::Star));
        assert!(interchange_legal(&s.vectors, &[1, 0]).is_err());
        assert!(tiling_legal(&s.vectors, 0).is_err());
    }

    #[test]
    fn iteration_local_scalar_is_invisible() {
        let src = "program t\nreal a(32,32), b(32,32)\n\
                   do i = 1, 32\n  do j = 1, 32\n\
                   \x20   t = a(i,j) * 2.0\n\
                   \x20   b(i,j) = t + 1.0\n\
                   end do\nend do\nend\n";
        let (_, s) = summarize(src);
        assert!(s.vectors.iter().all(|v| v.array != "T"), "{:?}", s.vectors);
        assert!(interchange_legal(&s.vectors, &[1, 0]).is_ok());
    }

    #[test]
    fn mmt_interchange_is_chosen_and_applied() {
        let src = "program mmt\nreal a(32,32), b(32,32), c(32,32)\nreal s\ns = 0.0\n\
                   do k = 1, 32\n  do i = 1, 32\n    do j = 1, 32\n\
                   \x20     c(i,j) = c(i,j) + a(k,i) * b(k,j)\n\
                   \x20     s = s + a(k,i)\n\
                   end do\nend do\nend do\nprint *, s\nend\n";
        let mut p = parse(src).unwrap();
        crate::reduction::flag_reductions(&mut p);
        let stats = DdStats::new();
        let mut nr = NestReport::default();
        interchange_unit(&mut p.units[0], &stats, false, &mut nr);
        assert_eq!(nr.interchanges, 1, "{:?}", nr.rejections);
        assert_eq!(nr.certs.len(), 1);
        let cert = &nr.certs[0];
        assert_eq!(cert.loop_vars, vec!["K", "I", "J"]);
        let CertKind::Interchange { perm } = &cert.kind else { panic!("{:?}", cert.kind) };
        assert_eq!(perm.as_slice(), &[2, 1, 0], "expected (J,I,K) order");
        // The transformed nest reads J outermost, K innermost.
        let outer = p.units[0].body.loops()[0];
        assert_eq!(outer.var, "J");
        let band = band_of(outer);
        let vars: Vec<&str> = band.iter().map(|d| d.var.as_str()).collect();
        assert_eq!(vars, vec!["J", "I", "K"]);
        polaris_ir::validate::validate_program(&p).unwrap();
        // The relaxable evidence is present: the scalar reduction S.
        assert!(cert.vectors.iter().any(|v| v.array == "S" && v.relaxable), "{:?}", cert.vectors);
    }

    #[test]
    fn illegal_interchange_is_rejected_not_applied() {
        let src = "program t\nreal a(64,64)\n\
                   do j = 2, 63\n  do i = 2, 63\n\
                   \x20   a(i,j) = a(i+1,j-1) + 1.0\n\
                   end do\nend do\nend\n";
        // Identity (j,i) has unit innermost stride... make the better
        // order illegal: accesses favor innermost i already, so force
        // the cost model's hand by writing the loop i-outer.
        let src_bad = src.replace("do j = 2, 63\n  do i = 2, 63", "do i = 2, 63\n  do j = 2, 63");
        let mut p = parse(&src_bad).unwrap();
        let stats = DdStats::new();
        let mut nr = NestReport::default();
        interchange_unit(&mut p.units[0], &stats, false, &mut nr);
        // The profitable swap (i innermost) inverts the (<,>) dependence:
        // judged, rejected, not applied.
        assert_eq!(nr.interchanges, 0);
        assert!(nr.rejected >= 1, "{nr:?}");
        assert!(nr.rejections[0].contains("interchange"), "{:?}", nr.rejections);
        let outer = p.units[0].body.loops()[0];
        assert_eq!(outer.var, "I", "nest must be untouched");
    }

    #[test]
    fn forced_illegal_interchange_is_applied_with_a_cert() {
        let src = "program t\nreal a(64,64)\n\
                   do i = 2, 63\n  do j = 2, 63\n\
                   \x20   a(i,j) = a(i+1,j-1) + 1.0\n\
                   end do\nend do\nend\n";
        let mut p = parse(src).unwrap();
        let stats = DdStats::new();
        let mut nr = NestReport::default();
        interchange_unit(&mut p.units[0], &stats, true, &mut nr);
        assert_eq!(nr.interchanges, 1, "force must apply the rejected candidate");
        assert_eq!(p.units[0].body.loops()[0].var, "J");
        polaris_ir::validate::validate_program(&p).unwrap();
    }

    #[test]
    fn stencil_is_tiled_with_affine_point_bounds() {
        let src = "program t\nreal a(34,34), b(34,34)\n\
                   do j = 2, 33\n  do i = 2, 33\n\
                   \x20   b(i,j) = a(i,j) + a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1)\n\
                   end do\nend do\nend\n";
        let mut p = parse(src).unwrap();
        let stats = DdStats::new();
        let mut nr = NestReport::default();
        tile_unit(&mut p.units[0], &stats, false, &mut nr);
        assert_eq!(nr.tiles, 1, "{:?}", nr.rejections);
        polaris_ir::validate::validate_program(&p).unwrap();
        let outer = p.units[0].body.loops()[0];
        assert_eq!(outer.var, "JT");
        assert_eq!(outer.step_expr().as_int(), Some(TILE));
        let band = band_of(outer);
        let vars: Vec<&str> = band.iter().map(|d| d.var.as_str()).collect();
        assert_eq!(vars, vec!["JT", "IT", "J", "I"]);
        // Point loops: DO J = JT, JT + 7 (step 1).
        let point_j = band[2];
        assert_eq!(point_j.init, Expr::var("JT"));
        assert_eq!(point_j.limit, Expr::add(Expr::var("JT"), Expr::int(TILE - 1)));
        // The tile vars were declared.
        assert!(p.units[0].symbols.get("JT").is_some());
        assert!(p.units[0].symbols.get("IT").is_some());
        let cert = &nr.certs[0];
        let CertKind::Tile { band, sizes } = &cert.kind else { panic!("{:?}", cert.kind) };
        assert_eq!(band.as_slice(), &[0, 1]);
        assert_eq!(sizes.as_slice(), &[TILE, TILE]);
    }

    #[test]
    fn non_divisible_trip_count_is_not_tiled() {
        let src = "program t\nreal a(36,36), b(36,36)\n\
                   do j = 2, 35\n  do i = 2, 35\n\
                   \x20   b(i,j) = a(i-1,j) + a(i+1,j)\n\
                   end do\nend do\nend\n";
        let mut p = parse(src).unwrap();
        let stats = DdStats::new();
        let mut nr = NestReport::default();
        tile_unit(&mut p.units[0], &stats, false, &mut nr);
        assert_eq!(nr.tiles, 0, "34 iterations are not a multiple of {TILE}");
        assert_eq!(nr.candidates, 0);
    }

    #[test]
    fn producer_consumer_loops_fuse_with_a_boundary_cert() {
        let src = "program t\nreal a(64), b(64), c(64)\n\
                   do i = 1, 64\n  a(i) = i * 1.0\nend do\n\
                   do i = 1, 64\n  b(i) = a(i) + 1.0\n  c(i) = a(i) * 2.0\nend do\n\
                   print *, b(1), c(1)\nend\n";
        let mut p = parse(src).unwrap();
        let stats = DdStats::new();
        let mut nr = NestReport::default();
        fuse_unit(&mut p.units[0], &stats, false, &mut nr);
        assert_eq!(nr.fusions, 1, "{:?}", nr.rejections);
        polaris_ir::validate::validate_program(&p).unwrap();
        let loops = p.units[0].body.loops();
        assert_eq!(loops.len(), 1, "the two loops merged");
        assert_eq!(loops[0].body.len(), 3);
        let CertKind::Fuse { boundary, .. } = nr.certs[0].kind else { panic!() };
        // The boundary is the first spliced statement: b(i) = a(i)+1.
        assert_eq!(loops[0].body.0[1].id.0, boundary);
        // Evidence records the a-producer/consumer Eq dependence.
        assert!(nr.certs[0].vectors.iter().any(|v| v.array == "A" && v.dirs == vec![NestDir::Eq]));
    }

    #[test]
    fn fusion_preventing_dependence_is_rejected() {
        // Second loop reads a(i+1): iteration i of body2 consumes what
        // iteration i+1 of body1 produces — fusing would read stale data.
        let src = "program t\nreal a(65), b(64)\n\
                   do i = 1, 64\n  a(i) = i * 1.0\nend do\n\
                   do i = 1, 64\n  b(i) = a(i+1) + 1.0\nend do\n\
                   print *, b(1)\nend\n";
        let mut p = parse(src).unwrap();
        let stats = DdStats::new();
        let mut nr = NestReport::default();
        fuse_unit(&mut p.units[0], &stats, false, &mut nr);
        assert_eq!(nr.fusions, 0);
        assert_eq!(nr.rejected, 1, "{nr:?}");
        assert!(nr.rejections[0].contains("fusion-preventing"), "{:?}", nr.rejections);
        assert_eq!(p.units[0].body.loops().len(), 2, "loops must stay split");
        // Forcing the fault applies it anyway (for the refusal tests).
        let mut p2 = parse(src).unwrap();
        let mut nr2 = NestReport::default();
        fuse_unit(&mut p2.units[0], &stats, true, &mut nr2);
        assert_eq!(nr2.fusions, 1);
    }

    #[test]
    fn unrelated_loops_do_not_fuse() {
        let src = "program t\nreal a(64), b(64)\n\
                   do i = 1, 64\n  a(i) = i * 1.0\nend do\n\
                   do i = 1, 64\n  b(i) = i * 2.0\nend do\n\
                   print *, a(1), b(1)\nend\n";
        let mut p = parse(src).unwrap();
        let stats = DdStats::new();
        let mut nr = NestReport::default();
        fuse_unit(&mut p.units[0], &stats, false, &mut nr);
        assert_eq!(nr.fusions, 0, "no shared array, no fusion");
        assert_eq!(nr.candidates, 0);
    }

    #[test]
    fn stride_penalty_table_is_the_documented_one() {
        assert_eq!(stride_penalty(0, false), 0);
        assert_eq!(stride_penalty(1, false), 1);
        assert_eq!(stride_penalty(-1, false), 1);
        assert_eq!(stride_penalty(2, false), 24);
        assert_eq!(stride_penalty(0, true), 24);
        assert_eq!(stride_penalty(1, true), 24);
    }

    #[test]
    fn precision_counts_judgments() {
        let mut nr = NestReport::default();
        assert_eq!(nr.precision(), 1.0);
        nr.proved = 3;
        nr.rejected = 1;
        assert_eq!(nr.precision(), 0.75);
    }
}

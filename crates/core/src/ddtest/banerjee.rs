//! Banerjee's inequalities with direction vectors.
//!
//! The representative of the "very accurate and efficient" classical
//! tests the paper describes — and the baseline the range test is
//! compared against: it "require[s] the loop bounds and array subscripts
//! to be represented as a linear (affine) function of loop index
//! variables" with *integer constant* coefficients, and in the
//! directed form "may test as many as O(3^n) direction vectors".
//!
//! The question answered is whether `f(i₁..iₙ) = g(i′₁..i′ₙ)` can hold
//! under a direction constraint per common loop (`<`, `=`, `>` or `*`),
//! by bounding `h = f - g` over the constrained iteration space: if
//! `0 ∉ [min h, max h]` the direction vector carries no dependence.

use super::{DdStats, Dir};

/// One common loop of the pair: coefficient of the loop variable in each
/// reference and the (numeric) loop bounds.
#[derive(Debug, Clone, Copy)]
pub struct Coupled {
    /// Coefficient in the first (source) reference.
    pub a: i128,
    /// Coefficient in the second (sink) reference.
    pub b: i128,
    pub lo: i128,
    pub hi: i128,
}

/// A loop enclosing only one of the two references (always direction
/// `*`, one free variable).
#[derive(Debug, Clone, Copy)]
pub struct Free {
    pub c: i128,
    pub lo: i128,
    pub hi: i128,
}

fn pos(x: i128) -> i128 {
    x.max(0)
}

fn neg(x: i128) -> i128 {
    (-x).max(0)
}

/// `[min, max]` of `c * x` for `x ∈ [lo, hi]` (requires `lo <= hi`).
fn free_bounds(c: i128, lo: i128, hi: i128) -> (i128, i128) {
    (pos(c) * lo - neg(c) * hi, pos(c) * hi - neg(c) * lo)
}

/// `[min, max]` of `a*i - b*i'` for `i, i' ∈ [lo, hi]` under `dir`.
/// Returns `None` when the constraint is infeasible (e.g. `<` in a
/// single-iteration loop) — an infeasible vector carries no dependence.
fn coupled_bounds(t: &Coupled, dir: Dir) -> Option<(i128, i128)> {
    let Coupled { a, b, lo, hi } = *t;
    if lo > hi {
        return None; // empty loop: no iterations at all
    }
    match dir {
        Dir::Any => {
            let (min_a, max_a) = free_bounds(a, lo, hi);
            let (min_b, max_b) = free_bounds(-b, lo, hi);
            Some((min_a + min_b, max_a + max_b))
        }
        Dir::Eq => Some(free_bounds(a - b, lo, hi)),
        Dir::Lt => {
            // i < i' :  L <= i <= i'-1,  L+1 <= i' <= U
            if lo + 1 > hi {
                return None;
            }
            // max: inner max over i of a*i is pos(a)*(i'-1) - neg(a)*L
            //   φ(i') = (pos(a) - b)*i' - pos(a) - neg(a)*L, i' in [L+1, U]
            let ca = pos(a) - b;
            let max =
                pos(ca) * hi - neg(ca) * (lo + 1) - pos(a) - neg(a) * lo;
            // min: inner min over i of a*i is pos(a)*L - neg(a)*(i'-1)
            //   ψ(i') = (-neg(a) - b)*i' + neg(a) + pos(a)*L
            let cb = -neg(a) - b;
            let min =
                pos(cb) * (lo + 1) - neg(cb) * hi + neg(a) + pos(a) * lo;
            Some((min, max))
        }
        Dir::Gt => {
            // a*i - b*i' with i > i'  ==  -(b*j - a*j') with j < j'
            let swapped = Coupled { a: b, b: a, lo, hi };
            let (min, max) = coupled_bounds(&swapped, Dir::Lt)?;
            Some((-max, -min))
        }
    }
}

/// Does the direction vector `dirs` (one entry per `common` loop) admit
/// a solution of `h = c0 + Σ coupled + Σ free = 0`? `false` = proven
/// independent for this vector.
pub fn vector_dependence_possible(
    c0: i128,
    common: &[Coupled],
    dirs: &[Dir],
    free: &[Free],
    stats: &DdStats,
) -> bool {
    debug_assert_eq!(common.len(), dirs.len());
    stats.banerjee_vectors.set(stats.banerjee_vectors.get() + 1);
    let mut min = c0;
    let mut max = c0;
    for (t, d) in common.iter().zip(dirs) {
        match coupled_bounds(t, *d) {
            Some((lo, hi)) => {
                min += lo;
                max += hi;
            }
            None => return false, // infeasible constraint: no dependence
        }
    }
    for f in free {
        if f.lo > f.hi {
            return false;
        }
        let (lo, hi) = free_bounds(f.c, f.lo, f.hi);
        min += lo;
        max += hi;
    }
    min <= 0 && 0 <= max
}

/// Can the pair carry a dependence at common-loop position `carrier`?
/// Tests the vector family (=, ..., =, <|>, *, ..., *), hierarchically
/// refining `*` entries while any refinement might still prove
/// independence. Returns `false` iff *no* leaf vector admits a solution
/// — a proof that loop `carrier` carries no dependence between the pair.
pub fn carried_dependence_possible(
    c0: i128,
    common: &[Coupled],
    carrier: usize,
    free: &[Free],
    stats: &DdStats,
) -> bool {
    debug_assert!(carrier < common.len());
    for cdir in [Dir::Lt, Dir::Gt] {
        let mut dirs: Vec<Dir> = Vec::with_capacity(common.len());
        for k in 0..common.len() {
            dirs.push(if k < carrier {
                Dir::Eq
            } else if k == carrier {
                cdir
            } else {
                Dir::Any
            });
        }
        if refine(c0, common, &mut dirs, carrier + 1, free, stats) {
            return true;
        }
    }
    false
}

/// One Banerjee query over a concrete direction vector, as issued by the
/// hierarchical refinement: the vector tried (entries may be [`Dir::Any`]
/// for interior nodes of the refinement tree) and its verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirTrial {
    /// Direction per common loop, outermost first.
    pub dirs: Vec<Dir>,
    /// `true` — the vector may carry a dependence; `false` — proven
    /// independent (and, for an interior node, so is its whole subtree).
    pub possible: bool,
}

impl DirTrial {
    /// A fully-refined vector (no `*` entries left).
    pub fn is_leaf(&self) -> bool {
        !self.dirs.contains(&Dir::Any)
    }
}

/// Run the full O(3^n) hierarchical refinement from the all-`*` root and
/// return **every** per-direction-vector trial in issue order. This is
/// the un-summarized form of [`carried_dependence_possible`]: consumers
/// (the nest summarizer, the bench precision columns) read the feasible
/// leaves — trials with [`DirTrial::possible`] and [`DirTrial::is_leaf`]
/// — without re-running any Banerjee query. Infeasible interior nodes
/// are reported as-is: their entire subtree is independent.
pub fn direction_vector_trials(
    c0: i128,
    common: &[Coupled],
    free: &[Free],
    stats: &DdStats,
) -> Vec<DirTrial> {
    let mut dirs = vec![Dir::Any; common.len()];
    let mut trials = Vec::new();
    refine_recorded(c0, common, &mut dirs, 0, free, stats, &mut trials);
    trials
}

/// The feasible fully-refined vectors of [`direction_vector_trials`].
pub fn feasible_leaves(trials: &[DirTrial]) -> Vec<Vec<Dir>> {
    trials.iter().filter(|t| t.possible && t.is_leaf()).map(|t| t.dirs.clone()).collect()
}

/// Exhaustive refinement that records every query instead of
/// short-circuiting on the first feasible leaf.
fn refine_recorded(
    c0: i128,
    common: &[Coupled],
    dirs: &mut Vec<Dir>,
    next: usize,
    free: &[Free],
    stats: &DdStats,
    trials: &mut Vec<DirTrial>,
) {
    let possible = vector_dependence_possible(c0, common, dirs, free, stats);
    trials.push(DirTrial { dirs: dirs.clone(), possible });
    if !possible {
        return; // whole subtree independent
    }
    let split = (next..dirs.len()).find(|&k| dirs[k] == Dir::Any);
    let Some(split) = split else {
        return; // feasible leaf, already recorded
    };
    for d in [Dir::Lt, Dir::Eq, Dir::Gt] {
        dirs[split] = d;
        refine_recorded(c0, common, dirs, split + 1, free, stats, trials);
    }
    dirs[split] = Dir::Any;
}

/// Hierarchical refinement: returns `true` if some fully-refined vector
/// still admits a dependence.
fn refine(
    c0: i128,
    common: &[Coupled],
    dirs: &mut Vec<Dir>,
    next: usize,
    free: &[Free],
    stats: &DdStats,
) -> bool {
    if !vector_dependence_possible(c0, common, dirs, free, stats) {
        return false; // this whole subtree is independent
    }
    // Find the next `Any` to refine.
    let split = (next..dirs.len()).find(|&k| dirs[k] == Dir::Any);
    let Some(split) = split else {
        return true; // leaf vector still possibly dependent
    };
    for d in [Dir::Lt, Dir::Eq, Dir::Gt] {
        dirs[split] = d;
        if refine(c0, common, dirs, split + 1, free, stats) {
            dirs[split] = Dir::Any;
            return true;
        }
    }
    dirs[split] = Dir::Any;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn st() -> DdStats {
        DdStats::new()
    }

    #[test]
    fn disjoint_halves_independent() {
        // A(i) vs A(i' + 100), i,i' in [1,50]: h = i - i' - 100 < 0 always.
        let common = [Coupled { a: 1, b: 1, lo: 1, hi: 50 }];
        let stats = st();
        assert!(!carried_dependence_possible(-100, &common, 0, &[], &stats));
    }

    #[test]
    fn same_subscript_carries_nothing() {
        // A(i) write vs A(i) write: h = i - i' = 0 under '<' impossible.
        let common = [Coupled { a: 1, b: 1, lo: 1, hi: 100 }];
        let stats = st();
        assert!(!carried_dependence_possible(0, &common, 0, &[], &stats));
    }

    #[test]
    fn shifted_subscript_carries() {
        // A(i) vs A(i'-1): i = i' - 1 has solutions with i < i'.
        let common = [Coupled { a: 1, b: 1, lo: 1, hi: 100 }];
        let stats = st();
        assert!(carried_dependence_possible(1, &common, 0, &[], &stats));
    }

    #[test]
    fn outer_carries_inner_does_not() {
        // A(i, j) vs A(i'-1, j'): outer carries (distance 1), and for the
        // inner loop as carrier (outer '='), i = i'-1 with i = i' is
        // impossible → inner independent.
        let common = [
            Coupled { a: 1, b: 1, lo: 1, hi: 10 }, // i coefficient (dim collapsed)
        ];
        // Model the 2-d case with linearized subscripts: f = 100 i + j,
        // g = 100 i' - 100 + j'.
        let common2 = [
            Coupled { a: 100, b: 100, lo: 1, hi: 10 },
            Coupled { a: 1, b: 1, lo: 1, hi: 50 },
        ];
        let stats = st();
        let _ = common;
        assert!(carried_dependence_possible(100, &common2, 0, &[], &stats));
        assert!(!carried_dependence_possible(100, &common2, 1, &[], &stats));
    }

    #[test]
    fn stride_two_independent() {
        // A(2i) vs A(2i'+1): h = 2(i-i') - 1; for any carried direction
        // (i != i') the interval excludes 0, so directed Banerjee proves
        // it — and the GCD test proves it for every direction at once.
        let common = [Coupled { a: 2, b: 2, lo: 1, hi: 10 }];
        let stats = st();
        assert!(!carried_dependence_possible(-1, &common, 0, &[], &stats));
        assert!(super::super::gcd::independent(
            polaris_symbolic::Rat::int(0),
            &[polaris_symbolic::Rat::int(2)],
            polaris_symbolic::Rat::int(1),
            &[polaris_symbolic::Rat::int(2)],
            &stats
        ));
    }

    #[test]
    fn free_variable_widens() {
        // f = i, g = i' + k (k in [0, 5] only under g's nest):
        // h = i - i' - k; carried at loop 0? i < i', i - i' in [-9, -1],
        // minus k in [-5, 0] → h in [-14, -1]: never 0 → independent!
        let common = [Coupled { a: 1, b: 1, lo: 1, hi: 10 }];
        let free = [Free { c: -1, lo: 0, hi: 5 }];
        let stats = st();
        // only testing '<' side here by construction: '>' side gives
        // i - i' in [1, 9] minus k in [-5,0] → [−4, 9] contains 0 → dep.
        assert!(carried_dependence_possible(0, &common, 0, &free, &stats));
        // with a shift making both directions safe:
        assert!(!carried_dependence_possible(-100, &common, 0, &free, &stats));
    }

    #[test]
    fn counts_vectors() {
        let stats = st();
        let common = [
            Coupled { a: 1, b: 1, lo: 1, hi: 4 },
            Coupled { a: 7, b: 7, lo: 1, hi: 4 },
            Coupled { a: 31, b: 31, lo: 1, hi: 4 },
        ];
        let _ = carried_dependence_possible(1, &common, 0, &[], &stats);
        assert!(stats.banerjee_vectors.get() > 2, "refinement should recurse");
    }

    #[test]
    fn empty_loop_is_independent() {
        let common = [Coupled { a: 1, b: 1, lo: 5, hi: 4 }];
        let stats = st();
        assert!(!carried_dependence_possible(0, &common, 0, &[], &stats));
    }

    #[test]
    fn trials_expose_every_query_and_agree_with_carried() {
        // A(i, j) vs A(i'-1, j') (linearized): the outer loop carries a
        // distance-1 dependence, the inner carries nothing.
        let common = [
            Coupled { a: 100, b: 100, lo: 1, hi: 10 },
            Coupled { a: 1, b: 1, lo: 1, hi: 50 },
        ];
        let stats = st();
        let trials = direction_vector_trials(100, &common, &[], &stats);
        // Every trial was really issued against the Banerjee core.
        assert_eq!(trials.len() as u64, stats.banerjee_vectors.get());
        let leaves = feasible_leaves(&trials);
        // The true dependence (<, =) survives; every feasible leaf is
        // outer-carried (the intervals prove `=` and `>` outer
        // directions independent, though they cannot separate the inner
        // direction on a linearized subscript).
        assert!(leaves.contains(&vec![Dir::Lt, Dir::Eq]), "{leaves:?}");
        assert!(leaves.iter().all(|v| v[0] == Dir::Lt), "{leaves:?}");
        // Consistency with the summarized query: outer carries, inner
        // does not.
        assert!(carried_dependence_possible(100, &common, 0, &[], &stats));
        assert!(!carried_dependence_possible(100, &common, 1, &[], &stats));
    }

    #[test]
    fn trials_on_independent_pair_are_one_infeasible_root() {
        let common = [Coupled { a: 1, b: 1, lo: 1, hi: 50 }];
        let stats = st();
        let trials = direction_vector_trials(-100, &common, &[], &stats);
        assert_eq!(trials.len(), 1);
        assert_eq!(trials[0].dirs, vec![Dir::Any]);
        assert!(!trials[0].possible);
        assert!(feasible_leaves(&trials).is_empty());
    }

    // ---- brute force oracles ------------------------------------------

    fn brute_force_vector(
        c0: i128,
        common: &[Coupled],
        dirs: &[Dir],
        free: &[Free],
    ) -> bool {
        // enumerate all (i, i') per common loop and x per free var
        fn rec_common(
            k: usize,
            c0: i128,
            common: &[Coupled],
            dirs: &[Dir],
            free: &[Free],
            acc: i128,
        ) -> bool {
            if k == common.len() {
                return rec_free(0, c0, free, acc);
            }
            let t = common[k];
            for i in t.lo..=t.hi {
                for ip in t.lo..=t.hi {
                    let ok = match dirs[k] {
                        Dir::Any => true,
                        Dir::Lt => i < ip,
                        Dir::Eq => i == ip,
                        Dir::Gt => i > ip,
                    };
                    if ok && rec_common(k + 1, c0, common, dirs, free, acc + t.a * i - t.b * ip)
                    {
                        return true;
                    }
                }
            }
            false
        }
        fn rec_free(k: usize, c0: i128, free: &[Free], acc: i128) -> bool {
            if k == free.len() {
                return c0 + acc == 0;
            }
            let f = free[k];
            (f.lo..=f.hi).any(|x| rec_free(k + 1, c0, free, acc + f.c * x))
        }
        rec_common(0, c0, common, dirs, free, 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The Banerjee interval must CONTAIN every value h takes, so a
        /// "no dependence" verdict must agree with brute force.
        #[test]
        fn prop_vector_test_is_sound(
            a in -4i128..5, b in -4i128..5, lo in -3i128..3, len in 0i128..4,
            c0 in -20i128..20, dir_idx in 0usize..4,
        ) {
            let dir = [Dir::Any, Dir::Lt, Dir::Eq, Dir::Gt][dir_idx];
            let common = [Coupled { a, b, lo, hi: lo + len }];
            let stats = st();
            let verdict = vector_dependence_possible(c0, &common, &[dir], &[], &stats);
            let truth = brute_force_vector(c0, &common, &[dir], &[]);
            // verdict=false must imply truth=false (soundness).
            prop_assert!(verdict || !truth, "unsound: said independent but {c0} {a} {b} solvable");
        }

        /// For single-variable terms the Banerjee bound is exact, so the
        /// verdict should equal brute force (completeness check).
        #[test]
        fn prop_single_loop_exact(
            a in -4i128..5, b in -4i128..5, lo in -3i128..3, len in 0i128..4,
            c0 in -10i128..10, dir_idx in 0usize..4,
        ) {
            let dir = [Dir::Any, Dir::Lt, Dir::Eq, Dir::Gt][dir_idx];
            let common = [Coupled { a, b, lo, hi: lo + len }];
            let stats = st();
            let verdict = vector_dependence_possible(c0, &common, &[dir], &[], &stats);
            let truth = brute_force_vector(c0, &common, &[dir], &[]);
            // With one coupled term the real-valued extrema are attained
            // at integer points, but an interior zero of a non-unit-
            // coefficient term may not be integer: only soundness is
            // exact in general. For equal unit coefficients (the common
            // `A(i±c)` case) the test is exact.
            if a == b && a.abs() <= 1 {
                prop_assert_eq!(verdict, truth);
            } else {
                prop_assert!(verdict || !truth);
            }
        }

        /// The recorded trial tree is sound per leaf: a fully-refined
        /// vector missing from the feasible set must really admit no
        /// solution (pruning at an interior node may not hide one).
        #[test]
        fn prop_trials_sound_per_leaf(
            a1 in -3i128..4, b1 in -3i128..4,
            a2 in -3i128..4, b2 in -3i128..4,
            c0 in -12i128..12,
        ) {
            let common = [
                Coupled { a: a1, b: b1, lo: 0, hi: 3 },
                Coupled { a: a2, b: b2, lo: 0, hi: 3 },
            ];
            let stats = st();
            let leaves = feasible_leaves(&direction_vector_trials(c0, &common, &[], &stats));
            for d1 in [Dir::Lt, Dir::Eq, Dir::Gt] {
                for d2 in [Dir::Lt, Dir::Eq, Dir::Gt] {
                    let v = vec![d1, d2];
                    if brute_force_vector(c0, &common, &v, &[]) {
                        prop_assert!(
                            leaves.contains(&v),
                            "solvable vector {v:?} missing from feasible leaves"
                        );
                    }
                }
            }
        }

        /// Carried-dependence enumeration is sound against brute force
        /// over both < and > leaves.
        #[test]
        fn prop_carried_sound(
            a1 in -3i128..4, b1 in -3i128..4,
            a2 in -3i128..4, b2 in -3i128..4,
            c0 in -12i128..12,
        ) {
            let common = [
                Coupled { a: a1, b: b1, lo: 0, hi: 3 },
                Coupled { a: a2, b: b2, lo: 0, hi: 3 },
            ];
            let stats = st();
            let verdict = carried_dependence_possible(c0, &common, 0, &[], &stats);
            let lt = brute_force_vector(c0, &common, &[Dir::Lt, Dir::Any], &[]);
            let gt = brute_force_vector(c0, &common, &[Dir::Gt, Dir::Any], &[]);
            prop_assert!(verdict || !(lt || gt), "unsound carried verdict");
        }
    }
}

//! The GCD dependence test.
//!
//! For subscripts `f(i...) = a0 + Σ a_k i_k` and `g(i'...) = b0 + Σ b_k
//! i'_k`, an integer solution of `f = g` requires
//! `gcd(a_1.., b_1..) | (b0 - a0)`. If it does not divide, the accesses
//! can never alias and the pair is independent (for every direction).
//! Bounds are ignored, so "divides" proves nothing.

use super::DdStats;
use polaris_symbolic::rat::gcd as gcd128;
use polaris_symbolic::Rat;

/// Returns `true` if the GCD test *proves independence* of
/// `a0 + Σ a_k x_k  =  b0 + Σ b_k y_k` (distinct iteration variables on
/// each side). Coefficients must be integers (rationals with unit
/// denominator); anything else returns `false` (no proof).
pub fn independent(a0: Rat, a: &[Rat], b0: Rat, b: &[Rat], stats: &DdStats) -> bool {
    stats.gcd_tests.set(stats.gcd_tests.get() + 1);
    let Some(c0) = a0.checked_sub(b0).and_then(|d| d.as_integer()) else {
        return false;
    };
    let mut g: i128 = 0;
    for c in a.iter().chain(b.iter()) {
        match c.as_integer() {
            Some(v) => g = gcd128(g, v),
            None => return false,
        }
    }
    if g == 0 {
        // No index dependence at all: alias iff constants are equal.
        return c0 != 0;
    }
    c0 % g != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i128) -> Rat {
        Rat::int(v)
    }

    #[test]
    fn classic_even_odd() {
        // A(2i) vs A(2i'+1): 2i - 2i' = 1 has no integer solution.
        let stats = DdStats::new();
        assert!(independent(r(0), &[r(2)], r(1), &[r(2)], &stats));
        assert_eq!(stats.gcd_tests.get(), 1);
    }

    #[test]
    fn divisible_is_no_proof() {
        // A(2i) vs A(2i'): trivially aliases at i = i'.
        let stats = DdStats::new();
        assert!(!independent(r(0), &[r(2)], r(0), &[r(2)], &stats));
    }

    #[test]
    fn constant_subscripts() {
        let stats = DdStats::new();
        // A(3) vs A(5): never alias
        assert!(independent(r(3), &[], r(5), &[], &stats));
        // A(4) vs A(4): alias
        assert!(!independent(r(4), &[], r(4), &[], &stats));
    }

    #[test]
    fn rational_coefficients_give_up() {
        let stats = DdStats::new();
        let half = Rat::new(1, 2).unwrap();
        assert!(!independent(r(0), &[half], r(1), &[r(2)], &stats));
    }

    #[test]
    fn multi_loop() {
        // A(4i + 2j) vs A(4i' + 2j' + 1): gcd 2 does not divide 1.
        let stats = DdStats::new();
        assert!(independent(r(0), &[r(4), r(2)], r(1), &[r(4), r(2)], &stats));
    }
}

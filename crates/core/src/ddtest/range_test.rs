//! The Range Test (§3.3.1) — symbolic, nonlinear data dependence testing.
//!
//! "We mark a loop as parallel if we can prove that the range of elements
//! accessed by an iteration of that loop does not overlap with the range
//! of elements accessed by other iterations."
//!
//! For a tested loop with index `i` and a pair of references `f`, `g`
//! (at least one a write), the per-dimension access ranges
//! `[f_min(i), f_max(i)]` are computed by eliminating the *inner* loop
//! variables of each reference through the monotonicity machinery of
//! `polaris-symbolic` (forward differences → substitute the bound). The
//! pair carries no dependence at the tested loop if consecutive executed
//! iterations' ranges are separated and the range endpoints move
//! monotonically with the execution order — checked in both ascending
//! and descending orientations.
//!
//! When the direct test fails, the **loop permutation** step of the
//! paper is applied: an inner loop `J` common to both references is
//! "hoisted" above the tested loop (think of it as permuting the
//! direction vectors tested): if `J` itself carries no dependence (with
//! the tested loop eliminated like an inner loop) *and* the tested loop
//! carries none for each fixed `J`, the tested loop is independent.
//! This is exactly what the OCEAN/FTRVMT nest of Figure 3 needs.

use super::DdStats;
use polaris_symbolic::bounds::{min_max_over, sign};
use polaris_symbolic::poly::{Atom, Poly};
use polaris_symbolic::{RangeEnv, Range};

/// A loop that encloses a reference inside the tested loop.
#[derive(Debug, Clone)]
pub struct InnerLoop {
    pub var: String,
    pub lo: Poly,
    pub hi: Poly,
    pub step: i64,
}

impl InnerLoop {
    /// The iteration range of the loop variable as an interval
    /// (bounds swapped for negative steps).
    fn value_range(&self) -> Range {
        if self.step >= 0 {
            Range::new(Some(self.lo.clone()), Some(self.hi.clone()))
        } else {
            Range::new(Some(self.hi.clone()), Some(self.lo.clone()))
        }
    }
}

/// One array reference: per-dimension subscript polynomials plus the
/// inner loops enclosing it (outermost first).
#[derive(Debug, Clone)]
pub struct RefSpec {
    pub subs: Vec<Poly>,
    pub inner: Vec<InnerLoop>,
}

/// Access range of one subscript dimension after eliminating the
/// reference's inner loops: `(min(i), max(i))` with the tested variable
/// (and outer symbols) left symbolic.
fn dim_range(
    r: &RefSpec,
    dim: usize,
    env: &RangeEnv,
) -> (Option<Poly>, Option<Poly>) {
    let mut env = env.clone();
    for il in &r.inner {
        env.set_fresh(il.var.clone(), il.value_range());
    }
    // Eliminate innermost-first.
    let atoms: Vec<Atom> =
        r.inner.iter().rev().map(|il| Atom::var(il.var.clone())).collect();
    min_max_over(&r.subs[dim], &atoms, &env)
}

/// Is `p(i + step) - p(i)` provably `>= 0` (monotone non-decreasing in
/// execution order)?
fn nondecr_exec(p: &Poly, var: &str, step: i64, env: &RangeEnv) -> bool {
    step_diff(p, var, step).map(|d| sign(&d, env).is_nonneg()).unwrap_or(false)
}

fn nonincr_exec(p: &Poly, var: &str, step: i64, env: &RangeEnv) -> bool {
    step_diff(p, var, step).map(|d| sign(&d, env).is_nonpos()).unwrap_or(false)
}

fn step_diff(p: &Poly, var: &str, step: i64) -> Option<Poly> {
    let next = Poly::var(var).checked_add(&Poly::int(step as i128))?;
    p.subst_var(var, &next)?.checked_sub(p)
}

fn at_next(p: &Poly, var: &str, step: i64) -> Option<Poly> {
    let next = Poly::var(var).checked_add(&Poly::int(step as i128))?;
    p.subst_var(var, &next)
}

/// Direct range test for one dimension: either the two references'
/// *total* ranges over the whole tested loop are disjoint, or
/// consecutive executed iterations' ranges are separated with endpoints
/// moving monotonically.
fn dim_independent(
    f: &RefSpec,
    g: &RefSpec,
    dim: usize,
    var: &str,
    step: i64,
    self_loop: &InnerLoop,
    env: &RangeEnv,
) -> bool {
    let (fmin, fmax) = dim_range(f, dim, env);
    let (gmin, gmax) = dim_range(g, dim, env);
    let (Some(fmin), Some(fmax), Some(gmin), Some(gmax)) = (fmin, fmax, gmin, gmax) else {
        return false;
    };
    let lt = |a: &Poly, b: &Poly| match b.checked_sub(a) {
        Some(d) => sign(&d, env).is_pos(),
        None => false,
    };
    // Total disjointness: if f's whole footprint over every iteration of
    // the tested loop lies strictly beside g's, no pair of iterations
    // can conflict (this is what separates OCEAN's two references, whose
    // constant offset exceeds the tested loop's whole span).
    {
        let total = |r: &RefSpec| -> (Option<Poly>, Option<Poly>) {
            let mut wide = r.clone();
            wide.inner.push(self_loop.clone());
            dim_range(&wide, dim, env)
        };
        if let ((Some(ftl), Some(fth)), (Some(gtl), Some(gth))) = (total(f), total(g)) {
            if lt(&fth, &gtl) || lt(&gth, &ftl) {
                return true;
            }
        }
    }
    // Ascending in execution order: each iteration's range lies strictly
    // below the next iteration's.
    let asc = || -> Option<bool> {
        Some(
            lt(&fmax, &at_next(&gmin, var, step)?)
                && lt(&gmax, &at_next(&fmin, var, step)?)
                && nondecr_exec(&gmin, var, step, env)
                && nondecr_exec(&fmin, var, step, env),
        )
    };
    // Descending: each iteration's range lies strictly above the next's.
    let desc = || -> Option<bool> {
        Some(
            lt(&at_next(&gmax, var, step)?, &fmin)
                && lt(&at_next(&fmax, var, step)?, &gmin)
                && nonincr_exec(&gmax, var, step, env)
                && nonincr_exec(&fmax, var, step, env),
        )
    };
    asc().unwrap_or(false) || desc().unwrap_or(false)
}

/// The full range test for a pair of references at the tested loop.
///
/// * `var`/`step` — the tested loop's index and (constant) step,
/// * `self_loop` — the tested loop's own bounds (needed when a
///   permutation demotes it to inner position),
/// * `env` — ranges valid inside the tested loop (its own variable
///   included), from range propagation,
/// * `allow_permutation` — whether to attempt the §3.3.1 permutation
///   step on failure.
///
/// Returns `true` iff the pair provably carries **no** dependence at the
/// tested loop.
#[allow(clippy::too_many_arguments)]
pub fn no_carried_dependence(
    f: &RefSpec,
    g: &RefSpec,
    var: &str,
    step: i64,
    self_loop: &InnerLoop,
    env: &RangeEnv,
    stats: &DdStats,
    allow_permutation: bool,
) -> bool {
    debug_assert_eq!(f.subs.len(), g.subs.len(), "rank mismatch");
    if step == 0 {
        return false;
    }
    stats.range_probes.set(stats.range_probes.get() + 1);
    // Direct test, any dimension suffices.
    for dim in 0..f.subs.len() {
        if dim_independent(f, g, dim, var, step, self_loop, env) {
            return true;
        }
    }
    if !allow_permutation {
        return false;
    }
    // Permutation: hoist a common inner loop J above the tested loop.
    let pivots: Vec<String> = f
        .inner
        .iter()
        .filter(|il| g.inner.iter().any(|jl| jl.var == il.var))
        .map(|il| il.var.clone())
        .collect();
    for pivot in pivots {
        let fj = f.inner.iter().find(|il| il.var == pivot).unwrap().clone();
        let gj = g.inner.iter().find(|il| il.var == pivot).unwrap().clone();
        if fj.step != gj.step {
            continue;
        }
        // (a) J carries nothing: demote the tested loop to inner.
        let demote = |r: &RefSpec, j: &InnerLoop| RefSpec {
            subs: r.subs.clone(),
            inner: std::iter::once(self_loop.clone())
                .chain(r.inner.iter().filter(|il| il.var != j.var).cloned())
                .collect(),
        };
        let fa = demote(f, &fj);
        let ga = demote(g, &gj);
        let mut env_a = env.clone();
        env_a.set_fresh(pivot.clone(), fj.value_range());
        let mut ok_a = false;
        for dim in 0..f.subs.len() {
            if dim_independent(&fa, &ga, dim, &pivot, fj.step, &fj, &env_a) {
                ok_a = true;
                break;
            }
        }
        if !ok_a {
            continue;
        }
        // (b) the tested loop carries nothing for each fixed J.
        let strip = |r: &RefSpec, j: &InnerLoop| RefSpec {
            subs: r.subs.clone(),
            inner: r.inner.iter().filter(|il| il.var != j.var).cloned().collect(),
        };
        let fb = strip(f, &fj);
        let gb = strip(g, &gj);
        let mut env_b = env.clone();
        env_b.set_fresh(pivot.clone(), fj.value_range());
        for dim in 0..f.subs.len() {
            if dim_independent(&fb, &gb, dim, var, step, self_loop, &env_b) {
                stats.permutations_used.set(stats.permutations_used.get() + 1);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_symbolic::poly::DivPolicy;

    fn p(src: &str) -> Poly {
        let full = format!("program t\ninteger z(1000)\nx = {src}\nend\n");
        let prog = polaris_ir::parse(&full).unwrap();
        match &prog.units[0].body.0[0].kind {
            polaris_ir::StmtKind::Assign { rhs, .. } => {
                Poly::from_expr(rhs, DivPolicy::Exact).unwrap()
            }
            _ => unreachable!(),
        }
    }

    fn il(var: &str, lo: &str, hi: &str) -> InnerLoop {
        InnerLoop { var: var.into(), lo: p(lo), hi: p(hi), step: 1 }
    }

    fn simple_ref(sub: &str, inner: Vec<InnerLoop>) -> RefSpec {
        RefSpec { subs: vec![p(sub)], inner }
    }

    fn stats() -> DdStats {
        DdStats::new()
    }

    #[test]
    fn identity_subscript_is_independent() {
        // A(i) = ... : trivially no carried dependence.
        let f = simple_ref("i", vec![]);
        let env = {
            let mut e = RangeEnv::new();
            e.assume_nonempty_loop("I", &polaris_ir::Expr::int(1), &polaris_ir::Expr::var("N"));
            e
        };
        let sl = il("I", "1", "n");
        assert!(no_carried_dependence(&f, &f, "I", 1, &sl, &env, &stats(), true));
    }

    #[test]
    fn offset_pair_is_dependent() {
        // A(i) vs A(i+1): carried.
        let f = simple_ref("i", vec![]);
        let g = simple_ref("i + 1", vec![]);
        let env = {
            let mut e = RangeEnv::new();
            e.assume_nonempty_loop("I", &polaris_ir::Expr::int(1), &polaris_ir::Expr::var("N"));
            e
        };
        let sl = il("I", "1", "n");
        assert!(!no_carried_dependence(&f, &g, "I", 1, &sl, &env, &stats(), true));
    }

    #[test]
    fn symbolic_stride_independent() {
        // A(n*i + j), j in [0, n-1]: blocks of size n, disjoint per i —
        // the symbolic case linear tests cannot do.
        let f = simple_ref("n*i + j", vec![il("J", "0", "n - 1")]);
        let mut env = RangeEnv::new();
        env.assume_nonempty_loop("I", &polaris_ir::Expr::int(0), &polaris_ir::Expr::var("M"));
        env.assume_cond(&polaris_ir::Expr::bin(
            polaris_ir::BinOp::Ge,
            polaris_ir::Expr::var("N"),
            polaris_ir::Expr::int(1),
        ));
        let sl = il("I", "0", "m");
        assert!(no_carried_dependence(&f, &f, "I", 1, &sl, &env, &stats(), false));
    }

    #[test]
    fn trfd_outer_loop_parallel() {
        // Figure 2 closed form: f = (i*(n^2+n) + j^2 - j)/2 + k + 1,
        // j in [0, n-1], k in [0, j-1]. The outermost I loop carries
        // nothing (the worked example of §3.3.1).
        let f = simple_ref(
            "(i*(n**2+n) + j**2 - j)/2 + k + 1",
            vec![il("J", "0", "n - 1"), il("K", "0", "j - 1")],
        );
        let mut env = RangeEnv::new();
        env.assume_nonempty_loop("I", &polaris_ir::Expr::int(0), &polaris_ir::Expr::sub(polaris_ir::Expr::var("M"), polaris_ir::Expr::int(1)));
        // analyzing the body assumes the J loop runs: n >= 1
        env.assume_cond(&polaris_ir::Expr::bin(
            polaris_ir::BinOp::Ge,
            polaris_ir::Expr::var("N"),
            polaris_ir::Expr::int(1),
        ));
        let sl = il("I", "0", "m - 1");
        let st = stats();
        assert!(no_carried_dependence(&f, &f, "I", 1, &sl, &env, &st, true));
    }

    #[test]
    fn trfd_middle_and_inner_loops_parallel() {
        // Same subscript, testing J (inner K eliminated, I symbolic) and
        // K (no inner loops, I and J symbolic).
        let env = {
            let mut e = RangeEnv::new();
            e.assume_cond(&polaris_ir::Expr::bin(
                polaris_ir::BinOp::Ge,
                polaris_ir::Expr::var("N"),
                polaris_ir::Expr::int(1),
            ));
            // J's own range while testing J:
            e.set_fresh("J", Range::new(Some(p("0")), Some(p("n - 1"))));
            e
        };
        let fj = simple_ref(
            "(i*(n**2+n) + j**2 - j)/2 + k + 1",
            vec![il("K", "0", "j - 1")],
        );
        let slj = il("J", "0", "n - 1");
        assert!(no_carried_dependence(&fj, &fj, "J", 1, &slj, &env, &stats(), true));

        let mut env_k = env.clone();
        env_k.set_fresh("K", Range::new(Some(p("0")), Some(p("j - 1"))));
        let fk = simple_ref("(i*(n**2+n) + j**2 - j)/2 + k + 1", vec![]);
        let slk = il("K", "0", "j - 1");
        assert!(no_carried_dependence(&fk, &fk, "K", 1, &slk, &env_k, &stats(), true));
    }

    #[test]
    fn ocean_ftrvmt_needs_permutation() {
        // Figure 3: A(258*X*J + 129*K + I + 1) and the +129*X variant,
        // nest K (outer, tested), J, I. Direct test on K fails (the
        // middle loop's stride 258*X interleaves); permuting J above K
        // succeeds.
        let subs = "258*x*j + 129*k + i + 1";
        let inner = vec![il("J", "0", "zk"), il("I", "0", "128")];
        let f = RefSpec { subs: vec![p(subs)], inner: inner.clone() };
        let g = RefSpec { subs: vec![p("258*x*j + 129*k + i + 1 + 129*x")], inner };
        let mut env = RangeEnv::new();
        env.set_fresh("K", Range::new(Some(p("0")), Some(p("x - 1"))));
        env.assume_cond(&polaris_ir::Expr::bin(
            polaris_ir::BinOp::Ge,
            polaris_ir::Expr::var("X"),
            polaris_ir::Expr::int(1),
        ));
        env.assume_cond(&polaris_ir::Expr::bin(
            polaris_ir::BinOp::Ge,
            polaris_ir::Expr::var("ZK"),
            polaris_ir::Expr::int(0),
        ));
        let sl = il("K", "0", "x - 1");
        let st = stats();
        // without permutation: fails
        assert!(!no_carried_dependence(&f, &f, "K", 1, &sl, &env, &st, false));
        assert!(!no_carried_dependence(&f, &g, "K", 1, &sl, &env, &st, false));
        // with permutation: both pairs pass
        assert!(no_carried_dependence(&f, &f, "K", 1, &sl, &env, &st, true));
        assert!(no_carried_dependence(&f, &g, "K", 1, &sl, &env, &st, true));
        assert!(st.permutations_used.get() >= 1);
    }

    #[test]
    fn multidim_one_dimension_suffices_and_invariant_dim_does_not() {
        // B(i, q) with q loop-invariant: dimension 1 proves independence.
        let f = RefSpec { subs: vec![p("i"), p("q")], inner: vec![] };
        let mut env = RangeEnv::new();
        env.assume_nonempty_loop("I", &polaris_ir::Expr::int(1), &polaris_ir::Expr::var("N"));
        let sl = il("I", "1", "n");
        assert!(no_carried_dependence(&f, &f, "I", 1, &sl, &env, &stats(), true));
        // B(q, q): no dimension varies → cannot prove (and indeed every
        // iteration hits the same element).
        let h = RefSpec { subs: vec![p("q"), p("q")], inner: vec![] };
        assert!(!no_carried_dependence(&h, &h, "I", 1, &sl, &env, &stats(), true));
    }

    #[test]
    fn negative_step_loop() {
        // DO I = N, 1, -1 writing A(I): independent.
        let f = simple_ref("i", vec![]);
        let mut env = RangeEnv::new();
        env.set_fresh("I", Range::new(Some(p("1")), Some(p("n"))));
        let sl = InnerLoop { var: "I".into(), lo: p("n"), hi: p("1"), step: -1 };
        assert!(no_carried_dependence(&f, &f, "I", -1, &sl, &env, &stats(), true));
        // and A(I) vs A(I+1) still dependent
        let g = simple_ref("i + 1", vec![]);
        assert!(!no_carried_dependence(&f, &g, "I", -1, &sl, &env, &stats(), true));
    }

    #[test]
    fn subscripted_subscript_defeats_the_test() {
        // A(Z(I)): opaque subscript — compile-time analysis cannot prove
        // independence (this is §3.5's motivation).
        let f = simple_ref("z(i)", vec![]);
        let mut env = RangeEnv::new();
        env.assume_nonempty_loop("I", &polaris_ir::Expr::int(1), &polaris_ir::Expr::var("N"));
        let sl = il("I", "1", "n");
        assert!(!no_carried_dependence(&f, &f, "I", 1, &sl, &env, &stats(), true));
    }

    #[test]
    fn strided_write_with_gap() {
        // A(2*i) vs A(2*i - 1): ranges {2i} and {2i-1} — ascending check:
        // fmax(i)=2i < gmin(i+1)=2i+1 ✓ and gmax(i)=2i-1 < fmin(i+1)=2i+2 ✓
        let f = simple_ref("2*i", vec![]);
        let g = simple_ref("2*i - 1", vec![]);
        let mut env = RangeEnv::new();
        env.assume_nonempty_loop("I", &polaris_ir::Expr::int(1), &polaris_ir::Expr::var("N"));
        let sl = il("I", "1", "n");
        assert!(no_carried_dependence(&f, &g, "I", 1, &sl, &env, &stats(), true));
    }

    #[test]
    fn overlapping_inner_ranges_dependent() {
        // A(i + j), j in [0, 5]: iteration i covers [i, i+5], overlaps
        // iteration i+1.
        let f = simple_ref("i + j", vec![il("J", "0", "5")]);
        let mut env = RangeEnv::new();
        env.assume_nonempty_loop("I", &polaris_ir::Expr::int(1), &polaris_ir::Expr::var("N"));
        let sl = il("I", "1", "n");
        assert!(!no_carried_dependence(&f, &f, "I", 1, &sl, &env, &stats(), true));
    }

    #[test]
    fn negative_stride_subscripts() {
        let mut env = RangeEnv::new();
        env.assume_nonempty_loop("I", &polaris_ir::Expr::int(1), &polaris_ir::Expr::var("N"));
        let sl = il("I", "1", "n");
        // A(-2*i) vs A(-2*i - 1): the footprints march downward with a
        // gap — the descending orientation must prove independence.
        let f = simple_ref("-2*i", vec![]);
        let g = simple_ref("-2*i - 1", vec![]);
        assert!(no_carried_dependence(&f, &g, "I", 1, &sl, &env, &stats(), true));
        // A(-i) vs A(-i - 1): f(i+1) = g(i) — a real carried dependence;
        // the same machinery must refuse.
        let f = simple_ref("-i", vec![]);
        let g = simple_ref("-i - 1", vec![]);
        assert!(!no_carried_dependence(&f, &g, "I", 1, &sl, &env, &stats(), true));
    }

    #[test]
    fn zero_step_is_conservative() {
        // A degenerate zero-step tested loop never separates iterations:
        // even the identity subscript must stay conservative (the
        // interpreter rejects such loops; the test must not pre-bless
        // them as parallel).
        let f = simple_ref("i", vec![]);
        let mut env = RangeEnv::new();
        env.assume_nonempty_loop("I", &polaris_ir::Expr::int(1), &polaris_ir::Expr::var("N"));
        let sl = il("I", "1", "n");
        assert!(!no_carried_dependence(&f, &f, "I", 0, &sl, &env, &stats(), true));
    }

    #[test]
    fn zero_trip_inner_loop() {
        let mut env = RangeEnv::new();
        env.assume_nonempty_loop("I", &polaris_ir::Expr::int(1), &polaris_ir::Expr::var("N"));
        let sl = il("I", "1", "n");
        // A(i + j) with j in [1, 0]: the inner loop never runs, so the
        // reference touches nothing — vacuous independence is sound and
        // the inverted bounds must not confuse (or crash) the test.
        let f = simple_ref("i + j", vec![il("J", "1", "0")]);
        assert!(no_carried_dependence(&f, &f, "I", 1, &sl, &env, &stats(), true));
        // j in [m, 0] with unconstrained m: the loop may or may not run,
        // and when it runs the footprint [i+m, i] can reach arbitrarily
        // far down — must stay conservative.
        let g = simple_ref("i + j", vec![il("J", "m", "0")]);
        assert!(!no_carried_dependence(&g, &g, "I", 1, &sl, &env, &stats(), true));
    }

    #[test]
    fn symbolic_lower_bound_crossing_zero() {
        // A(6*i + j), j in [m, 5]: iteration i's footprint is
        // [6i+m, 6i+5]. With m unconstrained (it may be negative, and
        // the footprint then reaches into earlier iterations' blocks)
        // the test must stay conservative; once m >= 0 is known the
        // blocks are disjoint and it must prove independence.
        let f = simple_ref("6*i + j", vec![il("J", "m", "5")]);
        let sl = il("I", "1", "n");
        let mut env = RangeEnv::new();
        env.assume_nonempty_loop("I", &polaris_ir::Expr::int(1), &polaris_ir::Expr::var("N"));
        assert!(!no_carried_dependence(&f, &f, "I", 1, &sl, &env, &stats(), true));
        env.assume_cond(&polaris_ir::Expr::bin(
            polaris_ir::BinOp::Ge,
            polaris_ir::Expr::var("M"),
            polaris_ir::Expr::int(0),
        ));
        assert!(no_carried_dependence(&f, &f, "I", 1, &sl, &env, &stats(), true));
    }
}

//! Data-dependence tests (§3.3).
//!
//! Three tests are implemented:
//!
//! * [`gcd`] — the classic GCD test on linear (affine, integer-
//!   coefficient) subscripts; a cheap filter.
//! * [`banerjee`] — Banerjee's inequalities with direction vectors,
//!   the representative "current compiler" test the paper contrasts the
//!   range test against. Requires linear subscripts and (for precision)
//!   constant loop bounds; tests up to `O(3^n)` direction vectors and
//!   counts them, which the complexity ablation reports.
//! * [`range_test`] — the symbolic range test of Blume & Eigenmann,
//!   which handles nonlinear and symbolic subscripts via min/max range
//!   comparison, monotonicity by forward differences, and loop
//!   permutation (§3.3.1).
//!
//! All tests answer the same question: *can array accesses `f` and `g`
//! refer to the same element in two different iterations of a given
//! loop* (outer loops fixed, inner loops arbitrary)? `false` ("no") is a
//! proof; `true` means "maybe" and keeps the loop serial unless another
//! technique applies.

pub mod banerjee;
pub mod gcd;
pub mod range_test;

use std::cell::Cell;

/// Instrumentation counters shared by the tests. The paper's complexity
/// claim — the range test examines `O(n²)` direction vectors where
/// Banerjee-with-directions may examine `O(3ⁿ)` — is measured through
/// these (see the `ablation` harness).
#[derive(Debug, Default)]
pub struct DdStats {
    /// Individual Banerjee direction-vector trials.
    pub banerjee_vectors: Cell<u64>,
    /// GCD test invocations.
    pub gcd_tests: Cell<u64>,
    /// Range-test pair probes (one per loop/pair/permutation attempt).
    pub range_probes: Cell<u64>,
    /// Range-test successes that required a loop permutation.
    pub permutations_used: Cell<u64>,
    /// Range-test *queries*: one per access pair the driver asks the
    /// range test about (`run = proved + disproved + abstained`; a
    /// single query may issue several `range_probes` internally).
    pub range_tests_run: Cell<u64>,
    /// Queries where the range test proved independence.
    pub range_proved: Cell<u64>,
    /// Queries where the range test ran but could not prove independence.
    pub range_disproved: Cell<u64>,
    /// Queries the range test abstained from (subscripts or loop bounds
    /// outside its symbolic fragment).
    pub range_abstained: Cell<u64>,
    /// Range facts propagated into the analysis environment (loop
    /// headers assumed, assignments forwarded, assertions applied).
    pub ranges_propagated: Cell<u64>,
    /// Index-array-property disjointness queries: loops the classic
    /// tests could not prove where the driver consulted proven
    /// `ArrayProps` facts (the subscripted-subscript rule).
    pub props_tests_run: Cell<u64>,
    /// Property-rule queries that proved the loop's pairs disjoint.
    pub props_proved: Cell<u64>,
}

impl DdStats {
    pub fn new() -> DdStats {
        DdStats::default()
    }

    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.banerjee_vectors.get(),
            self.gcd_tests.get(),
            self.range_probes.get(),
            self.permutations_used.get(),
        )
    }

    /// Index-array-property rule outcomes as `(run, proved)`.
    pub fn props_outcomes(&self) -> (u64, u64) {
        (self.props_tests_run.get(), self.props_proved.get())
    }

    /// Range-test query outcomes as `(run, proved, disproved, abstained)`;
    /// the first component always equals the sum of the other three.
    pub fn range_outcomes(&self) -> (u64, u64, u64, u64) {
        (
            self.range_tests_run.get(),
            self.range_proved.get(),
            self.range_disproved.get(),
            self.range_abstained.get(),
        )
    }
}

/// A direction in a Banerjee direction vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Any,
    Lt,
    Eq,
    Gt,
}

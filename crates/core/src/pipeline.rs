//! Fault-isolating pass pipeline (the paper's `p_assert` discipline made
//! operational).
//!
//! Polaris ran internal consistency checks after every transformation so a
//! buggy pass was caught at the point of damage instead of being silently
//! compiled. This module goes one step further: each pass runs as a named
//! [`Stage`] under [`std::panic::catch_unwind`] with a snapshot of the
//! [`Program`] (and of the in-progress [`CompileReport`]) taken first, and
//! the IR is re-validated at every stage boundary. A stage that panics,
//! returns an error, or leaves ill-formed IR is *rolled back*: the snapshot
//! is restored, a structured diagnostic is recorded in the report, and the
//! remaining passes still run. The worst case is a degraded compile — fewer
//! loops parallelized — never an ill-formed program and never an aborted
//! compiler.
//!
//! [`FaultPlan`] provides deterministic fault injection ("panic in pass X
//! on unit Y") so every rollback path is testable; the benchmark fault
//! sweep and the differential fuzz harness drive it.

use crate::{constprop, dce, deps, idxprop, induction, inline, normalize, reduction};
use crate::{CompileReport, DdStats, PassOptions};
use polaris_ir::error::Result;
use polaris_ir::Program;
use polaris_obs::{Counter, Recorder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Names of the standard pipeline stages, in execution order. These are the
/// strings [`FaultPlan`] and `polarisc --diag` refer to.
pub const STAGE_NAMES: [&str; 12] = [
    "inline",
    "constprop",
    "normalize",
    "induction",
    "constprop-fold",
    "dce",
    "reduction",
    "idxprop",
    "interchange",
    "tile",
    "fuse",
    "analyze",
];

/// What happened to one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageOutcome {
    /// Ran to completion and the result validated.
    Ok,
    /// Disabled by the active [`PassOptions`]; the program was not touched.
    Skipped,
    /// Panicked, errored, or produced ill-formed IR; the pre-stage snapshot
    /// was restored. The payload says why.
    RolledBack { reason: String },
}

/// Per-stage entry in the [`CompileReport`].
#[derive(Debug, Clone)]
pub struct StageReport {
    pub name: &'static str,
    pub outcome: StageOutcome,
    pub duration: Duration,
    /// Statement-count change across the stage (0 for skipped/rolled-back).
    pub ir_delta: i64,
}

impl StageReport {
    pub fn rolled_back(&self) -> bool {
        matches!(self.outcome, StageOutcome::RolledBack { .. })
    }

    pub fn ran_ok(&self) -> bool {
        self.outcome == StageOutcome::Ok
    }
}

/// Deterministic fault injection: make named stages panic or corrupt the
/// IR they produce, optionally only when a given program unit is present.
/// Wired through [`PassOptions`] so rollback paths can be exercised from
/// any entry point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
}

/// How an armed [`FaultPoint`] misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the stage body (caught by `catch_unwind`).
    Panic,
    /// Let the stage complete, then silently damage its output IR — the
    /// post-stage verifier, not the unwinder, must catch this one.
    Corrupt(CorruptKind),
    /// Sleep for this many milliseconds before the stage body runs: a
    /// deterministic stand-in for a pathological unit that blows a wall
    /// deadline. The stage then completes normally; a watchdog firing a
    /// [`CancelToken`] is what turns the stall into a degraded compile.
    Stall(u64),
    /// Make a nest-transformation stage (`interchange`/`tile`/`fuse`)
    /// apply its best **rejected** candidate, certificate and all — the
    /// stage completes and the IR stays well-formed, so only the
    /// `polaris-verify` cert re-prover can catch the lie.
    ForceIllegal,
}

/// The specific IR damage a [`FaultKind::Corrupt`] point inflicts,
/// matched one-to-one to an invariant in
/// [`polaris_ir::validate::INVARIANTS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Give a second loop the [`polaris_ir::stmt::LoopId`] of the first
    /// (violates `loop-id-provenance`).
    DuplicateLoopId,
    /// Drop the symbol-table entry of an assigned array (violates
    /// `symbol-use`).
    DanglingSymbol,
    /// Flip a scalar arithmetic assignment target to LOGICAL (violates
    /// `type-agreement`).
    TypePun,
}

impl CorruptKind {
    /// All corruption kinds, for sweep-style tests.
    pub const ALL: [CorruptKind; 3] =
        [CorruptKind::DuplicateLoopId, CorruptKind::DanglingSymbol, CorruptKind::TypePun];
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPoint {
    /// Stage name, one of [`STAGE_NAMES`].
    pub stage: String,
    /// Restrict the fault to programs containing this unit (case-insensitive).
    pub unit: Option<String>,
    /// What the fault does when it fires.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// No injected faults (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Panic when `stage` runs.
    pub fn panic_in(stage: impl Into<String>) -> FaultPlan {
        FaultPlan {
            points: vec![FaultPoint { stage: stage.into(), unit: None, kind: FaultKind::Panic }],
        }
    }

    /// Panic when `stage` runs on a program containing `unit`.
    pub fn panic_in_unit(stage: impl Into<String>, unit: impl Into<String>) -> FaultPlan {
        FaultPlan {
            points: vec![FaultPoint {
                stage: stage.into(),
                unit: Some(unit.into()),
                kind: FaultKind::Panic,
            }],
        }
    }

    /// Corrupt the IR after `stage` completes (the stage itself succeeds;
    /// the post-stage invariant check must detect the damage).
    pub fn corrupt_in(stage: impl Into<String>, kind: CorruptKind) -> FaultPlan {
        FaultPlan {
            points: vec![FaultPoint {
                stage: stage.into(),
                unit: None,
                kind: FaultKind::Corrupt(kind),
            }],
        }
    }

    /// Stall for `millis` before `stage` runs (deterministic deadline blow).
    pub fn stall_in(stage: impl Into<String>, millis: u64) -> FaultPlan {
        FaultPlan {
            points: vec![FaultPoint {
                stage: stage.into(),
                unit: None,
                kind: FaultKind::Stall(millis),
            }],
        }
    }

    /// Force a nest-transformation stage to apply an illegal candidate.
    pub fn force_in(stage: impl Into<String>) -> FaultPlan {
        FaultPlan {
            points: vec![FaultPoint {
                stage: stage.into(),
                unit: None,
                kind: FaultKind::ForceIllegal,
            }],
        }
    }

    /// Add an arbitrary fault point.
    pub fn and_point(mut self, point: FaultPoint) -> FaultPlan {
        self.points.push(point);
        self
    }

    /// Add a further fault point.
    pub fn and_panic_in(mut self, stage: impl Into<String>) -> FaultPlan {
        self.points.push(FaultPoint { stage: stage.into(), unit: None, kind: FaultKind::Panic });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The fault point armed for this stage on this program, if any.
    pub fn armed_for(&self, stage: &str, program: &Program) -> Option<&FaultPoint> {
        self.points.iter().find(|p| {
            p.stage == stage
                && p.unit.as_deref().is_none_or(|u| {
                    program.units.iter().any(|pu| pu.name.eq_ignore_ascii_case(u))
                })
        })
    }

    /// Fire the point armed for this stage, if any: a [`FaultKind::Panic`]
    /// point panics (called inside the pipeline's `catch_unwind` region,
    /// so the panic becomes a rollback); a [`FaultKind::Stall`] point
    /// sleeps, simulating a pathological stage a deadline watchdog must
    /// cancel around.
    pub fn fire(&self, stage: &str, program: &Program) {
        if let Some(point) = self.armed_for(stage, program) {
            match point.kind {
                FaultKind::Corrupt(_) | FaultKind::ForceIllegal => {}
                FaultKind::Stall(millis) => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                FaultKind::Panic => match &point.unit {
                    Some(unit) => panic!("injected fault: stage `{stage}` on unit `{unit}`"),
                    None => panic!("injected fault: stage `{stage}`"),
                },
            }
        }
    }

    /// Is a [`FaultKind::ForceIllegal`] point armed for this stage? The
    /// nest-transformation stage bodies query this to apply a rejected
    /// candidate instead of refusing it.
    pub fn forces_illegal(&self, stage: &str, program: &Program) -> bool {
        matches!(
            self.armed_for(stage, program),
            Some(FaultPoint { kind: FaultKind::ForceIllegal, .. })
        )
    }

    /// Apply an armed [`FaultKind::Corrupt`] point's damage to the IR.
    /// Called after the stage body succeeds, still inside the guarded
    /// region, so the post-stage verifier is what must notice.
    pub fn corrupt_after(&self, stage: &str, program: &mut Program) {
        let kind = match self.armed_for(stage, program) {
            Some(FaultPoint { kind: FaultKind::Corrupt(k), .. }) => *k,
            _ => return,
        };
        apply_corruption(kind, program);
    }
}

/// Inflict `kind`'s damage on the first eligible site in the program.
/// No-op when no site qualifies (e.g. fewer than two loops for
/// [`CorruptKind::DuplicateLoopId`]).
fn apply_corruption(kind: CorruptKind, program: &mut Program) {
    use polaris_ir::expr::{Expr, LValue};
    use polaris_ir::stmt::StmtKind;
    use polaris_ir::types::DataType;
    match kind {
        CorruptKind::DuplicateLoopId => {
            for unit in &mut program.units {
                let mut first = None;
                let mut done = false;
                unit.body.walk_mut(&mut |s| {
                    if done {
                        return;
                    }
                    if let Some(d) = s.as_do_mut() {
                        match first {
                            None => first = Some(d.loop_id),
                            Some(id) => {
                                d.loop_id = id;
                                done = true;
                            }
                        }
                    }
                });
                if done {
                    return;
                }
            }
        }
        CorruptKind::DanglingSymbol => {
            for unit in &mut program.units {
                let mut victim = None;
                unit.body.walk(&mut |s| {
                    if victim.is_none() {
                        if let StmtKind::Assign { lhs: LValue::Index { array, .. }, .. } = &s.kind {
                            victim = Some(array.clone());
                        }
                    }
                });
                if let Some(name) = victim {
                    unit.symbols.remove(&name);
                    return;
                }
            }
        }
        CorruptKind::TypePun => {
            for unit in &mut program.units {
                let mut victim = None;
                unit.body.walk(&mut |s| {
                    if victim.is_none() {
                        if let StmtKind::Assign { lhs: LValue::Var(name), rhs, .. } = &s.kind {
                            let arithmetic_rhs = matches!(rhs, Expr::Int(_) | Expr::Real(_))
                                || matches!(rhs, Expr::Bin { op, .. } if op.is_arithmetic());
                            let scalar_arith = unit
                                .symbols
                                .get(name)
                                .is_some_and(|sym| sym.rank() == 0 && sym.ty != DataType::Logical);
                            if arithmetic_rhs && scalar_arith {
                                victim = Some(name.clone());
                            }
                        }
                    }
                });
                if let Some(name) = victim {
                    if let Some(sym) = unit.symbols.get_mut(&name) {
                        sym.ty = DataType::Logical;
                    }
                    return;
                }
            }
        }
    }
}

/// Cooperative cancellation for an in-flight compile. Cloned handles share
/// one flag; any holder (typically a deadline watchdog on another thread)
/// can [`cancel`](CancelToken::cancel) it, and the pipeline checks the flag
/// at every stage boundary. Cancellation is *cooperative*: the stage that
/// is currently running finishes (or rolls back) normally, and every stage
/// not yet started reports [`StageOutcome::RolledBack`] with a
/// `cancelled: …` reason — the program stays well-formed and the compile
/// classifies as degraded, never as a hang or an abort.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: std::sync::Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: std::sync::atomic::AtomicBool,
    reason: std::sync::Mutex<Option<String>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. The first caller's reason wins; later calls
    /// are no-ops.
    pub fn cancel(&self, reason: impl Into<String>) {
        let mut slot = match self.inner.reason.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if !self.inner.cancelled.swap(true, std::sync::atomic::Ordering::SeqCst) {
            *slot = Some(reason.into());
        }
    }

    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// The first cancellation reason, if cancelled.
    pub fn reason(&self) -> Option<String> {
        match self.inner.reason.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }
}

/// Prefix of the rollback reason recorded for stages skipped by a
/// [`CancelToken`]; callers classify deadline-degraded compiles by it.
pub const CANCELLED_PREFIX: &str = "cancelled: ";

type StageFn = fn(&mut Program, &PassOptions, &mut CompileReport, &Recorder) -> Result<()>;

struct Stage {
    name: &'static str,
    enabled: bool,
    run: StageFn,
}

/// The fault-isolating pass driver. See the module docs for the contract.
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// The standard restructuring pipeline, with stages enabled according
    /// to `opts` (same pass order `compile` has always used).
    pub fn standard(opts: &PassOptions) -> Pipeline {
        Pipeline {
            stages: vec![
                Stage { name: "inline", enabled: opts.inline, run: stage_inline },
                Stage { name: "constprop", enabled: opts.constprop, run: stage_constprop },
                Stage { name: "normalize", enabled: opts.normalize, run: stage_normalize },
                Stage { name: "induction", enabled: true, run: stage_induction },
                Stage { name: "constprop-fold", enabled: opts.constprop, run: stage_constprop_fold },
                Stage { name: "dce", enabled: opts.dce, run: stage_dce },
                Stage { name: "reduction", enabled: opts.reductions, run: stage_reduction },
                Stage { name: "idxprop", enabled: opts.index_props, run: stage_idxprop },
                Stage { name: "interchange", enabled: opts.nest_interchange, run: stage_interchange },
                Stage { name: "tile", enabled: opts.nest_tiling, run: stage_tile },
                Stage { name: "fuse", enabled: opts.nest_fusion, run: stage_fuse },
                Stage { name: "analyze", enabled: true, run: stage_analyze },
            ],
        }
    }

    /// Run every stage in place over `program`.
    ///
    /// The input must be well-formed — an invalid *input* is the caller's
    /// bug and reports as a hard error. After that, per-stage failures are
    /// contained: snapshot, run under `catch_unwind`, validate, and roll
    /// back on any misbehaviour, then continue with the remaining stages.
    pub fn run(&self, program: &mut Program, opts: &PassOptions) -> Result<CompileReport> {
        self.run_recorded(program, opts, &Recorder::disabled())
    }

    /// [`Pipeline::run`] with an observability [`Recorder`] attached: a
    /// `compile` root span encloses one `pass:<name>` span per enabled
    /// stage, and the report's counters are mirrored into the recorder
    /// after the last stage. With `Recorder::disabled()` (what `run`
    /// passes) every hook is a no-op.
    pub fn run_recorded(
        &self,
        program: &mut Program,
        opts: &PassOptions,
        rec: &Recorder,
    ) -> Result<CompileReport> {
        self.run_cancellable(program, opts, rec, &CancelToken::new())
    }

    /// [`Pipeline::run_recorded`] with a [`CancelToken`] checked at every
    /// stage boundary. Once the token fires, each remaining enabled stage
    /// is recorded as `RolledBack` with reason
    /// `cancelled: <token reason>` and the program is left exactly as the
    /// last completed stage produced it (still validated, still
    /// well-formed). This is the hook `polarisd`'s deadline watchdog uses.
    pub fn run_cancellable(
        &self,
        program: &mut Program,
        opts: &PassOptions,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> Result<CompileReport> {
        polaris_ir::validate::validate_program(program)?;
        let mut report = CompileReport::default();
        let compile_span = rec.span("compile", "compile");
        // Verify statistics live outside `report` while the loop runs: a
        // rollback restores the report snapshot, and the check that
        // *caused* the rollback must still be counted.
        let mut verify = VerifyStats::default();

        for stage in &self.stages {
            if stage.enabled && cancel.is_cancelled() {
                let why = cancel.reason().unwrap_or_else(|| "cancelled".into());
                report.stages.push(StageReport {
                    name: stage.name,
                    outcome: StageOutcome::RolledBack {
                        reason: format!("{CANCELLED_PREFIX}{why}"),
                    },
                    duration: Duration::ZERO,
                    ir_delta: 0,
                });
                continue;
            }
            if !stage.enabled {
                report.stages.push(StageReport {
                    name: stage.name,
                    outcome: StageOutcome::Skipped,
                    duration: Duration::ZERO,
                    ir_delta: 0,
                });
                continue;
            }

            let program_snapshot = program.clone();
            let report_snapshot = report.clone();
            let size_before = ir_size(program);
            let stage_span = rec.span("compile", format!("pass:{}", stage.name));
            let started = Instant::now();

            let run_result = with_silent_panics(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    opts.faults.fire(stage.name, program);
                    let out = (stage.run)(program, opts, &mut report, rec);
                    if out.is_ok() {
                        opts.faults.corrupt_after(stage.name, program);
                    }
                    out
                }))
            });
            let duration = started.elapsed();
            stage_span.end();

            let failure = match run_result {
                Ok(Ok(())) => check_stage_output(stage.name, program, rec, &mut verify),
                Ok(Err(e)) => Some(format!("pass error: {e}")),
                Err(payload) => Some(format!("panic: {}", panic_message(payload.as_ref()))),
            };

            match failure {
                None => {
                    report.stages.push(StageReport {
                        name: stage.name,
                        outcome: StageOutcome::Ok,
                        duration,
                        ir_delta: ir_size(program) as i64 - size_before as i64,
                    });
                }
                Some(reason) => {
                    *program = program_snapshot;
                    report = report_snapshot;
                    report.stages.push(StageReport {
                        name: stage.name,
                        outcome: StageOutcome::RolledBack { reason },
                        duration,
                        ir_delta: 0,
                    });
                }
            }
        }

        report.verify = verify;
        record_compile_counters(rec, program, &report);
        compile_span.end();
        Ok(report)
    }
}

/// What the inter-pass verifier did over one compile: how many invariant
/// checks ran (one per invariant in
/// [`polaris_ir::validate::INVARIANTS`] per verified stage boundary) and
/// how many violations were caught (each one names a stage and triggers
/// its rollback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyStats {
    pub invariants_checked: u64,
    pub violations: u64,
}

/// Run the full invariant set over the IR a stage just produced. Returns
/// the rollback reason when the IR is ill-formed, naming the violated
/// invariant. The checker itself runs under `catch_unwind`: corrupt IR
/// could make the structural walks (e.g. CFG construction) panic, and a
/// verifier crash on damaged input is itself proof of damage, not a
/// reason to abort the compile.
fn check_stage_output(
    stage: &str,
    program: &Program,
    rec: &Recorder,
    verify: &mut VerifyStats,
) -> Option<String> {
    let span = rec.span("verify", format!("verify:{stage}"));
    let outcome = with_silent_panics(|| {
        catch_unwind(AssertUnwindSafe(|| polaris_ir::validate::check_program(program)))
    });
    span.end();
    verify.invariants_checked += polaris_ir::validate::INVARIANTS.len() as u64;
    match outcome {
        Ok(violations) if violations.is_empty() => None,
        Ok(violations) => {
            verify.violations += violations.len() as u64;
            Some(format!("post-stage validation failed: {}", violations[0]))
        }
        Err(payload) => {
            verify.violations += 1;
            Some(format!(
                "post-stage validation failed: verifier panicked: {}",
                panic_message(payload.as_ref())
            ))
        }
    }
}

/// Mirror the final [`CompileReport`] into the recorder's typed counters
/// so the metrics document and the report can never disagree. The
/// compile-side loop partition is exclusive — speculative, else parallel,
/// else serial — and always sums to `compile.loops.total`.
fn record_compile_counters(rec: &Recorder, program: &Program, report: &CompileReport) {
    if !rec.is_enabled() {
        return;
    }
    rec.count(Counter::InlineSplices, report.inline.call_sites_expanded as u64);
    rec.count(
        Counter::InductionSubstitutions,
        (report.induction.additive_removed + report.induction.multiplicative_removed) as u64,
    );
    rec.count(Counter::ReductionsRecognized, report.reductions_flagged as u64);

    let (banerjee, gcd, probes, perms) = report.dd_counters;
    rec.count(Counter::BanerjeeVectors, banerjee);
    rec.count(Counter::GcdTests, gcd);
    rec.count(Counter::RangeProbes, probes);
    rec.count(Counter::PermutationsUsed, perms);
    let (run, proved, disproved, abstained) = report.dd_range;
    rec.count(Counter::RangeTestsRun, run);
    rec.count(Counter::RangeProved, proved);
    rec.count(Counter::RangeDisproved, disproved);
    rec.count(Counter::RangeAbstained, abstained);
    rec.count(Counter::RangesPropagated, report.ranges_propagated);
    rec.count(Counter::IdxPropsProved, report.idxprop.proved as u64);
    let (props_run, props_proved) = report.dd_props;
    rec.count(Counter::PropsTestsRun, props_run);
    rec.count(Counter::PropsProved, props_proved);

    let mut parallel = 0u64;
    let mut speculative = 0u64;
    let mut serial = 0u64;
    let mut arrays_privatized = 0u64;
    for lr in &report.loops {
        if lr.speculative {
            speculative += 1;
        } else if lr.parallel {
            parallel += 1;
        } else {
            serial += 1;
        }
        if let Some(unit) = program.units.iter().find(|u| u.name == lr.unit) {
            arrays_privatized += lr
                .private
                .iter()
                .filter(|name| unit.symbols.get(name).is_some_and(|s| s.rank() > 0))
                .count() as u64;
        }
    }
    rec.count(Counter::CompileLoopsParallel, parallel);
    rec.count(Counter::CompileLoopsSpeculative, speculative);
    rec.count(Counter::CompileLoopsSerial, serial);
    rec.count(Counter::CompileLoopsTotal, report.loops.len() as u64);
    rec.count(Counter::ArraysPrivatized, arrays_privatized);

    rec.count(Counter::VerifyInvariantChecks, report.verify.invariants_checked);
    rec.count(Counter::VerifyInvariantViolations, report.verify.violations);
}

thread_local! {
    static SILENCE_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}
static PANIC_HOOK: std::sync::Once = std::sync::Once::new();

/// Run `f` with the default panic hook muted *on this thread only*: a
/// stage panic is a contained, reported event (it becomes a
/// `RolledBack` outcome), so the hook's "thread panicked" banner and
/// backtrace are pure noise. Panics on other threads — including
/// genuine test failures running concurrently — still print normally,
/// because the installed hook defers to the previous one unless the
/// current thread is inside this guard.
fn with_silent_panics<T>(f: impl FnOnce() -> T) -> T {
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCE_PANICS.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
    SILENCE_PANICS.with(|s| s.set(true));
    let out = f();
    SILENCE_PANICS.with(|s| s.set(false));
    out
}

/// Total statement count across all units — the size metric behind
/// [`StageReport::ir_delta`].
pub fn ir_size(program: &Program) -> usize {
    let mut n = 0usize;
    for unit in &program.units {
        unit.body.walk(&mut |_| n += 1);
    }
    n
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn stage_inline(program: &mut Program, _opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    report.inline = inline::inline_all(program)?;
    Ok(())
}

fn stage_constprop(program: &mut Program, _opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    report.constprop = constprop::run(program);
    Ok(())
}

fn stage_normalize(program: &mut Program, _opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    report.normalize = normalize::run(program);
    Ok(())
}

fn stage_induction(program: &mut Program, opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    report.induction = induction::run_with(program, opts.induction);
    Ok(())
}

fn stage_constprop_fold(program: &mut Program, _opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    // fold induction entry values (K = 0) into the closed forms
    let more = constprop::run(program);
    report.constprop.parameters_folded += more.parameters_folded;
    report.constprop.constants_propagated += more.constants_propagated;
    Ok(())
}

fn stage_dce(program: &mut Program, _opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    report.dce = dce::run(program);
    Ok(())
}

fn stage_reduction(program: &mut Program, _opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    report.reductions_flagged = reduction::flag_reductions(program);
    Ok(())
}

fn stage_idxprop(program: &mut Program, _opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    report.idxprop = idxprop::annotate(program);
    Ok(())
}

fn stage_interchange(program: &mut Program, opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    let stats = DdStats::new();
    let forced = opts.faults.forces_illegal("interchange", program);
    for unit in &mut program.units {
        crate::nestdeps::interchange_unit(unit, &stats, forced, &mut report.nest);
    }
    Ok(())
}

fn stage_tile(program: &mut Program, opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    let stats = DdStats::new();
    let forced = opts.faults.forces_illegal("tile", program);
    for unit in &mut program.units {
        crate::nestdeps::tile_unit(unit, &stats, forced, &mut report.nest);
    }
    Ok(())
}

fn stage_fuse(program: &mut Program, opts: &PassOptions, report: &mut CompileReport, _rec: &Recorder) -> Result<()> {
    let stats = DdStats::new();
    let forced = opts.faults.forces_illegal("fuse", program);
    for unit in &mut program.units {
        crate::nestdeps::fuse_unit(unit, &stats, forced, &mut report.nest);
    }
    Ok(())
}

fn stage_analyze(
    program: &mut Program,
    opts: &PassOptions,
    report: &mut CompileReport,
    rec: &Recorder,
) -> Result<()> {
    let stats = DdStats::new();
    let mut loops = Vec::new();
    if opts.inline {
        // Analyze only the call-free main unit; callees survive for
        // selective code generation but are not reported. (If the inline
        // stage itself was rolled back, main may still contain CALLs — the
        // dependence driver then conservatively serializes those loops.)
        if let Some(main) = program.main_mut() {
            loops.extend(deps::analyze_unit_recorded(main, opts, &stats, rec));
        }
    } else {
        for unit in &mut program.units {
            loops.extend(deps::analyze_unit_recorded(unit, opts, &stats, rec));
        }
    }
    report.loops = loops;
    report.dd_counters = stats.snapshot();
    report.dd_range = stats.range_outcomes();
    report.ranges_propagated = stats.ranges_propagated.get();
    report.dd_props = stats.props_outcomes();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_compile;

    const TRFD: &str = "program trfd\n\
                        real a(100000)\n\
                        integer x, x0\n\
                        !$assert (n >= 1)\n\
                        x0 = 0\n\
                        do i = 0, m - 1\n\
                        \x20 x = x0\n\
                        \x20 do j = 0, n - 1\n\
                        \x20   do k = 0, j - 1\n\
                        \x20     x = x + 1\n\
                        \x20     a(x) = 1.0\n\
                        \x20   end do\n\
                        \x20 end do\n\
                        \x20 x0 = x0 + (n**2 + n)/2\n\
                        end do\n\
                        end\n";

    #[test]
    fn clean_compile_reports_every_stage_ok() {
        let (program, report) =
            parse_and_compile(TRFD, &PassOptions::polaris()).unwrap();
        assert_eq!(report.stages.len(), STAGE_NAMES.len());
        for (stage, name) in report.stages.iter().zip(STAGE_NAMES) {
            assert_eq!(stage.name, name);
            assert!(stage.ran_ok(), "{stage:?}");
        }
        assert!(!report.degraded());
        polaris_ir::validate::validate_program(&program).unwrap();
        // Every enabled stage boundary ran the full invariant set.
        assert_eq!(
            report.verify.invariants_checked,
            (STAGE_NAMES.len() * polaris_ir::validate::INVARIANTS.len()) as u64,
        );
        assert_eq!(report.verify.violations, 0);
    }

    /// A source where every [`CorruptKind`] finds a target after every
    /// stage: two live loops (ids to duplicate), an array store that is
    /// later read (symbol to dangle), and a live scalar assignment with
    /// a literal rhs (type to pun). The loops have different bounds on
    /// purpose: conformable loops would legitimately fuse in the `fuse`
    /// stage, leaving [`CorruptKind::DuplicateLoopId`] without a second
    /// loop to damage.
    const TWO_LOOPS: &str = "program t\n\
                             real v(1000)\n\
                             s = 0.0\n\
                             do i = 1, 1000\n\
                             \x20 v(i) = i * 2.0\n\
                             end do\n\
                             do i = 1, 999\n\
                             \x20 s = s + v(i)\n\
                             end do\n\
                             print *, s\n\
                             end\n";

    #[test]
    fn corruption_after_any_stage_is_caught_attributed_and_rolled_back() {
        for kind in CorruptKind::ALL {
            for stage in STAGE_NAMES {
                let opts =
                    PassOptions::polaris().with_faults(FaultPlan::corrupt_in(stage, kind));
                let (program, report) = parse_and_compile(TWO_LOOPS, &opts)
                    .unwrap_or_else(|e| panic!("{kind:?} in `{stage}` aborted: {e}"));
                let sr = report.stage(stage).unwrap();
                match &sr.outcome {
                    StageOutcome::RolledBack { reason } => assert!(
                        reason.contains("post-stage validation failed: invariant"),
                        "{kind:?} in `{stage}`: {reason}"
                    ),
                    other => panic!("{kind:?} in `{stage}`: expected rollback, got {other:?}"),
                }
                assert!(report.verify.violations > 0, "{kind:?} in `{stage}`");
                assert_eq!(report.rolled_back_stages(), vec![stage]);
                polaris_ir::validate::validate_program(&program).unwrap_or_else(|e| {
                    panic!("ill-formed output after {kind:?} in `{stage}`: {e}")
                });
            }
        }
    }

    #[test]
    fn corruption_rollback_names_the_violated_invariant() {
        for (kind, invariant) in [
            (CorruptKind::DuplicateLoopId, "loop-id-provenance"),
            (CorruptKind::DanglingSymbol, "symbol-use"),
            (CorruptKind::TypePun, "type-agreement"),
        ] {
            let opts = PassOptions::polaris().with_faults(FaultPlan::corrupt_in("dce", kind));
            let (_, report) = parse_and_compile(TWO_LOOPS, &opts).unwrap();
            match &report.stage("dce").unwrap().outcome {
                StageOutcome::RolledBack { reason } => assert!(
                    reason.contains(&format!("invariant `{invariant}`")),
                    "{kind:?}: {reason}"
                ),
                other => panic!("{kind:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn injected_panic_rolls_back_and_remaining_passes_still_parallelize_trfd() {
        let opts = PassOptions::polaris().with_faults(FaultPlan::panic_in("dce"));
        let (program, report) = parse_and_compile(TRFD, &opts).unwrap();
        let dce = report.stage("dce").unwrap();
        assert!(dce.rolled_back(), "{dce:?}");
        match &dce.outcome {
            StageOutcome::RolledBack { reason } => {
                assert!(reason.contains("injected fault"), "{reason}")
            }
            other => panic!("{other:?}"),
        }
        assert!(report.degraded());
        assert_eq!(report.rolled_back_stages(), vec!["dce"]);
        // The paper's headline result must survive the dead stage: all
        // three TRFD loops still come out parallel.
        assert_eq!(report.parallel_loops(), 3, "{:#?}", report.loops);
        polaris_ir::validate::validate_program(&program).unwrap();
    }

    #[test]
    fn every_stage_fault_degrades_but_never_aborts() {
        for stage in STAGE_NAMES {
            let opts = PassOptions::polaris().with_faults(FaultPlan::panic_in(stage));
            let (program, report) = parse_and_compile(TRFD, &opts)
                .unwrap_or_else(|e| panic!("compile aborted with fault in `{stage}`: {e}"));
            assert!(
                report.stage(stage).unwrap().rolled_back(),
                "fault in `{stage}` did not roll back"
            );
            polaris_ir::validate::validate_program(&program)
                .unwrap_or_else(|e| panic!("ill-formed output with fault in `{stage}`: {e}"));
        }
    }

    #[test]
    fn disabled_stages_are_skipped_and_faults_there_never_fire() {
        // VFA disables inlining; a fault planted in the inline stage must
        // be unreachable.
        let opts = PassOptions::vfa().with_faults(FaultPlan::panic_in("inline"));
        let (_, report) = parse_and_compile(TRFD, &opts).unwrap();
        assert_eq!(report.stage("inline").unwrap().outcome, StageOutcome::Skipped);
        assert!(!report.degraded());
    }

    #[test]
    fn unit_scoped_faults_fire_only_on_matching_programs() {
        let opts = PassOptions::polaris()
            .with_faults(FaultPlan::panic_in_unit("constprop", "ELSEWHERE"));
        let (_, report) = parse_and_compile(TRFD, &opts).unwrap();
        assert!(!report.degraded(), "fault for an absent unit fired");

        let opts = PassOptions::polaris()
            .with_faults(FaultPlan::panic_in_unit("constprop", "trfd"));
        let (_, report) = parse_and_compile(TRFD, &opts).unwrap();
        assert_eq!(report.rolled_back_stages(), vec!["constprop"]);
    }

    #[test]
    fn stage_that_leaves_ill_formed_ir_is_rolled_back() {
        // A custom pipeline whose middle stage corrupts the IR (arguments
        // on a PROGRAM unit are rejected by the validator).
        fn corrupt(program: &mut Program, _: &PassOptions, _: &mut CompileReport, _: &Recorder) -> Result<()> {
            program.units[0].args.push("BOGUS".into());
            Ok(())
        }
        let pipeline = Pipeline {
            stages: vec![
                Stage { name: "constprop", enabled: true, run: stage_constprop },
                Stage { name: "induction", enabled: true, run: corrupt },
                Stage { name: "analyze", enabled: true, run: stage_analyze },
            ],
        };
        let mut program = polaris_ir::parse(TRFD).unwrap();
        let report = pipeline.run(&mut program, &PassOptions::polaris()).unwrap();
        let bad = report.stage("induction").unwrap();
        match &bad.outcome {
            StageOutcome::RolledBack { reason } => {
                assert!(reason.contains("validation failed"), "{reason}")
            }
            other => panic!("expected rollback, got {other:?}"),
        }
        assert_eq!(bad.ir_delta, 0);
        polaris_ir::validate::validate_program(&program).unwrap();
        // the later analyze stage still ran on the restored program
        assert!(report.stage("analyze").unwrap().ran_ok());
    }

    #[test]
    fn ir_delta_tracks_statement_growth() {
        // Inlining a callee into main grows the statement count.
        let src = "program t\n\
                   real v(1000)\n\
                   call fill(v, 1000)\n\
                   print *, v(1)\n\
                   end\n\
                   subroutine fill(a, n)\n\
                   real a(n)\n\
                   integer n\n\
                   do i = 1, n\n\
                   \x20 a(i) = i * 2.0\n\
                   end do\n\
                   end\n";
        let (_, report) = parse_and_compile(src, &PassOptions::polaris()).unwrap();
        assert!(report.stage("inline").unwrap().ir_delta > 0, "{:?}", report.stages);
    }

    /// `armed_for` must match stage names *exactly* — the table contains
    /// the prefix pair `constprop` / `constprop-fold`, so a
    /// substring/prefix comparison would arm the wrong stage.
    #[test]
    fn armed_for_matches_every_stage_name_exactly() {
        let program = polaris_ir::parse(TRFD).unwrap();
        for armed in STAGE_NAMES {
            let plan = FaultPlan::panic_in(armed);
            for probe in STAGE_NAMES {
                assert_eq!(
                    plan.armed_for(probe, &program).is_some(),
                    probe == armed,
                    "plan for `{armed}` wrongly armed (or not armed) at `{probe}`"
                );
            }
        }
    }

    /// After any single-stage rollback the LoopId provenance invariants
    /// must hold: ids stay unique per unit (the oracle's join key) and
    /// every per-loop verdict in the report references a loop that
    /// actually exists in the surviving program — a stale id would make
    /// the run-time oracle silently drop the claim.
    #[test]
    fn rollback_preserves_loop_id_provenance_for_every_stage() {
        // A caller/callee pair: the inline stage splices the callee loop
        // into main under a *fresh* id, which is exactly the path that
        // could leave duplicates or dangling references when unwound.
        let src = "program t\n\
                   real v(1000)\n\
                   s = 0.0\n\
                   call fill(v, 1000)\n\
                   do i = 1, 1000\n\
                   \x20 s = s + v(i)\n\
                   end do\n\
                   print *, s\n\
                   end\n\
                   subroutine fill(a, n)\n\
                   real a(n)\n\
                   integer n\n\
                   do i = 1, n\n\
                   \x20 a(i) = i * 2.0\n\
                   end do\n\
                   end\n";
        for stage in STAGE_NAMES {
            let opts = PassOptions::polaris().with_faults(FaultPlan::panic_in(stage));
            let (program, report) = parse_and_compile(src, &opts)
                .unwrap_or_else(|e| panic!("compile aborted with fault in `{stage}`: {e}"));
            assert!(
                report.stage(stage).unwrap().rolled_back(),
                "fault in `{stage}` did not roll back"
            );
            for unit in &program.units {
                let mut seen = std::collections::BTreeSet::new();
                unit.body.walk(&mut |s| {
                    if let Some(d) = s.as_do() {
                        assert!(
                            seen.insert(d.loop_id),
                            "duplicate loop id {} in unit {} after `{stage}` rollback",
                            d.loop_id,
                            unit.name
                        );
                    }
                });
            }
            for lr in &report.loops {
                let unit = program
                    .units
                    .iter()
                    .find(|u| u.name == lr.unit)
                    .unwrap_or_else(|| panic!("report names missing unit {}", lr.unit));
                assert!(
                    unit.body.loops().iter().any(|d| d.loop_id == lr.loop_id),
                    "report references stale loop id {} ({}) after `{stage}` rollback",
                    lr.loop_id,
                    lr.label
                );
            }
        }
    }

    #[test]
    fn fault_plan_builder_and_queries() {
        let plan = FaultPlan::panic_in("dce").and_panic_in("analyze");
        assert!(!plan.is_empty());
        let program = polaris_ir::parse(TRFD).unwrap();
        assert!(plan.armed_for("dce", &program).is_some());
        assert!(plan.armed_for("analyze", &program).is_some());
        assert!(plan.armed_for("inline", &program).is_none());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn pre_cancelled_token_rolls_back_every_enabled_stage() {
        let cancel = CancelToken::new();
        cancel.cancel("deadline exceeded before start");
        assert!(cancel.is_cancelled());
        let mut program = polaris_ir::parse(TRFD).unwrap();
        let opts = PassOptions::polaris();
        let report = Pipeline::standard(&opts)
            .run_cancellable(&mut program, &opts, &polaris_obs::Recorder::disabled(), &cancel)
            .unwrap();
        assert_eq!(report.stages.len(), STAGE_NAMES.len());
        for sr in &report.stages {
            match &sr.outcome {
                StageOutcome::RolledBack { reason } => {
                    assert!(reason.starts_with(CANCELLED_PREFIX), "{reason}");
                    assert!(reason.contains("deadline exceeded"), "{reason}");
                }
                other => panic!("stage `{}` not cancelled: {other:?}", sr.name),
            }
        }
        assert!(report.degraded());
        // The untouched input is still well-formed.
        polaris_ir::validate::validate_program(&program).unwrap();
    }

    #[test]
    fn mid_pipeline_cancel_keeps_completed_stages_and_skips_the_rest() {
        // A watchdog thread fires the token while a stalled stage runs:
        // stages before the stall complete, the stalled stage itself
        // finishes (cancellation is cooperative), and everything after is
        // rolled back as cancelled.
        let cancel = CancelToken::new();
        let watchdog = {
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                cancel.cancel("deadline 20ms exceeded");
            })
        };
        let opts =
            PassOptions::polaris().with_faults(FaultPlan::stall_in("induction", 200));
        let mut program = polaris_ir::parse(TRFD).unwrap();
        let report = Pipeline::standard(&opts)
            .run_cancellable(&mut program, &opts, &polaris_obs::Recorder::disabled(), &cancel)
            .unwrap();
        watchdog.join().unwrap();

        for name in ["inline", "constprop", "normalize", "induction"] {
            assert!(
                !report.stage(name).unwrap().rolled_back(),
                "pre-cancel stage `{name}` should have completed: {:?}",
                report.stage(name).unwrap()
            );
        }
        for name in ["constprop-fold", "dce", "reduction", "analyze"] {
            match &report.stage(name).unwrap().outcome {
                StageOutcome::RolledBack { reason } => {
                    assert!(reason.starts_with(CANCELLED_PREFIX), "{name}: {reason}")
                }
                other => panic!("post-cancel stage `{name}` ran: {other:?}"),
            }
        }
        assert!(report.degraded());
        polaris_ir::validate::validate_program(&program).unwrap();
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let cancel = CancelToken::new();
        let mut program = polaris_ir::parse(TRFD).unwrap();
        let opts = PassOptions::polaris();
        let report = Pipeline::standard(&opts)
            .run_cancellable(&mut program, &opts, &polaris_obs::Recorder::disabled(), &cancel)
            .unwrap();
        assert!(!report.degraded());
        assert_eq!(report.parallel_loops(), 3);
        assert_eq!(cancel.reason(), None);
    }

    #[test]
    fn cancel_first_reason_wins() {
        let cancel = CancelToken::new();
        cancel.cancel("first");
        cancel.cancel("second");
        assert_eq!(cancel.reason().as_deref(), Some("first"));
    }
}

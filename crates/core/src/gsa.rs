//! Gated-SSA–based demand-driven symbolic analysis (§3.4, after Tu &
//! Padua's ICS'95 paper the text cites).
//!
//! "In GSA form, the value of a symbolic variable is represented by a
//! symbolic expression involving other symbolic variables, constants,
//! and *gating functions*." This module answers the demand-driven query
//! the paper describes: *what is the symbolic value of variable `v` just
//! before statement `s`?* — walking **backward from use to definition**
//! and materializing gating functions at joins:
//!
//! * a γ (gamma) value captures an IF join with the governing condition,
//! * a μ (mu) value captures a loop header (the value may come from a
//!   previous iteration),
//! * `Entry` marks values flowing in from outside the unit.
//!
//! [`resolve`] then performs the paper's backward substitution: scalar
//! uses are replaced by their defining expressions while the definitions
//! are unconditional; γ nodes with structurally equal arms collapse
//! (the classic GSA simplification); anything else stops the chase. The
//! Figure 4 proof (`MP ≥ M*P`) falls out in one substitution step, just
//! as in the paper: "the algorithm starts at loop J and
//! backward-substitutes MP with M*P ... Because the goal is satisfied,
//! the algorithm stops".
//!
//! The production pipeline reaches the same facts through flow-sensitive
//! range propagation (cheaper for its query mix); this engine serves
//! queries that need the *structure* of a value — e.g. collapsing
//! both-branches-equal conditionals — and documents the §3.4 machinery
//! faithfully.

use polaris_ir::expr::Expr;
use polaris_ir::stmt::{Stmt, StmtId, StmtKind, StmtList};
use polaris_ir::ProgramUnit;

/// The symbolic value of a scalar at a program point.
#[derive(Debug, Clone, PartialEq)]
pub enum GsaValue {
    /// Defined by this expression (uses refer to values *before* the
    /// defining statement).
    Def(Expr),
    /// γ(cond, v_then, v_else): an IF join.
    Gamma { cond: Expr, then: Box<GsaValue>, els: Box<GsaValue> },
    /// μ: defined inside an enclosing loop's earlier iteration — unknown
    /// without fixpoint reasoning (the induction pass handles the
    /// closed-formable cases).
    Mu,
    /// Flows in from the unit entry (arguments, COMMON, uninitialized).
    Entry,
}

impl GsaValue {
    /// Collapse γ nodes whose arms are structurally equal — the gating
    /// function is then irrelevant.
    pub fn simplified(self) -> GsaValue {
        match self {
            GsaValue::Gamma { cond, then, els } => {
                let t = then.simplified();
                let e = els.simplified();
                if t == e {
                    t
                } else {
                    GsaValue::Gamma { cond, then: Box::new(t), els: Box::new(e) }
                }
            }
            other => other,
        }
    }

    /// The definite expression, if the value is unconditional.
    pub fn as_expr(&self) -> Option<&Expr> {
        match self {
            GsaValue::Def(e) => Some(e),
            _ => None,
        }
    }
}

/// The symbolic value of scalar `var` *just before* statement `target`.
pub fn value_before(unit: &ProgramUnit, target: StmtId, var: &str) -> GsaValue {
    let var = var.to_ascii_uppercase();
    match scan_list(&unit.body, target, &var) {
        Scan::Found(v) => v.simplified(),
        Scan::NotSeen(reaching) => match reaching {
            Some(v) => v.simplified(),
            None => GsaValue::Entry,
        },
    }
}

/// Result of scanning a statement list for `target`.
enum Scan {
    /// Target found; this is the reaching value (or Entry-relative).
    Found(GsaValue),
    /// Target not in this list; the value reaching the *end* of the
    /// list, if the list defines the variable (`None` = unchanged).
    NotSeen(Option<GsaValue>),
}

/// The value of `var` produced by statement `s` itself, if it defines it
/// unconditionally at this level.
fn def_of(s: &Stmt, var: &str) -> Option<GsaValue> {
    match &s.kind {
        StmtKind::Assign { lhs, rhs, .. } => {
            if lhs.name() == var && lhs.subs().is_empty() {
                Some(GsaValue::Def(rhs.clone()))
            } else {
                None
            }
        }
        StmtKind::Do(d) => {
            if crate::rangeprop::assigned_vars(&d.body).contains(var) || d.var == var {
                // defined (possibly) by the loop: μ — unknown here
                Some(GsaValue::Mu)
            } else {
                None
            }
        }
        StmtKind::IfBlock { arms, else_body } => {
            // γ over the arms; only model the single-arm and if/else
            // shapes (multi-arm chains nest).
            let writes_in = |list: &StmtList| -> bool {
                crate::rangeprop::assigned_vars(list).contains(var)
            };
            let any = arms.iter().any(|a| writes_in(&a.body)) || writes_in(else_body);
            if !any {
                return None;
            }
            // Build nested gammas from the last arm backward. The
            // "fall-through" value is the incoming one, which the caller
            // knows — represent it as Entry-relative by returning a
            // gamma with `els: Entry` markers the caller patches; to keep
            // the API simple we conservatively produce γ with unknown
            // else when the arm set does not cover all paths.
            let mut value = if else_body.is_empty() {
                GsaValue::Entry // patched by scan_list with the prior value
            } else {
                end_value(else_body, var).unwrap_or(GsaValue::Entry)
            };
            for arm in arms.iter().rev() {
                let t = end_value(&arm.body, var).unwrap_or(GsaValue::Entry);
                value = GsaValue::Gamma {
                    cond: arm.cond.clone(),
                    then: Box::new(t),
                    els: Box::new(value),
                };
            }
            Some(value)
        }
        _ => None,
    }
}

/// Does the statement destroy all knowledge of `var` (by-reference CALL)?
fn kills(s: &Stmt, var: &str) -> bool {
    match &s.kind {
        StmtKind::Call { args, .. } => {
            args.iter().any(|a| matches!(a, Expr::Var(n) if n == var))
        }
        _ => false,
    }
}

/// The value of `var` at the end of `list`, if the list defines it.
fn end_value(list: &StmtList, var: &str) -> Option<GsaValue> {
    let mut val: Option<GsaValue> = None;
    for s in list {
        if kills(s, var) {
            val = Some(GsaValue::Entry);
        } else if let Some(v) = def_of(s, var) {
            // patch Entry placeholders in gammas with the prior value
            val = Some(patch_entry(v, val));
        }
    }
    val
}

/// Replace `Entry` leaves (the fall-through marker emitted for IFs with
/// no else) by the previously-reaching value.
fn patch_entry(v: GsaValue, prior: Option<GsaValue>) -> GsaValue {
    match (v, prior) {
        (GsaValue::Entry, Some(p)) => p,
        (GsaValue::Gamma { cond, then, els }, prior) => GsaValue::Gamma {
            cond,
            then: Box::new(patch_entry(*then, prior.clone())),
            els: Box::new(patch_entry(*els, prior)),
        },
        (other, _) => other,
    }
}

fn scan_list(list: &StmtList, target: StmtId, var: &str) -> Scan {
    let mut reaching: Option<GsaValue> = None;
    for s in list {
        if s.id == target {
            return Scan::Found(reaching.map(|v| v.simplified()).unwrap_or(GsaValue::Entry));
        }
        // descend if the target lives inside
        match &s.kind {
            StmtKind::Do(d)
                if crate::rangeprop::contains(&d.body, target) => {
                    // inside the loop: earlier iterations may redefine —
                    // the value at the loop header is μ unless the loop
                    // does not touch the variable at all.
                    let touched = crate::rangeprop::assigned_vars(&d.body).contains(var)
                        || d.var == var;
                    let header = if touched {
                        GsaValue::Mu
                    } else {
                        reaching.clone().unwrap_or(GsaValue::Entry)
                    };
                    return match scan_list(&d.body, target, var) {
                        Scan::Found(GsaValue::Entry) => Scan::Found(header),
                        Scan::Found(v) => Scan::Found(v),
                        Scan::NotSeen(_) => Scan::Found(header),
                    };
                }
            StmtKind::IfBlock { arms, else_body } => {
                for arm in arms {
                    if crate::rangeprop::contains(&arm.body, target) {
                        // on this path the arm's condition holds; value
                        // entering the arm is the current reaching value
                        return match scan_list(&arm.body, target, var) {
                            Scan::Found(GsaValue::Entry) => Scan::Found(
                                reaching.unwrap_or(GsaValue::Entry),
                            ),
                            Scan::Found(v) => Scan::Found(v),
                            Scan::NotSeen(_) => {
                                Scan::Found(reaching.unwrap_or(GsaValue::Entry))
                            }
                        };
                    }
                }
                if crate::rangeprop::contains(else_body, target) {
                    return match scan_list(else_body, target, var) {
                        Scan::Found(GsaValue::Entry) => {
                            Scan::Found(reaching.unwrap_or(GsaValue::Entry))
                        }
                        Scan::Found(v) => Scan::Found(v),
                        Scan::NotSeen(_) => Scan::Found(reaching.unwrap_or(GsaValue::Entry)),
                    };
                }
            }
            _ => {}
        }
        if kills(s, var) {
            reaching = Some(GsaValue::Entry);
        } else if let Some(v) = def_of(s, var) {
            reaching = Some(patch_entry(v, reaching));
        }
    }
    Scan::NotSeen(reaching)
}

/// Demand-driven backward substitution (the paper's algorithm): rewrite
/// `expr` by replacing scalar variables with their unconditional GSA
/// definitions, up to `budget` substitution rounds. γ values with equal
/// arms collapse and participate; other gated values stop the chase for
/// that variable.
pub fn resolve(unit: &ProgramUnit, at: StmtId, expr: &Expr, budget: usize) -> Expr {
    let mut cur = expr.clone();
    for _ in 0..budget {
        let mut changed = false;
        for var in cur.variables() {
            let val = value_before(unit, at, &var);
            if let Some(def) = val.as_expr() {
                if !def.references_var(&var) {
                    let next = cur.substitute_var(&var, def);
                    if next != cur {
                        cur = next;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    cur.simplified()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_ir::Expr as E;

    fn unit_of(src: &str) -> ProgramUnit {
        let full = format!("program t\n{src}\nend\n");
        polaris_ir::parse(&full).unwrap().units.remove(0)
    }

    /// id of the first DO loop with the given index variable
    fn loop_id(u: &ProgramUnit, var: &str) -> StmtId {
        let mut id = None;
        u.body.walk(&mut |s| {
            if let StmtKind::Do(d) = &s.kind {
                if d.var == var && id.is_none() {
                    id = Some(s.id);
                }
            }
        });
        id.unwrap()
    }

    #[test]
    fn straight_line_definition() {
        let u = unit_of("mp = m*p\ndo i = 1, 10\n  x = i\nend do");
        let v = value_before(&u, loop_id(&u, "I"), "MP");
        assert_eq!(v.as_expr(), Some(&E::mul(E::var("M"), E::var("P"))));
    }

    #[test]
    fn figure4_resolution() {
        // the paper's one-step proof: resolve MP at the loop -> M*P
        let u = unit_of("mp = m*p\ndo i = 1, 10\n  x = i\nend do");
        let resolved = resolve(&u, loop_id(&u, "I"), &E::var("MP"), 4);
        assert_eq!(resolved, E::mul(E::var("M"), E::var("P")));
    }

    #[test]
    fn chained_definitions_resolve_transitively() {
        let u = unit_of("a = n + 1\nb = a * 2\nc = b - 3\ndo i = 1, c\n  x = i\nend do");
        let resolved = resolve(&u, loop_id(&u, "I"), &E::var("C"), 8);
        assert!(!resolved.references_var("C"));
        assert!(!resolved.references_var("B"));
        assert!(!resolved.references_var("A"));
        assert!(resolved.references_var("N"), "{resolved}");
    }

    #[test]
    fn gamma_created_at_if_join() {
        let u = unit_of("if (q > 0.0) then\n  k = 1\nelse\n  k = 2\nend if\ndo i = 1, 10\n  x = i\nend do");
        let v = value_before(&u, loop_id(&u, "I"), "K");
        match v {
            GsaValue::Gamma { then, els, .. } => {
                assert_eq!(then.as_expr(), Some(&E::int(1)));
                assert_eq!(els.as_expr(), Some(&E::int(2)));
            }
            other => panic!("expected gamma, got {other:?}"),
        }
    }

    #[test]
    fn equal_arm_gamma_collapses() {
        // both branches assign the same expression: the γ disappears
        let u = unit_of(
            "if (q > 0.0) then\n  k = n + 1\nelse\n  k = n + 1\nend if\ndo i = 1, 10\n  x = i\nend do",
        );
        let v = value_before(&u, loop_id(&u, "I"), "K");
        assert_eq!(v.as_expr(), Some(&E::add(E::var("N"), E::int(1))));
        // and backward substitution can use it
        let resolved = resolve(&u, loop_id(&u, "I"), &E::var("K"), 4);
        assert_eq!(resolved, E::add(E::var("N"), E::int(1)));
    }

    #[test]
    fn one_sided_if_gates_with_prior_value() {
        let u = unit_of("k = 5\nif (q > 0.0) then\n  k = 9\nend if\ndo i = 1, 10\n  x = i\nend do");
        let v = value_before(&u, loop_id(&u, "I"), "K");
        match v {
            GsaValue::Gamma { then, els, .. } => {
                assert_eq!(then.as_expr(), Some(&E::int(9)));
                assert_eq!(els.as_expr(), Some(&E::int(5)), "fall-through = prior value");
            }
            other => panic!("expected gamma, got {other:?}"),
        }
    }

    #[test]
    fn loop_definitions_become_mu() {
        let u = unit_of("k = 0\ndo j = 1, 5\n  k = k + 1\nend do\ndo i = 1, 10\n  x = i\nend do");
        let v = value_before(&u, loop_id(&u, "I"), "K");
        assert_eq!(v, GsaValue::Mu);
    }

    #[test]
    fn inside_loop_sees_mu_for_loop_carried_values() {
        // querying inside the loop: K redefined each iteration -> μ
        let u = unit_of("k = 0\ndo i = 1, 10\n  k = k + 1\n  x = k\nend do");
        // find the x = k statement
        let mut target = None;
        u.body.walk(&mut |s| {
            if let StmtKind::Assign { lhs, .. } = &s.kind {
                if lhs.name() == "X" {
                    target = Some(s.id);
                }
            }
        });
        // value of K before `x = k` in iteration terms: the in-iteration
        // definition `k = k + 1` reaches it (Def), whose own operand is μ
        let v = value_before(&u, target.unwrap(), "K");
        assert_eq!(v.as_expr(), Some(&E::add(E::var("K"), E::int(1))));
        // but resolution must NOT chase K into its own recurrence
        let resolved = resolve(&u, target.unwrap(), &E::var("K"), 4);
        assert_eq!(resolved, E::var("K"));
    }

    #[test]
    fn entry_for_undefined_variables() {
        let u = unit_of("do i = 1, 10\n  x = i\nend do");
        assert_eq!(value_before(&u, loop_id(&u, "I"), "Q"), GsaValue::Entry);
    }

    #[test]
    fn call_kills_to_entry() {
        let u = unit_of("k = 5\ncall f(k)\ndo i = 1, 10\n  x = i\nend do");
        assert_eq!(value_before(&u, loop_id(&u, "I"), "K"), GsaValue::Entry);
    }
}

//! Generalized induction variable substitution (§3.2).
//!
//! Implements the paper's three-step algorithm:
//!
//! 1. **Locate candidates** — scalars incremented (unconditionally) by
//!    loop-invariant expressions, enclosing loop indices, or *other
//!    candidate induction variables* (cascaded inductions).
//! 2. **Compute closed forms** — the per-iteration increment is summed
//!    "across the iteration space of the enclosing loop"; inner loops are
//!    handled by recursive descent, and triangular nests fall out of the
//!    symbolic Faulhaber summation in `polaris-symbolic`.
//! 3. **Substitute** every use with the closed form at the loop header
//!    plus the increments accumulated up to the point of use, then delete
//!    the recurrence statements and assign the *last value* after the
//!    loop (guarded by the loop's non-emptiness when that is not provable).
//!
//! Multiplicative inductions (`K = K * c`) are also removed in the simple
//! single-statement form, producing `K * c**(i - lo)` closed forms, per
//! the paper's note that "multiplicative inductions are solved as well".
//!
//! A zero-or-positive trip count must be provable (via range propagation)
//! before an inner loop's accumulated increment is folded into a closed
//! form; otherwise the candidate is rejected — Faulhaber's formulas
//! extrapolate to negative sums for negative trips, which would be
//! unsound.

use crate::rangeprop::{assigned_vars, assume_loop_header};
use polaris_ir::expr::{BinOp, Expr, LValue};
use polaris_ir::stmt::{DoLoop, Stmt, StmtId, StmtKind, StmtList};
use polaris_ir::types::DataType;
use polaris_ir::{Program, ProgramUnit};
use polaris_symbolic::poly::{DivPolicy, Poly};
use polaris_symbolic::sum::{prefix_sum, sum_over};
use polaris_symbolic::{prove_ge, RangeEnv};
use std::collections::BTreeSet;

/// Statistics reported by the pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InductionStats {
    /// Additive induction variables removed.
    pub additive_removed: usize,
    /// Multiplicative induction variables removed.
    pub multiplicative_removed: usize,
    /// Last-value assignments inserted after loops.
    pub lastvalues_inserted: usize,
}

/// Run induction substitution on every unit (generalized mode).
pub fn run(program: &mut Program) -> InductionStats {
    run_with(program, InductionMode::Generalized)
}

/// Run with an explicit recognition mode.
pub fn run_with(program: &mut Program, mode: InductionMode) -> InductionStats {
    let mut stats = InductionStats::default();
    if mode == InductionMode::Off {
        return stats;
    }
    for unit in &mut program.units {
        let s = run_unit_with(unit, mode);
        stats.additive_removed += s.additive_removed;
        stats.multiplicative_removed += s.multiplicative_removed;
        stats.lastvalues_inserted += s.lastvalues_inserted;
    }
    stats
}

/// Run on one unit (generalized mode).
pub fn run_unit(unit: &mut ProgramUnit) -> InductionStats {
    run_unit_with(unit, InductionMode::Generalized)
}

/// Run on one unit with an explicit mode.
pub fn run_unit_with(unit: &mut ProgramUnit, mode: InductionMode) -> InductionStats {
    let mut body = std::mem::take(&mut unit.body);
    let mut pass =
        Pass { unit, stats: InductionStats::default(), deleted: BTreeSet::new(), mode };
    let mut env = RangeEnv::new();
    seed_env(pass.unit, &mut env);
    pass.process_list(&mut body, &mut env);
    remove_deleted(&mut body, &pass.deleted);
    let stats = pass.stats;
    unit.body = body;
    stats
}

fn seed_env(unit: &ProgramUnit, env: &mut RangeEnv) {
    use polaris_ir::symbol::SymKind;
    for sym in unit.symbols.iter() {
        if let SymKind::Parameter(value) = &sym.kind {
            if let Some(p) = Poly::from_expr(value, DivPolicy::Opaque) {
                env.set_fresh(sym.name.clone(), polaris_symbolic::Range::exact(p));
            }
        }
    }
}

struct Pass<'a> {
    unit: &'a mut ProgramUnit,
    stats: InductionStats,
    deleted: BTreeSet<StmtId>,
    mode: InductionMode,
}

/// How aggressive induction recognition should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InductionMode {
    /// Do nothing.
    Off,
    /// "Current compilers" (per the paper): only constant increments
    /// placed directly in the loop body — no cascaded inductions, no
    /// triangular/inner-loop accumulation. Used by the VFA baseline.
    Simple,
    /// The full §3.2 algorithm.
    Generalized,
}

/// An additive increment statement `K = K + e` (with `e` pre-converted).
struct Increment {
    conditional: bool,
    /// Directly in the processed loop's body (not inside an inner DO)?
    top_level: bool,
    expr: Expr,
}

impl<'a> Pass<'a> {
    /// Walk a statement list, processing every loop found (outermost
    /// first), maintaining a range environment for trip-count proofs.
    fn process_list(&mut self, list: &mut StmtList, env: &mut RangeEnv) {
        let mut i = 0usize;
        while i < list.0.len() {
            match &mut list.0[i].kind {
                StmtKind::Do(_) => {
                    // Process the loop's own candidates first, then recurse.
                    let lastvalues = {
                        let d = match &mut list.0[i].kind {
                            StmtKind::Do(d) => d,
                            _ => unreachable!(),
                        };
                        self.process_loop(d, env)
                    };
                    // Recurse into the (substituted) body for inner loops
                    // with their own candidates.
                    {
                        let d = match &mut list.0[i].kind {
                            StmtKind::Do(d) => d,
                            _ => unreachable!(),
                        };
                        for v in assigned_vars(&d.body) {
                            env.invalidate(&v);
                        }
                        env.invalidate(&d.var.clone());
                        let mut inner_env = env.clone();
                        assume_loop_header(
                            &mut inner_env,
                            &d.var.clone(),
                            &d.init.clone(),
                            &d.limit.clone(),
                            d.step.as_ref(),
                        );
                        let mut inner_body = std::mem::take(&mut d.body);
                        self.process_list(&mut inner_body, &mut inner_env);
                        let d = match &mut list.0[i].kind {
                            StmtKind::Do(d) => d,
                            _ => unreachable!(),
                        };
                        d.body = inner_body;
                    }
                    // Insert last-value statements after the loop.
                    let n = lastvalues.len();
                    for (k, s) in lastvalues.into_iter().enumerate() {
                        list.0.insert(i + 1 + k, s);
                    }
                    i += 1 + n;
                }
                StmtKind::IfBlock { .. } => {
                    // Loops under IFs are processed with the arm condition
                    // assumed.
                    if let StmtKind::IfBlock { arms, else_body } = &mut list.0[i].kind {
                        for arm in arms.iter_mut() {
                            let mut arm_env = env.clone();
                            arm_env.assume_cond(&arm.cond);
                            // borrow gymnastics: temporarily move body
                            let mut b = std::mem::take(&mut arm.body);
                            // self is reborrowed inside; safe since arm.body detached
                            Self::process_detached(self, &mut b, &mut arm_env);
                            arm.body = b;
                        }
                        let mut b = std::mem::take(else_body);
                        let mut e2 = env.clone();
                        Self::process_detached(self, &mut b, &mut e2);
                        *else_body = b;
                    }
                    // Conditional assignments invalidate facts.
                    if let StmtKind::IfBlock { arms, else_body } = &list.0[i].kind {
                        let mut killed: BTreeSet<String> = BTreeSet::new();
                        for arm in arms {
                            killed.extend(assigned_vars(&arm.body));
                        }
                        killed.extend(assigned_vars(else_body));
                        for v in killed {
                            env.invalidate(&v);
                        }
                    }
                    i += 1;
                }
                StmtKind::Assign { lhs, rhs, .. } => {
                    let name = lhs.name().to_string();
                    let scalar = lhs.subs().is_empty();
                    let rhs_c = rhs.clone();
                    env.invalidate(&name);
                    if scalar {
                        if let Some(p) = Poly::from_expr(&rhs_c, DivPolicy::Opaque) {
                            if !p.mentions_var(&name) {
                                env.set_fresh(&name, polaris_symbolic::Range::exact(p));
                            }
                        }
                    }
                    i += 1;
                }
                StmtKind::Assert { cond } => {
                    let c = cond.clone();
                    env.assume_cond(&c);
                    i += 1;
                }
                StmtKind::Call { args, .. } => {
                    let names: Vec<String> = args
                        .iter()
                        .filter_map(|a| match a {
                            Expr::Var(n) => Some(n.clone()),
                            Expr::Index { array, .. } => Some(array.clone()),
                            _ => None,
                        })
                        .collect();
                    for n in names {
                        env.invalidate(&n);
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    fn process_detached(pass: &mut Pass<'a>, list: &mut StmtList, env: &mut RangeEnv) {
        pass.process_list(list, env);
    }

    /// Process the candidates of one loop; returns last-value statements
    /// to insert after it.
    fn process_loop(&mut self, d: &mut DoLoop, env: &mut RangeEnv) -> Vec<Stmt> {
        // Only unit-step loops are substituted (normalization could relax
        // this; the evaluation suite does not need it).
        if d.step_expr().simplified().as_int() != Some(1) {
            return Vec::new();
        }
        let mut body_env = env.clone();
        assume_loop_header(&mut body_env, &d.var, &d.init, &d.limit, d.step.as_ref());

        let mut lastvalues = Vec::new();
        let candidates = self.find_candidates(d);
        for k in candidates {
            if let Some(lv) = self.process_additive(d, &k, &body_env, env) {
                lastvalues.extend(lv);
            }
        }
        if self.mode == InductionMode::Generalized {
            if let Some(lv) = self.process_multiplicative(d) {
                lastvalues.extend(lv);
            }
        }
        remove_deleted(&mut d.body, &self.deleted);
        lastvalues
    }

    // ---- step 1: candidate location ------------------------------------

    /// Candidates of loop `d`, topologically ordered so that a cascaded
    /// induction's base variables come first.
    fn find_candidates(&self, d: &DoLoop) -> Vec<String> {
        let assigned = assigned_vars(&d.body);
        let do_vars = do_vars_of(&d.body);
        let mut cands: Vec<(String, Vec<String>)> = Vec::new(); // (name, deps)
        'vars: for name in &assigned {
            if do_vars.contains(name) || *name == d.var {
                continue;
            }
            if self.unit.symbols.type_of(name) != DataType::Integer
                || self.unit.symbols.is_array(name)
            {
                continue;
            }
            let incs = collect_increments(&d.body, name, &self.deleted);
            let Some(incs) = incs else { continue };
            if incs.is_empty() {
                continue;
            }
            let mut deps = Vec::new();
            for inc in &incs {
                if inc.conditional {
                    continue 'vars;
                }
                if self.mode == InductionMode::Simple
                    && (!inc.top_level || inc.expr.simplified().as_int().is_none())
                {
                    continue 'vars;
                }
                if inc.expr.references(name) {
                    continue 'vars;
                }
                // The increment must be a polynomial whose symbols are
                // this loop's index, other assigned scalars (candidate
                // deps), or loop invariants. An *inner* loop's index is
                // none of these: its value varies across one iteration of
                // `d`, so an increment mentioning it has no single
                // per-iteration value here — such increments are only
                // sound to substitute when the inner loop itself is
                // processed (innermost-first, cascading outward).
                let Some(p) = Poly::from_expr(&inc.expr, DivPolicy::Exact) else {
                    continue 'vars;
                };
                for v in p.vars() {
                    if v == d.var {
                        continue;
                    }
                    if do_vars.contains(&v) {
                        continue 'vars;
                    }
                    if assigned.contains(&v) {
                        deps.push(v);
                    }
                }
                // Opaque atoms must not mention anything assigned in the
                // body (array loads of mutated arrays etc.).
                for atom in p.atoms() {
                    if let polaris_symbolic::poly::Atom::Opaque { expr, .. } = &atom {
                        for a in assigned.iter() {
                            if expr.references(a) {
                                continue 'vars;
                            }
                        }
                    }
                }
            }
            cands.push((name.clone(), deps));
        }
        // Keep only candidates whose deps are themselves candidates.
        loop {
            let names: BTreeSet<String> = cands.iter().map(|(n, _)| n.clone()).collect();
            let before = cands.len();
            cands.retain(|(_, deps)| deps.iter().all(|d| names.contains(d)));
            if cands.len() == before {
                break;
            }
        }
        // Topological order (deps first); cycles dropped.
        let mut order: Vec<String> = Vec::new();
        let mut remaining = cands;
        while !remaining.is_empty() {
            let ready: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter(|(_, (_, deps))| deps.iter().all(|d| order.contains(d)))
                .map(|(i, _)| i)
                .collect();
            if ready.is_empty() {
                break; // cycle: drop the rest
            }
            for i in ready.into_iter().rev() {
                let (n, _) = remaining.remove(i);
                order.push(n);
            }
        }
        order
    }

    // ---- steps 2 and 3: closed forms and substitution --------------------

    /// Process one additive candidate of loop `d`. Returns the last-value
    /// statements on success, `None` if the candidate was rejected.
    fn process_additive(
        &mut self,
        d: &mut DoLoop,
        k: &str,
        env: &RangeEnv,
        outer_env: &RangeEnv,
    ) -> Option<Vec<Stmt>> {
        let lo = Poly::from_expr(&d.init, DivPolicy::Exact)?;
        let hi = Poly::from_expr(&d.limit, DivPolicy::Exact)?;
        // Per-iteration increment as a function of the loop variable.
        let inc = increment_of_list(&d.body, k, &self.deleted, env)?;
        if inc.mentions_var(k) {
            return None;
        }
        // Value at the top of iteration v: K0 + Σ_{v'=lo}^{v-1} inc(v').
        let header_val = Poly::var(k).checked_add(&prefix_sum(&inc, &d.var, &lo, &Poly::var(&d.var))?)?;
        // Trial-substitute into a clone first so a mid-way failure cannot
        // leave the loop half-transformed (the IR-consistency discipline).
        let mut trial = d.body.clone();
        let mut trial_deleted = self.deleted.clone();
        substitute_in_list(&mut trial, k, &header_val, &mut trial_deleted, env)?;
        // Commit.
        d.body = trial;
        let newly_deleted: Vec<StmtId> =
            trial_deleted.difference(&self.deleted).copied().collect();
        self.stats.additive_removed += 1;
        self.deleted = trial_deleted;
        debug_assert!(!newly_deleted.is_empty(), "candidate had no increments?");

        // Last value after the loop: K = K + Σ_{v=lo}^{hi} inc(v),
        // guarded when the loop may be empty.
        let total = sum_over(&inc, &d.var, &lo, &hi)?;
        let total_expr = total.to_expr().simplified();
        let assign = Stmt::new(
            self.unit.fresh_stmt_id(),
            0,
            StmtKind::Assign {
                lhs: LValue::Var(k.to_string()),
                rhs: Expr::add(Expr::var(k), total_expr).simplified(),
                reduction: None,
            },
        );
        self.stats.lastvalues_inserted += 1;
        let lo_m1 = lo.checked_sub(&Poly::int(1))?;
        let stmt = if prove_ge(&hi, &lo_m1, outer_env) {
            assign
        } else {
            // IF (init <= limit) K = K + total
            Stmt::new(
                self.unit.fresh_stmt_id(),
                0,
                StmtKind::IfBlock {
                    arms: vec![polaris_ir::stmt::IfArm {
                        cond: Expr::bin(BinOp::Le, d.init.clone(), d.limit.clone()),
                        body: StmtList(vec![assign]),
                    }],
                    else_body: StmtList::new(),
                },
            )
        };
        Some(vec![stmt])
    }

    /// Simple multiplicative inductions: a single unconditional
    /// `K = K * c` (constant `c`) directly in the loop body.
    fn process_multiplicative(&mut self, d: &mut DoLoop) -> Option<Vec<Stmt>> {
        // Find the candidate.
        let mut target: Option<(usize, String, Expr)> = None;
        for (idx, s) in d.body.0.iter().enumerate() {
            if let StmtKind::Assign { lhs: LValue::Var(name), rhs, .. } = &s.kind {
                let pats = [
                    Expr::mul(Expr::var(name.clone()), Expr::Wildcard(0)),
                    Expr::mul(Expr::Wildcard(0), Expr::var(name.clone())),
                ];
                for pat in pats {
                    if let Some(b) = polaris_ir::pattern::match_expr(&pat, rhs) {
                        let c = &b[&0];
                        if c.as_int().is_some() && !c.references(name) {
                            if target.is_some() {
                                return None; // only the single-statement form
                            }
                            target = Some((idx, name.clone(), c.clone()));
                        }
                    }
                }
            }
        }
        let (idx, name, c) = target?;
        if self.unit.symbols.type_of(&name) != DataType::Integer {
            return None;
        }
        // Any other assignment to the variable disqualifies it, as does a
        // DO loop or IF containing an assignment to it.
        let mut writes = 0usize;
        d.body.walk(&mut |s| {
            if let StmtKind::Assign { lhs, .. } = &s.kind {
                if lhs.name() == name {
                    writes += 1;
                }
            }
        });
        if writes != 1 {
            return None;
        }
        // exponent before the statement: (v - lo); after: (v - lo + 1)
        let lo = d.init.clone();
        let expo_before = Expr::sub(Expr::var(&d.var), lo.clone()).simplified();
        let expo_after =
            Expr::add(Expr::sub(Expr::var(&d.var), lo.clone()), Expr::int(1)).simplified();
        let value_at = |expo: &Expr| {
            Expr::mul(Expr::var(&name), Expr::bin(BinOp::Pow, c.clone(), expo.clone())).simplified()
        };
        let before = value_at(&expo_before);
        let after = value_at(&expo_after);
        for (i, s) in d.body.0.iter_mut().enumerate() {
            let replacement = if i <= idx { &before } else { &after };
            // Uses in the increment statement itself are deleted with it.
            if i == idx {
                continue;
            }
            polaris_ir::stmt::map_stmt_exprs(s, &mut |e| match &e {
                Expr::Var(n) if *n == name => replacement.clone(),
                _ => e,
            });
        }
        let del_id = d.body.0[idx].id;
        self.deleted.insert(del_id);
        self.stats.multiplicative_removed += 1;
        // Last value: K = K * c ** trip, guarded by non-emptiness.
        let trip = Expr::add(
            Expr::sub(d.limit.clone(), d.init.clone()),
            Expr::int(1),
        )
        .simplified();
        let assign = Stmt::new(
            self.unit.fresh_stmt_id(),
            0,
            StmtKind::Assign {
                lhs: LValue::Var(name.clone()),
                rhs: Expr::mul(Expr::var(&name), Expr::bin(BinOp::Pow, c, trip)).simplified(),
                reduction: None,
            },
        );
        self.stats.lastvalues_inserted += 1;
        let guarded = Stmt::new(
            self.unit.fresh_stmt_id(),
            0,
            StmtKind::IfBlock {
                arms: vec![polaris_ir::stmt::IfArm {
                    cond: Expr::bin(BinOp::Le, d.init.clone(), d.limit.clone()),
                    body: StmtList(vec![assign]),
                }],
                else_body: StmtList::new(),
            },
        );
        Some(vec![guarded])
    }
}

/// All DO-loop variables appearing in `list` (any depth).
fn do_vars_of(list: &StmtList) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    list.walk(&mut |s| {
        if let StmtKind::Do(d) = &s.kind {
            out.insert(d.var.clone());
        }
    });
    out
}

/// Recognize `K = K + e` / `K = e + K` / `K = K - e`; returns `e` with
/// subtraction folded into a negation.
fn recognize_increment(name: &str, rhs: &Expr) -> Option<Expr> {
    use polaris_ir::pattern::match_expr;
    let k = Expr::var(name);
    if let Some(b) = match_expr(&Expr::add(k.clone(), Expr::Wildcard(0)), rhs) {
        return Some(b[&0].clone());
    }
    if let Some(b) = match_expr(&Expr::add(Expr::Wildcard(0), k.clone()), rhs) {
        return Some(b[&0].clone());
    }
    if let Some(b) = match_expr(&Expr::sub(k, Expr::Wildcard(0)), rhs) {
        return Some(Expr::neg(b[&0].clone()).simplified());
    }
    None
}

/// Collect the increment statements for `name` in `list`. Returns `None`
/// if `name` has a non-increment assignment anywhere in the list.
fn collect_increments(
    list: &StmtList,
    name: &str,
    deleted: &BTreeSet<StmtId>,
) -> Option<Vec<Increment>> {
    let mut out = Vec::new();
    let mut ok = true;
    fn rec(
        list: &StmtList,
        name: &str,
        deleted: &BTreeSet<StmtId>,
        conditional: bool,
        top_level: bool,
        out: &mut Vec<Increment>,
        ok: &mut bool,
    ) {
        for s in list {
            if deleted.contains(&s.id) {
                continue;
            }
            match &s.kind {
                StmtKind::Assign { lhs, rhs, .. }
                    if lhs.name() == name && lhs.subs().is_empty() => {
                        match recognize_increment(name, rhs) {
                            Some(e) => out.push(Increment { conditional, top_level, expr: e }),
                            None => *ok = false,
                        }
                    }
                StmtKind::Do(d) => rec(&d.body, name, deleted, conditional, false, out, ok),
                StmtKind::IfBlock { arms, else_body } => {
                    for arm in arms {
                        rec(&arm.body, name, deleted, true, false, out, ok);
                    }
                    rec(else_body, name, deleted, true, false, out, ok);
                }
                StmtKind::Call { args, .. } => {
                    for a in args {
                        if a.references(name) {
                            *ok = false;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    rec(list, name, deleted, false, true, &mut out, &mut ok);
    if ok {
        Some(out)
    } else {
        None
    }
}

/// Pure scan: the total increment of `name` accumulated by one execution
/// of `list`, as a polynomial in the enclosing loop variables. Inner
/// loops contribute their closed-form sums; a non-negative trip count
/// must be provable under `env`.
fn increment_of_list(
    list: &StmtList,
    name: &str,
    deleted: &BTreeSet<StmtId>,
    env: &RangeEnv,
) -> Option<Poly> {
    let mut inc = Poly::zero();
    for s in list {
        if deleted.contains(&s.id) {
            continue;
        }
        match &s.kind {
            StmtKind::Assign { lhs, rhs, .. }
                if lhs.name() == name && lhs.subs().is_empty() => {
                    let e = recognize_increment(name, rhs)?;
                    inc = inc.checked_add(&Poly::from_expr(&e, DivPolicy::Exact)?)?;
                }
            StmtKind::Do(d) => {
                let mut inner_env = env.clone();
                assume_loop_header(&mut inner_env, &d.var, &d.init, &d.limit, d.step.as_ref());
                let delta = increment_of_list(&d.body, name, deleted, &inner_env)?;
                if !delta.is_zero() {
                    if d.step_expr().simplified().as_int() != Some(1) {
                        return None;
                    }
                    let lo = Poly::from_expr(&d.init, DivPolicy::Exact)?;
                    let hi = Poly::from_expr(&d.limit, DivPolicy::Exact)?;
                    // Guard against negative-trip extrapolation.
                    let lo_m1 = lo.checked_sub(&Poly::int(1))?;
                    if !prove_ge(&hi, &lo_m1, env) {
                        return None;
                    }
                    inc = inc.checked_add(&sum_over(&delta, &d.var, &lo, &hi)?)?;
                }
            }
            StmtKind::IfBlock { .. } => {
                // Candidates have no conditional increments (validated).
            }
            _ => {}
        }
    }
    Some(inc)
}

/// Substitute every use of `name` in `list` with its closed-form value,
/// deleting increment statements. `current` is the symbolic value of the
/// variable at entry to `list`. Returns the total increment of the list.
fn substitute_in_list(
    list: &mut StmtList,
    name: &str,
    current: &Poly,
    deleted: &mut BTreeSet<StmtId>,
    env: &RangeEnv,
) -> Option<Poly> {
    let mut inc = Poly::zero();
    for s in list.0.iter_mut() {
        if deleted.contains(&s.id) {
            continue;
        }
        let value = current.checked_add(&inc)?;
        match &mut s.kind {
            StmtKind::Assign { lhs, rhs, .. } => {
                if lhs.name() == name && lhs.subs().is_empty() {
                    let e = recognize_increment(name, rhs)?;
                    // Uses *inside* the increment expression of other
                    // variables were already substituted (dependency
                    // order); the statement is deleted whole.
                    inc = inc.checked_add(&Poly::from_expr(&e, DivPolicy::Exact)?)?;
                    deleted.insert(s.id);
                } else {
                    let value_expr = value.to_expr();
                    polaris_ir::stmt::map_stmt_exprs(s, &mut |e| match &e {
                        Expr::Var(n) if n == name => value_expr.clone(),
                        _ => e,
                    });
                }
            }
            StmtKind::Do(d) => {
                // Bounds see the value at loop entry.
                let value_expr = value.to_expr();
                let subst = &mut |e: Expr| match &e {
                    Expr::Var(n) if n == name => value_expr.clone(),
                    _ => e,
                };
                d.init = d.init.map(subst);
                d.limit = d.limit.map(subst);
                if let Some(step) = &mut d.step {
                    *step = step.map(subst);
                }
                let mut inner_env = env.clone();
                assume_loop_header(&mut inner_env, &d.var, &d.init, &d.limit, d.step.as_ref());
                let delta = increment_of_list(&d.body, name, deleted, &inner_env)?;
                if delta.is_zero() {
                    substitute_in_list(&mut d.body, name, &value, deleted, &inner_env)?;
                } else {
                    if d.step_expr().simplified().as_int() != Some(1) {
                        return None;
                    }
                    let lo = Poly::from_expr(&d.init, DivPolicy::Exact)?;
                    let hi = Poly::from_expr(&d.limit, DivPolicy::Exact)?;
                    let lo_m1 = lo.checked_sub(&Poly::int(1))?;
                    if !prove_ge(&hi, &lo_m1, env) {
                        return None;
                    }
                    // Value at the top of inner iteration j.
                    let at_j = value
                        .checked_add(&prefix_sum(&delta, &d.var, &lo, &Poly::var(&d.var))?)?;
                    substitute_in_list(&mut d.body, name, &at_j, deleted, &inner_env)?;
                    inc = inc.checked_add(&sum_over(&delta, &d.var, &lo, &hi)?)?;
                }
            }
            StmtKind::IfBlock { arms, else_body } => {
                let value_expr = value.to_expr();
                for arm in arms.iter_mut() {
                    arm.cond = arm.cond.map(&mut |e| match &e {
                        Expr::Var(n) if n == name => value_expr.clone(),
                        _ => e,
                    });
                    // No increments inside (validated): plain substitution.
                    substitute_uses(&mut arm.body, name, &value_expr);
                }
                substitute_uses(else_body, name, &value_expr);
            }
            _ => {
                let value_expr = value.to_expr();
                polaris_ir::stmt::map_stmt_exprs(s, &mut |e| match &e {
                    Expr::Var(n) if n == name => value_expr.clone(),
                    _ => e,
                });
            }
        }
    }
    Some(inc)
}

fn substitute_uses(list: &mut StmtList, name: &str, value: &Expr) {
    list.map_exprs(&mut |e| match &e {
        Expr::Var(n) if n == name => value.clone(),
        _ => e,
    });
}

/// Physically remove statements marked deleted.
fn remove_deleted(list: &mut StmtList, deleted: &BTreeSet<StmtId>) {
    list.0.retain(|s| !deleted.contains(&s.id));
    for s in list.0.iter_mut() {
        match &mut s.kind {
            StmtKind::Do(d) => remove_deleted(&mut d.body, deleted),
            StmtKind::IfBlock { arms, else_body } => {
                for arm in arms {
                    remove_deleted(&mut arm.body, deleted);
                }
                remove_deleted(else_body, deleted);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_ir::printer::print_program;

    fn transform(src: &str) -> (polaris_ir::Program, InductionStats) {
        let mut p = polaris_ir::parse(src).unwrap();
        crate::constprop::run(&mut p);
        let stats = run(&mut p);
        // The driver re-runs constant propagation after induction so
        // entry values (K = 0) fold into the closed forms.
        crate::constprop::run(&mut p);
        polaris_ir::validate::validate_program(&p)
            .unwrap_or_else(|e| panic!("invalid after induction: {e}\n{}", print_program(&p)));
        (p, stats)
    }

    fn body_text(p: &polaris_ir::Program) -> String {
        print_program(p)
    }

    #[test]
    fn simple_induction_removed() {
        let src = "program t\nreal a(100)\nk = 0\ndo i = 1, n\n  k = k + 1\n  a(k) = 1.0\nend do\nend\n";
        let (p, stats) = transform(src);
        let out = body_text(&p);
        assert_eq!(stats.additive_removed, 1);
        // K=K+1 deleted; use replaced by K + I - 1 => with K=0 folded: I (constprop ran first: K=0 propagated)
        assert!(!out.contains("K = K+1"), "{out}");
        assert!(out.contains("A(I)") || out.contains("A(0+I)") || out.contains("A(I-1+1)"), "{out}");
        // last value after loop
        assert!(out.contains("K = "), "{out}");
    }

    #[test]
    fn figure2_trfd_form() {
        // The paper's TRFD/OLDA nest (0-based as in Figure 2).
        let src = "program t\nreal a(100000)\ninteger x, x0\nx0 = 0\ndo i = 0, m - 1\n  x = x0\n  do j = 0, n - 1\n    do k = 0, j - 1\n      x = x + 1\n      a(x) = 1.0\n    end do\n  end do\n  x0 = x0 + (n**2 + n)/2\nend do\nend\n";
        let (p, stats) = transform(src);
        let out = body_text(&p);
        // X0's recurrence and X's recurrence both removed.
        assert!(stats.additive_removed >= 2, "{stats:?}\n{out}");
        assert!(!out.contains("X = X+1"), "{out}");
        assert!(!out.contains("X0 = X0+"), "{out}");
        // Subscript contains the triangular closed form j^2 - j over 2
        // plus k (modulo formatting).
        assert!(out.contains("J**2-J") || out.contains("J*J-J") || out.contains("J**2"), "{out}");
    }

    #[test]
    fn cascaded_inductions() {
        // K2 incremented by K1, K1 by 1 (Figure 1 flavor).
        let src = "program t\nreal b(10000)\ninteger k1, k2\nk1 = 0\nk2 = 0\ndo i = 1, n\n  k1 = k1 + 1\n  k2 = k2 + k1\n  b(k2) = 1.0\nend do\nend\n";
        let (p, stats) = transform(src);
        let out = body_text(&p);
        assert_eq!(stats.additive_removed, 2, "{out}");
        assert!(!out.contains("K2 = K2+"), "{out}");
        // closed form of k2 at iteration i is (i^2+i)/2 (k1=k2=0 entry)
        assert!(out.contains("I**2") || out.contains("I*I"), "{out}");
    }

    #[test]
    fn triangular_inner_loop() {
        let src = "program t\nreal a(10000)\ninteger x\nx = 0\ndo j = 1, n\n  do k = 1, j\n    x = x + 1\n    a(x) = 2.0\n  end do\nend do\nend\n";
        let (p, stats) = transform(src);
        let out = body_text(&p);
        assert_eq!(stats.additive_removed, 1);
        // prefix over j of trip j = (j^2-j)/2; plus (k - 1) + 1 = k
        assert!(out.contains("(-J+J**2+2*K)/2"), "{out}");
        assert!(!out.contains("X = X+1"), "{out}");
    }

    #[test]
    fn conditional_increment_rejected() {
        let full = "program t\nreal a(100)\ninteger k\nk = 0\ndo i = 1, n\n  if (i > 3) then\n    k = k + 1\n  end if\n  a(i) = k\nend do\nend\n";
        let (p, stats) = transform(full);
        assert_eq!(stats.additive_removed, 0);
        let out = body_text(&p);
        assert!(out.contains("K = K+1"), "{out}");
    }

    #[test]
    fn non_increment_assignment_rejected() {
        let src = "program t\nreal a(100)\ninteger k\ndo i = 1, n\n  k = i * 2\n  k = k + 1\n  a(i) = k\nend do\nend\n";
        let (_, stats) = transform(src);
        assert_eq!(stats.additive_removed, 0);
    }

    #[test]
    fn increment_by_mutated_scalar_rejected() {
        // K incremented by M, but M changes inside the loop (not a candidate
        // itself because its own assignment is not an increment).
        let src = "program t\nreal a(100)\ninteger k, m\nk = 0\ndo i = 1, n\n  m = i * i - m\n  k = k + m\n  a(i) = k\nend do\nend\n";
        let (_, stats) = transform(src);
        assert_eq!(stats.additive_removed, 0);
    }

    #[test]
    fn lastvalue_guarded_when_trip_unknown() {
        // n unknown: trip could be zero → guarded last value.
        let src = "program t\nreal a(100)\ninteger k\nk = 0\ndo i = 1, n\n  k = k + 2\n  a(i) = k\nend do\nm = k\nend\n";
        let (p, stats) = transform(src);
        assert_eq!(stats.lastvalues_inserted, 1);
        let out = body_text(&p);
        assert!(out.contains("IF (1 .LE. N) THEN"), "{out}");
        assert!(out.contains("K = K+2*N") || out.contains("K = 2*N"), "{out}");
    }

    #[test]
    fn lastvalue_unguarded_when_trip_provable() {
        let src = "program t\nreal a(100)\ninteger n, k\nparameter (n = 10)\nk = 0\ndo i = 1, n\n  k = k + 2\n  a(i) = k\nend do\nm = k\nend\n";
        let (p, _) = transform(src);
        let out = body_text(&p);
        assert!(!out.contains("IF (1 .LE."), "{out}");
        // k = 0 folded by constprop, last value = 0 + 2*10
        assert!(out.contains("K = K+20") || out.contains("K = 20"), "{out}");
    }

    #[test]
    fn multiplicative_induction() {
        let src = "program t\nreal a(100)\ninteger k\nk = 1\ndo i = 1, 8\n  a(i) = k\n  k = k * 2\nend do\nend\n";
        let (p, stats) = transform(src);
        assert_eq!(stats.multiplicative_removed, 1);
        let out = body_text(&p);
        assert!(!out.contains("K = K*2"), "{out}");
        assert!(out.contains("2**"), "{out}");
    }

    #[test]
    fn use_before_and_after_increment_offsets() {
        let src = "program t\nreal a(100), b(100)\ninteger k\nk = 0\ndo i = 1, 10\n  a(i) = k\n  k = k + 1\n  b(i) = k\nend do\nend\n";
        let (p, _) = transform(src);
        let out = body_text(&p);
        // before the increment: K + (i-1) [=i-1 with k0=0]; after: K + i [=i]
        assert!(out.contains("A(I) = I-1") || out.contains("A(I) = -1+I"), "{out}");
        assert!(out.contains("B(I) = I"), "{out}");
    }

    #[test]
    fn induction_in_inner_loop_only() {
        // K re-initialized each outer iteration: candidate of the inner
        // loop (after recursion), not the outer.
        let src = "program t\nreal a(10,10)\ninteger k\ndo i = 1, 10\n  k = 0\n  do j = 1, 10\n    k = k + 1\n    a(i, k) = 1.0\n  end do\nend do\nend\n";
        let (p, stats) = transform(src);
        assert_eq!(stats.additive_removed, 1);
        let out = body_text(&p);
        assert!(out.contains("A(I, K+J)") || out.contains("A(I, J)"), "{out}");
    }

    #[test]
    fn loop_bounds_using_induction_var() {
        let src = "program t\nreal a(100)\ninteger k\nk = 0\ndo i = 1, 5\n  k = k + 2\n  do j = 1, k\n    a(j) = 1.0\n  end do\nend do\nend\n";
        // K's use in the inner bound must be substituted with the value
        // *after* the increment (2*i with k0=0).
        let (p, stats) = transform(src);
        assert_eq!(stats.additive_removed, 1);
        let out = body_text(&p);
        assert!(out.contains("DO J = 1, 2*I") || out.contains("DO J = 1, K+2*I"), "{out}");
    }
}

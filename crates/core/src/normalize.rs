//! Loop normalization.
//!
//! The paper notes that "interprocedural constant propagation and loop
//! normalization were needed" to bring the OCEAN nest into analyzable
//! form. This pass rewrites every `DO` loop with a constant step `s`
//! (|s| ≠ 1) into a unit-step loop over a fresh index:
//!
//! ```fortran
//! DO I = L, U, S          DO I__N = 0, (U - L)/S
//!   body(I)        ==>      I = L + I__N*S
//! END DO                    body(I)
//!                         END DO
//!                         I = L + ((U - L)/S + 1)*S   ! F77 exit value
//! ```
//!
//! `(U - L)/S` uses Fortran's truncating division, which equals the
//! floor for the non-negative quotient of a non-empty loop, so the trip
//! count is exact; for an empty loop the new header's `0, negative`
//! bounds produce zero iterations just the same.
//!
//! Normalization runs before induction substitution, which requires
//! unit steps, and turns strided subscripts (`A(I)` with `I = L + 2k`)
//! into affine functions of the new index that the dependence tests
//! understand.

use polaris_ir::builder;
use polaris_ir::expr::Expr;
use polaris_ir::stmt::{Stmt, StmtKind, StmtList};
use polaris_ir::symbol::Symbol;
use polaris_ir::types::DataType;
use polaris_ir::{Program, ProgramUnit};

/// Statistics for reports/tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormalizeStats {
    pub loops_normalized: usize,
}

/// Run on every unit.
pub fn run(program: &mut Program) -> NormalizeStats {
    let mut stats = NormalizeStats::default();
    for unit in &mut program.units {
        stats.loops_normalized += run_unit(unit).loops_normalized;
    }
    stats
}

/// Run on one unit.
pub fn run_unit(unit: &mut ProgramUnit) -> NormalizeStats {
    let mut stats = NormalizeStats::default();
    let mut body = std::mem::take(&mut unit.body);
    normalize_list(&mut body, unit, &mut stats);
    unit.body = body;
    stats
}

fn normalize_list(list: &mut StmtList, unit: &mut ProgramUnit, stats: &mut NormalizeStats) {
    let mut i = 0usize;
    while i < list.0.len() {
        // recurse first so inner loops are normalized too
        match &mut list.0[i].kind {
            StmtKind::Do(d) => {
                let mut inner = std::mem::take(&mut d.body);
                normalize_list(&mut inner, unit, stats);
                let d = match &mut list.0[i].kind {
                    StmtKind::Do(d) => d,
                    _ => unreachable!(),
                };
                d.body = inner;
            }
            StmtKind::IfBlock { .. } => {
                if let StmtKind::IfBlock { arms, else_body } = &mut list.0[i].kind {
                    let mut arms_t = std::mem::take(arms);
                    let mut else_t = std::mem::take(else_body);
                    for arm in arms_t.iter_mut() {
                        normalize_list(&mut arm.body, unit, stats);
                    }
                    normalize_list(&mut else_t, unit, stats);
                    if let StmtKind::IfBlock { arms, else_body } = &mut list.0[i].kind {
                        *arms = arms_t;
                        *else_body = else_t;
                    }
                }
            }
            _ => {}
        }
        // then rewrite this loop if it is strided
        let needs = match &list.0[i].kind {
            StmtKind::Do(d) => {
                matches!(d.step_expr().simplified().as_int(), Some(s) if s.abs() != 1 && s != 0)
            }
            _ => false,
        };
        if needs {
            let (pre, post) = rewrite_loop(&mut list.0[i], unit, stats);
            let npre = pre.len();
            for (k, s) in pre.into_iter().enumerate() {
                list.0.insert(i + k, s);
            }
            let loop_pos = i + npre;
            let npost = post.len();
            for (k, s) in post.into_iter().enumerate() {
                list.0.insert(loop_pos + 1 + k, s);
            }
            i = loop_pos + npost;
        }
        i += 1;
    }
}

/// Rewrite one strided loop in place; returns statements to insert
/// before it (`old = L`, F77 sets the variable before the trip test) and
/// after it (the guarded exhausted-value assignment).
fn rewrite_loop(
    stmt: &mut Stmt,
    unit: &mut ProgramUnit,
    stats: &mut NormalizeStats,
) -> (Vec<Stmt>, Vec<Stmt>) {
    let d = match &mut stmt.kind {
        StmtKind::Do(d) => d,
        _ => unreachable!(),
    };
    let step = d.step_expr().simplified().as_int().expect("checked const");
    let old_var = d.var.clone();
    let new_var = unit.symbols.unique_name(&format!("{old_var}__N"));
    unit.symbols.insert(Symbol::scalar(new_var.clone(), DataType::Integer));

    let lo = d.init.clone();
    let hi = d.limit.clone();
    // trip-count-minus-one: (U - L)/S with Fortran truncation
    let span = Expr::sub(hi.clone(), lo.clone()).simplified();
    let tm1 = Expr::div(span, Expr::Int(step)).simplified();

    // header: DO new = 0, (U-L)/S
    d.var = new_var.clone();
    d.init = Expr::Int(0);
    d.limit = tm1.clone();
    d.step = None;

    // body: old = L + new*S  (prepended)
    let recon = builder::assign_var(
        unit,
        &old_var,
        Expr::add(lo.clone(), Expr::mul(Expr::var(&new_var), Expr::Int(step))).simplified(),
    );
    d.body.0.insert(0, recon);

    // After the loop: old = L + ((U-L)/S + 1)*S, matching F77's exhausted
    // value for a non-empty loop; guarded by "the loop ran at least
    // once", i.e. the new unit-step header's limit (U-L)/S >= 0.
    let exit_val = Expr::add(
        lo,
        Expr::mul(Expr::add(tm1, Expr::Int(1)), Expr::Int(step)),
    )
    .simplified();
    let assign = builder::assign_var(unit, &old_var, exit_val);
    let guard_cond = Expr::bin(polaris_ir::BinOp::Ge, d.limit.clone(), Expr::Int(0));
    let guarded = builder::if_then(unit, guard_cond, vec![assign]);
    // F77 assigns the DO variable its initial value before testing the
    // trip count, so a zero-trip loop still leaves `old = L`.
    let pre = builder::assign_var(unit, &old_var, d_init_for_pre(&d.body));

    stats.loops_normalized += 1;
    (vec![pre], vec![guarded])
}

/// The reconstruction statement's `L` operand: the first body statement
/// is `old = L + new*S`; recover `L` by substituting `new = 0`... in
/// practice we kept `lo` cloned above, but the borrow on `d` makes it
/// simpler to re-derive from the reconstruction assignment.
fn d_init_for_pre(body: &StmtList) -> Expr {
    if let Some(Stmt { kind: StmtKind::Assign { rhs, .. }, .. }) = body.0.first() {
        // rhs = L + new*S ; with new := 0 this simplifies to L
        if let Expr::Bin { op: polaris_ir::BinOp::Add, lhs, .. } = rhs {
            return (**lhs).clone();
        }
        return rhs.clone();
    }
    Expr::Int(0)
}

/// Is `name` assigned anywhere in the list? (sanity helper for tests)
#[cfg(test)]
fn assigns(list: &StmtList, name: &str) -> bool {
    use polaris_ir::expr::LValue;
    let mut found = false;
    list.walk(&mut |s| {
        if let StmtKind::Assign { lhs: LValue::Var(v), .. } = &s.kind {
            if v == name {
                found = true;
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normalized(src: &str) -> (polaris_ir::Program, NormalizeStats) {
        let mut p = polaris_ir::parse(src).unwrap();
        let stats = run(&mut p);
        polaris_ir::validate::validate_program(&p)
            .unwrap_or_else(|e| panic!("{e}\n{}", polaris_ir::printer::print_program(&p)));
        (p, stats)
    }

    #[test]
    fn positive_stride_rewritten() {
        let src = "program t\nreal a(20)\ndo i = 2, 19, 3\n  a(i) = i*1.0\nend do\nprint *, i\nend\n";
        let (p, stats) = normalized(src);
        assert_eq!(stats.loops_normalized, 1);
        assert!(assigns(&p.units[0].body, "I"), "reconstruction assignment expected");
        let d = p.units[0].body.loops()[0];
        assert!(d.step.is_none());
        assert_eq!(d.init, Expr::Int(0));
        assert!(d.var.starts_with("I__N"));
    }

    #[test]
    fn unit_steps_untouched() {
        let src = "program t\nreal a(9)\ndo i = 1, 9\n  a(i) = 1.0\nend do\ndo i = 9, 1, -1\n  a(i) = a(i) + 1.0\nend do\nend\n";
        let (_, stats) = normalized(src);
        assert_eq!(stats.loops_normalized, 0);
    }

    #[test]
    fn nested_strided_loops_counted() {
        let src = "program t\nreal a(30,30)\ndo i = 1, 29, 2\n  do j = 30, 3, -4\n    a(i, j) = i*1.0 + j\n  end do\nend do\nend\n";
        let (_, stats) = normalized(src);
        assert_eq!(stats.loops_normalized, 2);
    }

    #[test]
    fn enables_dependence_analysis_on_strided_writes() {
        // A(I) with I = 1,3,5,... : after normalization the subscript is
        // 1 + 2*I__N — range test proves the loop parallel.
        let src = "program t\nreal a(100)\ndo i = 1, 99, 2\n  a(i) = i*1.0\nend do\nprint *, a(1)\nend\n";
        let mut p = polaris_ir::parse(src).unwrap();
        run(&mut p);
        let stats = crate::DdStats::new();
        let reports = crate::deps::analyze_unit(&mut p.units[0], &crate::PassOptions::polaris(), &stats);
        assert!(reports[0].parallel, "{reports:?}");
    }
}

//! Flow-sensitive range propagation (§3.3.1, "range propagation").
//!
//! Builds the [`RangeEnv`] that holds "symbolic lower and upper bounds
//! for each variable" at a given program point, by abstractly executing
//! the structured control flow from the start of the unit to the point:
//!
//! * `PARAMETER` constants contribute exact values,
//! * unconditional scalar assignments contribute exact symbolic values
//!   (`MP = M*P` makes `MP`'s range `[M*P, M*P]` — this is the
//!   flow-sensitive def-use information the paper obtains from its GSA
//!   form; Figure 4's proof falls out of it),
//! * `!$ASSERT` directives and enclosing `IF` conditions tighten ranges,
//! * enclosing `DO` headers contribute loop-variable intervals *and* the
//!   non-emptiness fact `init <= limit`,
//! * any re-assignment invalidates facts that mention the variable —
//!   including facts established before an enclosing loop for variables
//!   modified by earlier iterations of that loop.

use polaris_ir::expr::Expr;
use polaris_ir::stmt::{Stmt, StmtId, StmtKind, StmtList};
use polaris_ir::symbol::SymKind;
use polaris_ir::ProgramUnit;
use polaris_symbolic::poly::{DivPolicy, Poly};
use polaris_symbolic::{Range, RangeEnv};
use std::collections::BTreeSet;

/// The environment holding just before statement `target` executes
/// (on the path that reaches it). If `target` is not found the
/// environment reflects the end of the unit.
pub fn env_before(unit: &ProgramUnit, target: StmtId) -> RangeEnv {
    let mut env = RangeEnv::new();
    seed_parameters(unit, &mut env);
    walk(&unit.body, target, &mut env);
    env
}

/// The environment valid inside the body of the `DO` loop with statement
/// id `loop_id`: everything from [`env_before`] plus the loop variable's
/// interval and the non-emptiness fact.
pub fn env_in_loop(unit: &ProgramUnit, loop_id: StmtId) -> RangeEnv {
    let mut env = env_before(unit, loop_id);
    if let Some(stmt) = unit.body.find_stmt(loop_id) {
        if let StmtKind::Do(d) = &stmt.kind {
            assume_loop_header(&mut env, d.var.as_str(), &d.init, &d.limit, d.step.as_ref());
        }
    }
    env
}

/// Add a loop header's facts to an environment, handling negative
/// constant steps by swapping the bounds.
pub fn assume_loop_header(
    env: &mut RangeEnv,
    var: &str,
    init: &Expr,
    limit: &Expr,
    step: Option<&Expr>,
) {
    env.invalidate(var);
    let step_val = step.and_then(|s| s.simplified().as_int()).unwrap_or(1);
    if step_val >= 0 {
        env.assume_nonempty_loop(var, init, limit);
    } else {
        env.assume_nonempty_loop(var, limit, init);
    }
}

fn seed_parameters(unit: &ProgramUnit, env: &mut RangeEnv) {
    for sym in unit.symbols.iter() {
        if let SymKind::Parameter(value) = &sym.kind {
            if let Some(p) = Poly::from_expr(value, DivPolicy::Opaque) {
                env.set_fresh(sym.name.clone(), Range::exact(p));
            }
        }
    }
}

/// Walk `list` applying effects until `target` is reached.
/// Returns true if the target was found (walk stops there).
fn walk(list: &StmtList, target: StmtId, env: &mut RangeEnv) -> bool {
    for s in list {
        if s.id == target {
            return true;
        }
        match &s.kind {
            StmtKind::Assign { lhs, rhs, .. } => {
                apply_assign(env, lhs.name(), lhs.subs().is_empty(), rhs);
            }
            StmtKind::Assert { cond } => env.assume_cond(cond),
            StmtKind::Do(d) => {
                let inside = contains(&d.body, target);
                // Earlier iterations may already have run: every variable
                // the body assigns is unknown at this point.
                for v in assigned_vars(&d.body) {
                    env.invalidate(&v);
                }
                env.invalidate(&d.var);
                if inside {
                    assume_loop_header(env, &d.var, &d.init, &d.limit, d.step.as_ref());
                    if walk(&d.body, target, env) {
                        return true;
                    }
                    // target was reported inside but not found: defensive
                    return true;
                }
            }
            StmtKind::IfBlock { arms, else_body } => {
                let mut found_in = None;
                for (i, arm) in arms.iter().enumerate() {
                    if contains(&arm.body, target) {
                        found_in = Some(i);
                        break;
                    }
                }
                let in_else = found_in.is_none() && contains(else_body, target);
                if let Some(i) = found_in {
                    env.assume_cond(&arms[i].cond);
                    walk(&arms[i].body, target, env);
                    return true;
                }
                if in_else {
                    // On the else path all arm conditions are false; use
                    // the negation when it is a simple relation.
                    for arm in arms {
                        if let Expr::Bin { op, lhs, rhs } = &arm.cond {
                            if let Some(neg) = op.negate() {
                                env.assume_cond(&Expr::bin(
                                    neg,
                                    (**lhs).clone(),
                                    (**rhs).clone(),
                                ));
                            }
                        }
                    }
                    walk(else_body, target, env);
                    return true;
                }
                // Not inside: arms execute conditionally; kill their effects.
                for arm in arms {
                    for v in assigned_vars(&arm.body) {
                        env.invalidate(&v);
                    }
                }
                for v in assigned_vars(else_body) {
                    env.invalidate(&v);
                }
            }
            StmtKind::Call { args, .. } => {
                // By-reference semantics: arguments may be modified.
                for a in args {
                    match a {
                        Expr::Var(n) => env.invalidate(n),
                        Expr::Index { array, .. } => env.invalidate(array),
                        _ => {}
                    }
                }
            }
            StmtKind::Print { .. }
            | StmtKind::Return
            | StmtKind::Stop
            | StmtKind::Continue => {}
        }
    }
    false
}

fn apply_assign(env: &mut RangeEnv, name: &str, is_scalar: bool, rhs: &Expr) {
    if !is_scalar {
        // Array element store: kills whole-array value facts only.
        env.invalidate(name);
        return;
    }
    env.invalidate(name);
    if let Some(p) = Poly::from_expr(rhs, DivPolicy::Opaque) {
        if !p.mentions_var(name) {
            env.set_fresh(name, Range::exact(p));
        }
    }
}

/// Does `list` (recursively) contain statement `target`?
pub fn contains(list: &StmtList, target: StmtId) -> bool {
    let mut found = false;
    list.walk(&mut |s| {
        if s.id == target {
            found = true;
        }
    });
    found
}

/// All variable / array names assigned anywhere within `list`
/// (including loop variables and CALL arguments).
pub fn assigned_vars(list: &StmtList) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    list.walk(&mut |s| match &s.kind {
        StmtKind::Assign { lhs, .. } => {
            out.insert(lhs.name().to_string());
        }
        StmtKind::Do(d) => {
            out.insert(d.var.clone());
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                match a {
                    Expr::Var(n) => {
                        out.insert(n.clone());
                    }
                    Expr::Index { array, .. } => {
                        out.insert(array.clone());
                    }
                    _ => {}
                }
            }
        }
        _ => {}
    });
    out
}

/// Convenience: the statement (clone) with id `target`, plus whether it
/// is a DO loop.
pub fn find_stmt(unit: &ProgramUnit, target: StmtId) -> Option<Stmt> {
    unit.body.find_stmt(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_symbolic::{prove_ge, sign, Sign};

    fn unit_of(src: &str) -> ProgramUnit {
        let full = format!("program t\n{src}\nend\n");
        polaris_ir::parse(&full).unwrap().units.remove(0)
    }

    fn poly(src: &str) -> Poly {
        let u = unit_of(&format!("xtmp = {src}"));
        match &u.body.0[0].kind {
            StmtKind::Assign { rhs, .. } => Poly::from_expr(rhs, DivPolicy::Exact).unwrap(),
            _ => unreachable!(),
        }
    }

    /// Find the first loop's statement id.
    fn first_loop_id(u: &ProgramUnit) -> StmtId {
        let mut id = None;
        u.body.walk(&mut |s| {
            if id.is_none() && matches!(s.kind, StmtKind::Do(_)) {
                id = Some(s.id);
            }
        });
        id.unwrap()
    }

    #[test]
    fn parameters_are_exact() {
        let u = unit_of("integer n\nparameter (n = 64)\ndo i = 1, n\n x = i\nend do");
        let env = env_before(&u, first_loop_id(&u));
        assert_eq!(env.get("N").unwrap().as_exact(), Some(&Poly::int(64)));
    }

    #[test]
    fn figure4_global_defuse_proof() {
        // Paper Figure 4: MP = M*P before the loop; prove MP >= M*P.
        let u = unit_of("mp = m*p\ndo i = 1, 10\n  x = i\nend do");
        let env = env_before(&u, first_loop_id(&u));
        assert!(prove_ge(&poly("mp"), &poly("m*p"), &env));
    }

    #[test]
    fn reassignment_invalidates() {
        let u = unit_of("mp = m*p\nm = m + 1\ndo i = 1, 10\n  x = i\nend do");
        let env = env_before(&u, first_loop_id(&u));
        // M changed after MP's def: the fact MP = M*P (with the *new* M)
        // no longer holds.
        assert!(!prove_ge(&poly("mp"), &poly("m*p"), &env));
    }

    #[test]
    fn loop_body_assignments_kill_prior_facts() {
        let u = unit_of("k = 5\ndo i = 1, 10\n  k = k + 1\n  do j = 1, k\n    x = j\n  end do\nend do");
        // At the inner loop, K is not 5 anymore (earlier iterations of I
        // incremented it).
        let mut inner = None;
        u.body.walk(&mut |s| {
            if let StmtKind::Do(d) = &s.kind {
                if d.var == "J" {
                    inner = Some(s.id);
                }
            }
        });
        let env = env_before(&u, inner.unwrap());
        assert_eq!(env.get("K").and_then(|r| r.as_exact().cloned()), None);
    }

    #[test]
    fn enclosing_loop_gives_range_and_nonemptiness() {
        let u = unit_of("do j = 0, n - 1\n  do k = 0, j - 1\n    x = k\n  end do\nend do");
        let mut inner = None;
        u.body.walk(&mut |s| {
            if let StmtKind::Do(d) = &s.kind {
                if d.var == "K" {
                    inner = Some(s.id);
                }
            }
        });
        let env = env_in_loop(&u, inner.unwrap());
        // Inside the K loop: j >= 0, n >= 1 (outer nonempty), k <= j-1,
        // and the paper's n^2 + n > 0 follows.
        assert_eq!(sign(&poly("n"), &env), Sign::Pos);
        assert_eq!(sign(&poly("n**2 + n"), &env), Sign::Pos);
        assert!(prove_ge(&poly("j"), &poly("k + 1"), &env));
    }

    #[test]
    fn if_condition_assumed_inside_arm() {
        let u = unit_of("if (n > 3) then\n  do i = 1, n\n    x = i\n  end do\nend if");
        let env = env_in_loop(&u, first_loop_id(&u));
        assert!(sign(&poly("n - 4"), &env).is_nonneg());
    }

    #[test]
    fn else_branch_assumes_negation() {
        let u = unit_of("if (n > 3) then\n  y = 1\nelse\n  do i = 1, 2\n    x = i\n  end do\nend if");
        let env = env_in_loop(&u, first_loop_id(&u));
        // on the else path n <= 3
        assert!(sign(&poly("n - 4"), &env).is_neg());
    }

    #[test]
    fn assert_directive_contributes() {
        let u = unit_of("!$assert (m >= 2)\ndo i = 1, m\n  x = i\nend do");
        let env = env_before(&u, first_loop_id(&u));
        assert!(sign(&poly("m - 1"), &env).is_pos());
    }

    #[test]
    fn negative_step_swaps_bounds() {
        let u = unit_of("do i = 10, 2, -2\n  x = i\nend do");
        let env = env_in_loop(&u, first_loop_id(&u));
        assert!(prove_ge(&poly("i"), &poly("2"), &env));
        assert!(prove_ge(&poly("10"), &poly("i"), &env));
    }

    #[test]
    fn call_invalidates_arguments() {
        let u = unit_of("k = 7\ncall mangle(k)\ndo i = 1, 3\n  x = i\nend do");
        let env = env_before(&u, first_loop_id(&u));
        assert_eq!(env.get("K").and_then(|r| r.as_exact().cloned()), None);
    }

    #[test]
    fn trfd_x0_seed() {
        // X0 = 0 before the TRFD nest: exact value visible at the loop.
        let u = unit_of("x0 = 0\ndo i = 0, m - 1\n  x0 = x0 + 1\nend do");
        // before the loop X0 = 0...
        let env = env_before(&u, first_loop_id(&u));
        assert_eq!(env.get("X0").unwrap().as_exact(), Some(&Poly::int(0)));
    }
}

//! Reduction recognition (§3.2).
//!
//! Polaris "initially recognizes candidate reductions ... using the
//! Wildcard class", i.e. statements of the form
//!
//! ```fortran
//! A(a1, ..., an) = A(a1, ..., an) + b
//! ```
//!
//! where `b` and the subscripts do not reference `A`, `n` may be zero
//! (scalar reduction), and `+` generalizes to `*`, `-` (a sum with
//! negated operand) and the `MAX`/`MIN` intrinsic form. The pass *flags*
//! candidate statements; per-loop validation ("A is not referenced
//! elsewhere in the loop outside of other reduction statements") happens
//! when a specific loop is analyzed, and classification into
//! *single-address* vs *histogram* reductions depends on whether the
//! updated element varies across the loop's iterations.

use polaris_ir::expr::{Expr, LValue, RedOp};
use polaris_ir::pattern::{match_expr, Bindings};
use polaris_ir::stmt::{DoLoop, Reduction, StmtKind};
use polaris_ir::visit::collect_iteration_accesses;
use polaris_ir::Program;

/// Flag every reduction-shaped assignment in the program. Returns the
/// number of statements flagged.
pub fn flag_reductions(program: &mut Program) -> usize {
    let mut count = 0usize;
    for unit in &mut program.units {
        unit.body.walk_mut(&mut |stmt| {
            if let StmtKind::Assign { lhs, rhs, reduction } = &mut stmt.kind {
                if let Some(op) = recognize(lhs, rhs) {
                    *reduction = Some(op);
                    count += 1;
                }
            }
        });
    }
    count
}

/// Recognize the reduction operator of `lhs = rhs`, if any.
///
/// Uses the wildcard pattern machinery: the pattern `σ <op> _0` is
/// matched against the RHS with `σ` the LHS reference itself (a
/// non-linear pattern in the Polaris sense).
pub fn recognize(lhs: &LValue, rhs: &Expr) -> Option<RedOp> {
    let target = lhs.as_expr();
    let name = lhs.name();
    // Subscripts must not reference the reduction variable itself.
    if lhs.subs().iter().any(|s| s.references(name)) {
        return None;
    }
    let beta_ok = |b: &Expr| !b.references(name);

    // σ + _0  and  _0 + σ
    for pat in [
        Expr::add(target.clone(), Expr::Wildcard(0)),
        Expr::add(Expr::Wildcard(0), target.clone()),
    ] {
        if let Some(b) = match_expr(&pat, rhs) {
            if beta_ok(&b[&0]) {
                return Some(RedOp::Sum);
            }
        }
    }
    // σ - _0 : a sum reduction of the negated operand
    if let Some(b) = match_expr(&Expr::sub(target.clone(), Expr::Wildcard(0)), rhs) {
        if beta_ok(&b[&0]) {
            return Some(RedOp::Sum);
        }
    }
    // σ * _0  and  _0 * σ
    for pat in [
        Expr::mul(target.clone(), Expr::Wildcard(0)),
        Expr::mul(Expr::Wildcard(0), target.clone()),
    ] {
        if let Some(b) = match_expr(&pat, rhs) {
            if beta_ok(&b[&0]) {
                return Some(RedOp::Product);
            }
        }
    }
    // MAX(σ, _0) / MAX(_0, σ) / MIN(...)
    if let Expr::Call { name: f, args } = rhs {
        let op = match f.as_str() {
            "MAX" | "AMAX1" | "DMAX1" | "MAX0" => Some(RedOp::Max),
            "MIN" | "AMIN1" | "DMIN1" | "MIN0" => Some(RedOp::Min),
            _ => None,
        };
        if let Some(op) = op {
            if args.len() == 2 {
                let b: Option<Bindings> = if args[0] == target {
                    Some(Bindings::from([(0, args[1].clone())]))
                } else if args[1] == target {
                    Some(Bindings::from([(0, args[0].clone())]))
                } else {
                    None
                };
                if let Some(b) = b {
                    if beta_ok(&b[&0]) {
                        return Some(op);
                    }
                }
            }
        }
    }
    None
}

/// Validate the flagged reductions of one loop: for each variable with
/// flagged updates inside `d`, every access to that variable in the loop
/// must come from a flagged statement with the same operator. Returns
/// the per-loop reduction descriptors (empty if none validate).
pub fn validated_reductions(d: &DoLoop) -> Vec<Reduction> {
    let accesses = collect_iteration_accesses(d);
    // Gather candidate (var, op) pairs from flagged accesses.
    // Only the *write* of a flagged statement names the reduction
    // variable; flagged reads cover the β operand's variables too.
    let mut candidates: Vec<(String, RedOp)> = Vec::new();
    for a in &accesses {
        if let Some(op) = a.reduction {
            if a.is_write && !candidates.iter().any(|(n, _)| n == &a.name) {
                candidates.push((a.name.clone(), op));
            }
        }
    }
    let mut out = Vec::new();
    'cand: for (name, op) in candidates {
        let mut histogram = false;
        for a in &accesses {
            if a.name != name {
                continue;
            }
            match a.reduction {
                Some(o) if o == op => {
                    // Histogram when the updated element can differ across
                    // iterations of `d` or its inner loops: any subscript
                    // mentioning the loop variable or an inner loop
                    // variable (or another array — subscripted subscripts).
                    if !a.subs.is_empty() {
                        let varies = a.subs.iter().any(|s| {
                            s.references_var(&d.var)
                                || a.ctx.iter().any(|c| s.references_var(&c.var))
                                || !s.arrays().is_empty()
                        });
                        if varies {
                            histogram = true;
                        }
                    }
                }
                _ => continue 'cand, // touched outside a matching reduction
            }
        }
        out.push(Reduction { var: name, op, histogram });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_ir::stmt::StmtKind;

    fn unit_of(src: &str) -> polaris_ir::ProgramUnit {
        let full = format!("program t\n{src}\nend\n");
        let mut p = polaris_ir::parse(&full).unwrap();
        flag_reductions(&mut p);
        p.units.remove(0)
    }

    fn first_loop(u: &polaris_ir::ProgramUnit) -> &DoLoop {
        u.body.loops()[0]
    }

    #[test]
    fn scalar_sum_recognized() {
        let u = unit_of("do i = 1, n\n  s = s + a(i)\nend do");
        let reds = validated_reductions(first_loop(&u));
        assert_eq!(reds.len(), 1);
        assert_eq!(reds[0].var, "S");
        assert_eq!(reds[0].op, RedOp::Sum);
        assert!(!reds[0].histogram);
    }

    #[test]
    fn subtraction_is_sum_reduction() {
        let u = unit_of("do i = 1, n\n  s = s - a(i)\nend do");
        assert_eq!(validated_reductions(first_loop(&u))[0].op, RedOp::Sum);
    }

    #[test]
    fn commuted_and_product_forms() {
        let u = unit_of("do i = 1, n\n  s = a(i) + s\n  p = p * b(i)\nend do");
        let reds = validated_reductions(first_loop(&u));
        assert_eq!(reds.len(), 2);
        assert!(reds.iter().any(|r| r.var == "S" && r.op == RedOp::Sum));
        assert!(reds.iter().any(|r| r.var == "P" && r.op == RedOp::Product));
    }

    #[test]
    fn max_intrinsic_form() {
        let u = unit_of("do i = 1, n\n  t = max(t, abs(a(i)))\nend do");
        let reds = validated_reductions(first_loop(&u));
        assert_eq!(reds[0].op, RedOp::Max);
    }

    #[test]
    fn histogram_reduction_classified() {
        let u = unit_of(
            "real h(100)\ninteger bin(1000)\ndo i = 1, n\n  h(bin(i)) = h(bin(i)) + 1.0\nend do",
        );
        let reds = validated_reductions(first_loop(&u));
        assert_eq!(reds.len(), 1);
        assert_eq!(reds[0].var, "H");
        assert!(reds[0].histogram);
    }

    #[test]
    fn single_address_array_reduction() {
        // Summing into A(K) with K loop-invariant: single-address.
        let u = unit_of("real a(10)\ndo i = 1, n\n  a(k) = a(k) + b(i)\nend do");
        let reds = validated_reductions(first_loop(&u));
        assert_eq!(reds.len(), 1);
        assert!(!reds[0].histogram);
    }

    #[test]
    fn other_reference_invalidates() {
        // S read outside the reduction statement: not a reduction.
        let u = unit_of("do i = 1, n\n  s = s + a(i)\n  b(i) = s\nend do");
        assert!(validated_reductions(first_loop(&u)).is_empty());
    }

    #[test]
    fn subscript_referencing_array_rejected() {
        // A(A(I)) = A(A(I)) + 1 : subscript references A itself
        let u = unit_of("integer a(10)\ndo i = 1, n\n  a(a(i)) = a(a(i)) + 1\nend do");
        let mut flagged = 0;
        u.body.walk(&mut |s| {
            if let StmtKind::Assign { reduction: Some(_), .. } = s.kind {
                flagged += 1;
            }
        });
        assert_eq!(flagged, 0);
    }

    #[test]
    fn rhs_referencing_var_elsewhere_rejected() {
        // S = S + S is not a (simple) reduction
        let u = unit_of("do i = 1, n\n  s = s + s\nend do");
        assert!(validated_reductions(first_loop(&u)).is_empty());
    }

    #[test]
    fn mixed_operators_invalidate() {
        let u = unit_of("do i = 1, n\n  s = s + a(i)\n  s = s * b(i)\nend do");
        assert!(validated_reductions(first_loop(&u)).is_empty());
    }

    #[test]
    fn nested_loop_subscript_is_histogram() {
        let u = unit_of(
            "real f(100)\ndo i = 1, n\n  do j = 1, m\n    f(j) = f(j) + g(i, j)\n  end do\nend do",
        );
        // For the outer I loop: F(J) varies with inner loop var J.
        let reds = validated_reductions(first_loop(&u));
        assert_eq!(reds.len(), 1);
        assert!(reds[0].histogram);
        // For the inner J loop: F(J) is a fixed element per iteration...
        // but it *does* mention J (the loop var) so it is histogram there
        // too — which is the correct conservative classification, since
        // different iterations update different elements.
        let inner = u.body.loops()[1];
        let reds_inner = validated_reductions(inner);
        assert_eq!(reds_inner.len(), 1);
    }
}

//! Inline expansion (§3.1).
//!
//! Polaris' interprocedural story at this stage is *full inlining*: "the
//! driver repeatedly expands subroutine and function calls in the
//! top-level program unit". The implementation follows the paper's
//! template scheme: the first time a subprogram is expanded, a
//! **template** is created and all *site-independent* transformations
//! (local-variable renaming, common-block mapping) are applied to it;
//! each call site then copies the template into a **work object** and
//! applies the *site-specific* transformations (formal→actual remapping,
//! statement re-numbering, loop re-labelling) before splicing it in.
//!
//! Formal/actual mappings supported (everything the evaluation suite
//! needs; anything else is a transform error, not silent wrong code):
//!
//! * scalar formal ← scalar variable: renamed (by-reference aliasing),
//! * scalar formal ← expression or array element: substituted; if the
//!   formal is written, an array-element actual is substituted on the
//!   left-hand side too (by-reference store-through), while a general
//!   expression actual must be read-only,
//! * array formal ← conforming whole array: renamed,
//! * array formal ← rank-1 whole array: references are **linearized**
//!   column-major, the case the paper notes "the range test has been
//!   able to overcome the potential loss of dependence accuracy caused
//!   by linearization",
//! * user `FUNCTION`s whose body is a single assignment are expanded at
//!   expression level.

use polaris_ir::error::{CompileError, Result};
use polaris_ir::expr::{Expr, LValue};
use polaris_ir::stmt::{Stmt, StmtKind, StmtList};
use polaris_ir::symbol::{Dim, SymKind, Symbol};
use polaris_ir::{Program, ProgramUnit, UnitKind};
use std::collections::BTreeMap;

/// Statistics for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InlineStats {
    pub call_sites_expanded: usize,
    pub function_calls_expanded: usize,
    pub templates_built: usize,
}

const MAX_ROUNDS: usize = 32;

/// Fully inline every CALL (and supported function call) in the main
/// program unit. Callee units are left in place (Polaris kept them for
/// selective code generation); the main unit becomes call-free.
pub fn inline_all(program: &mut Program) -> Result<InlineStats> {
    let mut stats = InlineStats::default();
    let mut templates: BTreeMap<String, Template> = BTreeMap::new();
    let callees: BTreeMap<String, ProgramUnit> = program
        .units
        .iter()
        .filter(|u| !u.is_main())
        .map(|u| (u.name.clone(), u.clone()))
        .collect();
    let main_idx = program
        .units
        .iter()
        .position(|u| u.is_main())
        .ok_or_else(|| CompileError::transform("inline expansion requires a PROGRAM unit"))?;
    let main = &mut program.units[main_idx];

    for _round in 0..MAX_ROUNDS {
        let mut any = false;
        // Subroutine calls.
        let mut body = std::mem::take(&mut main.body);
        expand_calls(&mut body, main, &callees, &mut templates, &mut stats, &mut any)?;
        main.body = body;
        // Single-assignment function calls in expressions.
        let fexpanded = expand_functions(main, &callees, &mut stats)?;
        if !any && !fexpanded {
            return Ok(stats);
        }
    }
    Err(CompileError::transform(format!(
        "inline expansion did not converge after {MAX_ROUNDS} rounds (recursive calls?)"
    )))
}

/// A prepared callee: site-independent transformations already applied.
#[derive(Debug, Clone)]
struct Template {
    unit: ProgramUnit,
    /// Renamed local (non-formal) symbols: original → template name.
    locals: BTreeMap<String, String>,
}

/// Build the template for `callee`: rename every non-formal local to
/// `<CALLEE>__<NAME>`; COMMON variables keep their names (COMMON is a
/// global namespace, so the caller's declaration aliases naturally —
/// the validity check that the caller declares the same block layout
/// happens at instantiation).
fn build_template(callee: &ProgramUnit, stats: &mut InlineStats) -> Result<Template> {
    if matches!(callee.kind, UnitKind::Function(_)) {
        return Err(CompileError::transform(format!(
            "CALL of FUNCTION `{}`",
            callee.name
        )));
    }
    let mut unit = callee.clone();
    let mut locals = BTreeMap::new();
    let names: Vec<String> = unit.symbols.iter().map(|s| s.name.clone()).collect();
    for name in names {
        let sym = unit.symbols.get(&name).unwrap().clone();
        if sym.is_arg || sym.common.is_some() || matches!(sym.kind, SymKind::External) {
            continue;
        }
        let new_name = format!("{}__{}", unit.name, name);
        locals.insert(name.clone(), new_name.clone());
    }
    // Apply the renaming to body and symbol table.
    for (old, new) in &locals {
        rename_everywhere(&mut unit, old, new);
    }
    stats.templates_built += 1;
    Ok(Template { unit, locals })
}

fn rename_everywhere(unit: &mut ProgramUnit, old: &str, new: &str) {
    unit.body.map_exprs(&mut |e| e.rename_symbol(old, new));
    unit.body.walk_mut(&mut |s| match &mut s.kind {
        StmtKind::Assign { lhs, .. } => rename_lvalue(lhs, old, new),
        StmtKind::Do(d)
            if d.var == old => {
                d.var = new.to_string();
            }
        _ => {}
    });
    if let Some(mut sym) = unit.symbols.remove(old) {
        sym.name = new.to_string();
        // dimension expressions may reference renamed symbols — handled
        // by the sweep below.
        unit.symbols.insert(sym);
    }
    // Rename inside every array declaration's bounds.
    let names: Vec<String> = unit.symbols.iter().map(|s| s.name.clone()).collect();
    for n in names {
        if let Some(sym) = unit.symbols.get_mut(&n) {
            if let SymKind::Array(dims) = &mut sym.kind {
                for d in dims {
                    d.lo = d.lo.rename_symbol(old, new);
                    d.hi = d.hi.rename_symbol(old, new);
                }
            }
        }
    }
}

fn rename_lvalue(lhs: &mut LValue, old: &str, new: &str) {
    match lhs {
        LValue::Var(n) if n == old => *n = new.to_string(),
        LValue::Index { array, .. } if array == old => *array = new.to_string(),
        _ => {}
    }
}

/// Walk `list`, replacing CALL statements by inlined bodies.
fn expand_calls(
    list: &mut StmtList,
    caller: &mut ProgramUnit,
    callees: &BTreeMap<String, ProgramUnit>,
    templates: &mut BTreeMap<String, Template>,
    stats: &mut InlineStats,
    any: &mut bool,
) -> Result<()> {
    let mut i = 0usize;
    while i < list.0.len() {
        match &mut list.0[i].kind {
            StmtKind::Call { name, args } => {
                let name = name.clone();
                let args = args.clone();
                let Some(callee) = callees.get(&name) else {
                    return Err(CompileError::transform(format!(
                        "CALL to unknown subroutine `{name}`"
                    ))
                    .with_line(list.0[i].line));
                };
                if !templates.contains_key(&name) {
                    templates.insert(name.clone(), build_template(callee, stats)?);
                }
                let template = templates.get(&name).unwrap().clone();
                let inlined = instantiate(&template, &args, caller)?;
                let n = inlined.0.len();
                list.0.splice(i..=i, inlined.0);
                stats.call_sites_expanded += 1;
                *any = true;
                // Skip over the spliced statements: calls the inlined body
                // contains are handled by the next round, which bounds
                // recursive chains by MAX_ROUNDS instead of looping here.
                i += n;
            }
            StmtKind::Do(d) => {
                let mut body = std::mem::take(&mut d.body);
                expand_calls(&mut body, caller, callees, templates, stats, any)?;
                let d = match &mut list.0[i].kind {
                    StmtKind::Do(d) => d,
                    _ => unreachable!(),
                };
                d.body = body;
                i += 1;
            }
            StmtKind::IfBlock { .. } => {
                if let StmtKind::IfBlock { arms, else_body } = &mut list.0[i].kind {
                    let mut arms_t = std::mem::take(arms);
                    let mut else_t = std::mem::take(else_body);
                    for arm in arms_t.iter_mut() {
                        expand_calls(&mut arm.body, caller, callees, templates, stats, any)?;
                    }
                    expand_calls(&mut else_t, caller, callees, templates, stats, any)?;
                    if let StmtKind::IfBlock { arms, else_body } = &mut list.0[i].kind {
                        *arms = arms_t;
                        *else_body = else_t;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    Ok(())
}

/// Copy a template into a work object, apply site-specific transforms,
/// and return the statements to splice in.
fn instantiate(
    template: &Template,
    actuals: &[Expr],
    caller: &mut ProgramUnit,
) -> Result<StmtList> {
    let callee = &template.unit;
    if actuals.len() != callee.args.len() {
        return Err(CompileError::transform(format!(
            "call to `{}`: {} actuals for {} formals",
            callee.name,
            actuals.len(),
            callee.args.len()
        )));
    }
    let mut work = callee.clone();

    // RETURN handling: allowed only as the final executable statement.
    strip_trailing_return(&mut work.body)?;
    let mut has_return = false;
    work.body.walk(&mut |s| {
        if matches!(s.kind, StmtKind::Return) {
            has_return = true;
        }
    });
    if has_return {
        return Err(CompileError::transform(format!(
            "cannot inline `{}`: RETURN not in tail position",
            callee.name
        )));
    }

    // Formal → actual remapping.
    for (formal, actual) in callee.args.iter().zip(actuals) {
        let fsym = work
            .symbols
            .get(formal)
            .cloned()
            .ok_or_else(|| CompileError::transform(format!("formal `{formal}` undeclared")))?;
        match (&fsym.kind, actual) {
            (SymKind::Scalar, Expr::Var(act)) => {
                rename_everywhere(&mut work, formal, act);
                ensure_symbol(caller, act, Symbol::scalar(act.clone(), fsym.ty));
            }
            (SymKind::Scalar, act) => {
                // Expression or array-element actual: substitution. If the
                // formal is written, only an array element can serve as a
                // by-reference store-through target.
                let written = writes_to(&work.body, formal);
                match act {
                    Expr::Index { array, subs } if written => {
                        // The element's subscripts must be invariant in the
                        // callee (they are caller expressions; the callee
                        // must not modify what they reference).
                        for sub in subs {
                            for v in sub.variables() {
                                if writes_to(&work.body, &v) {
                                    return Err(CompileError::transform(format!(
                                        "call to `{}`: array-element actual subscript `{v}` is modified by the callee",
                                        callee.name
                                    )));
                                }
                            }
                        }
                        substitute_symbol(&mut work, formal, act);
                        let _ = array;
                    }
                    _ if written => {
                        return Err(CompileError::transform(format!(
                            "call to `{}`: formal `{formal}` is written but actual is not a variable",
                            callee.name
                        )));
                    }
                    _ => substitute_symbol(&mut work, formal, act),
                }
            }
            (SymKind::Array(fdims), Expr::Var(act)) => {
                // whole-array actual
                let caller_sym = caller.symbols.get(act).cloned();
                let Some(caller_sym) = caller_sym else {
                    return Err(CompileError::transform(format!(
                        "call to `{}`: actual array `{act}` undeclared in caller",
                        callee.name
                    )));
                };
                let adims = match &caller_sym.kind {
                    SymKind::Array(d) => d.clone(),
                    _ => {
                        return Err(CompileError::transform(format!(
                            "call to `{}`: array formal `{formal}` bound to scalar `{act}`",
                            callee.name
                        )))
                    }
                };
                if fdims.len() == adims.len() {
                    // conforming (or assumed-size trailing dim): rename
                    rename_everywhere(&mut work, formal, act);
                } else if adims.len() == 1 {
                    // linearize column-major into the rank-1 actual
                    linearize_refs(&mut work, formal, act, fdims)?;
                } else {
                    return Err(CompileError::transform(format!(
                        "call to `{}`: cannot map rank-{} formal `{formal}` onto rank-{} actual `{act}`",
                        callee.name,
                        fdims.len(),
                        adims.len()
                    )));
                }
            }
            (SymKind::Array(_), other) => {
                return Err(CompileError::transform(format!(
                    "call to `{}`: array formal `{formal}` needs a whole-array actual, got `{other}`",
                    callee.name
                )));
            }
            (SymKind::Parameter(_) | SymKind::External, _) => {
                return Err(CompileError::transform(format!(
                    "call to `{}`: formal `{formal}` has unsupported kind",
                    callee.name
                )));
            }
        }
    }

    // Import the callee's renamed locals into the caller's symbol table,
    // uniquifying against existing caller names.
    let mut final_rename: BTreeMap<String, String> = BTreeMap::new();
    for tmpl_name in template.locals.values() {
        if let Some(sym) = work.symbols.get(tmpl_name).cloned() {
            let target = caller.symbols.unique_name(tmpl_name);
            if target != *tmpl_name {
                final_rename.insert(tmpl_name.clone(), target.clone());
            }
            let mut s = sym;
            s.name = target.clone();
            s.is_arg = false;
            caller.symbols.insert(s);
        }
    }
    for (old, new) in &final_rename {
        rename_everywhere(&mut work, old, new);
    }
    // COMMON blocks: the caller must declare every block the callee uses
    // with the same member list (F-Mini's conformance requirement).
    for cb in &work.commons {
        let matching = caller.commons.iter().find(|c| c.name == cb.name);
        match matching {
            Some(c) if c.vars == cb.vars => {}
            Some(_) => {
                return Err(CompileError::transform(format!(
                    "call to `{}`: COMMON /{}/ layout differs between caller and callee",
                    callee.name, cb.name
                )));
            }
            None => {
                return Err(CompileError::transform(format!(
                    "call to `{}`: caller does not declare COMMON /{}/",
                    callee.name, cb.name
                )));
            }
        }
    }

    // Fresh statement ids, loop labels, and loop provenance ids for the
    // spliced statements: a callee loop expanded at two call sites yields
    // two distinct loops, so each copy needs its own LoopId (the per-unit
    // uniqueness invariant validate_unit enforces).
    let site = caller.stmt_id_watermark();
    let mut body = work.body;
    body.walk_mut(&mut |s| {
        s.id = caller.fresh_stmt_id();
        if let StmtKind::Do(d) = &mut s.kind {
            d.label = format!("{}@{}", d.label, site);
            d.loop_id = polaris_ir::stmt::LoopId(s.id.0);
        }
    });
    Ok(body)
}

/// Remove a RETURN if it is the last executable statement.
fn strip_trailing_return(body: &mut StmtList) -> Result<()> {
    if matches!(body.0.last().map(|s| &s.kind), Some(StmtKind::Return)) {
        body.0.pop();
    }
    Ok(())
}

/// Does the body write scalar-or-array `name`?
fn writes_to(body: &StmtList, name: &str) -> bool {
    crate::rangeprop::assigned_vars(body).contains(name)
}

/// Replace reads *and writes* of symbol `name` with expression `value`
/// (for writes, `value` must itself be an array-element reference).
fn substitute_symbol(unit: &mut ProgramUnit, name: &str, value: &Expr) {
    unit.body.map_exprs(&mut |e| match &e {
        Expr::Var(n) if n == name => value.clone(),
        _ => e,
    });
    unit.body.walk_mut(&mut |s| {
        if let StmtKind::Assign { lhs, .. } = &mut s.kind {
            if lhs.name() == name && lhs.subs().is_empty() {
                if let Expr::Index { array, subs } = value {
                    *lhs = LValue::Index { array: array.clone(), subs: subs.clone() };
                }
            }
        }
    });
    unit.symbols.remove(name);
}

/// Rewrite references `F(i1, …, ik)` into `ACT(linear)` with the
/// column-major linearization of the formal's declared dimensions.
fn linearize_refs(
    unit: &mut ProgramUnit,
    formal: &str,
    actual: &str,
    fdims: &[Dim],
) -> Result<()> {
    let dims = fdims.to_vec();
    let lin = |subs: &[Expr]| -> Expr {
        // offset = Σ (s_k - lo_k) * Π_{m<k} extent_m   (0-based), +1
        let mut offset: Option<Expr> = None;
        let mut stride: Option<Expr> = None;
        for (k, s) in subs.iter().enumerate() {
            let zero_based = Expr::sub(s.clone(), dims[k].lo.clone()).simplified();
            let term = match &stride {
                None => zero_based,
                Some(st) => Expr::mul(zero_based, st.clone()).simplified(),
            };
            offset = Some(match offset {
                None => term,
                Some(o) => Expr::add(o, term).simplified(),
            });
            let extent = Expr::add(
                Expr::sub(dims[k].hi.clone(), dims[k].lo.clone()),
                Expr::Int(1),
            )
            .simplified();
            stride = Some(match stride {
                None => extent,
                Some(st) => Expr::mul(st, extent).simplified(),
            });
        }
        Expr::add(offset.unwrap_or(Expr::Int(0)), Expr::Int(1)).simplified()
    };
    unit.body.map_exprs(&mut |e| match &e {
        Expr::Index { array, subs } if array == formal => {
            Expr::Index { array: actual.to_string(), subs: vec![lin(subs)] }
        }
        _ => e,
    });
    unit.body.walk_mut(&mut |s| {
        if let StmtKind::Assign { lhs, .. } = &mut s.kind {
            if lhs.name() == formal {
                let subs = lhs.subs().to_vec();
                *lhs = LValue::Index { array: actual.to_string(), subs: vec![lin(&subs)] };
            }
        }
    });
    unit.symbols.remove(formal);
    Ok(())
}

fn ensure_symbol(unit: &mut ProgramUnit, name: &str, default: Symbol) {
    if !unit.symbols.contains(name) {
        unit.symbols.insert(default);
    }
}

/// Expand calls to single-assignment user FUNCTIONs inside expressions.
/// Returns true if anything changed.
fn expand_functions(
    unit: &mut ProgramUnit,
    callees: &BTreeMap<String, ProgramUnit>,
    stats: &mut InlineStats,
) -> Result<bool> {
    // Gather single-assignment functions: body = [ F = expr ] (+RETURN).
    let mut simple: BTreeMap<String, (Vec<String>, Expr)> = BTreeMap::new();
    for (name, u) in callees {
        if !matches!(u.kind, UnitKind::Function(_)) {
            continue;
        }
        let mut body: Vec<&Stmt> = u.body.0.iter().collect();
        if matches!(body.last().map(|s| &s.kind), Some(StmtKind::Return)) {
            body.pop();
        }
        if body.len() != 1 {
            continue;
        }
        if let StmtKind::Assign { lhs: LValue::Var(res), rhs, .. } = &body[0].kind {
            if *res == u.name {
                simple.insert(name.clone(), (u.args.clone(), rhs.clone()));
            }
        }
    }
    let mut changed = false;
    let mut err: Option<CompileError> = None;
    unit.body.map_exprs(&mut |e| match &e {
        Expr::Call { name, args } if simple.contains_key(name) => {
            let (formals, bodyexpr) = &simple[name];
            if formals.len() != args.len() {
                err = Some(CompileError::transform(format!(
                    "function `{name}`: arity mismatch"
                )));
                return e;
            }
            let mut out = bodyexpr.clone();
            for (f, a) in formals.iter().zip(args) {
                out = match a {
                    // variable actual: alias both scalar and array uses
                    Expr::Var(n) => out.rename_symbol(f, n),
                    _ => out.substitute_var(f, a),
                };
            }
            changed = true;
            stats.function_calls_expanded += 1;
            out
        }
        _ => e,
    });
    if let Some(e) = err {
        return Err(e);
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_ir::printer::print_program;

    fn inline_src(src: &str) -> (Program, InlineStats) {
        let mut p = polaris_ir::parse(src).unwrap();
        let stats = inline_all(&mut p).unwrap_or_else(|e| panic!("{e}\n{}", print_program(&p)));
        polaris_ir::validate::validate_program(&p)
            .unwrap_or_else(|e| panic!("invalid after inline: {e}\n{}", print_program(&p)));
        (p, stats)
    }

    fn main_text(p: &Program) -> String {
        let mut s = String::new();
        polaris_ir::printer::print_unit(p.main().unwrap(), &mut s);
        s
    }

    #[test]
    fn simple_subroutine_inlines() {
        let src = "program t\nreal a(10)\ncall init(a, 10)\nprint *, a(1)\nend\n\
                   subroutine init(v, n)\nreal v(n)\ninteger n\ndo i = 1, n\n  v(i) = 0.0\nend do\nreturn\nend\n";
        let (p, stats) = inline_src(src);
        assert_eq!(stats.call_sites_expanded, 1);
        let out = main_text(&p);
        assert!(!out.contains("CALL"), "{out}");
        assert!(out.contains("A(I) = 0.0") || out.contains("A(INIT__I) = 0.0"), "{out}");
    }

    #[test]
    fn locals_are_renamed_and_do_not_collide() {
        // caller has its own TMP; callee's TMP must not capture it.
        let src = "program t\nreal tmp\ntmp = 5.0\ncall f(x)\nprint *, tmp, x\nend\n\
                   subroutine f(y)\nreal y, tmp\ntmp = 1.0\ny = tmp + 1.0\nend\n";
        let (p, _) = inline_src(src);
        let out = main_text(&p);
        assert!(out.contains("F__TMP = 1.0"), "{out}");
        assert!(out.contains("TMP = 5.0"), "{out}");
    }

    #[test]
    fn scalar_expression_actual_substituted() {
        let src = "program t\ncall g(2 + 3)\nend\n\
                   subroutine g(k)\ninteger k\nreal b(10)\nb(1) = k * 2\nend\n";
        let (p, _) = inline_src(src);
        let out = main_text(&p);
        assert!(out.contains("(2+3)*2") || out.contains("(2+3)*2"), "{out}");
    }

    #[test]
    fn written_expression_actual_rejected() {
        let src = "program t\ncall g(2 + 3)\nend\n\
                   subroutine g(k)\ninteger k\nk = 1\nend\n";
        let mut p = polaris_ir::parse(src).unwrap();
        assert!(inline_all(&mut p).is_err());
    }

    #[test]
    fn array_element_actual_with_write() {
        let src = "program t\nreal v(10)\ncall bump(v(3))\nend\n\
                   subroutine bump(x)\nreal x\nx = x + 1.0\nend\n";
        let (p, _) = inline_src(src);
        let out = main_text(&p);
        assert!(out.contains("V(3) = V(3)+1.0"), "{out}");
    }

    #[test]
    fn nested_calls_expand_transitively() {
        let src = "program t\ncall outer\nend\n\
                   subroutine outer\ncall inner\nend\n\
                   subroutine inner\nreal c(5)\nc(1) = 1.0\nend\n";
        let (p, stats) = inline_src(src);
        assert_eq!(stats.call_sites_expanded, 2);
        assert!(!main_text(&p).contains("CALL"));
    }

    #[test]
    fn recursion_detected() {
        let src = "program t\ncall a\nend\n\
                   subroutine a\ncall b\nend\n\
                   subroutine b\ncall a\nend\n";
        let mut p = polaris_ir::parse(src).unwrap();
        assert!(inline_all(&mut p).is_err());
    }

    #[test]
    fn linearization_of_2d_formal_onto_1d_actual() {
        // the paper's redimensioning case: REAL V(100) passed to M(10,10)
        let src = "program t\nreal v(100)\ncall fill(v)\nend\n\
                   subroutine fill(m)\nreal m(10, 10)\ndo j = 1, 10\n  do i = 1, 10\n    m(i, j) = 1.0\n  end do\nend do\nend\n";
        let (p, _) = inline_src(src);
        let out = main_text(&p);
        // column-major: V(i-1 + (j-1)*10 + 1)
        assert!(out.contains("V(") && !out.contains("M("), "{out}");
        assert!(out.contains("10") && out.contains("+1)"), "{out}");
    }

    #[test]
    fn common_blocks_must_conform() {
        let bad = "program t\nreal u(10)\ncommon /blk/ u, other\ncall s\nend\n\
                   subroutine s\nreal u(10)\ncommon /blk/ u\nu(1) = 2.0\nend\n";
        let mut p = polaris_ir::parse(bad).unwrap();
        assert!(inline_all(&mut p).is_err());
        let good = "program t\nreal u(10)\ncommon /blk/ u\ncall s\nend\n\
                    subroutine s\nreal u(10)\ncommon /blk/ u\nu(1) = 2.0\nend\n";
        let (p2, _) = inline_src(good);
        assert!(main_text(&p2).contains("U(1) = 2.0"));
    }

    #[test]
    fn single_assignment_function_expands() {
        let src = "program t\nx = sq(3.0) + sq(4.0)\nend\n\
                   real function sq(v)\nreal v\nsq = v * v\nreturn\nend\n";
        let (p, stats) = inline_src(src);
        assert_eq!(stats.function_calls_expanded, 2);
        let out = main_text(&p);
        assert!(out.contains("3.0*3.0"), "{out}");
    }

    #[test]
    fn statement_ids_stay_unique_after_inlining() {
        let src = "program t\ncall z\ncall z\nend\n\
                   subroutine z\nreal w(3)\ndo i = 1, 3\n  w(i) = i\nend do\nend\n";
        let (p, _) = inline_src(src);
        // validate_program (called in inline_src) enforces id uniqueness;
        // also loop labels must differ between the two expansions.
        let main = p.main().unwrap();
        let labels: Vec<String> = main.body.loops().iter().map(|d| d.label.clone()).collect();
        assert_eq!(labels.len(), 2);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn mid_body_return_rejected() {
        let src = "program t\ncall r(x)\nend\n\
                   subroutine r(v)\nreal v\nif (v > 0.0) then\n  return\nend if\nv = 1.0\nend\n";
        let mut p = polaris_ir::parse(src).unwrap();
        assert!(inline_all(&mut p).is_err());
    }

    #[test]
    fn templates_are_reused_across_sites() {
        let src = "program t\ncall z\ncall z\ncall z\nend\n\
                   subroutine z\ny = 1.0\nend\n";
        let (_, stats) = inline_src(src);
        assert_eq!(stats.call_sites_expanded, 3);
        assert_eq!(stats.templates_built, 1);
    }
}

//! The per-loop dependence driver: combines the dependence tests (§3.3),
//! privatization (§3.4), reduction validation (§3.2) and the run-time
//! test fallback (§3.5) into a parallel / speculative / serial decision
//! for every `DO` loop, and annotates the IR with the result.

use crate::ddtest::{banerjee, gcd, range_test, DdStats};
use crate::privatize;
use crate::rangeprop;
use crate::reduction;
use crate::PassOptions;
use polaris_ir::expr::Expr;
use polaris_ir::stmt::{DoLoop, LoopId, ParallelInfo, SpecInfo, StmtId, StmtKind, StmtList};
use polaris_ir::visit::{collect_iteration_accesses, find_serializing_stmt, Access};
use polaris_ir::ProgramUnit;
use polaris_symbolic::poly::{DivPolicy, Poly};
use polaris_symbolic::{Rat, RangeEnv};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome for one loop (also used by the evaluation harness).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    pub label: String,
    /// Provenance id of the loop (see [`polaris_ir::stmt::LoopId`]); the
    /// key the run-time dependence oracle joins observations on.
    pub loop_id: LoopId,
    pub unit: String,
    /// Proven parallel at compile time.
    pub parallel: bool,
    /// Chosen for run-time (speculative) parallelization.
    pub speculative: bool,
    /// Reason the loop stayed serial.
    pub serial_reason: Option<String>,
    pub private: Vec<String>,
    pub copy_out: Vec<String>,
    pub reductions: Vec<String>,
    /// Proven index-array facts visible to this loop's subscripted
    /// subscripts, as `NAME: fact fact ...` strings (for diagnostics).
    pub index_facts: Vec<String>,
}

/// Analyze every loop of `unit` and attach [`ParallelInfo`] annotations.
pub fn analyze_unit(
    unit: &mut ProgramUnit,
    opts: &PassOptions,
    stats: &DdStats,
) -> Vec<LoopReport> {
    analyze_unit_recorded(unit, opts, stats, &polaris_obs::Recorder::disabled())
}

/// [`analyze_unit`] with an observability [`polaris_obs::Recorder`]
/// attached: emits a `unit:<name>` span enclosing a `loop:<label>` span
/// (carrying the loop's [`LoopId`]) per analyzed loop.
pub fn analyze_unit_recorded(
    unit: &mut ProgramUnit,
    opts: &PassOptions,
    stats: &DdStats,
    rec: &polaris_obs::Recorder,
) -> Vec<LoopReport> {
    let _unit_span =
        rec.span_with("compile", format!("unit:{}", unit.name), 1, None, Some(unit.name.clone()));
    // Phase 1 (read-only): decide per loop, keyed by provenance id
    // (labels are human-readable but inlining can in principle produce
    // collisions; LoopId is the uniqueness-checked key).
    let mut decisions: BTreeMap<LoopId, (ParallelInfo, LoopReport)> = BTreeMap::new();
    {
        let mut env = RangeEnv::new();
        seed_params(unit, &mut env, stats);
        let unit_ref: &ProgramUnit = unit;
        analyze_list(&unit_ref.body, unit_ref, &mut env, opts, stats, rec, &mut decisions);
    }
    // Phase 2: apply annotations. (`unit_span` closes by drop when the
    // function returns, after the reports are assembled.)
    let mut reports: Vec<LoopReport> = Vec::new();
    unit.body.walk_mut(&mut |s| {
        if let StmtKind::Do(d) = &mut s.kind {
            if let Some((info, report)) = decisions.remove(&d.loop_id) {
                d.par = info;
                reports.push(report);
            }
        }
    });
    reports.sort_by(|a, b| a.label.cmp(&b.label));
    reports
}

fn seed_params(unit: &ProgramUnit, env: &mut RangeEnv, stats: &DdStats) {
    use polaris_ir::symbol::SymKind;
    for sym in unit.symbols.iter() {
        if let SymKind::Parameter(value) = &sym.kind {
            if let Some(p) = Poly::from_expr(value, DivPolicy::Opaque) {
                env.set_fresh(sym.name.clone(), polaris_symbolic::Range::exact(p));
                bump(&stats.ranges_propagated);
            }
        }
    }
}

fn bump(c: &std::cell::Cell<u64>) {
    c.set(c.get() + 1);
}

/// Recursive walk mirroring [`crate::rangeprop`]'s abstract execution.
fn analyze_list(
    list: &StmtList,
    unit: &ProgramUnit,
    env: &mut RangeEnv,
    opts: &PassOptions,
    stats: &DdStats,
    rec: &polaris_obs::Recorder,
    out: &mut BTreeMap<LoopId, (ParallelInfo, LoopReport)>,
) {
    for s in list {
        match &s.kind {
            StmtKind::Do(d) => {
                for v in rangeprop::assigned_vars(&d.body) {
                    env.invalidate(&v);
                }
                env.invalidate(&d.var);
                let mut body_env = env.clone();
                rangeprop::assume_loop_header(
                    &mut body_env,
                    &d.var,
                    &d.init,
                    &d.limit,
                    d.step.as_ref(),
                );
                bump(&stats.ranges_propagated);
                // The loop span covers the nested walk too, so inner
                // loops appear as children of their enclosing loop.
                let loop_span = rec.loop_span("compile", &d.label, d.loop_id);
                let decision = analyze_loop(d, s.id, unit, &body_env, opts, stats);
                out.insert(d.loop_id, decision);
                analyze_list(&d.body, unit, &mut body_env, opts, stats, rec, out);
                loop_span.end();
            }
            StmtKind::IfBlock { arms, else_body } => {
                for arm in arms {
                    let mut arm_env = env.clone();
                    arm_env.assume_cond(&arm.cond);
                    analyze_list(&arm.body, unit, &mut arm_env, opts, stats, rec, out);
                }
                let mut else_env = env.clone();
                analyze_list(else_body, unit, &mut else_env, opts, stats, rec, out);
                let mut killed: BTreeSet<String> = BTreeSet::new();
                for arm in arms {
                    killed.extend(rangeprop::assigned_vars(&arm.body));
                }
                killed.extend(rangeprop::assigned_vars(else_body));
                for v in killed {
                    env.invalidate(&v);
                }
            }
            StmtKind::Assign { lhs, rhs, .. } => {
                env.invalidate(lhs.name());
                if lhs.subs().is_empty() {
                    if let Some(p) = Poly::from_expr(rhs, DivPolicy::Opaque) {
                        if !p.mentions_var(lhs.name()) {
                            env.set_fresh(lhs.name(), polaris_symbolic::Range::exact(p));
                            bump(&stats.ranges_propagated);
                        }
                    }
                }
            }
            StmtKind::Assert { cond } => {
                env.assume_cond(cond);
                bump(&stats.ranges_propagated);
            }
            StmtKind::Call { args, .. } => {
                for a in args {
                    match a {
                        Expr::Var(n) => env.invalidate(n),
                        Expr::Index { array, .. } => env.invalidate(array),
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

fn serial(
    d: &DoLoop,
    unit: &ProgramUnit,
    reason: impl Into<String>,
) -> (ParallelInfo, LoopReport) {
    let reason = reason.into();
    let info = ParallelInfo { serial_reason: Some(reason.clone()), ..Default::default() };
    let report = LoopReport {
        label: d.label.clone(),
        loop_id: d.loop_id,
        unit: unit.name.clone(),
        parallel: false,
        speculative: false,
        serial_reason: Some(reason),
        private: Vec::new(),
        copy_out: Vec::new(),
        reductions: Vec::new(),
        index_facts: Vec::new(),
    };
    (info, report)
}

/// Decide one loop. `env` holds ranges valid inside the body.
fn analyze_loop(
    d: &DoLoop,
    stmt_id: StmtId,
    unit: &ProgramUnit,
    env: &RangeEnv,
    opts: &PassOptions,
    stats: &DdStats,
) -> (ParallelInfo, LoopReport) {
    if let Some(why) = find_serializing_stmt(&d.body) {
        return serial(d, unit, why);
    }
    let Some(step) = d.step_expr().simplified().as_int() else {
        return serial(d, unit, "non-constant loop step");
    };
    if step == 0 {
        return serial(d, unit, "zero loop step");
    }

    // Idiom facts local to an iteration.
    let mut env = env.clone();
    let _compactions = privatize::recognize_compactions(&d.body, &mut env);

    let accesses = collect_iteration_accesses(d);
    let mut reductions = reduction::validated_reductions(d);
    if !opts.array_reductions {
        reductions.retain(|r| {
            // keep scalar reductions only
            accesses.iter().filter(|a| a.name == r.var).all(|a| a.subs.is_empty())
        });
    }
    if !opts.reductions {
        reductions.clear();
    }
    let reduction_vars: BTreeSet<String> = reductions.iter().map(|r| r.var.clone()).collect();

    let inner_do_vars: BTreeSet<String> = {
        let mut s = BTreeSet::new();
        d.body.walk(&mut |st| {
            if let StmtKind::Do(inner) = &st.kind {
                s.insert(inner.var.clone());
            }
        });
        s
    };

    let mut private: Vec<String> = Vec::new();
    let mut copy_out: Vec<String> = Vec::new();

    // --- index-array properties (§ subscripted subscripts) -----------------
    // Arrays written inside this loop: their fill-time facts are stale
    // here, so neither seeding nor the disjointness rule may use them.
    let written_arrays: BTreeSet<String> = accesses
        .iter()
        .filter(|a| a.is_write && !a.is_scalar())
        .map(|a| a.name.clone())
        .collect();
    if opts.index_props {
        // Register proven whole-array value bounds so the range test and
        // the §3.4 region analysis can bound reads like `A(IDX(L))`.
        let seeded = crate::idxprop::seed_array_value_ranges(unit, &written_arrays, &mut env);
        for _ in 0..seeded {
            bump(&stats.ranges_propagated);
        }
    }
    // Facts visible to this loop's subscripted subscripts (diagnostics).
    let index_facts: Vec<String> = if opts.index_props {
        let mut used: BTreeSet<String> = BTreeSet::new();
        for a in &accesses {
            for sub in &a.subs {
                for arr in sub.arrays() {
                    if written_arrays.contains(&arr) {
                        continue;
                    }
                    if let Some(p) = unit.symbols.get(&arr).and_then(|s| s.props.as_ref()) {
                        used.insert(format!("{arr}: {}", p.facts().join(" ")));
                    }
                }
            }
        }
        used.into_iter().collect()
    } else {
        Vec::new()
    };

    // --- scalars -----------------------------------------------------------
    let scalar_writes: BTreeSet<String> = accesses
        .iter()
        .filter(|a| a.is_write && a.is_scalar())
        .map(|a| a.name.clone())
        .collect();
    for name in &scalar_writes {
        if inner_do_vars.contains(name) {
            private.push(name.clone());
            continue;
        }
        if reduction_vars.contains(name) {
            continue;
        }
        if opts.scalar_privatization && privatize::scalar_privatizable(d, name) {
            if privatize::live_after(unit, stmt_id, name) {
                if privatize::scalar_write_unconditional(d, name) {
                    private.push(name.clone());
                    copy_out.push(name.clone());
                } else {
                    return serial(
                        d,
                        unit,
                        format!("scalar `{name}` live after loop with conditional final write"),
                    );
                }
            } else {
                private.push(name.clone());
            }
        } else {
            return serial(d, unit, format!("scalar recurrence on `{name}`"));
        }
    }

    // --- arrays ------------------------------------------------------------
    let array_names: BTreeSet<String> = accesses
        .iter()
        .filter(|a| !a.is_scalar())
        .map(|a| a.name.clone())
        .collect();
    let mut speculative_tracked: Vec<String> = Vec::new();
    let mut dropped_reductions: Vec<String> = Vec::new();
    for name in &array_names {
        // has_write must consider *all* accesses: reduction flags are
        // only meaningful when the reduction validated for this loop
        // (stale flags must not make the array look read-only).
        let has_write = accesses.iter().any(|a| a.name == *name && a.is_write);
        if !has_write {
            continue; // read-only array
        }
        // If any access of this array was flagged as a reduction but the
        // reduction did not validate, the flags are stale for this loop —
        // include those accesses too. Subscripts are resolved through
        // in-iteration scalar reaching definitions up front so both the
        // dependence tests and the speculation trigger see through
        // `IP = IPOS(P); V(IP) = ...` forms.
        let refs: Vec<Access> = accesses
            .iter()
            .filter(|a| a.name == *name)
            .map(|a| {
                let mut a2 = (*a).clone();
                a2.subs = privatize::resolve_scalar_subscripts(&accesses, &a2);
                a2
            })
            .collect();
        let refs: Vec<&Access> = refs.iter().collect();

        if pairs_independent(d, &refs, step, &env, opts, stats) {
            // Proven independent outright: "the data-dependence pass
            // later ... removes the flags for those statements which it
            // can prove have no loop-carried dependences" (§3.2) — a
            // plain DOALL beats paying the reduction merge.
            if reduction_vars.contains(name) {
                dropped_reductions.push(name.clone());
            }
            continue;
        }
        // The classic tests failed (typically an abstention on an opaque
        // `A(IDX(I))` subscript): consult proven index-array properties —
        // an injective `IDX` over a contained domain makes the scatter a
        // DOALL (Bhosale & Eigenmann-style subscripted-subscript rule).
        if opts.index_props
            && pairs_disjoint_by_props(
                d,
                &refs,
                step,
                unit,
                &scalar_writes,
                &inner_do_vars,
                &written_arrays,
                &env,
                stats,
            )
        {
            if reduction_vars.contains(name) {
                dropped_reductions.push(name.clone());
            }
            continue;
        }
        if reduction_vars.contains(name) {
            continue; // validated reduction: handled by merge at run time
        }
        let declared: Option<Vec<(Poly, Poly)>> = unit.symbols.get(name).and_then(|sym| {
            sym.dims()
                .iter()
                .map(|dim| {
                    Some((
                        Poly::from_expr(&dim.lo, DivPolicy::Opaque)?,
                        Poly::from_expr(&dim.hi, DivPolicy::Opaque)?,
                    ))
                })
                .collect()
        });
        let priv_ok = opts.array_privatization
            && privatize::array_privatizable_with_decl(d, name, &env, declared.as_deref())
                .is_ok();
        if priv_ok
            && !privatize::live_after(unit, stmt_id, name) {
                private.push(name.clone());
                continue;
            }
            // privatizable but the values escape: fall through to the
            // run-time test, which handles copy-out, before giving up.
        // Speculate only when the opaque accesses sit directly in this
        // loop's body (the innermost enclosing loop of the scatter):
        // speculating an enclosing loop would re-test the same elements
        // across outer iterations and fail spuriously.
        if opts.speculation
            && has_subscripted_subscript(&refs)
            && refs.iter().all(|a| a.ctx.is_empty())
        {
            speculative_tracked.push(name.clone());
            continue;
        }
        if priv_ok {
            return serial(d, unit, format!("array `{name}` privatizable but live after loop"));
        }
        return serial(d, unit, format!("possible carried dependence on array `{name}`"));
    }

    // --- assemble ------------------------------------------------------------
    private.sort();
    private.dedup();
    copy_out.sort();
    copy_out.dedup();
    // Reductions only matter if the variable is actually updated here,
    // and proven-independent arrays do not need the reduction transform.
    let reductions: Vec<_> = reductions
        .into_iter()
        .filter(|r| accesses.iter().any(|a| a.name == r.var && a.is_write))
        .filter(|r| !dropped_reductions.contains(&r.var))
        .collect();
    let red_names: Vec<String> =
        reductions.iter().map(|r| format!("{}:{}", r.op.fortran(), r.var)).collect();

    if !speculative_tracked.is_empty() {
        let info = ParallelInfo {
            parallel: false,
            private: private.clone(),
            copy_out: copy_out.clone(),
            reductions: reductions.clone(),
            speculative: Some(SpecInfo {
                tracked: speculative_tracked.clone(),
                privatized: Vec::new(),
            }),
            lastvalue: Vec::new(),
            serial_reason: None,
        };
        let report = LoopReport {
            label: d.label.clone(),
            loop_id: d.loop_id,
            unit: unit.name.clone(),
            parallel: false,
            speculative: true,
            serial_reason: None,
            private,
            copy_out,
            reductions: red_names,
            index_facts,
        };
        return (info, report);
    }

    let info = ParallelInfo {
        parallel: true,
        private: private.clone(),
        copy_out: copy_out.clone(),
        reductions,
        speculative: None,
        lastvalue: Vec::new(),
        serial_reason: None,
    };
    let report = LoopReport {
        label: d.label.clone(),
        loop_id: d.loop_id,
        unit: unit.name.clone(),
        parallel: true,
        speculative: false,
        serial_reason: None,
        private,
        copy_out,
        reductions: red_names,
        index_facts,
    };
    (info, report)
}

/// Bridge the driver's [`Access`] view to the idxprop disjointness rule:
/// build the per-access subscript/context records, the varying-scalar
/// set (body-written scalars + inner loop variables, minus the tested
/// variable itself), and a property lookup that answers `None` for any
/// array written inside this loop (stale facts).
#[allow(clippy::too_many_arguments)]
fn pairs_disjoint_by_props(
    d: &DoLoop,
    refs: &[&Access],
    step: i64,
    unit: &ProgramUnit,
    scalar_writes: &BTreeSet<String>,
    inner_do_vars: &BTreeSet<String>,
    written_arrays: &BTreeSet<String>,
    env: &RangeEnv,
    stats: &DdStats,
) -> bool {
    let Some(self_loop) = loop_as_inner(d, step) else {
        return false;
    };
    let mut varying: BTreeSet<String> = scalar_writes.clone();
    varying.extend(inner_do_vars.iter().cloned());
    varying.remove(&d.var);
    let accesses: Vec<crate::idxprop::PropAccess<'_>> = refs
        .iter()
        .map(|a| crate::idxprop::PropAccess {
            write: a.is_write,
            subs: &a.subs,
            ctx_vars: a.ctx.iter().map(|c| c.var.clone()).collect(),
        })
        .collect();
    let props = |n: &str| {
        if written_arrays.contains(&n.to_ascii_uppercase()) {
            return None;
        }
        unit.symbols.get(n).and_then(|s| s.props.clone())
    };
    crate::idxprop::pairs_disjoint_via_props(&accesses, &self_loop, &varying, env, &props, stats)
}

/// Does any reference use an array element as a subscript (the §3.5
/// trigger for run-time testing)?
fn has_subscripted_subscript(refs: &[&Access]) -> bool {
    refs.iter().any(|a| a.subs.iter().any(|s| !s.arrays().is_empty()))
}

/// Are all (write, any) pairs of `refs` (subscripts pre-resolved)
/// independent at loop `d`?
fn pairs_independent(
    d: &DoLoop,
    refs: &[&Access],
    step: i64,
    env: &RangeEnv,
    opts: &PassOptions,
    stats: &DdStats,
) -> bool {
    let self_loop = match loop_as_inner(d, step) {
        Some(sl) => sl,
        None => return false,
    };
    for (i, w) in refs.iter().enumerate() {
        if !w.is_write {
            continue;
        }
        for (j, o) in refs.iter().enumerate() {
            if j < i && o.is_write {
                continue; // (w2, w1) already tested as (w1, w2)
            }
            if !pair_independent(d, w, o, step, &self_loop, env, opts, stats) {
                return false;
            }
        }
    }
    true
}

fn loop_as_inner(d: &DoLoop, step: i64) -> Option<range_test::InnerLoop> {
    Some(range_test::InnerLoop {
        var: d.var.clone(),
        lo: Poly::from_expr(&d.init, DivPolicy::Exact)?,
        hi: Poly::from_expr(&d.limit, DivPolicy::Exact)?,
        step,
    })
}

fn access_refspec(a: &Access) -> Option<range_test::RefSpec> {
    let mut inner = Vec::new();
    for c in &a.ctx {
        inner.push(range_test::InnerLoop {
            var: c.var.clone(),
            lo: Poly::from_expr(&c.init, DivPolicy::Exact)?,
            hi: Poly::from_expr(&c.limit, DivPolicy::Exact)?,
            step: c.step.simplified().as_int()?,
        });
    }
    let mut subs = Vec::new();
    for s in &a.subs {
        subs.push(Poly::from_expr(s, DivPolicy::Exact)?);
    }
    Some(range_test::RefSpec { subs, inner })
}

#[allow(clippy::too_many_arguments)]
fn pair_independent(
    d: &DoLoop,
    f: &Access,
    g: &Access,
    step: i64,
    self_loop: &range_test::InnerLoop,
    env: &RangeEnv,
    opts: &PassOptions,
    stats: &DdStats,
) -> bool {
    let (fr, gr) = (access_refspec(f), access_refspec(g));
    // Range-test query accounting: every pair the driver asks about is a
    // `run`, partitioned into proved / disproved / abstained (the last
    // when the subscripts or bounds fall outside the symbolic fragment).
    if opts.range_test {
        bump(&stats.range_tests_run);
        if fr.is_none() || gr.is_none() {
            bump(&stats.range_abstained);
        }
    }
    let (Some(fr), Some(gr)) = (fr, gr) else {
        return false;
    };
    if opts.range_test {
        if range_test::no_carried_dependence(
            &fr,
            &gr,
            &d.var,
            step,
            self_loop,
            env,
            stats,
            opts.permutation,
        ) {
            bump(&stats.range_proved);
            return true;
        }
        bump(&stats.range_disproved);
    }
    if opts.linear_tests && linear_pair_independent(d, f, g, &fr, &gr, stats) {
        return true;
    }
    false
}

/// GCD + Banerjee on one pair. Requires linear subscripts with constant
/// coefficients; unknown bounds become wide sentinels (sound: the real
/// iteration space is a subset).
fn linear_pair_independent(
    d: &DoLoop,
    f: &Access,
    g: &Access,
    fr: &range_test::RefSpec,
    gr: &range_test::RefSpec,
    stats: &DdStats,
) -> bool {
    const WIDE: i128 = 1 << 24;
    let bounds = |il: &range_test::InnerLoop| -> (i128, i128) {
        let lo = il.lo.as_constant().and_then(|r| r.as_integer()).unwrap_or(-WIDE);
        let hi = il.hi.as_constant().and_then(|r| r.as_integer()).unwrap_or(WIDE);
        if il.step < 0 {
            (hi, lo)
        } else {
            (lo, hi)
        }
    };
    // Variable universe: tested loop first, then f's ctx; g's ctx loops
    // with matching names are "common", the rest are free.
    for dim in 0..fr.subs.len() {
        let fvars: Vec<String> =
            std::iter::once(d.var.clone()).chain(f.ctx.iter().map(|c| c.var.clone())).collect();
        let gvars: Vec<String> =
            std::iter::once(d.var.clone()).chain(g.ctx.iter().map(|c| c.var.clone())).collect();
        let Some((frest, fco)) = fr.subs[dim].linear_in(&fvars) else { continue };
        let Some((grest, gco)) = gr.subs[dim].linear_in(&gvars) else { continue };
        // The non-index parts must cancel to a constant.
        let Some(diff) = frest.checked_sub(&grest) else { continue };
        let Some(c0) = diff.as_constant().and_then(|r| r.as_integer()) else {
            continue;
        };
        // GCD quick test.
        let fr_rats: Vec<Rat> = fco.clone();
        let gr_rats: Vec<Rat> = gco.clone();
        if gcd::independent(Rat::int(c0), &fr_rats, Rat::ZERO, &gr_rats, stats) {
            return true;
        }
        // Banerjee: common = tested loop + ctx loops sharing names.
        let step_ok = |il: &range_test::InnerLoop| il.step.abs() == 1;
        let mut common = Vec::new();
        let mut free = Vec::new();
        let to_int = |r: &Rat| r.as_integer();
        let Some(a0) = to_int(&fco[0]) else { continue };
        let Some(b0) = to_int(&gco[0]) else { continue };
        // tested loop bounds
        let dl = loop_as_inner(d, if d.step_expr().simplified().as_int().unwrap_or(1) < 0 { -1 } else { 1 });
        let Some(dl) = dl else { continue };
        if !step_ok(&dl) {
            continue;
        }
        let (lo, hi) = bounds(&dl);
        common.push(banerjee::Coupled { a: a0, b: b0, lo, hi });
        let mut bad = false;
        // f's ctx loops
        for (k, c) in f.ctx.iter().enumerate() {
            let Some(a) = to_int(&fco[k + 1]) else { bad = true; break };
            let gk = g.ctx.iter().position(|gc| gc.var == c.var);
            let il = &fr.inner[k];
            if !step_ok(il) {
                bad = true;
                break;
            }
            let (lo, hi) = bounds(il);
            match gk {
                Some(gi) => {
                    let Some(b) = to_int(&gco[gi + 1]) else { bad = true; break };
                    common.push(banerjee::Coupled { a, b, lo, hi });
                }
                None => {
                    if a != 0 {
                        free.push(banerjee::Free { c: a, lo, hi });
                    }
                }
            }
        }
        if bad {
            continue;
        }
        // g-only ctx loops
        for (k, c) in g.ctx.iter().enumerate() {
            if f.ctx.iter().any(|fc| fc.var == c.var) {
                continue;
            }
            let Some(b) = to_int(&gco[k + 1]) else { bad = true; break };
            let il = &gr.inner[k];
            if !step_ok(il) {
                bad = true;
                break;
            }
            let (lo, hi) = bounds(il);
            if b != 0 {
                free.push(banerjee::Free { c: -b, lo, hi });
            }
        }
        if bad {
            continue;
        }
        if !banerjee::carried_dependence_possible(c0, &common, 0, &free, stats) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassOptions;

    fn analyze(src: &str, opts: &PassOptions) -> (polaris_ir::Program, Vec<LoopReport>) {
        let mut p = polaris_ir::parse(src).unwrap();
        crate::constprop::run(&mut p);
        let stats = DdStats::new();
        let mut reports = Vec::new();
        for unit in &mut p.units {
            reports.extend(analyze_unit(unit, opts, &stats));
        }
        (p, reports)
    }

    fn report<'a>(reports: &'a [LoopReport], frag: &str) -> &'a LoopReport {
        reports
            .iter()
            .find(|r| r.label.contains(frag))
            .unwrap_or_else(|| panic!("no loop labelled like {frag}: {reports:?}"))
    }

    #[test]
    fn independent_loop_is_parallel() {
        let src = "program t\nreal a(100)\ndo i = 1, 100\n  a(i) = i * 2.0\nend do\nend\n";
        let (_, r) = analyze(src, &PassOptions::polaris());
        assert!(r[0].parallel, "{r:?}");
    }

    #[test]
    fn recurrence_is_serial() {
        let src = "program t\nreal a(101)\ndo i = 1, 100\n  a(i) = a(i+1) + 1.0\nend do\nend\n";
        let (_, r) = analyze(src, &PassOptions::polaris());
        assert!(!r[0].parallel);
        assert!(r[0].serial_reason.as_deref().unwrap().contains("A"));
    }

    #[test]
    fn scalar_temp_privatized() {
        let src = "program t\nreal a(100), b(100)\ndo i = 1, 100\n  t = a(i) * 2.0\n  b(i) = t + 1.0\nend do\nend\n";
        let (p, r) = analyze(src, &PassOptions::polaris());
        assert!(r[0].parallel);
        assert_eq!(r[0].private, vec!["T"]);
        // annotation landed on the IR
        let d = p.units[0].body.loops()[0];
        assert!(d.par.parallel);
        assert_eq!(d.par.private, vec!["T"]);
    }

    #[test]
    fn reduction_validated_and_annotated() {
        let src = "program t\nreal a(100)\ns = 0.0\ndo i = 1, 100\n  s = s + a(i)\nend do\nprint *, s\nend\n";
        let mut p = polaris_ir::parse(src).unwrap();
        crate::reduction::flag_reductions(&mut p);
        let stats = DdStats::new();
        let opts = PassOptions::polaris();
        let mut reports = Vec::new();
        for unit in &mut p.units {
            reports.extend(analyze_unit(unit, &opts, &stats));
        }
        assert!(reports[0].parallel, "{reports:?}");
        assert_eq!(reports[0].reductions, vec!["+:S"]);
    }

    #[test]
    fn io_serializes() {
        let src = "program t\nreal a(10)\ndo i = 1, 10\n  print *, a(i)\nend do\nend\n";
        let (_, r) = analyze(src, &PassOptions::polaris());
        assert!(!r[0].parallel);
        assert!(r[0].serial_reason.as_deref().unwrap().contains("I/O"));
    }

    #[test]
    fn nonlinear_subscript_needs_range_test() {
        // A(n*i + j) dense blocks: Polaris parallel; VFA (linear only) serial.
        let src = "program t\nreal a(10000)\n!$assert (n >= 1)\ndo i = 0, 99\n  do j = 1, n\n    a(n*i + j) = 1.0\n  end do\nend do\nend\n";
        let (_, r) = analyze(src, &PassOptions::polaris());
        assert!(report(&r, "do4").parallel, "{r:?}");
        let (_, r2) = analyze(src, &PassOptions::vfa());
        assert!(!report(&r2, "do4").parallel, "{r2:?}");
    }

    #[test]
    fn linear_case_handled_by_both() {
        let src = "program t\nreal a(100,100)\ndo i = 1, 100\n  do j = 1, 100\n    a(i, j) = 1.0\n  end do\nend do\nend\n";
        let (_, r) = analyze(src, &PassOptions::polaris());
        assert!(r.iter().all(|x| x.parallel), "{r:?}");
        let (_, r2) = analyze(src, &PassOptions::vfa());
        assert!(r2.iter().all(|x| x.parallel), "{r2:?}");
    }

    #[test]
    fn vfa_banerjee_proves_constant_bounds_case() {
        // A(i) = A(i + 200): distance exceeds the iteration count.
        let src = "program t\nreal a(400)\ndo i = 1, 100\n  a(i) = a(i + 200)\nend do\nend\n";
        let (_, r) = analyze(src, &PassOptions::vfa());
        assert!(r[0].parallel, "{r:?}");
    }

    #[test]
    fn subscripted_subscript_goes_speculative() {
        let src = "program t\nreal a(100)\ninteger key(100)\ndo i = 1, 100\n  a(key(i)) = a(key(i)) + 1.0\nend do\nend\n";
        // make it not look like a reduction: different sides
        let src2 = "program t\nreal a(100), b(100)\ninteger key(100)\ndo i = 1, 100\n  a(key(i)) = b(i)\nend do\nprint *, a(1)\nend\n";
        let _ = src;
        let (p, r) = analyze(src2, &PassOptions::polaris());
        assert!(r[0].speculative, "{r:?}");
        let d = p.units[0].body.loops()[0];
        assert_eq!(d.par.speculative.as_ref().unwrap().tracked, vec!["A"]);
        // VFA has no run-time fallback
        let (_, r2) = analyze(src2, &PassOptions::vfa());
        assert!(!r2[0].speculative && !r2[0].parallel);
    }

    #[test]
    fn injective_index_scatter_parallel_via_props() {
        // Identity fill proves IDX injective over 1..100; the scatter
        // through it is then a DOALL — no LRPD shadows needed.
        let src = "program t\nreal a(100), b(100)\ninteger idx(100)\n\
                   do i = 1, 100\n  idx(i) = i\nend do\n\
                   do i = 1, 100\n  a(idx(i)) = b(i)\nend do\n\
                   print *, a(1)\nend\n";
        let mut p = polaris_ir::parse(src).unwrap();
        crate::idxprop::annotate(&mut p);
        let stats = DdStats::new();
        let opts = PassOptions::polaris();
        let mut reports = Vec::new();
        for unit in &mut p.units {
            reports.extend(analyze_unit(unit, &opts, &stats));
        }
        let scatter = report(&reports, "do7");
        assert!(scatter.parallel && !scatter.speculative, "{reports:?}");
        assert_eq!(stats.props_outcomes().1, 1, "proved via the property rule");
        assert_eq!(scatter.index_facts,
            vec!["IDX: strictly-increasing injective permutation bounded"]);
        // The annotation landed on the IR too.
        let d = p.units[0].body.loops()[1];
        assert!(d.par.parallel);
    }

    #[test]
    fn prefix_sum_scatter_parallel_via_props() {
        // CSR-style rowptr: strictly increasing accumulation with a
        // variable (but >= 1) increment; consumer scatter is a DOALL.
        let src = "program t\nreal a(500), b(100)\ninteger ps(100)\n\
                   ps(1) = 1\ndo i = 2, 100\n  ps(i) = ps(i-1) + mod(i, 4) + 1\nend do\n\
                   do i = 1, 100\n  a(ps(i)) = b(i)\nend do\n\
                   print *, a(1)\nend\n";
        let mut p = polaris_ir::parse(src).unwrap();
        crate::idxprop::annotate(&mut p);
        let stats = DdStats::new();
        let opts = PassOptions::polaris();
        let mut reports = Vec::new();
        for unit in &mut p.units {
            reports.extend(analyze_unit(unit, &opts, &stats));
        }
        let scatter = report(&reports, "do8");
        assert!(scatter.parallel && !scatter.speculative, "{reports:?}");
        // The fill loop itself carries the recurrence and stays serial.
        assert!(!report(&reports, "do5").parallel);
    }

    #[test]
    fn out_of_domain_scatter_falls_back_to_lrpd() {
        // The fill covers 1..50 but the scatter runs to 100: elements
        // 51..100 hold unproven values, so the property rule refuses and
        // the loop goes to the run-time test instead.
        let src = "program t\nreal a(100), b(100)\ninteger idx(100)\n\
                   do i = 1, 50\n  idx(i) = i\nend do\n\
                   do i = 1, 100\n  a(idx(i)) = b(i)\nend do\n\
                   print *, a(1)\nend\n";
        let mut p = polaris_ir::parse(src).unwrap();
        crate::idxprop::annotate(&mut p);
        let stats = DdStats::new();
        let opts = PassOptions::polaris();
        let mut reports = Vec::new();
        for unit in &mut p.units {
            reports.extend(analyze_unit(unit, &opts, &stats));
        }
        let scatter = report(&reports, "do7");
        assert!(scatter.speculative && !scatter.parallel, "{reports:?}");
        let (run, proved) = stats.props_outcomes();
        assert!(run >= 1 && proved == 0, "rule consulted but refused");
    }

    #[test]
    fn non_injective_index_scatter_stays_speculative() {
        // MOD fill is bounded but not injective: duplicate targets are
        // a real cross-iteration output dependence; must go to LRPD.
        let src = "program t\nreal a(16), b(100)\ninteger bin(100)\n\
                   do i = 1, 100\n  bin(i) = mod(i*7, 16) + 1\nend do\n\
                   do i = 1, 100\n  a(bin(i)) = b(i)\nend do\n\
                   print *, a(1)\nend\n";
        let mut p = polaris_ir::parse(src).unwrap();
        crate::idxprop::annotate(&mut p);
        let stats = DdStats::new();
        let opts = PassOptions::polaris();
        let mut reports = Vec::new();
        for unit in &mut p.units {
            reports.extend(analyze_unit(unit, &opts, &stats));
        }
        let scatter = report(&reports, "do7");
        assert!(scatter.speculative && !scatter.parallel, "{reports:?}");
        // Bounded fact is still surfaced for diagnostics.
        assert_eq!(scatter.index_facts, vec!["BIN: bounded"]);
    }

    #[test]
    fn array_privatization_gates_outer_loop() {
        let src = "program t\nreal a(100), b(100,100), c(100,100)\ninteger m\nm = 60\ndo i = 1, 100\n  do j = 1, m\n    a(j) = b(i, j)\n  end do\n  do k = 1, m\n    c(i, k) = a(k) * 2.0\n  end do\nend do\nend\n";
        let (_, r) = analyze(src, &PassOptions::polaris());
        let outer = report(&r, "do5");
        assert!(outer.parallel, "{r:?}");
        assert!(outer.private.contains(&"A".to_string()));
        // VFA cannot privatize arrays
        let (_, r2) = analyze(src, &PassOptions::vfa());
        assert!(!report(&r2, "do5").parallel);
    }

    #[test]
    fn live_after_blocks_array_privatization() {
        let src = "program t\nreal a(100), b(100,100), c(100,100)\ninteger m\nm = 60\ndo i = 1, 100\n  do j = 1, m\n    a(j) = b(i, j)\n  end do\n  do k = 1, m\n    c(i, k) = a(k) * 2.0\n  end do\nend do\nprint *, a(1)\nend\n";
        let (_, r) = analyze(src, &PassOptions::polaris());
        let outer = report(&r, "do5");
        assert!(!outer.parallel);
        assert!(outer.serial_reason.as_deref().unwrap().contains("live after"));
    }

    #[test]
    fn copy_out_for_live_scalar() {
        let src = "program t\nreal a(100), b(100)\ndo i = 1, 100\n  t = a(i)\n  b(i) = t\nend do\nprint *, t\nend\n";
        let (_, r) = analyze(src, &PassOptions::polaris());
        assert!(r[0].parallel, "{r:?}");
        assert_eq!(r[0].copy_out, vec!["T"]);
    }

    #[test]
    fn inner_loop_vars_are_private() {
        let src = "program t\nreal a(100,100)\ndo i = 1, 100\n  do j = 1, 100\n    a(i, j) = 1.0\n  end do\nend do\nend\n";
        let (_, r) = analyze(src, &PassOptions::polaris());
        let outer = report(&r, "do3");
        assert!(outer.private.contains(&"J".to_string()));
    }

    #[test]
    fn triangular_symbolic_loop_parallel() {
        // the induction-produced TRFD form, outer loop
        let src = "program t\nreal a(100000)\ninteger x\n!$assert (n >= 1)\nx = 0\ndo i = 0, m - 1\n  do j = 0, n - 1\n    do k = 0, j - 1\n      a(k + 1 + (i*(n**2+n) + j**2 - j)/2) = 1.0\n    end do\n  end do\nend do\nend\n";
        let (_, r) = analyze(src, &PassOptions::polaris());
        assert!(r.iter().all(|x| x.parallel), "{r:?}");
        let (_, r2) = analyze(src, &PassOptions::vfa());
        // VFA's linear tests legitimately prove the *innermost* loop
        // (coefficient 1 on K, outer loops "="); the symbolic outer
        // loops — where the real speedup lives — stay serial.
        assert!(!report(&r2, "do6").parallel, "{r2:?}");
        assert!(!report(&r2, "do7").parallel, "{r2:?}");
    }

    #[test]
    fn ocean_figure3_parallel_via_permutation() {
        let src = "program t\nreal a(2000000)\ninteger x, zz(200)\n!$assert (x >= 1)\n!$assert (nn >= 0)\ndo k = 0, x - 1\n  do j = 0, nn\n    do i = 0, 128\n      a(258*x*j + 129*k + i + 1) = 1.0\n      a(258*x*j + 129*k + i + 1 + 129*x) = 2.0\n    end do\n  end do\nend do\nend\n";
        let stats = DdStats::new();
        let mut p = polaris_ir::parse(src).unwrap();
        crate::constprop::run(&mut p);
        let opts = PassOptions::polaris();
        let mut reports = Vec::new();
        for unit in &mut p.units {
            reports.extend(analyze_unit(unit, &opts, &stats));
        }
        assert!(reports.iter().all(|x| x.parallel), "{reports:?}");
        assert!(stats.permutations_used.get() >= 1);
    }
}

//! Constant propagation.
//!
//! The paper relies on "interprocedural constant propagation and loop
//! normalization" to bring the OCEAN nest of Figure 3 into analyzable
//! form. Because Polaris' interprocedural story at this stage is full
//! inlining (§3.1), constant propagation here is intraprocedural but runs
//! after the inliner, which gives it the same reach.
//!
//! Two transformations are applied per unit:
//!
//! 1. `PARAMETER` substitution — named constants are folded everywhere.
//! 2. Forward propagation of scalar constants along the structured
//!    control flow: an assignment `K = <literal>` reaches every use until
//!    a statement (or a conditionally-executed region, loop body, or CALL)
//!    may redefine `K`.

use polaris_ir::expr::Expr;
use polaris_ir::stmt::{Stmt, StmtKind, StmtList};
use polaris_ir::symbol::SymKind;
use polaris_ir::{Program, ProgramUnit};
use std::collections::BTreeMap;

/// Statistics returned by the pass (used in reports and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstPropStats {
    pub parameters_folded: usize,
    pub constants_propagated: usize,
}

/// Run constant propagation on every unit of `program`.
pub fn run(program: &mut Program) -> ConstPropStats {
    let mut stats = ConstPropStats::default();
    for unit in &mut program.units {
        let s = run_unit(unit);
        stats.parameters_folded += s.parameters_folded;
        stats.constants_propagated += s.constants_propagated;
    }
    stats
}

/// Run on a single unit.
pub fn run_unit(unit: &mut ProgramUnit) -> ConstPropStats {
    let mut stats = ConstPropStats::default();

    // Phase 1: PARAMETER substitution. Parameters may reference other
    // parameters; resolve to literals first (bounded iteration).
    let mut params: BTreeMap<String, Expr> = BTreeMap::new();
    for sym in unit.symbols.iter() {
        if let SymKind::Parameter(v) = &sym.kind {
            params.insert(sym.name.clone(), v.clone());
        }
    }
    for _ in 0..8 {
        let snapshot = params.clone();
        let mut changed = false;
        for value in params.values_mut() {
            let new = substitute_map(value, &snapshot).simplified();
            if new != *value {
                *value = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Write resolved values back into the symbol table so later passes
    // (and the unparser) see the folded form.
    for (name, value) in &params {
        if let Some(sym) = unit.symbols.get_mut(name) {
            sym.kind = SymKind::Parameter(value.clone());
        }
    }
    unit.body.map_exprs(&mut |e| match &e {
        Expr::Var(n) => match params.get(n) {
            Some(v) => {
                stats.parameters_folded += 1;
                v.clone()
            }
            None => e,
        },
        _ => e,
    });
    // Array dimension declarations also see parameters.
    let dims_params = params.clone();
    for name in unit.symbols.iter().map(|s| s.name.clone()).collect::<Vec<_>>() {
        if let Some(sym) = unit.symbols.get_mut(&name) {
            if let SymKind::Array(dims) = &mut sym.kind {
                for d in dims {
                    d.lo = substitute_map(&d.lo, &dims_params).simplified();
                    d.hi = substitute_map(&d.hi, &dims_params).simplified();
                }
            }
        }
    }

    // Phase 2: forward propagation of literal scalar assignments.
    let mut consts: BTreeMap<String, Expr> = BTreeMap::new();
    propagate(&mut unit.body, &mut consts, &mut stats);

    // Re-simplify everything once.
    unit.body.map_exprs(&mut |e| e.simplified());
    stats
}

fn substitute_map(e: &Expr, map: &BTreeMap<String, Expr>) -> Expr {
    e.map(&mut |node| match &node {
        Expr::Var(n) => map.get(n).cloned().unwrap_or(node),
        _ => node,
    })
}

/// Forward-propagate literal constants through a statement list.
/// `consts` is the set of known variable → literal facts on entry and is
/// updated to the facts on exit.
fn propagate(
    list: &mut StmtList,
    consts: &mut BTreeMap<String, Expr>,
    stats: &mut ConstPropStats,
) {
    for stmt in list.iter_mut() {
        propagate_stmt(stmt, consts, stats);
    }
}

fn rewrite_uses(e: &Expr, consts: &BTreeMap<String, Expr>, stats: &mut ConstPropStats) -> Expr {
    let mut hits = 0usize;
    let out = e.map(&mut |node| match &node {
        Expr::Var(n) => match consts.get(n) {
            Some(v) => {
                hits += 1;
                v.clone()
            }
            None => node,
        },
        _ => node,
    });
    stats.constants_propagated += hits;
    out.simplified()
}

fn propagate_stmt(
    stmt: &mut Stmt,
    consts: &mut BTreeMap<String, Expr>,
    stats: &mut ConstPropStats,
) {
    match &mut stmt.kind {
        StmtKind::Assign { lhs, rhs, .. } => {
            *rhs = rewrite_uses(rhs, consts, stats);
            *lhs = lhs.map_subs(&mut |e| rewrite_uses(&e, consts, stats));
            match lhs {
                polaris_ir::LValue::Var(name) => {
                    if rhs.is_literal() {
                        consts.insert(name.clone(), rhs.clone());
                    } else {
                        consts.remove(name);
                    }
                }
                polaris_ir::LValue::Index { .. } => {}
            }
        }
        StmtKind::Do(d) => {
            d.init = rewrite_uses(&d.init, consts, stats);
            d.limit = rewrite_uses(&d.limit, consts, stats);
            if let Some(step) = &mut d.step {
                *step = rewrite_uses(step, consts, stats);
            }
            // The body may execute many times: kill facts for everything
            // it assigns, then propagate within using the surviving set.
            for v in crate::rangeprop::assigned_vars(&d.body) {
                consts.remove(&v);
            }
            consts.remove(&d.var);
            let mut inner = consts.clone();
            propagate(&mut d.body, &mut inner, stats);
            // After the loop nothing new is known (zero-trip possible):
            // facts already killed above.
        }
        StmtKind::IfBlock { arms, else_body } => {
            let entry = consts.clone();
            let mut killed: Vec<String> = Vec::new();
            for arm in arms.iter_mut() {
                arm.cond = rewrite_uses(&arm.cond, &entry, stats);
                let mut branch = entry.clone();
                propagate(&mut arm.body, &mut branch, stats);
                killed.extend(crate::rangeprop::assigned_vars(&arm.body));
            }
            propagate(else_body, &mut entry.clone(), stats);
            killed.extend(crate::rangeprop::assigned_vars(else_body));
            for k in killed {
                consts.remove(&k);
            }
        }
        StmtKind::Call { args, .. } => {
            // Fortran passes by reference: a bare variable argument is a
            // potential out-argument and must stay a variable; only
            // interior expressions may be folded.
            for a in args.iter_mut() {
                if !matches!(a, Expr::Var(_)) {
                    *a = rewrite_uses(a, consts, stats);
                }
            }
            for a in args.iter() {
                if let Expr::Var(n) = a {
                    consts.remove(n);
                }
            }
        }
        StmtKind::Print { items } => {
            for a in items.iter_mut() {
                *a = rewrite_uses(a, consts, stats);
            }
        }
        StmtKind::Assert { cond } => {
            *cond = rewrite_uses(cond, consts, stats);
        }
        StmtKind::Return | StmtKind::Stop | StmtKind::Continue => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_ir::printer::print_program;

    fn run_src(src: &str) -> String {
        let mut p = polaris_ir::parse(src).unwrap();
        run(&mut p);
        polaris_ir::validate::validate_program(&p).unwrap();
        print_program(&p)
    }

    #[test]
    fn parameters_fold_into_bounds() {
        let out = run_src(
            "program t\ninteger n, m\nparameter (n = 8, m = 2*n)\nreal a(m)\ndo i = 1, m\n  a(i) = i\nend do\nend\n",
        );
        assert!(out.contains("DO I = 1, 16"), "{out}");
        assert!(out.contains("A(16)"), "{out}");
    }

    #[test]
    fn literal_assignment_propagates_forward() {
        let out = run_src("program t\nk = 3\nx = k + 1\nend\n");
        assert!(out.contains("X = 4"), "{out}");
    }

    #[test]
    fn redefinition_stops_propagation() {
        let out = run_src("program t\nk = 3\nk = m\nx = k + 1\nend\n");
        assert!(out.contains("X = K+1"), "{out}");
    }

    #[test]
    fn loop_kills_facts_for_assigned_vars() {
        let out =
            run_src("program t\nk = 3\ndo i = 1, 10\n  k = k + 1\nend do\nx = k\nend\n");
        // K is not 3 after the loop
        assert!(out.contains("X = K"), "{out}");
        // and inside the loop K+1 must not fold to 4
        assert!(out.contains("K = K+1"), "{out}");
    }

    #[test]
    fn conditional_assignment_kills_fact_after_join() {
        let out = run_src(
            "program t\nk = 3\nif (x > 0.0) then\n  k = 5\nend if\ny = k\nend\n",
        );
        assert!(out.contains("Y = K"), "{out}");
    }

    #[test]
    fn facts_flow_into_branches() {
        let out = run_src("program t\nk = 3\nif (x > 0.0) then\n  y = k\nend if\nend\n");
        assert!(out.contains("Y = 3"), "{out}");
    }

    #[test]
    fn chained_parameters_resolve() {
        let out = run_src(
            "program t\ninteger a, b, c\nparameter (a = 2, b = a*3, c = b + a)\nx = c\nend\n",
        );
        assert!(out.contains("X = 8"), "{out}");
    }

    #[test]
    fn call_kills_scalar_facts() {
        let out = run_src("program t\nk = 3\ncall f(k)\nx = k\nend\n");
        assert!(out.contains("X = K"), "{out}");
    }

    #[test]
    fn stats_count_work() {
        let mut p = polaris_ir::parse(
            "program t\ninteger n\nparameter (n = 4)\nk = 2\nx = n + k\ny = n\nend\n",
        )
        .unwrap();
        let stats = run(&mut p);
        assert_eq!(stats.parameters_folded, 2);
        assert!(stats.constants_propagated >= 1);
    }
}

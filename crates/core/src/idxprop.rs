//! Index-array property analysis (`idxprop`) — subscripted-subscript
//! parallelization in the style of Bhosale & Eigenmann.
//!
//! The classic dependence tests abstain on `A(IDX(I))`: the subscript is
//! an opaque array read, so the range test cannot order two iterations'
//! accesses and the loop falls to the run-time (LRPD) test or stays
//! serial. But most index arrays in irregular codes are *built* by
//! stereotyped fill loops whose shape proves strong content properties:
//!
//! * **affine fills** — `DO I = L, H: IDX(I) = c*I + b` (identity fills
//!   included) store strictly monotone, injective values, a permutation
//!   of a contiguous range when `|c| = 1`;
//! * **prefix-sum fills / strictly-increasing accumulations** —
//!   `IDX(L-1) = base; DO I = L, H: IDX(I) = IDX(I-1) + e` with `e >= 1`
//!   provable by range analysis store strictly increasing (hence
//!   injective) values — the CSR `rowptr` idiom;
//! * **general fills** — any single-statement fill whose RHS the range
//!   machinery can bound yields whole-array *value bounds* (`MOD`-based
//!   binning, for example), the fact the §3.4 region analysis consumes.
//!
//! This pass recognizes those shapes per unit (inlining has already made
//! that interprocedural), records the proven facts as [`ArrayProps`]
//! annotations on the array's symbol, and exposes a pair-disjointness
//! rule ([`pairs_disjoint_via_props`]) the dependence driver invokes when
//! the classic tests fail: a scatter `A(IDX(f(I)))` with `IDX` injective
//! over its fill domain, `f` affine with nonzero slope, and `f`'s image
//! inside that domain touches distinct elements in distinct iterations —
//! the loop is a DOALL, no shadow arrays needed. Loops where no property
//! is provable still fall through to LRPD exactly as before.
//!
//! Every granted fact is a proof, never a heuristic: the recognizers
//! require the fill to be the array's *only* writes in the unit, the
//! disjointness rule re-checks domain containment with the caller's
//! range environment, and the adversarial generators in
//! `tests/soundness_prop.rs` cross-examine the claims against the
//! dynamic dependence oracle.

use crate::ddtest::range_test::InnerLoop;
use crate::ddtest::DdStats;
use polaris_ir::expr::Expr;
use polaris_ir::stmt::{DoLoop, Stmt, StmtKind};
use polaris_ir::symbol::SymKind;
use polaris_ir::types::DataType;
use polaris_ir::{ArrayProps, Program, ProgramUnit};
use polaris_symbolic::bounds::{min_max_over, prove_ge, prove_le};
use polaris_symbolic::poly::{Atom, DivPolicy, Poly};
use polaris_symbolic::{Range, RangeEnv};
use std::collections::{BTreeMap, BTreeSet};

/// What the idxprop stage proved, mirrored into the compile report and
/// the observability counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdxPropReport {
    /// Candidate index arrays inspected (rank-1 INTEGER arrays that are
    /// written somewhere in their unit).
    pub arrays_analyzed: usize,
    /// Arrays that earned at least one property.
    pub proved: usize,
    /// Breakdown (an array may count in several).
    pub injective: usize,
    pub monotone: usize,
    pub bounded: usize,
    pub permutations: usize,
}

impl IdxPropReport {
    fn absorb(&mut self, p: &ArrayProps) {
        self.proved += 1;
        if p.injective {
            self.injective += 1;
        }
        if p.monotone_inc || p.monotone_dec {
            self.monotone += 1;
        }
        if p.value_lo.is_some() || p.value_hi.is_some() {
            self.bounded += 1;
        }
        if p.permutation {
            self.permutations += 1;
        }
    }
}

/// Stage entry point: infer properties for every unit and annotate the
/// winning arrays' symbols. Idempotent — stale annotations from a prior
/// run are cleared first, so pipeline rollback + re-run stays exact.
pub fn annotate(program: &mut Program) -> IdxPropReport {
    let mut rep = IdxPropReport::default();
    for unit in &mut program.units {
        for name in unit.symbols.iter().map(|s| s.name.clone()).collect::<Vec<_>>() {
            if let Some(sym) = unit.symbols.get_mut(&name) {
                sym.props = None;
            }
        }
        let inferred = infer_unit(unit);
        rep.arrays_analyzed += inferred.analyzed;
        for (name, props) in inferred.props {
            rep.absorb(&props);
            if let Some(sym) = unit.symbols.get_mut(&name) {
                sym.props = Some(props);
            }
        }
    }
    rep
}

/// Inference result for one unit (also used directly by the static race
/// detector, which re-derives the facts from the IR rather than trusting
/// the compiler's annotations).
#[derive(Debug, Default)]
pub struct Inference {
    /// Candidate arrays inspected.
    pub analyzed: usize,
    /// Arrays with at least one proven property.
    pub props: BTreeMap<String, ArrayProps>,
}

/// Run the recognizers over one unit's body.
pub fn infer_unit(unit: &ProgramUnit) -> Inference {
    let mut inf = Inference::default();
    let writes = write_counts(unit);
    let candidates: BTreeSet<String> = unit
        .symbols
        .iter()
        .filter(|s| {
            s.ty == DataType::Integer
                && matches!(&s.kind, SymKind::Array(dims) if dims.len() == 1)
                && writes.contains_key(&s.name)
        })
        .map(|s| s.name.clone())
        .collect();
    inf.analyzed = candidates.len();
    if candidates.is_empty() {
        return inf;
    }
    let env = unit_env(unit);
    let top = &unit.body.0;
    for (t, s) in top.iter().enumerate() {
        let StmtKind::Do(d) = &s.kind else { continue };
        if d.body.0.len() != 1 {
            continue;
        }
        let StmtKind::Assign { lhs, rhs, .. } = &d.body.0[0].kind else { continue };
        let name = lhs.name().to_string();
        if !candidates.contains(&name) || inf.props.contains_key(&name) {
            continue;
        }
        let [sub] = lhs.subs() else { continue };
        if d.step_expr().simplified().as_int() != Some(1) {
            continue;
        }
        let p = if is_prefix_rhs(&name, rhs) {
            // Prefix-sum fill: needs the base write plus this loop to be
            // the array's only writes in the unit.
            if writes.get(&name) != Some(&2) {
                continue;
            }
            recognize_prefix_fill(&name, d, sub, rhs, &top[..t], &env)
        } else {
            // Direct fill: this statement must be the only write.
            if writes.get(&name) != Some(&1) {
                continue;
            }
            recognize_direct_fill(&name, d, sub, rhs, &env)
        };
        if let Some(p) = p.filter(|p| p.any()) {
            inf.props.insert(name, p);
        }
    }
    inf
}

/// Writes per array over the whole unit: assignments through a
/// subscript, plus a conservative count for arrays passed to CALLs
/// (callees may write their arguments).
fn write_counts(unit: &ProgramUnit) -> BTreeMap<String, usize> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    unit.body.walk(&mut |s: &Stmt| match &s.kind {
        StmtKind::Assign { lhs, .. } if !lhs.subs().is_empty() => {
            *out.entry(lhs.name().to_ascii_uppercase()).or_default() += 1;
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                for arr in a.arrays() {
                    *out.entry(arr).or_default() += 100; // poison: never a fill
                }
                if let Expr::Var(n) = a {
                    *out.entry(n.clone()).or_default() += 100;
                }
            }
        }
        _ => {}
    });
    out
}

/// Loop-invariant facts: PARAMETER values and `!$assert` conditions
/// (mirrors what the dependence driver seeds its environment with).
fn unit_env(unit: &ProgramUnit) -> RangeEnv {
    let mut env = RangeEnv::new();
    for sym in unit.symbols.iter() {
        if let SymKind::Parameter(value) = &sym.kind {
            if let Some(p) = Poly::from_expr(value, DivPolicy::Opaque) {
                env.set_fresh(sym.name.clone(), Range::exact(p));
            }
        }
    }
    unit.body.walk(&mut |s: &Stmt| {
        if let StmtKind::Assert { cond } = &s.kind {
            env.assume_cond(cond);
        }
    });
    env
}

/// Is `rhs` of the form `IDX(..) + e` / `e + IDX(..)` for the array
/// being filled (the prefix-sum shape)?
fn is_prefix_rhs(name: &str, rhs: &Expr) -> bool {
    prefix_parts(name, rhs).is_some()
}

fn prefix_parts<'a>(name: &str, rhs: &'a Expr) -> Option<(&'a [Expr], Expr)> {
    // Flatten the additive spine (`+` is left-associated by the parser,
    // so `IDX(I-1) + A + B` nests the recurrence read).
    fn addends<'b>(e: &'b Expr, out: &mut Vec<&'b Expr>) {
        match e {
            Expr::Bin { op: polaris_ir::expr::BinOp::Add, lhs, rhs } => {
                addends(lhs, out);
                addends(rhs, out);
            }
            _ => out.push(e),
        }
    }
    let mut terms = Vec::new();
    addends(rhs, &mut terms);
    let mut subs: Option<&[Expr]> = None;
    let mut rest: Vec<&Expr> = Vec::new();
    for t in terms {
        match t {
            Expr::Index { array, subs: s } if array == name && subs.is_none() => {
                subs = Some(s.as_slice());
            }
            _ if t.references(name) => return None,
            _ => rest.push(t),
        }
    }
    let subs = subs?;
    let e = rest
        .into_iter()
        .cloned()
        .reduce(|a, b| Expr::Bin {
            op: polaris_ir::expr::BinOp::Add,
            lhs: Box::new(a),
            rhs: Box::new(b),
        })?;
    Some((subs, e))
}

/// `DO I = L, H: IDX(I + k) = rhs` where the RHS does not read `IDX`.
/// Affine RHS with constant slope and intercept proves the full strict
/// lattice; any other boundable RHS proves value bounds only.
fn recognize_direct_fill(
    name: &str,
    d: &DoLoop,
    sub: &Expr,
    rhs: &Expr,
    env: &RangeEnv,
) -> Option<ArrayProps> {
    if rhs.references(name) {
        return None;
    }
    let (init, limit) = (
        Poly::from_expr(&d.init, DivPolicy::Exact)?,
        Poly::from_expr(&d.limit, DivPolicy::Exact)?,
    );
    let offset = position_offset(sub, &d.var)?;
    let dom_lo = init.checked_add(&offset)?;
    let dom_hi = limit.checked_add(&offset)?;
    let mut props = ArrayProps::over(dom_lo.to_expr(), dom_hi.to_expr());

    let affine = Poly::from_expr(rhs, DivPolicy::Exact)
        .filter(|p| !p.var_hidden_in_opaque(&d.var))
        .and_then(|p| {
            let parts = p.by_powers_of(&d.var)?;
            if parts.len() != 2 {
                return None;
            }
            let c = parts[1].as_constant()?;
            let b = parts[0].clone();
            if c.is_zero() || b.mentions_var(&d.var) || b.as_constant().is_none() {
                return None;
            }
            Some((c, b))
        });
    if let Some((c, b)) = affine {
        // Value at position p (= i + k) is c*(p - k) + b: strictly
        // monotone in the position with slope c, injective, and a
        // permutation of a contiguous range when |c| = 1.
        let at_init = init.checked_scale(c)?.checked_add(&b)?;
        let at_limit = limit.checked_scale(c)?.checked_add(&b)?;
        let inc = c.signum() > 0;
        props.monotone_inc = inc;
        props.monotone_dec = !inc;
        props.strict = true;
        props.injective = true;
        props.permutation =
            c == polaris_symbolic::Rat::int(1) || c == polaris_symbolic::Rat::int(-1);
        let (lo, hi) = if inc { (at_init, at_limit) } else { (at_limit, at_init) };
        props.value_lo = Some(lo.to_expr());
        props.value_hi = Some(hi.to_expr());
        return Some(props);
    }

    // Not affine: try whole-value bounds with the loop header assumed
    // (this is where `MOD(.., const)` bin fills earn their bounds).
    let mut benv = env.clone();
    benv.assume_nonempty_loop(&d.var, &d.init, &d.limit);
    let p = Poly::from_expr(rhs, DivPolicy::Opaque)?;
    let atoms: Vec<Atom> = p.atoms().into_iter().collect();
    let (lo, hi) = min_max_over(&p, &atoms, &benv);
    props.value_lo = lo.map(|p| p.to_expr());
    props.value_hi = hi.map(|p| p.to_expr());
    Some(props)
}

/// `IDX(base_pos) = base` followed at top level by
/// `DO I = L, H: IDX(I + k) = IDX(I + k - 1) + e` with `base_pos`
/// matching the fill's predecessor position. `e >= 1` provable makes the
/// contents strictly increasing (injective); `e >= 0` non-decreasing
/// only. Decreasing accumulations are recognized symmetrically.
fn recognize_prefix_fill(
    name: &str,
    d: &DoLoop,
    sub: &Expr,
    rhs: &Expr,
    preceding: &[Stmt],
    env: &RangeEnv,
) -> Option<ArrayProps> {
    let (prev_subs, e) = prefix_parts(name, rhs)?;
    let [prev] = prev_subs else { return None };
    if e.references(name) {
        return None;
    }
    let offset = position_offset(sub, &d.var)?;
    let prev_offset = position_offset(prev, &d.var)?;
    // The recurrence must read the immediately preceding position.
    if offset.checked_sub(&prev_offset)?.as_constant()?
        != polaris_symbolic::Rat::int(1)
    {
        return None;
    }
    let (init, limit) = (
        Poly::from_expr(&d.init, DivPolicy::Exact)?,
        Poly::from_expr(&d.limit, DivPolicy::Exact)?,
    );
    let base_pos = init.checked_add(&prev_offset)?;
    let dom_hi = limit.checked_add(&offset)?;
    // Find the base write `IDX(base_pos) = base` before the loop; it is
    // the only other write in the unit (the caller checked the count).
    let base = preceding.iter().rev().find_map(|s| {
        let StmtKind::Assign { lhs, rhs, .. } = &s.kind else { return None };
        if lhs.name() != name {
            return None;
        }
        let [bsub] = lhs.subs() else { return None };
        if Poly::from_expr(bsub, DivPolicy::Exact)? == base_pos && !rhs.references(name) {
            Some(rhs.clone())
        } else {
            None
        }
    })?;
    let mut props = ArrayProps::over(base_pos.to_expr(), dom_hi.to_expr());

    // Bound the increment with the loop header assumed.
    let mut benv = env.clone();
    benv.assume_nonempty_loop(&d.var, &d.init, &d.limit);
    let pe = Poly::from_expr(&e, DivPolicy::Opaque)?;
    let atoms: Vec<Atom> = pe.atoms().into_iter().collect();
    let (e_lo, e_hi) = min_max_over(&pe, &atoms, &benv);
    let zero = Poly::int(0);
    let one = Poly::int(1);
    let inc_lo = e_lo.clone().filter(|lo| prove_ge(lo, &zero, env));
    let dec_hi = e_hi.clone().filter(|hi| prove_le(hi, &zero, env));
    if let Some(lo) = &inc_lo {
        props.monotone_inc = true;
        props.strict = prove_ge(lo, &one, env);
    } else if let Some(hi) = &dec_hi {
        props.monotone_dec = true;
        props.strict = prove_le(hi, &Poly::int(-1), env);
    } else {
        return None;
    }
    props.injective = props.strict;
    props.permutation = props.strict && e.simplified().as_int() == Some(1);
    // Value bounds: the base anchors one end; the other end needs a
    // bound on the increment and a polynomial iteration count.
    let base_poly = Poly::from_expr(&base, DivPolicy::Opaque)?;
    let count = limit.checked_sub(&init)?.checked_add(&one)?;
    let far = |step_bound: &Option<Poly>| -> Option<Poly> {
        step_bound
            .as_ref()
            .and_then(|b| b.checked_mul(&count))
            .and_then(|t| base_poly.checked_add(&t))
    };
    if props.monotone_inc {
        props.value_lo = Some(base_poly.to_expr());
        props.value_hi = far(&e_hi).map(|p| p.to_expr());
    } else {
        props.value_hi = Some(base_poly.to_expr());
        props.value_lo = far(&e_lo).map(|p| p.to_expr());
    }
    Some(props)
}

/// If `sub` is `var + k` for a constant `k`, return `k` as a poly.
fn position_offset(sub: &Expr, var: &str) -> Option<Poly> {
    let p = Poly::from_expr(sub, DivPolicy::Exact)?;
    if p.var_hidden_in_opaque(var) {
        return None;
    }
    let parts = p.by_powers_of(var)?;
    if parts.len() != 2 || parts[1].as_constant() != Some(polaris_symbolic::Rat::int(1)) {
        return None;
    }
    parts[0].as_constant()?; // offset must be constant
    Some(parts[0].clone())
}

// ---------------------------------------------------------------------
// Consumption: the property-based pair-disjointness rule
// ---------------------------------------------------------------------

/// One array reference as the disjointness rule sees it: subscripts
/// (already resolved through in-iteration scalar definitions), whether
/// it writes, and the variables of enclosing inner loops.
pub struct PropAccess<'a> {
    pub write: bool,
    pub subs: &'a [Expr],
    pub ctx_vars: Vec<String>,
}

/// Prove every (write, access) pair of one array loop-carried-disjoint
/// from index-array properties: the pair shares a subscript dimension
/// computed by the *same* function — either `IDX(f(I))` with `IDX`
/// injective, `f` affine in the tested variable with nonzero slope and
/// image inside `IDX`'s fill domain, or a directly affine `f(I)` — so
/// two distinct iterations address two distinct elements.
///
/// `props` must answer `None` for any array written inside the tested
/// loop (its fill-time facts would be stale there), and `varying` must
/// name every scalar the body writes: a subscript mentioning one is not
/// a function of the iteration number alone and disqualifies its
/// dimension.
pub fn pairs_disjoint_via_props(
    accesses: &[PropAccess<'_>],
    self_loop: &InnerLoop,
    varying: &BTreeSet<String>,
    env: &RangeEnv,
    props: &dyn Fn(&str) -> Option<ArrayProps>,
    stats: &DdStats,
) -> bool {
    if accesses.is_empty() {
        return false;
    }
    stats.props_tests_run.set(stats.props_tests_run.get() + 1);
    // Separating key per access per dimension: equal keys on some
    // dimension of a pair prove the pair disjoint across iterations.
    type SepKey = Option<(Option<String>, Poly)>;
    let keys: Vec<Vec<SepKey>> = accesses
        .iter()
        .map(|a| a.subs.iter().map(|e| sep_key(e, a, self_loop, varying, env, props)).collect())
        .collect();
    for (i, w) in accesses.iter().enumerate() {
        if !w.write {
            continue;
        }
        for (j, o) in accesses.iter().enumerate() {
            if j < i && o.write {
                continue; // (w2, w1) already tested as (w1, w2)
            }
            let pair_ok = keys[i].len() == keys[j].len()
                && keys[i]
                    .iter()
                    .zip(&keys[j])
                    .any(|(a, b)| a.is_some() && a == b);
            if !pair_ok {
                return false;
            }
        }
    }
    stats.props_proved.set(stats.props_proved.get() + 1);
    true
}

/// The separating key of one subscript dimension, if it provably maps
/// distinct iterations of the tested loop to distinct values.
fn sep_key(
    e: &Expr,
    a: &PropAccess<'_>,
    self_loop: &InnerLoop,
    varying: &BTreeSet<String>,
    env: &RangeEnv,
    props: &dyn Fn(&str) -> Option<ArrayProps>,
) -> Option<(Option<String>, Poly)> {
    let var = &self_loop.var;
    // A mention of a body-written scalar or an inner loop's variable
    // makes the value non-functional in the iteration number.
    if varying.iter().any(|v| e.references_var(v))
        || a.ctx_vars.iter().any(|v| e.references_var(v))
    {
        return None;
    }
    if let Expr::Index { array, subs } = e {
        let [inner] = subs.as_slice() else { return None };
        let p = props(array).filter(|p| p.injective)?;
        if !inner.arrays().is_empty() {
            return None; // no nested indirection
        }
        let q = affine_with_slope(inner, var)?;
        // Injectivity only holds over the fill domain: the argument's
        // image across the whole iteration space must sit inside it.
        let (dlo, dhi) = (
            Poly::from_expr(&p.domain_lo, DivPolicy::Opaque)?,
            Poly::from_expr(&p.domain_hi, DivPolicy::Opaque)?,
        );
        if [&p.domain_lo, &p.domain_hi]
            .iter()
            .any(|d| varying.iter().any(|v| d.references_var(v)))
        {
            return None;
        }
        let mut benv = env.clone();
        let (lo, hi) = if self_loop.step >= 0 {
            (self_loop.lo.clone(), self_loop.hi.clone())
        } else {
            (self_loop.hi.clone(), self_loop.lo.clone())
        };
        benv.set_fresh(var.clone(), Range::new(Some(lo), Some(hi)));
        let (arg_lo, arg_hi) = min_max_over(&q, &[Atom::Var(var.clone())], &benv);
        let contained = arg_lo.is_some_and(|lo| prove_ge(&lo, &dlo, env))
            && arg_hi.is_some_and(|hi| prove_le(&hi, &dhi, env));
        if !contained {
            return None;
        }
        return Some((Some(array.clone()), q));
    }
    // Directly affine dimension (classic, but usable even when other
    // dimensions pushed the range test into abstention).
    let q = affine_with_slope(e, var)?;
    Some((None, q))
}

/// `e` as a poly affine in `var` with a nonzero constant slope and no
/// occurrence of `var` hidden inside opaque atoms.
fn affine_with_slope(e: &Expr, var: &str) -> Option<Poly> {
    let q = Poly::from_expr(e, DivPolicy::Exact)?;
    if q.var_hidden_in_opaque(var) {
        return None;
    }
    let parts = q.by_powers_of(var)?;
    if parts.len() != 2 {
        return None;
    }
    let c = parts[1].as_constant()?;
    if c.is_zero() {
        return None;
    }
    Some(q)
}

/// Seed registered whole-array value bounds (`env.set_array_values`)
/// from proven properties — the hook that lets the existing §3.4 region
/// machinery consume `bounded` facts (e.g. `A(IDX(L))` reads proven
/// inside a privatized region because `IDX ∈ [1, M]`). Only arrays whose
/// facts are stable in the analyzed loop may be seeded; the caller
/// passes the set of arrays that loop writes.
pub fn seed_array_value_ranges(
    unit: &ProgramUnit,
    written_in_loop: &BTreeSet<String>,
    env: &mut RangeEnv,
) -> usize {
    let mut seeded = 0;
    for sym in unit.symbols.iter() {
        let Some(p) = &sym.props else { continue };
        if written_in_loop.contains(&sym.name) {
            continue;
        }
        let lo = p.value_lo.as_ref().and_then(|e| Poly::from_expr(e, DivPolicy::Opaque));
        let hi = p.value_hi.as_ref().and_then(|e| Poly::from_expr(e, DivPolicy::Opaque));
        if lo.is_some() || hi.is_some() {
            env.set_array_values(sym.name.clone(), Range::new(lo, hi));
            seeded += 1;
        }
    }
    seeded
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(src: &str) -> ProgramUnit {
        let p = polaris_ir::parse(src).unwrap();
        p.units.into_iter().next().unwrap()
    }

    fn infer(src: &str) -> BTreeMap<String, ArrayProps> {
        infer_unit(&unit(src)).props
    }

    #[test]
    fn identity_fill_is_a_permutation() {
        let props = infer(
            "program p\ninteger idx(10)\ndo i = 1, 10\n  idx(i) = i\nend do\n\
             print *, idx(1)\nend\n",
        );
        let p = &props["IDX"];
        assert!(p.injective && p.strict && p.monotone_inc && p.permutation, "{p:?}");
        assert_eq!(p.domain_lo, Expr::int(1));
        assert_eq!(p.domain_hi, Expr::int(10));
        assert_eq!(p.value_lo, Some(Expr::int(1)));
        assert_eq!(p.value_hi, Some(Expr::int(10)));
    }

    #[test]
    fn affine_fill_with_negative_slope_is_strictly_decreasing() {
        let props = infer(
            "program p\ninteger idx(10)\ndo i = 1, 10\n  idx(i) = 21 - 2*i\nend do\n\
             print *, idx(1)\nend\n",
        );
        let p = &props["IDX"];
        assert!(p.injective && p.strict && p.monotone_dec && !p.monotone_inc, "{p:?}");
        assert!(!p.permutation, "slope 2 is not a relabeling: {p:?}");
        assert_eq!(p.value_lo, Some(Expr::int(1)));
        assert_eq!(p.value_hi, Some(Expr::int(19)));
    }

    #[test]
    fn mod_fill_is_bounded_but_not_injective() {
        let props = infer(
            "program p\ninteger bin(100)\ndo i = 1, 100\n  bin(i) = mod(i*7, 16) + 1\nend do\n\
             print *, bin(1)\nend\n",
        );
        let p = &props["BIN"];
        assert!(!p.injective && !p.monotone_inc, "{p:?}");
        assert_eq!(p.value_lo, Some(Expr::int(1)));
        assert_eq!(p.value_hi, Some(Expr::int(16)));
    }

    #[test]
    fn prefix_sum_fill_is_strictly_increasing() {
        let props = infer(
            "program p\ninteger ps(11)\nps(1) = 1\ndo i = 2, 11\n\
             \x20 ps(i) = ps(i-1) + mod(i*3, 4) + 1\nend do\nprint *, ps(1)\nend\n",
        );
        let p = &props["PS"];
        assert!(p.strict && p.injective && p.monotone_inc, "{p:?}");
        assert!(!p.permutation, "variable increment: {p:?}");
        assert_eq!(p.domain_lo, Expr::int(1));
        assert_eq!(p.domain_hi, Expr::int(11));
        assert_eq!(p.value_lo, Some(Expr::int(1)));
        // hi = base + max_step * count = 1 + 4*10
        assert_eq!(p.value_hi, Some(Expr::int(41)));
    }

    #[test]
    fn prefix_sum_with_unit_increment_is_a_permutation() {
        let props = infer(
            "program p\ninteger ps(11)\nps(1) = 5\ndo i = 2, 11\n\
             \x20 ps(i) = ps(i-1) + 1\nend do\nprint *, ps(1)\nend\n",
        );
        assert!(props["PS"].permutation, "{:?}", props["PS"]);
    }

    #[test]
    fn conditional_or_multi_statement_fills_earn_nothing() {
        // Conditional increment: monotone at runtime but not by this
        // recognizer's proof obligations (the body is an IF, not a
        // single assignment).
        let props = infer(
            "program p\ninteger ps(11)\nreal a(10)\nps(1) = 1\ndo i = 2, 11\n\
             \x20 if (a(i-1) .gt. 0.5) then\n    ps(i) = ps(i-1) + 1\n\
             \x20 else\n    ps(i) = ps(i-1)\n  end if\nend do\nprint *, ps(1)\nend\n",
        );
        assert!(props.is_empty(), "{props:?}");
    }

    #[test]
    fn a_second_write_kills_the_fill() {
        let props = infer(
            "program p\ninteger idx(10)\ndo i = 1, 10\n  idx(i) = i\nend do\n\
             idx(5) = 1\nprint *, idx(1)\nend\n",
        );
        assert!(props.is_empty(), "rewrite must invalidate the proof: {props:?}");
    }

    #[test]
    fn call_poisons_candidacy() {
        let props = infer(
            "program p\ninteger idx(10)\ndo i = 1, 10\n  idx(i) = i\nend do\n\
             call touch(idx)\nprint *, idx(1)\nend\n",
        );
        assert!(props.is_empty(), "callee may rewrite the array: {props:?}");
    }

    #[test]
    fn annotate_writes_symbol_props_and_reports() {
        let mut p = polaris_ir::parse(
            "program p\ninteger idx(10)\ninteger bin(10)\ndo i = 1, 10\n  idx(i) = i\nend do\n\
             do i = 1, 10\n  bin(i) = mod(i, 4) + 1\nend do\nprint *, idx(1), bin(1)\nend\n",
        )
        .unwrap();
        let rep = annotate(&mut p);
        assert_eq!(rep.arrays_analyzed, 2);
        assert_eq!(rep.proved, 2);
        assert_eq!(rep.injective, 1);
        assert_eq!(rep.bounded, 2);
        assert_eq!(rep.permutations, 1);
        let sym = p.units[0].symbols.get("IDX").unwrap();
        assert!(sym.props.as_ref().unwrap().injective);
        // Idempotent re-run.
        let rep2 = annotate(&mut p);
        assert_eq!(rep, rep2);
    }

    #[test]
    fn disjointness_rule_accepts_scatter_through_injective_fill() {
        let u = unit(
            "program p\ninteger idx(10)\nreal a(10), b(10)\ndo i = 1, 10\n  idx(i) = i\nend do\n\
             do i = 1, 10\n  a(idx(i)) = b(i)\nend do\nprint *, a(1)\nend\n",
        );
        let inf = infer_unit(&u);
        let subs = [Expr::index("IDX", vec![Expr::var("I")])];
        let acc = [PropAccess { write: true, subs: &subs, ctx_vars: vec![] }];
        let sl = InnerLoop { var: "I".into(), lo: Poly::int(1), hi: Poly::int(10), step: 1 };
        let stats = DdStats::new();
        assert!(pairs_disjoint_via_props(
            &acc,
            &sl,
            &BTreeSet::new(),
            &RangeEnv::new(),
            &|n| inf.props.get(n).cloned(),
            &stats,
        ));
        assert_eq!(stats.props_proved.get(), 1);
    }

    #[test]
    fn disjointness_rule_rejects_out_of_domain_arguments() {
        let u = unit(
            "program p\ninteger idx(10)\nreal a(20), b(20)\ndo i = 1, 10\n  idx(i) = i\nend do\n\
             do i = 1, 15\n  a(idx(i)) = b(i)\nend do\nprint *, a(1)\nend\n",
        );
        let inf = infer_unit(&u);
        let subs = [Expr::index("IDX", vec![Expr::var("I")])];
        let acc = [PropAccess { write: true, subs: &subs, ctx_vars: vec![] }];
        // The loop runs to 15 but the fill only covered 1..10: elements
        // 11..15 hold unproven values, so the claim must be refused.
        let sl = InnerLoop { var: "I".into(), lo: Poly::int(1), hi: Poly::int(15), step: 1 };
        let stats = DdStats::new();
        assert!(!pairs_disjoint_via_props(
            &acc,
            &sl,
            &BTreeSet::new(),
            &RangeEnv::new(),
            &|n| inf.props.get(n).cloned(),
            &stats,
        ));
        assert_eq!(stats.props_proved.get(), 0);
    }

    #[test]
    fn disjointness_rule_rejects_varying_scalars_and_zero_slope() {
        let u = unit(
            "program p\ninteger idx(10)\nreal a(10), b(10)\ndo i = 1, 10\n  idx(i) = i\nend do\n\
             do i = 1, 10\n  a(idx(i)) = b(i)\nend do\nprint *, a(1)\nend\n",
        );
        let inf = infer_unit(&u);
        let sl = InnerLoop { var: "I".into(), lo: Poly::int(1), hi: Poly::int(10), step: 1 };
        let stats = DdStats::new();
        let props = |n: &str| inf.props.get(n).cloned();
        // Subscript argument mentions a body-written scalar.
        let subs_k = [Expr::index("IDX", vec![Expr::var("K")])];
        let acc = [PropAccess { write: true, subs: &subs_k, ctx_vars: vec![] }];
        let varying: BTreeSet<String> = ["K".to_string()].into();
        assert!(!pairs_disjoint_via_props(&acc, &sl, &varying, &RangeEnv::new(), &props, &stats));
        // Zero slope: every iteration hits the same element.
        let subs_c = [Expr::index("IDX", vec![Expr::int(3)])];
        let acc = [
            PropAccess { write: true, subs: &subs_c, ctx_vars: vec![] },
            PropAccess { write: false, subs: &subs_c, ctx_vars: vec![] },
        ];
        assert!(!pairs_disjoint_via_props(
            &acc,
            &sl,
            &BTreeSet::new(),
            &RangeEnv::new(),
            &props,
            &stats
        ));
    }

    #[test]
    fn seeding_registers_value_bounds_for_stable_arrays_only() {
        let u = unit(
            "program p\ninteger bin(10)\ndo i = 1, 10\n  bin(i) = mod(i, 4) + 1\nend do\n\
             print *, bin(1)\nend\n",
        );
        let mut u = u;
        let inf = infer_unit(&u);
        for (name, p) in inf.props {
            u.symbols.get_mut(&name).unwrap().props = Some(p);
        }
        let mut env = RangeEnv::new();
        assert_eq!(seed_array_value_ranges(&u, &BTreeSet::new(), &mut env), 1);
        let atom = Atom::opaque(Expr::index("BIN", vec![Expr::var("L")]));
        let r = env.atom_range(&atom);
        assert!(!r.is_unknown());
        // Written in the loop under analysis: facts are stale, no seed.
        let mut env2 = RangeEnv::new();
        let written: BTreeSet<String> = ["BIN".to_string()].into();
        assert_eq!(seed_array_value_ranges(&u, &written, &mut env2), 0);
    }
}

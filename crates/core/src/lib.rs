//! # polaris-core — the Polaris restructurer
//!
//! The paper's primary contribution (§3): a source-to-source automatic
//! parallelizer built from
//!
//! * inline expansion (§3.1, [`inline`]),
//! * generalized induction-variable substitution and reduction
//!   recognition (§3.2, [`induction`], [`reduction`]),
//! * symbolic dependence analysis — range propagation, the range test
//!   with loop permutation, plus classical GCD/Banerjee tests
//!   (§3.3, [`rangeprop`], [`ddtest`]),
//! * scalar and array privatization with demand-driven symbolic value
//!   resolution and the compaction-idiom recognizer (§3.4, [`privatize`]),
//! * selection of loops for run-time speculative parallelization
//!   (§3.5, made concrete by `polaris-runtime`),
//!
//! glued together by the per-loop dependence driver ([`deps`]) and the
//! pipeline in [`compile`].
//!
//! Two pass configurations matter for the evaluation:
//! [`PassOptions::polaris`] (everything on) and [`PassOptions::vfa`]
//! ("Vendor Fortran Analyzer" — the PFA-like baseline: linear dependence
//! tests, simple inductions, scalar-only privatization and reductions, no
//! inlining, no run-time tests), which reproduces the capability split
//! the paper measures in Figure 7.

pub mod constprop;
pub mod dce;
pub mod ddtest;
pub mod deps;
pub mod gsa;
pub mod idxprop;
pub mod induction;
pub mod inline;
pub mod nestdeps;
pub mod normalize;
pub mod pipeline;
pub mod privatize;
pub mod rangeprop;
pub mod reduction;

pub use ddtest::DdStats;
pub use deps::LoopReport;
pub use idxprop::IdxPropReport;
pub use induction::InductionMode;
pub use nestdeps::NestReport;
pub use pipeline::{
    CancelToken, CorruptKind, FaultKind, FaultPlan, Pipeline, StageOutcome, StageReport,
    VerifyStats, CANCELLED_PREFIX, STAGE_NAMES,
};

use polaris_ir::error::Result;
use polaris_ir::Program;

/// Pass configuration. See the paper-to-flag mapping on each field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassOptions {
    /// §3.1 full inline expansion into the main unit.
    pub inline: bool,
    /// Parameter folding + forward constant propagation.
    pub constprop: bool,
    /// Loop normalization (rewrite constant non-unit steps to step 1).
    pub normalize: bool,
    /// Dead scalar-assignment elimination after the rewriting passes.
    pub dce: bool,
    /// §3.2 induction-variable substitution aggressiveness.
    pub induction: InductionMode,
    /// §3.2 reduction recognition at all.
    pub reductions: bool,
    /// ... including array (histogram / single-address) reductions.
    pub array_reductions: bool,
    /// §3.3.1 the range test.
    pub range_test: bool,
    /// classical GCD + Banerjee-with-directions tests.
    pub linear_tests: bool,
    /// §3.3.1 loop permutation inside the range test.
    pub permutation: bool,
    /// §3.4 scalar privatization.
    pub scalar_privatization: bool,
    /// §3.4 array privatization.
    pub array_privatization: bool,
    /// §3.5 mark unanalyzable loops for run-time (LRPD) testing.
    pub speculation: bool,
    /// Subscripted-subscript analysis: prove index-array content
    /// properties (monotone/injective/bounded/permutation) from their
    /// defining fills and use them to parallelize `A(IDX(I))` loops the
    /// classic tests abstain on (Bhosale & Eigenmann-style).
    pub index_props: bool,
    /// Nest-level loop interchange driven by the locality cost model,
    /// gated by the `nestdeps` legality prover.
    pub nest_interchange: bool,
    /// Rectangular tiling of fully permutable stencil bands.
    pub nest_tiling: bool,
    /// Adjacent-loop fusion of conformable producer/consumer loops.
    pub nest_fusion: bool,
    /// Deterministic fault injection for exercising the pipeline's
    /// rollback paths (empty in both presets).
    pub faults: FaultPlan,
}

impl PassOptions {
    /// The full Polaris configuration.
    pub fn polaris() -> PassOptions {
        PassOptions {
            inline: true,
            constprop: true,
            normalize: true,
            dce: true,
            induction: InductionMode::Generalized,
            reductions: true,
            array_reductions: true,
            range_test: true,
            linear_tests: true,
            permutation: true,
            scalar_privatization: true,
            array_privatization: true,
            speculation: true,
            index_props: true,
            nest_interchange: true,
            nest_tiling: true,
            nest_fusion: true,
            faults: FaultPlan::none(),
        }
    }

    /// The PFA-like baseline ("Vendor Fortran Analyzer"): what the paper
    /// describes as the capability set of contemporary commercial
    /// parallelizers.
    pub fn vfa() -> PassOptions {
        PassOptions {
            inline: false,
            constprop: true,
            normalize: true,
            dce: false,
            induction: InductionMode::Simple,
            reductions: true,
            array_reductions: false,
            range_test: false,
            linear_tests: true,
            permutation: false,
            scalar_privatization: true,
            array_privatization: false,
            speculation: false,
            index_props: false,
            nest_interchange: false,
            nest_tiling: false,
            nest_fusion: false,
            faults: FaultPlan::none(),
        }
    }

    /// This configuration with the given fault plan (testing convenience).
    pub fn with_faults(mut self, faults: FaultPlan) -> PassOptions {
        self.faults = faults;
        self
    }
}

/// Everything the pipeline did, for reports, tests and the harnesses.
#[derive(Debug, Clone, Default)]
pub struct CompileReport {
    pub inline: inline::InlineStats,
    pub constprop: constprop::ConstPropStats,
    pub normalize: normalize::NormalizeStats,
    pub dce: dce::DceStats,
    pub induction: induction::InductionStats,
    pub reductions_flagged: usize,
    pub loops: Vec<LoopReport>,
    /// (banerjee direction vectors, gcd tests, range probes, permutations)
    pub dd_counters: (u64, u64, u64, u64),
    /// Range-test query outcomes: (run, proved, disproved, abstained);
    /// `run` always equals the sum of the other three.
    pub dd_range: (u64, u64, u64, u64),
    /// Range facts propagated into the analysis environment.
    pub ranges_propagated: u64,
    /// What the `idxprop` stage proved about index-array contents.
    pub idxprop: IdxPropReport,
    /// Property-rule disjointness outcomes: (run, proved).
    pub dd_props: (u64, u64),
    /// What the nest-transformation stages (`interchange`/`tile`/`fuse`)
    /// summarized, proved and applied, with one [`polaris_ir::LegalityCert`]
    /// per applied transformation.
    pub nest: NestReport,
    /// Per-stage outcomes from the fault-isolating pipeline, in run order.
    pub stages: Vec<StageReport>,
    /// Inter-pass verifier totals: invariant checks run at stage
    /// boundaries and violations caught (each violation rolled a stage
    /// back).
    pub verify: VerifyStats,
    /// The adaptive runtime's per-loop decision table, persisted after
    /// execution when the program ran under `--schedule adaptive`
    /// (empty otherwise). One row per loop with adaptation state; see
    /// `polaris_runtime::adaptive` for how the rows are produced.
    pub schedule_decisions: Vec<ScheduleDecision>,
}

/// One persisted row of the adaptive scheduler's decision table —
/// plain data so the report stays self-contained (mirrors
/// `polaris_runtime::DecisionRow`).
#[derive(Debug, Clone, Default)]
pub struct ScheduleDecision {
    pub loop_id: u32,
    pub label: String,
    pub invocations: u64,
    /// Last dispatched strategy: `serial` / `static` / `speculative`.
    pub strategy: String,
    /// Last chunking discipline: `block` / `self:N` / `steal:N`.
    pub chunking: String,
    pub threads: usize,
    pub trip: u64,
    /// Coefficient of variation of per-chunk simulated cycles.
    pub cost_cv: f64,
    pub misspec_streak: u32,
    /// Last controller event (`measure`, `redispatch`, `throttle`,
    /// `probe`, `corrupt-reset`, `forced`).
    pub event: String,
}

impl CompileReport {
    pub fn parallel_loops(&self) -> usize {
        self.loops.iter().filter(|l| l.parallel).count()
    }

    pub fn speculative_loops(&self) -> usize {
        self.loops.iter().filter(|l| l.speculative).count()
    }

    pub fn loop_report(&self, frag: &str) -> Option<&LoopReport> {
        self.loops.iter().find(|l| l.label.contains(frag))
    }

    /// The stage entry with the given [`STAGE_NAMES`] name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// True when at least one stage was rolled back: the compile finished,
    /// but with reduced transformation/analysis coverage.
    pub fn degraded(&self) -> bool {
        self.stages.iter().any(|s| s.rolled_back())
    }

    /// Names of stages that were rolled back, in run order.
    pub fn rolled_back_stages(&self) -> Vec<&'static str> {
        self.stages.iter().filter(|s| s.rolled_back()).map(|s| s.name).collect()
    }
}

/// Run the full restructuring pipeline in place.
///
/// The input program is validated up front (an invalid input is a hard
/// error), then every pass runs as an isolated stage of the
/// fault-isolating [`Pipeline`]: snapshotted, `catch_unwind`-guarded, and
/// re-validated at each boundary, with rollback on any misbehaviour — the
/// `p_assert` discipline. A rolled-back stage degrades the compile (see
/// [`CompileReport::degraded`]) but never aborts it and never lets
/// ill-formed IR escape.
pub fn compile(program: &mut Program, opts: &PassOptions) -> Result<CompileReport> {
    Pipeline::standard(opts).run(program, opts)
}

/// [`compile`] with an observability [`polaris_obs::Recorder`] attached:
/// a `compile` root span encloses per-pass, per-unit and per-loop spans,
/// and the report's statistics are mirrored into typed counters (see
/// `polaris_obs::Counter`). `compile` itself is exactly this with
/// `Recorder::disabled()`.
pub fn compile_recorded(
    program: &mut Program,
    opts: &PassOptions,
    rec: &polaris_obs::Recorder,
) -> Result<CompileReport> {
    Pipeline::standard(opts).run_recorded(program, opts, rec)
}

/// Convenience: parse, compile with the Polaris configuration, return
/// the transformed program and the report.
pub fn parse_and_compile(source: &str, opts: &PassOptions) -> Result<(Program, CompileReport)> {
    let mut program = polaris_ir::parse(source)?;
    let report = compile(&mut program, opts)?;
    Ok((program, report))
}

/// [`parse_and_compile`] with an observability recorder attached.
pub fn parse_and_compile_recorded(
    source: &str,
    opts: &PassOptions,
    rec: &polaris_obs::Recorder,
) -> Result<(Program, CompileReport)> {
    let mut program = polaris_ir::parse(source)?;
    let report = compile_recorded(&mut program, opts, rec)?;
    Ok((program, report))
}

/// [`compile_recorded`] with a [`CancelToken`] checked at every stage
/// boundary — the entry point a deadline watchdog (e.g. `polarisd`) uses.
/// Stages not yet started when the token fires report as rolled back with
/// a [`CANCELLED_PREFIX`] reason; the program stays well-formed.
pub fn compile_cancellable(
    program: &mut Program,
    opts: &PassOptions,
    rec: &polaris_obs::Recorder,
    cancel: &CancelToken,
) -> Result<CompileReport> {
    Pipeline::standard(opts).run_cancellable(program, opts, rec, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_trfd_end_to_end() {
        // The paper's running example: original TRFD-style source with
        // the raw induction variables — Polaris parallelizes everything,
        // VFA nothing (the nonlinear closed forms defeat linear tests,
        // and without generalized induction the recurrences serialize).
        let src = "program trfd\n\
                   real a(100000)\n\
                   integer x, x0\n\
                   !$assert (n >= 1)\n\
                   x0 = 0\n\
                   do i = 0, m - 1\n\
                   \x20 x = x0\n\
                   \x20 do j = 0, n - 1\n\
                   \x20   do k = 0, j - 1\n\
                   \x20     x = x + 1\n\
                   \x20     a(x) = 1.0\n\
                   \x20   end do\n\
                   \x20 end do\n\
                   \x20 x0 = x0 + (n**2 + n)/2\n\
                   end do\n\
                   end\n";
        let (_, report) = parse_and_compile(src, &PassOptions::polaris()).unwrap();
        assert_eq!(report.parallel_loops(), 3, "{:#?}", report.loops);
        assert!(report.induction.additive_removed >= 2);

        let (_, vfa) = parse_and_compile(src, &PassOptions::vfa()).unwrap();
        // VFA legitimately handles the textbook innermost loop (simple
        // induction + linear test) but not the outer loops where the
        // paper's speedup lives.
        assert!(!vfa.loop_report("do6").unwrap().parallel, "{:#?}", vfa.loops);
        assert!(!vfa.loop_report("do8").unwrap().parallel, "{:#?}", vfa.loops);
    }

    #[test]
    fn pipeline_inlines_then_parallelizes() {
        let src = "program t\n\
                   real v(1000)\n\
                   call fill(v, 1000)\n\
                   print *, v(1)\n\
                   end\n\
                   subroutine fill(a, n)\n\
                   real a(n)\n\
                   integer n\n\
                   do i = 1, n\n\
                   \x20 a(i) = i * 2.0\n\
                   end do\n\
                   end\n";
        let (_, report) = parse_and_compile(src, &PassOptions::polaris()).unwrap();
        assert_eq!(report.inline.call_sites_expanded, 1);
        assert_eq!(report.parallel_loops(), 1, "{:#?}", report.loops);
        // VFA does not inline: the main unit keeps the CALL (and has no
        // loop of its own to parallelize); it may still analyze the
        // callee's loop in isolation, as PFA did.
        let (_, vfa) = parse_and_compile(src, &PassOptions::vfa()).unwrap();
        assert!(vfa.loops.iter().all(|l| l.unit == "FILL"), "{:#?}", vfa.loops);
    }

    #[test]
    fn report_counters_populated() {
        let src = "program t\nreal a(100)\ndo i = 1, 100\n  a(i) = 1.0\nend do\nend\n";
        let (_, report) = parse_and_compile(src, &PassOptions::polaris()).unwrap();
        let (_, _, range_probes, _) = report.dd_counters;
        assert!(range_probes >= 1);
        let (_, vfa) = parse_and_compile(src, &PassOptions::vfa()).unwrap();
        let (banerjee, gcd, _, _) = vfa.dd_counters;
        assert!(banerjee + gcd >= 1);
    }

    #[test]
    fn options_presets_differ_where_expected() {
        let p = PassOptions::polaris();
        let v = PassOptions::vfa();
        assert!(p.range_test && !v.range_test);
        assert!(p.array_privatization && !v.array_privatization);
        assert!(p.speculation && !v.speculation);
        assert!(p.inline && !v.inline);
        assert!(v.linear_tests && v.scalar_privatization);
    }
}

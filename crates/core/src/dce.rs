//! Dead scalar-assignment elimination.
//!
//! Induction substitution inserts last-value assignments after every
//! loop it rewrites (§3.2); when the variable is dead the statement is
//! pure overhead — and worse, a dead `K = K + Σ…` inside an enclosing
//! loop body re-introduces a recurrence the dependence driver then has
//! to handle as a reduction. Polaris ran equivalent cleanup; this pass
//! removes assignments to scalars that are never read afterwards.
//!
//! Conservatism: a scalar is *observable* (never removed) if it is a
//! dummy argument, lives in COMMON, or is read anywhere in the unit at a
//! point the assignment could reach. Reachability is approximated
//! textually with the same rule as [`crate::privatize::live_after`]:
//! inside an enclosing loop, every read in that loop's body counts
//! (earlier reads see the value through the back edge). Only assignments
//! whose right-hand side is side-effect-free are candidates (all F-Mini
//! expressions are: intrinsics are pure and out-of-bounds reads cannot
//! occur in a value that is never used — the subscripts themselves are
//! still evaluated by Fortran, but our statement removal also removes
//! the subscript evaluation, which is observationally equivalent for
//! valid programs).

use crate::privatize::live_after;
use polaris_ir::stmt::{StmtKind, StmtList};
use polaris_ir::{Program, ProgramUnit};

/// Statistics for reports/tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DceStats {
    pub removed: usize,
}

/// Run on every unit.
pub fn run(program: &mut Program) -> DceStats {
    let mut stats = DceStats::default();
    for unit in &mut program.units {
        stats.removed += run_unit(unit).removed;
    }
    stats
}

/// Run on one unit to a fixpoint (removing one dead store may kill the
/// uses that kept another alive).
pub fn run_unit(unit: &mut ProgramUnit) -> DceStats {
    let mut stats = DceStats::default();
    loop {
        let victims = find_dead_assignments(unit);
        if victims.is_empty() {
            break;
        }
        stats.removed += victims.len();
        remove(&mut unit.body, &victims);
    }
    stats
}

fn find_dead_assignments(unit: &ProgramUnit) -> Vec<polaris_ir::StmtId> {
    let mut victims = Vec::new();
    // Walk all statements; for scalar assignments check liveness at the
    // statement. (IF blocks wrapping a single dead assignment — the
    // guarded last values — are handled by emptiness cleanup afterwards.)
    unit.body.walk(&mut |s| {
        if let StmtKind::Assign { lhs, .. } = &s.kind {
            if lhs.subs().is_empty() && !live_after(unit, s.id, lhs.name()) {
                victims.push(s.id);
            }
        }
    });
    victims
}

fn remove(list: &mut StmtList, victims: &[polaris_ir::StmtId]) {
    list.0.retain(|s| !victims.contains(&s.id));
    for s in list.0.iter_mut() {
        match &mut s.kind {
            StmtKind::Do(d) => remove(&mut d.body, victims),
            StmtKind::IfBlock { arms, else_body } => {
                for arm in arms {
                    remove(&mut arm.body, victims);
                }
                remove(else_body, victims);
            }
            _ => {}
        }
    }
    // Drop IF blocks that became completely empty.
    list.0.retain(|s| match &s.kind {
        StmtKind::IfBlock { arms, else_body } => {
            !(arms.iter().all(|a| a.body.is_empty()) && else_body.is_empty())
        }
        _ => true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_ir::printer::print_program;

    fn run_src(src: &str) -> (String, DceStats) {
        let mut p = polaris_ir::parse(src).unwrap();
        let stats = run(&mut p);
        polaris_ir::validate::validate_program(&p).unwrap();
        (print_program(&p), stats)
    }

    #[test]
    fn dead_store_removed() {
        let (out, stats) = run_src("program t\nx = 1.0\ny = 2.0\nprint *, y\nend\n");
        assert_eq!(stats.removed, 1);
        assert!(!out.contains("X = 1.0"), "{out}");
        assert!(out.contains("Y = 2.0"));
    }

    #[test]
    fn chain_of_dead_stores_removed_to_fixpoint() {
        // y feeds x; both dead once x goes
        let (out, stats) = run_src("program t\ny = 2.0\nx = y + 1.0\nprint *, 'hi'\nend\n");
        assert_eq!(stats.removed, 2, "{out}");
    }

    #[test]
    fn live_through_loop_backedge_kept() {
        let (out, stats) =
            run_src("program t\nk = 0\ndo i = 1, 3\n  k = k + i\nend do\nprint *, k\nend\n");
        assert_eq!(stats.removed, 0, "{out}");
    }

    #[test]
    fn guarded_dead_lastvalue_disappears_entirely() {
        // the shape induction inserts: IF (1 <= N) K = K + total
        let src = "program t\ninteger k\nk = 0\nif (1 <= n) then\n  k = k + 2*n\nend if\nprint *, 'done'\nend\n";
        let (out, stats) = run_src(src);
        assert!(stats.removed >= 1, "{out}");
        assert!(!out.contains("IF (1"), "empty guard should go too: {out}");
    }

    #[test]
    fn arguments_and_commons_are_observable() {
        let src = "subroutine s(x)\nreal x\nx = 1.0\nend\n";
        let mut p = polaris_ir::parse(src).unwrap();
        assert_eq!(run(&mut p).removed, 0);
        let src2 = "program t\ncommon /blk/ g\ng = 3.0\nend\n";
        let mut p2 = polaris_ir::parse(src2).unwrap();
        assert_eq!(run(&mut p2).removed, 0);
    }

    #[test]
    fn array_stores_never_touched() {
        let (out, stats) = run_src("program t\nreal a(4)\na(1) = 1.0\nend\n");
        assert_eq!(stats.removed, 0);
        assert!(out.contains("A(1) = 1.0"));
    }

    #[test]
    fn conditional_use_keeps_store() {
        let (_, stats) = run_src(
            "program t\nx = 1.0\nif (q > 0.0) then\n  print *, x\nend if\nend\n",
        );
        assert_eq!(stats.removed, 0);
    }
}

#[test]
fn triangular_interchange_end_to_end() {
    let src = "program t\nreal a(64,64)\n\
               do i = 1, 64\n  do j = 1, i\n\
               \x20   a(i,j) = 1.0\n\
               end do\nend do\nprint *, a(1,1)\nend\n";
    let (p, rep) = polaris_core::parse_and_compile(src, &polaris_core::PassOptions::polaris()).unwrap();
    let outer = p.units[0].body.loops()[0];
    eprintln!("interchanges={} outer_var={} outer_limit={:?} certs={}",
        rep.nest.interchanges, outer.var, outer.limit, rep.nest.certs.len());
    assert_eq!(rep.nest.interchanges, 0, "pipeline emitted triangular interchange: outer {} limit {:?}", outer.var, outer.limit);
}

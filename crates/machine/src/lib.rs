//! # polaris-machine — the evaluation substrate
//!
//! The paper evaluates Polaris by running transformed programs on an
//! 8-processor SGI Challenge and reporting speedups (Figure 7) and by
//! running the PD test on an Alliant FX/80 (Figure 6). Neither machine
//! is available, so this crate provides the substitution described in
//! DESIGN.md: a deterministic F-Mini **interpreter** with a cycle-level
//! **cost model** and a simulated shared-memory multiprocessor.
//!
//! * Programs are *actually executed* (results are real and are checked
//!   against sequential semantics by [`exec::run_validated`]), so a
//!   mis-parallelization by the compiler shows up as wrong output, not
//!   just as a bad number.
//! * Each executed operation is charged cycles; a `DOALL` loop's
//!   iterations are charged to per-processor buckets (static block or
//!   dynamic self-scheduling), and the loop costs
//!   `max(buckets) + fork/join + reduction-merge + privatization setup`.
//! * Loops marked `SPECULATIVE` emulate the §3.5 protocol: accesses to
//!   tracked arrays pay shadow-marking costs, the PD-test analysis runs
//!   on the recorded pattern, and a failed test charges the attempt
//!   *plus* the sequential re-execution — reproducing Figure 6's
//!   speedup/slowdown trade-off.
//! * Only the outermost concurrent loop of a dynamic nest runs parallel
//!   (loop-level parallelism, as on the Challenge).
//!
//! The "codegen model" knob reproduces the paper's observation about
//! PFA's aggressive back end: when enabled, innermost loops with
//! straight-line bodies get an unroll/fuse bonus while bodies with
//! conditionals pay a penalty — which is how PFA beats Polaris on two
//! codes and loses badly on APPSP/TOMCATV despite equal parallelism.

pub mod bytecode;
pub mod cost;
pub mod error;
pub mod exec;
pub mod lower;
pub mod oracle;
pub mod shadow;
pub mod stealing;
pub mod threaded;
pub mod value;
pub mod vm;

pub use cost::{CodegenModel, CostModel, Schedule};
pub use error::MachineError;
pub use exec::{
    run, run_recorded, run_serial, run_validated, run_with_state, LoopExecStats, RunResult,
    StateDump,
};
pub use oracle::{audit, audit_recorded, audit_with};
pub use stealing::{ChunkDeque, Steal, StealQueue};

/// Which execution engine interprets lowered statements.
///
/// * `Vm` — the default: the lowered [`lower::Image`] is compiled once
///   more to compact bytecode ([`bytecode`]) and dispatched by a flat
///   register VM ([`vm`]): interned symbols, explicit jump tables,
///   pre-resolved array strides, register-allocated temporaries. Roughly
///   an order of magnitude faster than the tree-walker at *identical*
///   semantics — cycles, fuel, errors and output are bit-for-bit equal.
/// * `TreeWalk` — the original recursive interpreter over the statement
///   tree, retained as the differential oracle the VM is held to
///   (`tests/vm_equivalence.rs`).
///
/// Both engines share the loop orchestration layer (parallel dispatch,
/// speculation, adversarial validation, the threaded backend), so the
/// engine choice affects only straight-line statement execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    #[default]
    Vm,
    TreeWalk,
}

impl Engine {
    /// Parse a `--engine` flag value.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "vm" => Some(Engine::Vm),
            "tree-walk" | "tree" | "treewalk" => Some(Engine::TreeWalk),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Vm => "vm",
            Engine::TreeWalk => "tree-walk",
        }
    }
}

/// How `PARALLEL DO` loops are executed.
///
/// * `Simulated` — the historical mode: iterations run sequentially on
///   the interpreter thread and a cycle cost model charges them to
///   per-processor buckets, reproducing the paper's Challenge numbers.
/// * `Threaded` — loops the pipeline proved parallel are chunked over
///   the iteration space and executed by a persistent pool of real OS
///   threads ([`threaded`]), with per-worker private copies and a
///   deterministic chunk-ordered tree merge for reductions. Results
///   (output, final memory) are required to match serial execution;
///   the simulated cycle accounting is still maintained so speedup
///   *models* stay comparable across modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    Simulated,
    Threaded { procs: usize, schedule: Schedule },
}

/// Simulated machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of processors (1 = serial execution, no overheads).
    pub procs: usize,
    pub cost: CostModel,
    pub schedule: Schedule,
    pub codegen: CodegenModel,
    /// Execution step budget. `None` = unlimited. When set, the
    /// interpreter charges one unit per statement / loop iteration and
    /// aborts with [`MachineError::FuelExhausted`] once the budget is
    /// spent — a miscompiled non-terminating program becomes a reported
    /// error instead of a hang. In threaded mode the budget is a global
    /// atomic counter drawn on by every worker thread.
    pub fuel: Option<u64>,
    /// Cap on total array elements lowering may allocate. `None` =
    /// the built-in per-array safety limit only.
    pub memory_cap: Option<usize>,
    /// Parallel-loop execution backend (default: `Simulated`).
    pub exec_mode: ExecMode,
    /// Statement execution engine (default: the bytecode [`Engine::Vm`];
    /// `Engine::TreeWalk` is the differential oracle).
    pub engine: Engine,
    /// Cooperative cancellation: when set, the interpreter checks the
    /// token at every fuel-step boundary (statement / loop iteration)
    /// and aborts with [`MachineError::Cancelled`] once it trips. `None`
    /// costs nothing.
    pub cancel: Option<polaris_core::CancelToken>,
    /// Test hook (chaos suites): panic when the monotonic step counter
    /// reaches this value, simulating a worker crash mid-execution.
    #[doc(hidden)]
    pub panic_at_step: Option<u64>,
    /// Adaptive per-loop dispatch controller
    /// ([`polaris_runtime::adaptive`]). When set, eligible loops (proven
    /// parallel or LRPD candidates) consult it every invocation for a
    /// strategy / chunking / thread-count decision instead of using the
    /// fixed `schedule`; the controller is shared (`Arc`) so the
    /// adaptation history survives across runs of the same source (e.g.
    /// cached recompiles in `polarisd`).
    pub adaptive: Option<std::sync::Arc<polaris_runtime::AdaptiveController>>,
}

impl MachineConfig {
    /// The paper's evaluation machine: 8 processors, static scheduling.
    pub fn challenge_8() -> MachineConfig {
        MachineConfig {
            procs: 8,
            cost: CostModel::default(),
            schedule: Schedule::Static,
            codegen: CodegenModel::none(),
            fuel: None,
            memory_cap: None,
            exec_mode: ExecMode::Simulated,
            engine: Engine::default(),
            cancel: None,
            panic_at_step: None,
            adaptive: None,
        }
    }

    /// Serial reference machine.
    pub fn serial() -> MachineConfig {
        MachineConfig {
            procs: 1,
            cost: CostModel::default(),
            schedule: Schedule::Static,
            codegen: CodegenModel::none(),
            fuel: None,
            memory_cap: None,
            exec_mode: ExecMode::Simulated,
            engine: Engine::default(),
            cancel: None,
            panic_at_step: None,
            adaptive: None,
        }
    }

    /// Real-thread execution with `procs` worker threads. Also sets the
    /// simulated `procs`/`schedule` to the same values so cost-model
    /// accounting (and the speculative fallback path) stays consistent
    /// with what actually runs.
    pub fn threaded(procs: usize, schedule: Schedule) -> MachineConfig {
        MachineConfig {
            procs: procs.max(1),
            cost: CostModel::default(),
            schedule,
            codegen: CodegenModel::none(),
            fuel: None,
            memory_cap: None,
            exec_mode: ExecMode::Threaded { procs: procs.max(1), schedule },
            engine: Engine::default(),
            cancel: None,
            panic_at_step: None,
            adaptive: None,
        }
    }

    pub fn with_adaptive(
        mut self,
        ctrl: std::sync::Arc<polaris_runtime::AdaptiveController>,
    ) -> MachineConfig {
        self.adaptive = Some(ctrl);
        self
    }

    pub fn with_engine(mut self, engine: Engine) -> MachineConfig {
        self.engine = engine;
        self
    }

    pub fn with_cancel(mut self, token: polaris_core::CancelToken) -> MachineConfig {
        self.cancel = Some(token);
        self
    }

    pub fn with_procs(mut self, procs: usize) -> MachineConfig {
        self.procs = procs;
        if let ExecMode::Threaded { procs: ref mut p, .. } = self.exec_mode {
            *p = procs.max(1);
        }
        self
    }

    pub fn with_exec_mode(mut self, mode: ExecMode) -> MachineConfig {
        self.exec_mode = mode;
        if let ExecMode::Threaded { procs, schedule } = mode {
            self.procs = procs.max(1);
            self.schedule = schedule;
        }
        self
    }

    /// Worker count of the active execution backend.
    pub fn exec_procs(&self) -> usize {
        match self.exec_mode {
            ExecMode::Simulated => self.procs,
            ExecMode::Threaded { procs, .. } => procs,
        }
    }

    /// Schedule of the active execution backend.
    pub fn exec_schedule(&self) -> Schedule {
        match self.exec_mode {
            ExecMode::Simulated => self.schedule,
            ExecMode::Threaded { schedule, .. } => schedule,
        }
    }

    pub fn with_codegen(mut self, codegen: CodegenModel) -> MachineConfig {
        self.codegen = codegen;
        self
    }

    pub fn with_fuel(mut self, fuel: u64) -> MachineConfig {
        self.fuel = Some(fuel);
        self
    }

    pub fn with_memory_cap(mut self, elements: usize) -> MachineConfig {
        self.memory_cap = Some(elements);
        self
    }

    /// Simulated seconds at the Challenge's 150 MHz clock.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / 150.0e6
    }
}

//! Shadow-array simulation for speculative loops inside the machine.
//!
//! Mirrors the marking rules of `polaris-runtime`'s LRPD implementation
//! (the real threaded one); here the marking is performed by the
//! interpreter while it executes the loop, and the verdict feeds the
//! cost model: a failed test charges the attempt plus sequential
//! re-execution (§3.5.3).

const NEVER: u32 = u32::MAX;

/// Per-array shadow state.
#[derive(Debug, Clone)]
pub struct ShadowSim {
    write_epoch: Vec<u32>,
    read_epoch: Vec<u32>,
    aw: Vec<bool>,
    ar: Vec<bool>,
    np: Vec<bool>,
    writes: u64,
    reads_buf: Vec<usize>,
    /// Number of marking operations performed (for the cost model).
    pub marks_done: u64,
}

/// Outcome of the simulated PD test for one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecVerdict {
    pub flow_anti: bool,
    pub output_dep: bool,
    pub not_privatizable: bool,
}

impl SpecVerdict {
    /// Valid as a plain doall.
    pub fn plain_ok(&self) -> bool {
        !self.flow_anti && !self.output_dep && !self.not_privatizable
    }
}

impl ShadowSim {
    pub fn new(n: usize) -> ShadowSim {
        ShadowSim {
            write_epoch: vec![NEVER; n],
            read_epoch: vec![NEVER; n],
            aw: vec![false; n],
            ar: vec![false; n],
            np: vec![false; n],
            writes: 0,
            reads_buf: Vec::new(),
            marks_done: 0,
        }
    }

    pub fn on_read(&mut self, idx: usize, t: u32) {
        self.marks_done += 1;
        if self.write_epoch[idx] == t {
            return;
        }
        if self.read_epoch[idx] != t {
            self.read_epoch[idx] = t;
            self.reads_buf.push(idx);
        }
    }

    pub fn on_write(&mut self, idx: usize, t: u32) {
        self.marks_done += 1;
        if self.write_epoch[idx] != t {
            self.writes += 1;
            self.aw[idx] = true;
            if self.read_epoch[idx] == t {
                self.np[idx] = true;
            }
            self.write_epoch[idx] = t;
        }
    }

    pub fn end_iteration(&mut self, t: u32) {
        for &idx in &self.reads_buf {
            if self.write_epoch[idx] != t {
                self.ar[idx] = true;
            }
        }
        self.reads_buf.clear();
    }

    pub fn verdict(&self) -> SpecVerdict {
        let marks = self.aw.iter().filter(|b| **b).count() as u64;
        let flow_anti = self.aw.iter().zip(&self.ar).any(|(w, r)| *w && *r);
        let not_privatizable = self.aw.iter().zip(&self.np).any(|(w, p)| *w && *p);
        SpecVerdict { flow_anti, output_dep: self.writes != marks, not_privatizable }
    }

    pub fn len(&self) -> usize {
        self.aw.len()
    }

    pub fn is_empty(&self) -> bool {
        self.aw.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_pattern_passes() {
        let mut s = ShadowSim::new(8);
        for t in 0..8u32 {
            s.on_write(t as usize, t);
            s.end_iteration(t);
        }
        assert!(s.verdict().plain_ok());
    }

    #[test]
    fn cross_iteration_read_fails() {
        let mut s = ShadowSim::new(8);
        s.on_write(3, 0);
        s.end_iteration(0);
        s.on_read(3, 1);
        s.end_iteration(1);
        let v = s.verdict();
        assert!(v.flow_anti);
        assert!(!v.plain_ok());
    }

    #[test]
    fn overwrite_is_output_dep() {
        let mut s = ShadowSim::new(4);
        s.on_write(2, 0);
        s.end_iteration(0);
        s.on_write(2, 5);
        s.end_iteration(5);
        let v = s.verdict();
        assert!(v.output_dep && !v.flow_anti);
    }

    #[test]
    fn write_then_read_same_iteration_ok() {
        let mut s = ShadowSim::new(4);
        s.on_write(1, 0);
        s.on_read(1, 0);
        s.end_iteration(0);
        assert!(s.verdict().plain_ok());
    }

    #[test]
    fn read_then_write_same_iteration_is_np() {
        let mut s = ShadowSim::new(4);
        s.on_read(1, 0);
        s.on_write(1, 0);
        s.end_iteration(0);
        let v = s.verdict();
        assert!(v.not_privatizable);
    }
}

//! Run-time values and storage.

use crate::error::MachineError;
use std::sync::Arc;

/// A scalar run-time value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum V {
    I(i64),
    R(f64),
    B(bool),
}

impl V {
    pub fn as_i(self) -> Result<i64, MachineError> {
        match self {
            V::I(v) => Ok(v),
            V::R(v) => Ok(v as i64),
            V::B(_) => Err(MachineError::Type("logical used as integer".into())),
        }
    }

    pub fn as_r(self) -> Result<f64, MachineError> {
        match self {
            V::I(v) => Ok(v as f64),
            V::R(v) => Ok(v),
            V::B(_) => Err(MachineError::Type("logical used as real".into())),
        }
    }

    pub fn as_b(self) -> Result<bool, MachineError> {
        match self {
            V::B(v) => Ok(v),
            _ => Err(MachineError::Type("numeric used as logical".into())),
        }
    }

    pub fn is_real(self) -> bool {
        matches!(self, V::R(_))
    }
}

/// A scalar storage slot (typed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    I(i64),
    R(f64),
    B(bool),
}

impl Scalar {
    pub fn get(self) -> V {
        match self {
            Scalar::I(v) => V::I(v),
            Scalar::R(v) => V::R(v),
            Scalar::B(v) => V::B(v),
        }
    }

    /// Store with Fortran assignment conversion.
    pub fn set(&mut self, v: V) -> Result<(), MachineError> {
        match self {
            Scalar::I(slot) => *slot = v.as_i()?,
            Scalar::R(slot) => *slot = v.as_r()?,
            Scalar::B(slot) => *slot = v.as_b()?,
        }
        Ok(())
    }
}

/// Array element storage (column-major, flattened).
#[derive(Debug, Clone, PartialEq)]
pub enum ArrData {
    I(Vec<i64>),
    R(Vec<f64>),
    B(Vec<bool>),
}

impl ArrData {
    pub fn len(&self) -> usize {
        match self {
            ArrData::I(v) => v.len(),
            ArrData::R(v) => v.len(),
            ArrData::B(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn get(&self, idx: usize) -> V {
        match self {
            ArrData::I(v) => V::I(v[idx]),
            ArrData::R(v) => V::R(v[idx]),
            ArrData::B(v) => V::B(v[idx]),
        }
    }

    pub fn set(&mut self, idx: usize, v: V) -> Result<(), MachineError> {
        match self {
            ArrData::I(s) => s[idx] = v.as_i()?,
            ArrData::R(s) => s[idx] = v.as_r()?,
            ArrData::B(s) => s[idx] = v.as_b()?,
        }
        Ok(())
    }

    /// Approximate equality for validation (reductions reassociate).
    pub fn approx_eq(&self, other: &ArrData, tol: f64) -> bool {
        match (self, other) {
            (ArrData::I(a), ArrData::I(b)) => a == b,
            (ArrData::B(a), ArrData::B(b)) => a == b,
            (ArrData::R(a), ArrData::R(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| {
                        let scale = x.abs().max(y.abs()).max(1.0);
                        (x - y).abs() <= tol * scale
                    })
            }
            _ => false,
        }
    }
}

/// An array object: declared lower bounds + per-dimension extents.
///
/// Element storage is behind an `Arc` so the threaded backend can hand
/// each worker a copy-on-write snapshot: arrays the worker never writes
/// stay shared (an `Arc` clone), and `Arc::ptr_eq` against the pre-fork
/// snapshot tells the merge step exactly which arrays were touched.
/// Writes go through `Arc::make_mut`, which is a refcount check on the
/// hot path when the storage is unshared (the serial/simulated case).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrObj {
    pub name: String,
    pub lows: Vec<i64>,
    pub extents: Vec<i64>,
    pub data: Arc<ArrData>,
}

impl ArrObj {
    /// Column-major flatten; bounds-checked.
    pub fn flatten(&self, subs: &[i64]) -> Result<usize, MachineError> {
        debug_assert_eq!(subs.len(), self.lows.len());
        let mut off: i64 = 0;
        let mut stride: i64 = 1;
        for ((s, lo), ext) in subs.iter().zip(&self.lows).zip(&self.extents) {
            let z = s - lo;
            if z < 0 || z >= *ext {
                return Err(MachineError::OutOfBounds {
                    array: self.name.clone(),
                    index: *s,
                    len: *ext as usize,
                });
            }
            off += z * stride;
            stride *= ext;
        }
        Ok(off as usize)
    }
}

/// Scalar approximate equality for validation.
pub fn scalar_approx_eq(a: &Scalar, b: &Scalar, tol: f64) -> bool {
    match (a, b) {
        (Scalar::R(x), Scalar::R(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= tol * scale
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_follow_fortran() {
        assert_eq!(V::R(2.9).as_i().unwrap(), 2); // truncation
        assert_eq!(V::I(3).as_r().unwrap(), 3.0);
        assert!(V::I(1).as_b().is_err());
    }

    #[test]
    fn column_major_flatten() {
        let a = ArrObj {
            name: "A".into(),
            lows: vec![1, 1],
            extents: vec![10, 5],
            data: Arc::new(ArrData::R(vec![0.0; 50])),
        };
        assert_eq!(a.flatten(&[1, 1]).unwrap(), 0);
        assert_eq!(a.flatten(&[2, 1]).unwrap(), 1); // first dim fastest
        assert_eq!(a.flatten(&[1, 2]).unwrap(), 10);
        assert!(a.flatten(&[11, 1]).is_err());
        assert!(a.flatten(&[0, 1]).is_err());
    }

    #[test]
    fn nonunit_lower_bounds() {
        let a = ArrObj {
            name: "A".into(),
            lows: vec![0],
            extents: vec![4],
            data: Arc::new(ArrData::I(vec![0; 4])),
        };
        assert_eq!(a.flatten(&[0]).unwrap(), 0);
        assert_eq!(a.flatten(&[3]).unwrap(), 3);
        assert!(a.flatten(&[4]).is_err());
    }

    #[test]
    fn approx_eq_tolerates_roundoff() {
        let a = ArrData::R(vec![1.0, 2.0]);
        let b = ArrData::R(vec![1.0 + 1e-12, 2.0]);
        assert!(a.approx_eq(&b, 1e-9));
        let c = ArrData::R(vec![1.1, 2.0]);
        assert!(!a.approx_eq(&c, 1e-9));
    }
}

//! Machine errors.

use std::fmt;

/// Errors raised while lowering or executing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The main unit still contains a CALL the machine cannot execute
    /// (the machine runs post-inlining programs).
    UnresolvedCall(String),
    /// An array's declared dimensions are not compile-time constants.
    NonConstantDims(String),
    /// Subscript outside the declared bounds.
    OutOfBounds { array: String, index: i64, len: usize },
    /// Type mismatch the frontend failed to reject.
    Type(String),
    /// STOP executed (not an error; surfaced as control flow).
    Stopped,
    /// Division by zero.
    DivByZero,
    /// Program has no main unit.
    NoMain,
    /// Validation: parallel execution diverged from sequential.
    ValidationMismatch(String),
    /// Lowering hit an unsupported construct.
    Unsupported(String),
    /// The execution step budget ([`crate::MachineConfig::fuel`]) ran
    /// out: the program did not terminate within `limit` steps. This is
    /// how a miscompile that produces an infinite loop surfaces as a
    /// reported error instead of a hang.
    FuelExhausted { limit: u64 },
    /// Lowering would allocate more array storage than the configured
    /// memory cap allows.
    MemoryCapExceeded { need: usize, cap: usize },
    /// A worker thread of the real-thread backend died without reporting
    /// a result (it panicked). The parallel loop's effects are discarded.
    WorkerPanicked { loop_label: String },
    /// The run's [`polaris_core::CancelToken`] was cancelled; execution
    /// stopped cooperatively at the next fuel-step boundary. Carries the
    /// canceller's reason (e.g. a polarisd deadline message).
    Cancelled(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UnresolvedCall(n) => {
                write!(f, "machine cannot execute CALL to `{n}` (run the inliner first)")
            }
            MachineError::NonConstantDims(n) => {
                write!(f, "array `{n}` has non-constant dimensions at load time")
            }
            MachineError::OutOfBounds { array, index, len } => {
                write!(f, "subscript {index} out of bounds for `{array}` (size {len})")
            }
            MachineError::Type(m) => write!(f, "type error: {m}"),
            MachineError::Stopped => write!(f, "STOP"),
            MachineError::DivByZero => write!(f, "division by zero"),
            MachineError::NoMain => write!(f, "program has no PROGRAM unit"),
            MachineError::ValidationMismatch(m) => {
                write!(f, "parallel execution diverged from sequential: {m}")
            }
            MachineError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            MachineError::FuelExhausted { limit } => {
                write!(f, "execution fuel exhausted after {limit} steps (non-terminating program?)")
            }
            MachineError::MemoryCapExceeded { need, cap } => {
                write!(f, "program needs {need} array elements, exceeding the memory cap of {cap}")
            }
            MachineError::WorkerPanicked { loop_label } => {
                write!(f, "a worker thread panicked while executing parallel loop {loop_label}")
            }
            MachineError::Cancelled(reason) => {
                write!(f, "execution cancelled: {reason}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

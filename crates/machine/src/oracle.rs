//! The dependence oracle: an instrumented serial interpreter mode that
//! records, per compiler-identified loop, the *exact* set of
//! cross-iteration flow/anti/output dependences the program exhibits,
//! then cross-checks them against the pipeline's claims.
//!
//! This generalizes the LRPD shadow arrays of [`crate::shadow`] — which
//! mark one array per speculative loop and aggregate to three booleans —
//! to whole-program tracing with source attribution: every scalar slot
//! and every array element is epoch-tagged per active loop invocation,
//! so an access inside a nest is checked against each enclosing loop's
//! iteration counter independently. Execution order is the serial order
//! (annotations do not affect the trace), which makes the recorded
//! dependences the ground truth any parallel execution must respect.
//!
//! Per location and per active loop frame the tracker keeps two epochs,
//! `write` (last iteration that wrote) and `first_read` (earliest read
//! since that write). That is enough to detect every dependence kind
//! exactly:
//!
//! * read with `write < current` → **flow** (the witness pair is the
//!   writing and reading iterations),
//! * write with `first_read < current` → **anti**,
//! * write with `write < current` → **output**.
//!
//! The verdict layer ([`polaris_runtime::verdict`]) then confronts the
//! trace with the compiler's claims: PARALLEL plus an undischarged
//! dependence is a soundness violation; serial plus an empty dependence
//! set is a completeness miss.

use crate::error::MachineError;
use crate::exec;
use crate::lower::{lower_with_cap, Image};
use crate::MachineConfig;
use polaris_core::CompileReport;
use polaris_ir::stmt::LoopId;
use polaris_ir::Program;
use polaris_runtime::verdict::{
    judge, DepKind, DepObservation, LoopClaim, LoopObservation, OracleReport,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Epoch sentinel: "never accessed in this invocation".
const NEVER: u64 = u64::MAX;

/// Per-location state within one loop invocation.
#[derive(Clone, Copy)]
struct Cell {
    /// Iteration of the last write, or [`NEVER`].
    write: u64,
    /// Earliest read since the last write, or [`NEVER`].
    first_read: u64,
}

const EMPTY_CELL: Cell = Cell { write: NEVER, first_read: NEVER };

/// Cheap multiplicative hasher for the element maps: keys are already
/// well-mixed `(array << 40) | index` integers, and the default SipHash
/// would dominate the per-access cost of the trace.
#[derive(Default)]
struct ElemHasher(u64);

impl Hasher for ElemHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type ElemMap = HashMap<u64, Cell, BuildHasherDefault<ElemHasher>>;

/// One active loop invocation on the interpreter's loop stack.
struct Frame {
    loop_id: LoopId,
    /// Current iteration index (0-based position in the iteration
    /// sequence, which also handles negative strides uniformly).
    iter: u64,
    /// Iterations started in this invocation.
    trip: u64,
    scalars: Vec<Cell>,
    elems: ElemMap,
}

/// Storage identity of a traced variable (resolved to names at the end).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum VarKey {
    Scalar(usize),
    Array(usize),
}

/// All detections of one `(loop, var, kind)` dependence, with the first
/// witness kept for the report.
struct DepAgg {
    count: u64,
    src: u64,
    dst: u64,
    element: Option<u64>,
}

#[derive(Default)]
struct LoopAgg {
    label: String,
    invocations: u64,
    max_trip: u64,
    deps: BTreeMap<(VarKey, DepKind), DepAgg>,
}

/// The whole-program dependence tracker the interpreter drives through
/// its access hooks (see `exec.rs`).
#[derive(Default)]
pub(crate) struct OracleState {
    frames: Vec<Frame>,
    agg: BTreeMap<LoopId, LoopAgg>,
}

fn record(
    agg: &mut BTreeMap<LoopId, LoopAgg>,
    loop_id: LoopId,
    key: VarKey,
    kind: DepKind,
    src: u64,
    dst: u64,
    element: Option<u64>,
) {
    let entry = agg
        .get_mut(&loop_id)
        .expect("dependence recorded for a loop that never entered");
    entry
        .deps
        .entry((key, kind))
        .and_modify(|d| d.count += 1)
        .or_insert(DepAgg { count: 1, src, dst, element });
}

impl OracleState {
    pub(crate) fn new() -> OracleState {
        OracleState::default()
    }

    pub(crate) fn enter_loop(&mut self, loop_id: LoopId, label: &str, n_scalars: usize) {
        let entry = self.agg.entry(loop_id).or_default();
        if entry.label.is_empty() {
            entry.label = label.to_string();
        }
        entry.invocations += 1;
        self.frames.push(Frame {
            loop_id,
            iter: 0,
            trip: 0,
            scalars: vec![EMPTY_CELL; n_scalars],
            elems: ElemMap::default(),
        });
    }

    pub(crate) fn begin_iteration(&mut self, idx: u64) {
        if let Some(f) = self.frames.last_mut() {
            f.iter = idx;
            f.trip = f.trip.max(idx + 1);
        }
    }

    pub(crate) fn exit_loop(&mut self) {
        if let Some(f) = self.frames.pop() {
            let entry = self.agg.entry(f.loop_id).or_default();
            entry.max_trip = entry.max_trip.max(f.trip);
        }
    }

    pub(crate) fn scalar_read(&mut self, slot: usize) {
        let agg = &mut self.agg;
        for f in &mut self.frames {
            let cell = &mut f.scalars[slot];
            if cell.write != NEVER && cell.write < f.iter {
                record(
                    agg,
                    f.loop_id,
                    VarKey::Scalar(slot),
                    DepKind::Flow,
                    cell.write,
                    f.iter,
                    None,
                );
            }
            if cell.first_read == NEVER {
                cell.first_read = f.iter;
            }
        }
    }

    pub(crate) fn scalar_write(&mut self, slot: usize) {
        let agg = &mut self.agg;
        for f in &mut self.frames {
            let cell = &mut f.scalars[slot];
            if cell.write != NEVER && cell.write < f.iter {
                record(
                    agg,
                    f.loop_id,
                    VarKey::Scalar(slot),
                    DepKind::Output,
                    cell.write,
                    f.iter,
                    None,
                );
            }
            if cell.first_read != NEVER && cell.first_read < f.iter {
                record(
                    agg,
                    f.loop_id,
                    VarKey::Scalar(slot),
                    DepKind::Anti,
                    cell.first_read,
                    f.iter,
                    None,
                );
            }
            cell.write = f.iter;
            cell.first_read = NEVER;
        }
    }

    pub(crate) fn array_read(&mut self, arr: usize, idx: usize) {
        let key = ((arr as u64) << 40) | idx as u64;
        let agg = &mut self.agg;
        for f in &mut self.frames {
            let cell = f.elems.entry(key).or_insert(EMPTY_CELL);
            if cell.write != NEVER && cell.write < f.iter {
                record(
                    agg,
                    f.loop_id,
                    VarKey::Array(arr),
                    DepKind::Flow,
                    cell.write,
                    f.iter,
                    Some(idx as u64),
                );
            }
            if cell.first_read == NEVER {
                cell.first_read = f.iter;
            }
        }
    }

    pub(crate) fn array_write(&mut self, arr: usize, idx: usize) {
        let key = ((arr as u64) << 40) | idx as u64;
        let agg = &mut self.agg;
        for f in &mut self.frames {
            let cell = f.elems.entry(key).or_insert(EMPTY_CELL);
            if cell.write != NEVER && cell.write < f.iter {
                record(
                    agg,
                    f.loop_id,
                    VarKey::Array(arr),
                    DepKind::Output,
                    cell.write,
                    f.iter,
                    Some(idx as u64),
                );
            }
            if cell.first_read != NEVER && cell.first_read < f.iter {
                record(
                    agg,
                    f.loop_id,
                    VarKey::Array(arr),
                    DepKind::Anti,
                    cell.first_read,
                    f.iter,
                    Some(idx as u64),
                );
            }
            cell.write = f.iter;
            cell.first_read = NEVER;
        }
    }

    /// Resolve the aggregated trace into per-loop observations with
    /// source-level names.
    pub(crate) fn observations(&self, image: &Image) -> Vec<LoopObservation> {
        let name_of = |key: &VarKey| -> String {
            match key {
                VarKey::Scalar(i) => image.scalar_names[*i].clone(),
                VarKey::Array(i) => image.arrays[*i].name.clone(),
            }
        };
        self.agg
            .iter()
            .map(|(loop_id, a)| {
                let mut deps: Vec<DepObservation> = a
                    .deps
                    .iter()
                    .map(|((key, kind), d)| DepObservation {
                        var: name_of(key),
                        kind: *kind,
                        count: d.count,
                        src_iter: d.src,
                        dst_iter: d.dst,
                        element: d.element,
                    })
                    .collect();
                deps.sort_by(|x, y| x.var.cmp(&y.var).then(x.kind.cmp(&y.kind)));
                LoopObservation {
                    loop_id: *loop_id,
                    label: a.label.clone(),
                    invocations: a.invocations,
                    max_trip: a.max_trip,
                    deps,
                }
            })
            .collect()
    }
}

/// Distill the compiler's per-loop claims from the transformed IR (the
/// same annotations `lower` turns into `RPar`) plus the report's serial
/// reasons.
fn claims_from(program: &Program, report: &CompileReport) -> Vec<LoopClaim> {
    let Some(main) = program.main() else { return Vec::new() };
    main.body
        .loops()
        .iter()
        .map(|d| {
            let rep = report
                .loops
                .iter()
                .find(|r| r.loop_id == d.loop_id && r.unit == main.name);
            let mut private: BTreeSet<String> = d.par.private.iter().cloned().collect();
            private.extend(d.par.copy_out.iter().cloned());
            LoopClaim {
                loop_id: d.loop_id,
                label: d.label.clone(),
                parallel: d.par.parallel,
                speculative: d.par.speculative.is_some(),
                private,
                reductions: d.par.reductions.iter().map(|r| r.var.clone()).collect(),
                serial_reason: rep
                    .and_then(|r| r.serial_reason.clone())
                    .or_else(|| d.par.serial_reason.clone()),
            }
        })
        .collect()
}

/// Audit a compiled program: execute it serially with the dependence
/// trace attached and cross-check every loop's observed dependences
/// against its compile-time claim. `program` must be the *transformed*
/// program the `report` belongs to.
pub fn audit(program: &Program, report: &CompileReport) -> Result<OracleReport, MachineError> {
    audit_with(program, report, &MachineConfig::serial())
}

/// [`audit`] with resource limits taken from `cfg` (`fuel`,
/// `memory_cap`); the execution itself is always serial/simulated —
/// the trace needs program order.
pub fn audit_with(
    program: &Program,
    report: &CompileReport,
    cfg: &MachineConfig,
) -> Result<OracleReport, MachineError> {
    audit_recorded(program, report, cfg, &polaris_obs::Recorder::disabled())
}

/// [`audit_with`] with an observability [`polaris_obs::Recorder`]
/// attached: the traced run is wrapped in an `oracle` span and the
/// violation count is mirrored into `oracle.violations`.
pub fn audit_recorded(
    program: &Program,
    report: &CompileReport,
    cfg: &MachineConfig,
    rec: &polaris_obs::Recorder,
) -> Result<OracleReport, MachineError> {
    let mut serial = MachineConfig::serial();
    serial.fuel = cfg.fuel;
    serial.memory_cap = cfg.memory_cap;
    serial.engine = cfg.engine;
    let oracle_span = rec.span("oracle", "audit");
    let image = lower_with_cap(program, serial.memory_cap)?;
    let trace = exec::run_traced(&image, &serial)?;
    let observations = trace.observations(&image);
    let verdict = judge(&claims_from(program, report), &observations);
    oracle_span.end();
    rec.count(polaris_obs::Counter::OracleViolations, verdict.violations().count() as u64);
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_core::{compile, PassOptions};
    use polaris_ir::parse;
    use polaris_runtime::verdict::ClaimKind;

    fn audited(src: &str) -> (OracleReport, CompileReport) {
        let mut p = parse(src).unwrap();
        let rep = compile(&mut p, &PassOptions::polaris()).unwrap();
        let oracle = audit(&p, &rep).unwrap();
        (oracle, rep)
    }

    #[test]
    fn independent_parallel_loop_is_clean() {
        let (o, rep) = audited(
            "program t\nreal a(100)\ndo i = 1, 100\n  a(i) = i * 2.0\nend do\nprint *, a(5)\nend\n",
        );
        assert_eq!(rep.parallel_loops(), 1);
        assert!(!o.has_violations(), "{:?}", o.violations().collect::<Vec<_>>());
        let l = &o.loops[0];
        assert_eq!(l.claim, ClaimKind::Parallel);
        assert!(l.deps.is_empty());
        assert_eq!(l.max_trip, 100);
    }

    #[test]
    fn recurrence_loop_records_flow_dependence() {
        let (o, _) = audited(
            "program t\nreal a(100)\na(1) = 1.0\ndo i = 2, 100\n  a(i) = a(i-1) + 1.0\nend do\nprint *, a(100)\nend\n",
        );
        let l = o.loops.iter().find(|l| l.max_trip == 99).unwrap();
        assert_eq!(l.claim, ClaimKind::Serial);
        assert!(l.deps.iter().any(|d| d.var == "A" && d.kind == DepKind::Flow));
        assert!(!l.completeness_miss);
        assert!(!o.has_violations());
    }

    #[test]
    fn forced_bogus_parallel_annotation_is_soundness_violation() {
        let src = "program t\nreal a(100)\na(1) = 1.0\ndo i = 2, 100\n  a(i) = a(i-1) + 1.0\nend do\nprint *, a(100)\nend\n";
        let mut p = parse(src).unwrap();
        let rep = compile(&mut p, &PassOptions::polaris()).unwrap();
        // Sabotage: force the recurrence loop parallel, as a buggy pass
        // would. The oracle must catch the published race.
        let main = p.main_mut().unwrap();
        main.body.walk_mut(&mut |s| {
            if let Some(d) = s.as_do_mut() {
                d.par.parallel = true;
                d.par.serial_reason = None;
            }
        });
        let o = audit(&p, &rep).unwrap();
        assert!(o.has_violations());
        let v = o.violations().next().unwrap();
        assert_eq!(v.dep.var, "A");
        assert_eq!(v.dep.kind, DepKind::Flow);
    }

    #[test]
    fn runtime_independent_serial_loop_is_completeness_miss() {
        // Subscripted subscript with a permutation index: statically
        // unanalyzable (a MOD-keyed fill defeats both the range test
        // and the idxprop recognizers — an affine fill like `51 - i`
        // would now be *proved* injective and parallelized) but
        // dynamically independent, since gcd(3, 50) = 1 makes the fill
        // a permutation at run time — the textbook completeness miss.
        // Speculation is what Polaris would do; disable run-time tests
        // to force the serial verdict the miss metric is about.
        let src = "program t\ninteger idx(50)\nreal a(50)\ndo i = 1, 50\n  idx(i) = mod(i*3, 50) + 1\nend do\ndo i = 1, 50\n  a(idx(i)) = i * 1.0\nend do\nprint *, a(3)\nend\n";
        let mut p = parse(src).unwrap();
        let mut opts = PassOptions::polaris();
        opts.speculation = false;
        let rep = compile(&mut p, &opts).unwrap();
        let o = audit(&p, &rep).unwrap();
        assert!(!o.has_violations());
        let miss = o.loops.iter().find(|l| l.completeness_miss);
        assert!(miss.is_some(), "expected a completeness miss: {o:?}");
        assert_eq!(o.completeness_misses(), 1);
        assert!(o.miss_rate() > 0.0);
    }

    #[test]
    fn privatized_scalar_and_reduction_are_discharged() {
        let (o, rep) = audited(
            "program t\nreal a(100), s\ns = 0.0\ndo i = 1, 100\n  t = i * 2.0\n  a(i) = t + 1.0\n  s = s + a(i)\nend do\nprint *, s\nend\n",
        );
        assert_eq!(rep.parallel_loops(), 1);
        assert!(!o.has_violations(), "{:?}", o.violations().collect::<Vec<_>>());
        // The serial trace still *sees* the private/reduction traffic —
        // the claims discharge it, attribution intact.
        let l = o.loops.iter().find(|l| l.claim == ClaimKind::Parallel).unwrap();
        assert!(l.deps.iter().any(|d| d.var == "S"));
        assert!(l.deps.iter().any(|d| d.var == "T"));
    }

    #[test]
    fn nested_loops_attribute_dependences_to_the_carrying_level() {
        // Outer loop carries a flow dependence on B (row i reads row
        // i-1); inner loops are independent.
        let src = "program t\nreal b(20,20)\ninteger n\nn = 20\ndo j = 1, n\n  b(1,j) = 1.0\nend do\ndo i = 2, n\n  do j = 1, n\n    b(i,j) = b(i-1,j) + 1.0\n  end do\nend do\nprint *, b(5,5)\nend\n";
        let (o, _) = audited(src);
        let outer = o
            .loops
            .iter()
            .find(|l| l.deps.iter().any(|d| d.var == "B" && d.kind == DepKind::Flow))
            .expect("outer loop should carry the flow dependence");
        assert_eq!(outer.claim, ClaimKind::Serial);
        // At least one loop (the inner sweep or the init loop) is
        // parallel and clean.
        assert!(o.loops.iter().any(|l| l.claim == ClaimKind::Parallel && l.violations.is_empty()));
    }
}

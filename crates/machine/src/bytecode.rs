//! Bytecode lowering: the compact executable form of an F-Mini unit.
//!
//! The tree-walking interpreter in [`crate::exec`] re-traverses the
//! boxed [`RExpr`]/[`RStmt`] tree on every statement execution, paying a
//! pointer chase per node, a dynamic type dispatch per value and a
//! recursive call per sub-expression. This module lowers an [`Image`]
//! once into a flat *typed* register machine program the VM
//! ([`crate::vm`]) can dispatch over with a plain `match` per
//! instruction:
//!
//! * **Typed instructions** — F-Mini is statically typed (every scalar
//!   slot and array keeps one of `I`/`R`/`B` for its whole life), so the
//!   compiler infers the type of every sub-expression and emits
//!   specialized opcodes (`add.r`, `ld.s.i`, …) that operate on raw
//!   64-bit registers with no run-time tag dispatch. Numeric promotion
//!   (`I op R`) compiles to an explicit charge-free conversion.
//! * **Interned symbols** — array names and PRINT string literals live
//!   in one [`Interner`]; instructions carry `u32` symbols, and names
//!   are only materialized on the error path (`OutOfBounds` carries the
//!   array name, exactly like the tree-walker).
//! * **Flat instruction stream with an explicit jump table** — each
//!   [`BcBlock`] is a `Vec<Instr>` plus a `labels` table mapping label
//!   ids to instruction addresses. Forward branches are emitted against
//!   fresh labels and resolved by binding the label after the target is
//!   known.
//! * **Pre-resolved array strides and fused subscripts** — [`ArrMeta`]
//!   stores per-dim lower bound, extent and column-major stride computed
//!   once; the common subscript shapes (`i`, `i±k`, literal) are fused
//!   into the element access itself as [`SubSrc`] descriptors, so
//!   `a(i,j+1)` is *one* instruction, not five.
//! * **Register-allocated temporaries** — expression temporaries live in
//!   a per-block `u64` frame (`f64` values are bit-cast). Allocation is
//!   stack-shaped: an expression compiled into register `d` may scratch
//!   only registers `> d`. Registers never live across a statement
//!   boundary, which lets block activations reuse frames without
//!   re-initializing them.
//!
//! Loops deliberately stay *structural*: a `DO` statement compiles to
//! [`Instr::CallLoop`], which re-enters the shared orchestration logic
//! in `exec::run_loop` (parallel dispatch, speculation, adversarial
//! validation, threaded chunking, F77 exit values). Only straight-line
//! statement lists — the hot 99% — are bytecode; the scheduling brain
//! is shared between both engines so their decisions cannot diverge.
//!
//! Anything the type inference cannot prove (a `B` operand reaching
//! arithmetic, a string outside PRINT, a wrong intrinsic arity — all of
//! which are *run-time* errors in F-Mini) compiles to [`Instr::Exec`],
//! which hands that single statement to the tree-walker itself. The
//! fallback is parity-correct by construction and only ever cold.
//!
//! Cost/fuel parity with the tree-walker is part of this module's
//! contract: a [`Instr::Step`] is emitted at every statement boundary
//! (where `run_stmt` calls `charge_step`), and every value-producing
//! instruction charges exactly the cycles its tree-walk counterpart
//! does — including the *data-dependent* charges (integer divide by a
//! power of two costs `alu`, `x**k` for small integer `k` costs `k`
//! multiplies), which stay run-time checks in the typed VM.
//! `tests/vm_equivalence.rs` holds both engines to bit-identical
//! output, cycles and final memory.

use crate::error::MachineError;
use crate::lower::{Image, Intr, RExpr, RLoop, RStmt};
use crate::value::{ArrData, Scalar};
use polaris_ir::expr::BinOp;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// A VM register index within a block frame.
pub type Reg = u16;
/// An index into a block's jump table ([`BcBlock::labels`]).
pub type Label = u16;

/// An interned string (array name or PRINT literal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// Append-only string interner: each distinct string gets one `u32` id;
/// `intern` is idempotent and `resolve` is an array index.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    map: BTreeMap<String, u32>,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&id) = self.map.get(s) {
            return Sym(id);
        }
        let id = self.names.len() as u32;
        self.names.push(s.to_string());
        self.map.insert(s.to_string(), id);
        Sym(id)
    }

    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.map.get(s).map(|&id| Sym(id))
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One dimension of a pre-resolved array layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrDim {
    pub low: i64,
    pub extent: i64,
    /// Column-major stride in elements (dim 0 has stride 1).
    pub stride: i64,
}

/// Pre-resolved addressing metadata for one array slot, parallel to
/// `Image::arrays`. Flattening follows `ArrObj::flatten` exactly —
/// including the per-dimension bounds-check order and the error payload
/// (failing subscript + that dimension's extent).
#[derive(Debug, Clone)]
pub struct ArrMeta {
    pub name: Sym,
    pub dims: Box<[ArrDim]>,
}

/// One subscript of a fused element access, stored in the unit's
/// subscript pool ([`BcUnit::subs`]). The first two forms read an
/// already-evaluated register; the rest are fused directly into the
/// access and charge exactly what their tree-walk expansion charges
/// (`Slot` = one scalar read; `SlotOff` = a scalar read plus one `alu`
/// add; `Imm` = a literal, charge-free). A single access uses either
/// all-register or all-fused subscripts, never a mix, so the charge and
/// oracle-event order matches the tree-walker's strict left-to-right
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubSrc {
    /// Integer subscript computed into a register.
    RegI(Reg),
    /// Real subscript computed into a register; truncated like `V::as_i`.
    RegR(Reg),
    /// Scalar slot read directly.
    Slot(u32),
    /// Scalar slot plus a literal offset (`i+1`, `j-2`, `1+i`).
    SlotOff(u32, i32),
    /// Literal subscript.
    Imm(i32),
}

/// One item of a PRINT statement: a typed register holding an evaluated
/// value or an interned string literal (strings are never evaluated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrintItem {
    RegI(Reg),
    RegR(Reg),
    RegB(Reg),
    Str(Sym),
}

/// The typed instruction set. Registers are raw 64-bit slots in the
/// block frame: `.i` opcodes treat them as `i64`, `.r` as `f64` bits,
/// `.b` as `0`/`1`. `dst`-style registers are written, everything else
/// is read. Cycle charges are noted where the VM charges them
/// (mirroring the tree-walker).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Charge one unit of execution fuel (statement boundary).
    Step,
    /// `r[dst] = literal` (literals charge no cycles, as in the tree).
    LitI(Reg, i64),
    LitR(Reg, f64),
    LitB(Reg, bool),
    /// `r[dst] = scalars[slot]` — charges `cost.scalar`.
    LoadI(Reg, u32),
    LoadR(Reg, u32),
    LoadB(Reg, u32),
    /// `scalars[slot] = r[src]` — charges `cost.scalar`. The value is
    /// already converted to the slot's type (see `IToR`/`RToI`).
    StoreI(u32, Reg),
    StoreR(u32, Reg),
    StoreB(u32, Reg),
    /// Numeric conversions (charge-free — the tree-walker's promotions
    /// and Fortran assignment conversions charge nothing).
    IToR(Reg, Reg),
    /// `f64 as i64` truncation, as `V::as_i` does it.
    RToI(Reg, Reg),
    /// `r[dst] = arrays[arr][flatten(subs)]` — subscripts come from the
    /// pool window `subs..subs+n`; charges each subscript's cost, then
    /// `cost.memory`.
    LoadEI { dst: Reg, arr: u32, sub: u32, n: u8 },
    LoadER { dst: Reg, arr: u32, sub: u32, n: u8 },
    LoadEB { dst: Reg, arr: u32, sub: u32, n: u8 },
    /// `arrays[arr][flatten(subs)] = r[src]` — same charges plus
    /// `cost.memory`; the value is already converted to the element type.
    StoreEI { arr: u32, src: Reg, sub: u32, n: u8 },
    StoreER { arr: u32, src: Reg, sub: u32, n: u8 },
    StoreEB { arr: u32, src: Reg, sub: u32, n: u8 },
    /// Integer arithmetic (wrapping, as `eval_binop`): `alu`/`alu`/`mul`.
    AddI(Reg, Reg, Reg),
    SubI(Reg, Reg, Reg),
    MulI(Reg, Reg, Reg),
    /// Integer divide: `alu` when the divisor is a positive power of
    /// two, else `div` (run-time check — the charge is data-dependent);
    /// `DivByZero` on zero.
    DivI(Reg, Reg, Reg),
    /// Integer power: `mul*k` for `0 <= k <= 3`, else `intrinsic`
    /// (run-time check on the exponent value).
    PowI(Reg, Reg, Reg),
    /// Real arithmetic: `alu`/`alu`/`mul`/`div`/`intrinsic`.
    AddR(Reg, Reg, Reg),
    SubR(Reg, Reg, Reg),
    MulR(Reg, Reg, Reg),
    DivR(Reg, Reg, Reg),
    PowR(Reg, Reg, Reg),
    /// Real base, *integer-typed* exponent/divisor: the data-dependent
    /// charge checks read the integer before it is promoted.
    DivRI(Reg, Reg, Reg),
    PowRI(Reg, Reg, Reg),
    /// `r[dst] = -r[src]` / logical not — charge `alu`.
    NegI(Reg, Reg),
    NegR(Reg, Reg),
    NotB(Reg, Reg),
    /// Comparisons (result is a `0`/`1` logical) — charge `alu`.
    CmpI(BinOp, Reg, Reg, Reg),
    CmpR(BinOp, Reg, Reg, Reg),
    /// Logical and/or (both operands already evaluated, as in the
    /// tree-walker — F-Mini has no short-circuit) — charge `alu`.
    AndB(Reg, Reg, Reg),
    OrB(Reg, Reg, Reg),
    /// `r[dst] = intr(r[dst..dst+n])` — args are uniformly converted by
    /// the compiler when `real`; charges `cost.mul` for cheap
    /// intrinsics, `cost.intrinsic` otherwise.
    Intrin { intr: Intr, dst: Reg, n: u8, real: bool },
    /// Charge `cost.branch` (one IF arm is about to be tested).
    Branch,
    /// Unconditional jump through the block's label table.
    Jump(Label),
    /// Jump when the logical in `r[cond]` is false.
    JumpIfNot(Reg, Label),
    /// Emit one output line from evaluated registers and literals.
    Print(Box<[PrintItem]>),
    /// Enter loop `loops[i]` via the shared orchestration path
    /// (`exec::run_loop`): parallel/speculative/adversarial dispatch,
    /// threaded chunking and the F77 exit value all live there.
    CallLoop(u32),
    /// STOP: unwind the block stack with `Flow::Stop`.
    Stop,
    /// Type-inference fallback: run `stmts[i]` through the tree-walker
    /// (`exec::run_stmt`). Used for statements whose legality is only
    /// decidable at run time (logical operands in arithmetic, strings
    /// outside PRINT, bad intrinsic arity); `run_stmt` charges its own
    /// fuel step, so no `Step` precedes this.
    Exec(u32),
    /// End of block (fallthrough return with `Flow::Normal`).
    Halt,
}

/// One compiled statement list: a flat instruction stream plus its jump
/// table and the register-frame size dispatch must provide.
#[derive(Debug, Clone)]
pub struct BcBlock {
    pub code: Vec<Instr>,
    /// Label id → instruction address. Every `Jump`/`JumpIfNot` target
    /// resolves through this table.
    pub labels: Vec<u32>,
    pub max_regs: usize,
}

/// A fully lowered unit: every statement list (top level and each loop
/// body) as a [`BcBlock`], the loop descriptors (shared with the
/// orchestration layer), array metadata, the subscript pool, fallback
/// statements and the symbol interner.
#[derive(Debug, Clone)]
pub struct BcUnit {
    /// Block executed for the unit's top-level code.
    pub entry: u32,
    pub blocks: Vec<BcBlock>,
    /// `CallLoop(i)` enters `loops[i].0` with body block `loops[i].1`.
    pub loops: Vec<(Arc<RLoop>, u32)>,
    pub arrays: Vec<ArrMeta>,
    pub interner: Interner,
    /// Fused-subscript pool; element accesses reference windows of it.
    pub subs: Vec<SubSrc>,
    /// Statements `Instr::Exec` hands back to the tree-walker.
    pub stmts: Vec<RStmt>,
}

/// Static type of a slot, array or expression. F-Mini never retypes
/// storage, so these are sound for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    I,
    R,
    B,
}

impl Ty {
    fn numeric(self) -> bool {
        self != Ty::B
    }
}

/// Compile an [`Image`] to bytecode. Infallible for any program the
/// tree-walker can run except pathological register pressure (an
/// expression nested >65k deep), reported as `Unsupported`.
pub fn compile(image: &Image) -> Result<BcUnit, MachineError> {
    compile_with(image, false)
}

/// [`compile`] with the step-boundary instructions elided. Only valid
/// when the run configuration cannot observe the step count (no fuel
/// limit, no cancel token, no panic-at-step hook, no shared counter —
/// `Interp::quiet_steps`): [`Instr::Step`] is then a guaranteed no-op,
/// so the compiler drops it from the stream instead of dispatching it
/// per statement. Tree-walker fallbacks (`Instr::Exec`) still count
/// steps inside `run_stmt`; that is equally unobservable under the same
/// precondition.
pub fn compile_quiet(image: &Image) -> Result<BcUnit, MachineError> {
    compile_with(image, true)
}

fn compile_with(image: &Image, quiet: bool) -> Result<BcUnit, MachineError> {
    let mut interner = Interner::new();
    let arrays = image
        .arrays
        .iter()
        .map(|a| {
            let mut stride = 1i64;
            let dims = a
                .lows
                .iter()
                .zip(&a.extents)
                .map(|(&low, &extent)| {
                    let d = ArrDim { low, extent, stride };
                    stride *= extent;
                    d
                })
                .collect();
            ArrMeta { name: interner.intern(&a.name), dims }
        })
        .collect();
    let slot_ty = image
        .scalars
        .iter()
        .map(|s| match s {
            Scalar::I(_) => Ty::I,
            Scalar::R(_) => Ty::R,
            Scalar::B(_) => Ty::B,
        })
        .collect();
    let arr_ty = image
        .arrays
        .iter()
        .map(|a| match &*a.data {
            ArrData::I(_) => Ty::I,
            ArrData::R(_) => Ty::R,
            ArrData::B(_) => Ty::B,
        })
        .collect();
    let mut c = Compiler {
        unit: BcUnit {
            entry: 0,
            blocks: Vec::new(),
            loops: Vec::new(),
            arrays,
            interner,
            subs: Vec::new(),
            stmts: Vec::new(),
        },
        slot_ty,
        arr_ty,
        quiet,
    };
    let entry = c.block(&image.code)?;
    c.unit.entry = entry;
    Ok(c.unit)
}

struct Compiler {
    unit: BcUnit,
    slot_ty: Vec<Ty>,
    arr_ty: Vec<Ty>,
    /// Elide [`Instr::Step`] (see [`compile_quiet`]).
    quiet: bool,
}

/// In-progress block: instructions, unresolved label table, high-water
/// register count.
struct BlockBuilder {
    code: Vec<Instr>,
    labels: Vec<u32>,
    max_regs: usize,
}

impl BlockBuilder {
    fn new() -> BlockBuilder {
        BlockBuilder { code: Vec::new(), labels: Vec::new(), max_regs: 0 }
    }

    fn new_label(&mut self) -> Label {
        self.labels.push(u32::MAX);
        (self.labels.len() - 1) as Label
    }

    fn bind(&mut self, l: Label) {
        self.labels[l as usize] = self.code.len() as u32;
    }

    /// Record that registers `..=hi` are used by this block.
    fn touch(&mut self, hi: usize) -> Result<(), MachineError> {
        if hi >= Reg::MAX as usize {
            return Err(MachineError::Unsupported(
                "expression exceeds the VM register frame".into(),
            ));
        }
        self.max_regs = self.max_regs.max(hi + 1);
        Ok(())
    }
}

impl Compiler {
    /// Compile a statement list into a fresh block; returns its id.
    fn block(&mut self, stmts: &[RStmt]) -> Result<u32, MachineError> {
        let mut b = BlockBuilder::new();
        self.stmts(&mut b, stmts)?;
        b.code.push(Instr::Halt);
        debug_assert!(b.labels.iter().all(|&a| a != u32::MAX), "unbound label");
        let id = self.unit.blocks.len() as u32;
        self.unit.blocks.push(BcBlock { code: b.code, labels: b.labels, max_regs: b.max_regs });
        Ok(id)
    }

    fn stmts(&mut self, b: &mut BlockBuilder, list: &[RStmt]) -> Result<(), MachineError> {
        for s in list {
            self.stmt(b, s)?;
        }
        Ok(())
    }

    // ---- type inference -------------------------------------------------

    /// The static type of `e`, or `None` when evaluation can reach a
    /// run-time type error (which must surface through the tree-walker
    /// fallback with its exact charge order and message).
    fn ty(&self, e: &RExpr) -> Option<Ty> {
        use polaris_ir::expr::UnOp;
        match e {
            RExpr::I(_) => Some(Ty::I),
            RExpr::R(_) => Some(Ty::R),
            RExpr::B(_) => Some(Ty::B),
            RExpr::Str(_) => None,
            RExpr::Load(s) => Some(self.slot_ty[*s]),
            RExpr::Elem(a, subs) => {
                for s in subs {
                    if !self.ty(s)?.numeric() {
                        return None;
                    }
                }
                Some(self.arr_ty[*a])
            }
            RExpr::Un(UnOp::Neg, x) => self.ty(x).filter(|t| t.numeric()),
            RExpr::Un(UnOp::Not, x) => self.ty(x).filter(|t| *t == Ty::B),
            RExpr::Bin(op, l, r) => {
                let (a, b) = (self.ty(l)?, self.ty(r)?);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow => {
                        (a.numeric() && b.numeric())
                            .then(|| if a == Ty::R || b == Ty::R { Ty::R } else { Ty::I })
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        (a.numeric() && b.numeric()).then_some(Ty::B)
                    }
                    BinOp::And | BinOp::Or => (a == Ty::B && b == Ty::B).then_some(Ty::B),
                }
            }
            RExpr::Intrin(intr, args) => {
                let tys: Vec<Ty> = args.iter().map(|a| self.ty(a)).collect::<Option<_>>()?;
                if tys.iter().any(|t| !t.numeric()) {
                    return None;
                }
                let real = tys.contains(&Ty::R);
                match intr {
                    Intr::Sqrt
                    | Intr::Sin
                    | Intr::Cos
                    | Intr::Tan
                    | Intr::Exp
                    | Intr::Log
                    | Intr::Atan => (tys.len() == 1).then_some(Ty::R),
                    Intr::ToReal => (tys.len() == 1).then_some(Ty::R),
                    Intr::Int | Intr::Nint => (tys.len() == 1).then_some(Ty::I),
                    Intr::Abs => (tys.len() == 1).then_some(tys[0]),
                    Intr::Mod | Intr::Sign => {
                        (tys.len() == 2).then_some(if real { Ty::R } else { Ty::I })
                    }
                    Intr::Max | Intr::Min => {
                        (!tys.is_empty()).then_some(if real { Ty::R } else { Ty::I })
                    }
                }
            }
        }
    }

    /// Can `value` be assigned to storage of type `target` without a
    /// possible run-time error? (Numeric↔numeric converts; B↔B copies.)
    fn assignable(value: Ty, target: Ty) -> bool {
        (value.numeric() && target.numeric()) || (value == Ty::B && target == Ty::B)
    }

    /// Does the whole statement type-check? Bodies of IF arms are *not*
    /// required to: each inner statement falls back individually.
    fn stmt_types_ok(&self, s: &RStmt) -> bool {
        match s {
            RStmt::AssignS(slot, rhs) => {
                self.ty(rhs).is_some_and(|t| Self::assignable(t, self.slot_ty[*slot]))
            }
            RStmt::AssignE(arr, subs, rhs) => {
                self.ty(rhs).is_some_and(|t| Self::assignable(t, self.arr_ty[*arr]))
                    && subs.iter().all(|s| self.ty(s).is_some_and(Ty::numeric))
            }
            RStmt::Do(_) | RStmt::Stop => true,
            RStmt::If(arms, _) => arms.iter().all(|(c, _)| self.ty(c) == Some(Ty::B)),
            RStmt::Print(items) => items
                .iter()
                .all(|i| matches!(i, RExpr::Str(_)) || self.ty(i).is_some()),
        }
    }

    // ---- statement compilation ------------------------------------------

    fn stmt(&mut self, b: &mut BlockBuilder, s: &RStmt) -> Result<(), MachineError> {
        if !self.stmt_types_ok(s) {
            // Tree-walker fallback; `run_stmt` charges its own step.
            let id = self.unit.stmts.len() as u32;
            self.unit.stmts.push(s.clone());
            b.code.push(Instr::Exec(id));
            return Ok(());
        }
        // Fuel boundary: `run_stmt` charges a step before anything else.
        if !self.quiet {
            b.code.push(Instr::Step);
        }
        match s {
            RStmt::AssignS(slot, rhs) => {
                let t = self.expr(b, rhs, 0)?;
                let target = self.slot_ty[*slot];
                self.convert(b, 0, t, target);
                b.code.push(match target {
                    Ty::I => Instr::StoreI(*slot as u32, 0),
                    Ty::R => Instr::StoreR(*slot as u32, 0),
                    Ty::B => Instr::StoreB(*slot as u32, 0),
                });
            }
            RStmt::AssignE(arr, subs, rhs) => {
                // rhs first, then subscripts — the tree-walker's error
                // order for a failing rhs vs a failing subscript.
                let t = self.expr(b, rhs, 0)?;
                let target = self.arr_ty[*arr];
                self.convert(b, 0, t, target);
                let (sub, n) = self.subs(b, subs, 1)?;
                let (arr, src) = (*arr as u32, 0);
                b.code.push(match target {
                    Ty::I => Instr::StoreEI { arr, src, sub, n },
                    Ty::R => Instr::StoreER { arr, src, sub, n },
                    Ty::B => Instr::StoreEB { arr, src, sub, n },
                });
            }
            RStmt::Do(l) => {
                let body = self.block(&l.body)?;
                let id = self.unit.loops.len() as u32;
                self.unit.loops.push((Arc::new((**l).clone()), body));
                b.code.push(Instr::CallLoop(id));
            }
            RStmt::If(arms, else_body) => {
                let end = b.new_label();
                for (cond, body) in arms {
                    b.code.push(Instr::Branch);
                    self.expr(b, cond, 0)?;
                    let next = b.new_label();
                    b.code.push(Instr::JumpIfNot(0, next));
                    self.stmts(b, body)?;
                    b.code.push(Instr::Jump(end));
                    b.bind(next);
                }
                self.stmts(b, else_body)?;
                b.bind(end);
            }
            RStmt::Print(items) => {
                let mut out = Vec::with_capacity(items.len());
                let mut r: Reg = 0;
                for item in items {
                    match item {
                        RExpr::Str(s) => out.push(PrintItem::Str(self.unit.interner.intern(s))),
                        e => {
                            let t = self.expr(b, e, r)?;
                            out.push(match t {
                                Ty::I => PrintItem::RegI(r),
                                Ty::R => PrintItem::RegR(r),
                                Ty::B => PrintItem::RegB(r),
                            });
                            r += 1;
                        }
                    }
                }
                b.code.push(Instr::Print(out.into_boxed_slice()));
            }
            RStmt::Stop => b.code.push(Instr::Stop),
        }
        Ok(())
    }

    /// Emit a charge-free numeric conversion when `from != to`.
    fn convert(&mut self, b: &mut BlockBuilder, r: Reg, from: Ty, to: Ty) {
        match (from, to) {
            (Ty::I, Ty::R) => b.code.push(Instr::IToR(r, r)),
            (Ty::R, Ty::I) => b.code.push(Instr::RToI(r, r)),
            _ => debug_assert_eq!(from, to, "unconvertible types reached codegen"),
        }
    }

    /// A fused-subscript descriptor for `e`, when it has one of the
    /// shapes the element access can evaluate inline with the exact
    /// tree-walk charges: a literal, a scalar, or scalar ± literal.
    fn fuse_sub(&self, e: &RExpr) -> Option<SubSrc> {
        let imm32 = |v: i64| i32::try_from(v).ok();
        match e {
            RExpr::I(v) => Some(SubSrc::Imm(imm32(*v)?)),
            RExpr::Load(s) => Some(SubSrc::Slot(*s as u32)),
            RExpr::Bin(BinOp::Add, l, r) => match (&**l, &**r) {
                (RExpr::Load(s), RExpr::I(k)) | (RExpr::I(k), RExpr::Load(s)) => {
                    Some(SubSrc::SlotOff(*s as u32, imm32(*k)?))
                }
                _ => None,
            },
            RExpr::Bin(BinOp::Sub, l, r) => match (&**l, &**r) {
                (RExpr::Load(s), RExpr::I(k)) => {
                    Some(SubSrc::SlotOff(*s as u32, imm32(k.checked_neg()?)?))
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Compile an element access's subscripts into a pool window. Either
    /// *every* subscript fuses (charges happen inside the access, in
    /// subscript order) or *every* subscript is evaluated into registers
    /// `base..` first (charges happen there, in subscript order) — never
    /// a mix, which would reorder charges relative to the tree-walker.
    fn subs(
        &mut self,
        b: &mut BlockBuilder,
        subs: &[RExpr],
        base: Reg,
    ) -> Result<(u32, u8), MachineError> {
        let fused: Option<Vec<SubSrc>> = subs.iter().map(|s| self.fuse_sub(s)).collect();
        let entries = match fused {
            Some(entries) => entries,
            None => {
                let mut entries = Vec::with_capacity(subs.len());
                for (i, s) in subs.iter().enumerate() {
                    let r = base + i as Reg;
                    let t = self.expr(b, s, r)?;
                    entries.push(match t {
                        Ty::I => SubSrc::RegI(r),
                        Ty::R => SubSrc::RegR(r),
                        Ty::B => unreachable!("logical subscript reached codegen"),
                    });
                }
                entries
            }
        };
        let idx = self.unit.subs.len() as u32;
        let n = entries.len() as u8;
        self.unit.subs.extend(entries);
        Ok((idx, n))
    }

    /// Compile `e` so its value ends up in register `dst`, scratching
    /// only registers above `dst`. Returns the value's static type.
    /// Callers guarantee `stmt_types_ok`, so `ty(e)` is `Some` here.
    fn expr(&mut self, b: &mut BlockBuilder, e: &RExpr, dst: Reg) -> Result<Ty, MachineError> {
        use polaris_ir::expr::UnOp;
        b.touch(dst as usize)?;
        Ok(match e {
            RExpr::I(v) => {
                b.code.push(Instr::LitI(dst, *v));
                Ty::I
            }
            RExpr::R(v) => {
                b.code.push(Instr::LitR(dst, *v));
                Ty::R
            }
            RExpr::B(v) => {
                b.code.push(Instr::LitB(dst, *v));
                Ty::B
            }
            RExpr::Str(_) => unreachable!("string expression reached codegen"),
            RExpr::Load(s) => {
                let t = self.slot_ty[*s];
                b.code.push(match t {
                    Ty::I => Instr::LoadI(dst, *s as u32),
                    Ty::R => Instr::LoadR(dst, *s as u32),
                    Ty::B => Instr::LoadB(dst, *s as u32),
                });
                t
            }
            RExpr::Elem(a, subs) => {
                let (sub, n) = self.subs(b, subs, dst)?;
                let (t, arr) = (self.arr_ty[*a], *a as u32);
                b.code.push(match t {
                    Ty::I => Instr::LoadEI { dst, arr, sub, n },
                    Ty::R => Instr::LoadER { dst, arr, sub, n },
                    Ty::B => Instr::LoadEB { dst, arr, sub, n },
                });
                t
            }
            RExpr::Un(op, arg) => {
                let t = self.expr(b, arg, dst)?;
                b.code.push(match (op, t) {
                    (UnOp::Neg, Ty::I) => Instr::NegI(dst, dst),
                    (UnOp::Neg, Ty::R) => Instr::NegR(dst, dst),
                    (UnOp::Not, Ty::B) => Instr::NotB(dst, dst),
                    _ => unreachable!("ill-typed unary reached codegen"),
                });
                t
            }
            RExpr::Bin(op, lhs, rhs) => {
                let a = self.expr(b, lhs, dst)?;
                let c = self.expr(b, rhs, dst + 1)?;
                self.binop(b, *op, dst, a, c)?
            }
            RExpr::Intrin(intr, args) => {
                b.touch(dst as usize + args.len().saturating_sub(1))?;
                let mut tys = Vec::with_capacity(args.len());
                for (i, a) in args.iter().enumerate() {
                    tys.push(self.expr(b, a, dst + i as Reg)?);
                }
                self.intrin(b, *intr, dst, &tys)
            }
        })
    }

    /// Emit the typed opcode for `op` over `(dst, dst+1)`, inserting
    /// promotions. The data-dependent charges (integer `Div`/`Pow` rhs)
    /// use the `*RI` forms so the check still sees the integer value.
    fn binop(
        &mut self,
        b: &mut BlockBuilder,
        op: BinOp,
        d: Reg,
        ta: Ty,
        tb: Ty,
    ) -> Result<Ty, MachineError> {
        use BinOp::*;
        let (x, y) = (d, d + 1);
        let arith = matches!(op, Add | Sub | Mul | Div | Pow);
        let code = &mut b.code;
        Ok(match (ta, tb) {
            (Ty::I, Ty::I) if arith => {
                code.push(match op {
                    Add => Instr::AddI(d, x, y),
                    Sub => Instr::SubI(d, x, y),
                    Mul => Instr::MulI(d, x, y),
                    Div => Instr::DivI(d, x, y),
                    Pow => Instr::PowI(d, x, y),
                    _ => unreachable!(),
                });
                Ty::I
            }
            (Ty::I, Ty::I) => {
                code.push(Instr::CmpI(op, d, x, y));
                Ty::B
            }
            (Ty::R, Ty::I) if matches!(op, Div | Pow) => {
                // The charge check reads the integer rhs before promotion.
                code.push(if op == Div { Instr::DivRI(d, x, y) } else { Instr::PowRI(d, x, y) });
                Ty::R
            }
            (ta, tb) if ta.numeric() && tb.numeric() => {
                if ta == Ty::I {
                    code.push(Instr::IToR(x, x));
                }
                if tb == Ty::I {
                    code.push(Instr::IToR(y, y));
                }
                if arith {
                    code.push(match op {
                        Add => Instr::AddR(d, x, y),
                        Sub => Instr::SubR(d, x, y),
                        Mul => Instr::MulR(d, x, y),
                        Div => Instr::DivR(d, x, y),
                        Pow => Instr::PowR(d, x, y),
                        _ => unreachable!(),
                    });
                    Ty::R
                } else {
                    code.push(Instr::CmpR(op, d, x, y));
                    Ty::B
                }
            }
            (Ty::B, Ty::B) => {
                code.push(match op {
                    And => Instr::AndB(d, x, y),
                    Or => Instr::OrB(d, x, y),
                    _ => unreachable!("ill-typed binop reached codegen"),
                });
                Ty::B
            }
            _ => unreachable!("ill-typed binop reached codegen"),
        })
    }

    /// Emit an intrinsic call over `dst..dst+n`, converting arguments to
    /// the real path exactly where `eval_intrinsic`'s `as_r` would.
    fn intrin(&mut self, b: &mut BlockBuilder, intr: Intr, dst: Reg, tys: &[Ty]) -> Ty {
        // Which path does the tree take, and what does it return?
        let any_real = tys.contains(&Ty::R);
        let (real, result) = match intr {
            Intr::Sqrt | Intr::Sin | Intr::Cos | Intr::Tan | Intr::Exp | Intr::Log | Intr::Atan => {
                (true, Ty::R)
            }
            Intr::ToReal => (true, Ty::R),
            Intr::Nint => (true, Ty::I),
            Intr::Int => (tys[0] == Ty::R, Ty::I),
            Intr::Abs => (tys[0] == Ty::R, tys[0]),
            Intr::Mod | Intr::Sign => (any_real, if any_real { Ty::R } else { Ty::I }),
            Intr::Max | Intr::Min => (any_real, if any_real { Ty::R } else { Ty::I }),
        };
        if real {
            for (i, t) in tys.iter().enumerate() {
                if *t == Ty::I {
                    b.code.push(Instr::IToR(dst + i as Reg, dst + i as Reg));
                }
            }
        }
        b.code.push(Instr::Intrin { intr, dst, n: tys.len() as u8, real });
        result
    }
}

// ---- disassembler -----------------------------------------------------

/// Render a [`BcUnit`] as stable, human-auditable text — the format the
/// golden snapshots in `crates/machine/tests` pin for MDG and TRACK.
pub fn disassemble(bc: &BcUnit) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; bytecode unit: {} blocks, {} loops, {} arrays, {} symbols, {} fallbacks",
        bc.blocks.len(),
        bc.loops.len(),
        bc.arrays.len(),
        bc.interner.len(),
        bc.stmts.len()
    );
    for (i, a) in bc.arrays.iter().enumerate() {
        let _ = write!(out, "array {i} {}", bc.interner.resolve(a.name));
        for d in a.dims.iter() {
            let _ = write!(out, " [{}..{} *{}]", d.low, d.low + d.extent - 1, d.stride);
        }
        out.push('\n');
    }
    for (i, (l, body)) in bc.loops.iter().enumerate() {
        let mut flags = String::new();
        if l.par.parallel {
            flags.push_str(" parallel");
        }
        if !l.par.spec_arrays.is_empty() {
            flags.push_str(" speculative");
        }
        if l.innermost {
            flags.push_str(" innermost");
        }
        let _ = writeln!(out, "loop {i} \"{}\" var s{} -> block {body}{flags}", l.label, l.var);
    }
    for (i, blk) in bc.blocks.iter().enumerate() {
        let entry = if i as u32 == bc.entry { " (entry)" } else { "" };
        let _ = writeln!(out, "block {i}{entry} regs={}", blk.max_regs);
        for (addr, instr) in blk.code.iter().enumerate() {
            let _ = writeln!(out, "  {addr:04}  {}", render(bc, instr));
        }
        if !blk.labels.is_empty() {
            let _ = write!(out, "  labels:");
            for (l, addr) in blk.labels.iter().enumerate() {
                let _ = write!(out, " L{l}={addr:04}");
            }
            out.push('\n');
        }
    }
    out
}

fn render_subs(bc: &BcUnit, sub: u32, n: u8) -> String {
    let mut s = String::new();
    for (i, src) in bc.subs[sub as usize..sub as usize + n as usize].iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match src {
            SubSrc::RegI(r) => {
                let _ = write!(s, "r{r}:i");
            }
            SubSrc::RegR(r) => {
                let _ = write!(s, "r{r}:r");
            }
            SubSrc::Slot(slot) => {
                let _ = write!(s, "s{slot}");
            }
            SubSrc::SlotOff(slot, off) => {
                let _ = write!(s, "s{slot}{off:+}");
            }
            SubSrc::Imm(v) => {
                let _ = write!(s, "{v}");
            }
        }
    }
    s
}

fn render(bc: &BcUnit, instr: &Instr) -> String {
    let arr_name = |a: &u32| bc.interner.resolve(bc.arrays[*a as usize].name);
    match instr {
        Instr::Step => "step".into(),
        Instr::LitI(d, v) => format!("lit.i    r{d} <- {v}"),
        Instr::LitR(d, v) => format!("lit.r    r{d} <- {v:?}"),
        Instr::LitB(d, v) => format!("lit.b    r{d} <- {v}"),
        Instr::LoadI(d, s) => format!("ld.s.i   r{d} <- s{s}"),
        Instr::LoadR(d, s) => format!("ld.s.r   r{d} <- s{s}"),
        Instr::LoadB(d, s) => format!("ld.s.b   r{d} <- s{s}"),
        Instr::StoreI(s, r) => format!("st.s.i   s{s} <- r{r}"),
        Instr::StoreR(s, r) => format!("st.s.r   s{s} <- r{r}"),
        Instr::StoreB(s, r) => format!("st.s.b   s{s} <- r{r}"),
        Instr::IToR(d, s) => format!("cvt.i.r  r{d} <- r{s}"),
        Instr::RToI(d, s) => format!("cvt.r.i  r{d} <- r{s}"),
        Instr::LoadEI { dst, arr, sub, n } => {
            format!("ld.e.i   r{dst} <- {}[{}]", arr_name(arr), render_subs(bc, *sub, *n))
        }
        Instr::LoadER { dst, arr, sub, n } => {
            format!("ld.e.r   r{dst} <- {}[{}]", arr_name(arr), render_subs(bc, *sub, *n))
        }
        Instr::LoadEB { dst, arr, sub, n } => {
            format!("ld.e.b   r{dst} <- {}[{}]", arr_name(arr), render_subs(bc, *sub, *n))
        }
        Instr::StoreEI { arr, src, sub, n } => {
            format!("st.e.i   {}[{}] <- r{src}", arr_name(arr), render_subs(bc, *sub, *n))
        }
        Instr::StoreER { arr, src, sub, n } => {
            format!("st.e.r   {}[{}] <- r{src}", arr_name(arr), render_subs(bc, *sub, *n))
        }
        Instr::StoreEB { arr, src, sub, n } => {
            format!("st.e.b   {}[{}] <- r{src}", arr_name(arr), render_subs(bc, *sub, *n))
        }
        Instr::AddI(d, a, b) => format!("add.i    r{d} <- r{a}, r{b}"),
        Instr::SubI(d, a, b) => format!("sub.i    r{d} <- r{a}, r{b}"),
        Instr::MulI(d, a, b) => format!("mul.i    r{d} <- r{a}, r{b}"),
        Instr::DivI(d, a, b) => format!("div.i    r{d} <- r{a}, r{b}"),
        Instr::PowI(d, a, b) => format!("pow.i    r{d} <- r{a}, r{b}"),
        Instr::AddR(d, a, b) => format!("add.r    r{d} <- r{a}, r{b}"),
        Instr::SubR(d, a, b) => format!("sub.r    r{d} <- r{a}, r{b}"),
        Instr::MulR(d, a, b) => format!("mul.r    r{d} <- r{a}, r{b}"),
        Instr::DivR(d, a, b) => format!("div.r    r{d} <- r{a}, r{b}"),
        Instr::PowR(d, a, b) => format!("pow.r    r{d} <- r{a}, r{b}"),
        Instr::DivRI(d, a, b) => format!("div.ri   r{d} <- r{a}, r{b}"),
        Instr::PowRI(d, a, b) => format!("pow.ri   r{d} <- r{a}, r{b}"),
        Instr::NegI(d, s) => format!("neg.i    r{d} <- r{s}"),
        Instr::NegR(d, s) => format!("neg.r    r{d} <- r{s}"),
        Instr::NotB(d, s) => format!("not.b    r{d} <- r{s}"),
        Instr::CmpI(op, d, a, b) => {
            format!("{:<8} r{d} <- r{a}, r{b}", format!("{op:?}.i").to_lowercase())
        }
        Instr::CmpR(op, d, a, b) => {
            format!("{:<8} r{d} <- r{a}, r{b}", format!("{op:?}.r").to_lowercase())
        }
        Instr::AndB(d, a, b) => format!("and.b    r{d} <- r{a}, r{b}"),
        Instr::OrB(d, a, b) => format!("or.b     r{d} <- r{a}, r{b}"),
        Instr::Intrin { intr, dst, n, real } => {
            let suffix = if *real { "r" } else { "i" };
            format!(
                "{:<8} r{dst} <- r{dst}..r{}",
                format!("{intr:?}.{suffix}").to_lowercase(),
                *dst + (*n as Reg).saturating_sub(1)
            )
        }
        Instr::Branch => "branch".into(),
        Instr::Jump(l) => format!("jump     L{l}"),
        Instr::JumpIfNot(r, l) => format!("jmp.not  r{r}, L{l}"),
        Instr::Print(items) => {
            let mut s = String::from("print   ");
            for it in items.iter() {
                match it {
                    PrintItem::RegI(r) => {
                        let _ = write!(s, " r{r}:i");
                    }
                    PrintItem::RegR(r) => {
                        let _ = write!(s, " r{r}:r");
                    }
                    PrintItem::RegB(r) => {
                        let _ = write!(s, " r{r}:b");
                    }
                    PrintItem::Str(sym) => {
                        let _ = write!(s, " {:?}", bc.interner.resolve(*sym));
                    }
                }
            }
            s
        }
        Instr::CallLoop(i) => format!("loop     {i}"),
        Instr::Stop => "stop".into(),
        Instr::Exec(i) => format!("exec     stmt {i} (tree-walk fallback)"),
        Instr::Halt => "halt".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    fn image(src: &str) -> Image {
        lower(&polaris_ir::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn interner_round_trips_and_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        let a2 = i.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.lookup("beta"), Some(b));
        assert_eq!(i.lookup("gamma"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn strides_match_the_column_major_reference() {
        // a(10, 5) with 1-based bounds: dim 0 stride 1, dim 1 stride 10 —
        // the same layout ArrObj::flatten derives per access.
        let img = image("program t\nreal a(10, 5)\na(2, 3) = 1.0\nend\n");
        let bc = compile(&img).unwrap();
        let m = &bc.arrays[0];
        assert_eq!(bc.interner.resolve(m.name), img.arrays[0].name);
        assert_eq!(m.dims.len(), 2);
        assert_eq!((m.dims[0].low, m.dims[0].extent, m.dims[0].stride), (1, 10, 1));
        assert_eq!((m.dims[1].low, m.dims[1].extent, m.dims[1].stride), (1, 5, 10));
        // every in-bounds subscript pair agrees with the reference
        for j in 1..=5i64 {
            for i in 1..=10i64 {
                let reference = img.arrays[0].flatten(&[i, j]).unwrap();
                let fast = ((i - m.dims[0].low) * m.dims[0].stride
                    + (j - m.dims[1].low) * m.dims[1].stride) as usize;
                assert_eq!(fast, reference, "({i},{j})");
            }
        }
    }

    #[test]
    fn forward_branches_resolve_through_the_jump_table() {
        let img = image(
            "program t\nx = 1.0\nif (x > 0.0) then\n  y = 1.0\nelse\n  y = 2.0\nend if\nend\n",
        );
        let bc = compile(&img).unwrap();
        let blk = &bc.blocks[bc.entry as usize];
        // Two labels: the arm-fail target and the end-of-if target.
        assert_eq!(blk.labels.len(), 2);
        for (i, instr) in blk.code.iter().enumerate() {
            match instr {
                Instr::Jump(l) | Instr::JumpIfNot(_, l) => {
                    let target = blk.labels[*l as usize];
                    assert!((target as usize) <= blk.code.len(), "label L{l} out of range");
                    assert!(target as usize > i, "IF lowering only emits forward branches");
                }
                _ => {}
            }
        }
        // fallthrough: the last instruction is Halt
        assert_eq!(blk.code.last(), Some(&Instr::Halt));
    }

    #[test]
    fn loops_compile_to_call_loop_with_their_own_body_blocks() {
        let img = image(
            "program t\nreal a(10)\ndo i = 1, 10\n  do j = 1, 3\n    a(i) = a(i) + j\n  end do\nend do\nend\n",
        );
        let bc = compile(&img).unwrap();
        assert_eq!(bc.loops.len(), 2);
        // entry block calls the outer loop; outer body calls the inner
        let entry = &bc.blocks[bc.entry as usize];
        assert!(entry.code.iter().any(|i| matches!(i, Instr::CallLoop(_))));
        let outer = bc.loops.iter().find(|(l, _)| !l.innermost).unwrap();
        let inner = bc.loops.iter().find(|(l, _)| l.innermost).unwrap();
        assert!(bc.blocks[outer.1 as usize].code.iter().any(|i| matches!(i, Instr::CallLoop(_))));
        assert!(bc.blocks[inner.1 as usize].code.iter().all(|i| !matches!(i, Instr::CallLoop(_))));
    }

    #[test]
    fn step_is_emitted_at_every_statement_boundary() {
        let img = image("program t\nx = 1.0\ny = 2.0\nz = x + y\nend\n");
        let bc = compile(&img).unwrap();
        let steps = bc.blocks[bc.entry as usize]
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Step))
            .count();
        assert_eq!(steps, 3, "one fuel step per statement");
    }

    #[test]
    fn register_frames_are_stack_shaped() {
        // ((a+b)*(c+d)) needs regs 0..=2 with the stack discipline.
        // Scalar loads keep lowering from constant-folding the tree.
        let img =
            image("program t\na = 1.0\nb = 2.0\nc = 3.0\nd = 4.0\nx = (a + b) * (c + d)\nend\n");
        let bc = compile(&img).unwrap();
        assert_eq!(bc.blocks[bc.entry as usize].max_regs, 3);
    }

    #[test]
    fn common_subscript_shapes_fuse_into_the_access() {
        // a(i), a(i+1), a(2) and a(j-1, i) all fuse: no subscript ever
        // occupies a register, and the pool holds the descriptors.
        let img = image(
            "program t\nreal a(10)\nreal b(10, 10)\ndo i = 1, 9\n  do j = 2, 10\n    a(i) = a(i + 1) + a(2) + b(j - 1, i)\n  end do\nend do\nend\n",
        );
        let bc = compile(&img).unwrap();
        assert!(
            bc.subs.iter().all(|s| !matches!(s, SubSrc::RegI(_) | SubSrc::RegR(_))),
            "expected fully fused subscripts, got {:?}",
            bc.subs
        );
        assert!(bc.subs.contains(&SubSrc::Imm(2)));
        assert!(bc.subs.iter().any(|s| matches!(s, SubSrc::SlotOff(_, 1))));
        assert!(bc.subs.iter().any(|s| matches!(s, SubSrc::SlotOff(_, -1))));
    }

    #[test]
    fn computed_subscripts_take_the_register_path_for_the_whole_access() {
        // b(i*2, j): one computed subscript forces both into registers so
        // the charge order stays strictly left-to-right.
        let img = image(
            "program t\nreal b(20, 10)\ndo i = 1, 5\n  do j = 1, 10\n    b(i * 2, j) = 1.0\n  end do\nend do\nend\n",
        );
        let bc = compile(&img).unwrap();
        let store = bc
            .blocks
            .iter()
            .flat_map(|b| &b.code)
            .find_map(|i| match i {
                Instr::StoreER { sub, n, .. } => Some((*sub, *n)),
                _ => None,
            })
            .expect("no StoreER emitted");
        let window = &bc.subs[store.0 as usize..store.0 as usize + store.1 as usize];
        assert!(
            window.iter().all(|s| matches!(s, SubSrc::RegI(_))),
            "mixed fused/register subscripts: {window:?}"
        );
    }

    #[test]
    fn typed_lowering_infers_integer_and_real_opcodes() {
        // k is integer (implicit typing), x real: `k + 1` is add.i,
        // `x * 2.0` is mul.r, and the mixed `k * x` promotes via cvt.i.r.
        let img = image("program t\nk = 1\nx = 2.0\nk = k + 1\nx = x * 2.0\nx = k * x\nend\n");
        let bc = compile(&img).unwrap();
        let code = &bc.blocks[bc.entry as usize].code;
        assert!(code.iter().any(|i| matches!(i, Instr::AddI(..))), "{code:?}");
        assert!(code.iter().any(|i| matches!(i, Instr::MulR(..))), "{code:?}");
        assert!(code.iter().any(|i| matches!(i, Instr::IToR(..))), "{code:?}");
        assert!(bc.stmts.is_empty(), "nothing should need the fallback");
    }

    #[test]
    fn untypeable_statements_fall_back_to_the_tree_walker() {
        // `l + 1` adds a logical — a run-time Type error the fallback
        // must surface with the tree-walker's exact behavior.
        let img = image("program t\nlogical l\nl = .true.\nk = l + 1\nend\n");
        let bc = compile(&img).unwrap();
        let code = &bc.blocks[bc.entry as usize].code;
        assert!(code.iter().any(|i| matches!(i, Instr::Exec(_))), "{code:?}");
        assert_eq!(bc.stmts.len(), 1);
        // The fallback statement charges its own step: no Step precedes it.
        let pos = code.iter().position(|i| matches!(i, Instr::Exec(_))).unwrap();
        assert!(!matches!(code[pos - 1], Instr::Step), "Exec must not be double-stepped");
    }

    #[test]
    fn disassembly_is_deterministic() {
        let img = image(
            "program t\nreal a(8)\ndo i = 1, 8\n  a(i) = i * 2.0\nend do\nprint *, 'done', a(8)\nend\n",
        );
        let bc1 = compile(&img).unwrap();
        let bc2 = compile(&img).unwrap();
        assert_eq!(disassemble(&bc1), disassemble(&bc2));
        let text = disassemble(&bc1);
        assert!(text.contains("loop 0"), "{text}");
        assert!(text.contains("st.e.r"), "{text}");
        assert!(text.contains("\"done\""), "{text}");
    }
}

//! The interpreter and the simulated multiprocessor.

use crate::cost::{CostModel, Schedule};
use crate::error::MachineError;
use crate::lower::{lower_with_cap, Image, Intr, RExpr, RLoop, RPar, RRed, RRef, RStmt};
use crate::shadow::ShadowSim;
use crate::value::{scalar_approx_eq, ArrData, ArrObj, Scalar, V};
use crate::{Engine, ExecMode, MachineConfig};
use polaris_ir::expr::{BinOp, RedOp, UnOp};
use polaris_ir::Program;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-loop execution statistics (keyed by loop label).
#[derive(Debug, Clone, Default)]
pub struct LoopExecStats {
    pub invocations: u64,
    pub parallel_invocations: u64,
    pub spec_success: u64,
    pub spec_fail: u64,
    /// Cycles charged to this loop (all invocations, at this nesting).
    pub cycles: u64,
}

/// Result of one program run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub cycles: u64,
    pub output: Vec<String>,
    pub loops: BTreeMap<String, LoopExecStats>,
    /// Host wall-clock time of the whole run. For `ExecMode::Simulated`
    /// this is just interpreter overhead; for `ExecMode::Threaded` it is
    /// the real parallel execution time the perf trajectory records.
    pub wall: Duration,
}

impl RunResult {
    /// Simulated seconds at 150 MHz.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / 150.0e6
    }

    /// A per-loop profile listing (hottest first) in the style of the
    /// Polaris compilation/execution listings the paper's evaluation
    /// methodology is built on (`NLFILT/300`-style naming).
    pub fn profile(&self) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<(&String, &LoopExecStats)> = self.loops.iter().collect();
        rows.sort_by_key(|(_, s)| std::cmp::Reverse(s.cycles));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>6} {:>8} {:>8} {:>11}",
            "loop", "cycles", "%", "invocs", "par", "spec(ok/no)"
        );
        for (label, st) in rows {
            let pct = if self.cycles > 0 {
                100.0 * st.cycles as f64 / self.cycles as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<28} {:>12} {:>5.1}% {:>8} {:>8} {:>6}/{}",
                label,
                st.cycles,
                pct,
                st.invocations,
                st.parallel_invocations,
                st.spec_success,
                st.spec_fail
            );
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    Normal,
    Stop,
}

const POISON_I: i64 = -8_888_888_887;

pub(crate) struct Interp<'a> {
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) scalars: Vec<Scalar>,
    pub(crate) arrays: Vec<ArrObj>,
    pub(crate) cycles: u64,
    /// Monotonic statement/iteration counter for the fuel budget.
    /// Separate from `cycles`, which the codegen model and parallel
    /// scheduling rewind and rescale.
    pub(crate) steps: u64,
    pub(crate) in_parallel: bool,
    adversarial: bool,
    pub(crate) output: Vec<String>,
    /// Per-loop execution stats, indexed by the dense
    /// [`polaris_ir::stmt::LoopId`] so the per-invocation updates are a
    /// vector index, not a string-keyed map probe; [`Self::finish_loops`]
    /// folds this into the label-keyed map `RunResult` exposes.
    pub(crate) loop_stats: Vec<Option<(String, LoopExecStats)>>,
    /// Active speculative tracking: (array slot, shadow).
    pub(crate) spec: Vec<(usize, ShadowSim)>,
    pub(crate) spec_iter: u32,
    /// Global fuel counter shared between the main thread and threaded
    /// workers, so `--fuel` bounds total work across all threads.
    pub(crate) shared_steps: Option<Arc<AtomicU64>>,
    /// Persistent worker pool, created lazily on the first threaded loop.
    pub(crate) pool: Option<crate::threaded::ThreadPool>,
    /// Per-label shareable loop bodies for the threaded backend (cloned
    /// once, then handed to workers as `Arc`s on every invocation).
    pub(crate) tcache: BTreeMap<String, crate::threaded::SharedLoop>,
    /// Dependence-oracle trace (see [`crate::oracle`]); attached only by
    /// [`run_traced`], on serial runs. `None` costs one branch per hook.
    pub(crate) oracle: Option<Box<crate::oracle::OracleState>>,
    /// Compiled bytecode of the running unit (`Engine::Vm` only); loop
    /// bodies re-enter [`crate::vm`] through this shared handle.
    pub(crate) bc: Option<Arc<crate::bytecode::BcUnit>>,
    /// Recycled raw register frames for VM block dispatch (registers
    /// never survive a statement, so frames are reusable across
    /// activations without clearing).
    pub(crate) vm_pool: Vec<Vec<u64>>,
    /// True when no step-count observer exists (no fuel limit, no
    /// panic-at-step, no cancellation token, no shared counter): the
    /// step count is then unobservable and [`Self::charge_step`] can be
    /// skipped entirely on the hot path.
    pub(crate) quiet_steps: bool,
    /// Recycled iteration-value vectors (one live per loop-nest level),
    /// so each loop invocation reuses an allocation instead of mallocing
    /// its iteration space.
    pub(crate) iter_pool: Vec<Vec<i64>>,
    /// Observability recorder (see [`polaris_obs`]); disabled by default,
    /// attached by [`run_recorded`]. Workers always carry a disabled
    /// handle — chunk events are recorded post-join on the driver thread
    /// so the trace stays deterministic.
    pub(crate) recorder: polaris_obs::Recorder,
    /// Per-invocation `(workers, schedule)` override installed by the
    /// adaptive dispatcher for one parallel loop; consulted by
    /// [`Self::proc_of`]/[`Self::run_parallel`] and the threaded driver,
    /// cleared when the dispatched loop returns.
    pub(crate) sched_override: Option<(usize, Schedule)>,
    /// Per-chunk (threaded) or per-bucket (simulated) cycle totals of
    /// the last parallel dispatch, in chunk order — the deterministic
    /// cost signal fed back to the adaptive controller. Only populated
    /// when `cfg.adaptive` is set.
    pub(crate) last_chunk_cycles: Vec<u64>,
}

impl<'a> Interp<'a> {
    fn new(image: &Image, cfg: &'a MachineConfig, adversarial: bool) -> Interp<'a> {
        let shared_steps = match cfg.exec_mode {
            ExecMode::Threaded { .. } => Some(Arc::new(AtomicU64::new(0))),
            ExecMode::Simulated => None,
        };
        let quiet_steps = shared_steps.is_none()
            && cfg.fuel.is_none()
            && cfg.cancel.is_none()
            && cfg.panic_at_step.is_none();
        Interp {
            cfg,
            scalars: image.scalars.clone(),
            arrays: image.arrays.clone(),
            cycles: 0,
            steps: 0,
            in_parallel: false,
            adversarial,
            output: Vec::new(),
            loop_stats: Vec::new(),
            spec: Vec::new(),
            spec_iter: 0,
            shared_steps,
            pool: None,
            tcache: BTreeMap::new(),
            oracle: None,
            bc: None,
            vm_pool: Vec::new(),
            quiet_steps,
            iter_pool: Vec::new(),
            recorder: polaris_obs::Recorder::disabled(),
            sched_override: None,
            last_chunk_cycles: Vec::new(),
        }
    }

    /// A worker-side interpreter executing chunks of one parallel loop.
    /// It starts from snapshots of the parent's state and never spawns
    /// further threads (`in_parallel` stays set).
    pub(crate) fn for_worker(
        cfg: &'a MachineConfig,
        scalars: Vec<Scalar>,
        arrays: Vec<ArrObj>,
        shared_steps: Option<Arc<AtomicU64>>,
    ) -> Interp<'a> {
        let quiet_steps = shared_steps.is_none()
            && cfg.fuel.is_none()
            && cfg.cancel.is_none()
            && cfg.panic_at_step.is_none();
        Interp {
            cfg,
            scalars,
            arrays,
            cycles: 0,
            steps: 0,
            in_parallel: true,
            adversarial: false,
            output: Vec::new(),
            loop_stats: Vec::new(),
            spec: Vec::new(),
            spec_iter: 0,
            shared_steps,
            pool: None,
            tcache: BTreeMap::new(),
            oracle: None,
            bc: None,
            vm_pool: Vec::new(),
            quiet_steps,
            iter_pool: Vec::new(),
            recorder: polaris_obs::Recorder::disabled(),
            sched_override: None,
            last_chunk_cycles: Vec::new(),
        }
    }

    // ---- expression evaluation -------------------------------------------

    fn eval(&mut self, e: &RExpr) -> Result<V, MachineError> {
        let c = &self.cfg.cost;
        match e {
            RExpr::I(v) => Ok(V::I(*v)),
            RExpr::R(v) => Ok(V::R(*v)),
            RExpr::B(v) => Ok(V::B(*v)),
            RExpr::Str(_) => Err(MachineError::Type("string outside PRINT".into())),
            RExpr::Load(slot) => {
                self.cycles += c.scalar;
                if let Some(o) = self.oracle.as_deref_mut() {
                    o.scalar_read(*slot);
                }
                Ok(self.scalars[*slot].get())
            }
            RExpr::Elem(arr, subs) => {
                let idx = self.element_index(*arr, subs)?;
                self.cycles += self.cfg.cost.memory;
                if let Some(o) = self.oracle.as_deref_mut() {
                    o.array_read(*arr, idx);
                }
                if !self.spec.is_empty() {
                    let t = self.spec_iter;
                    let mark = self.cfg.cost.spec_mark;
                    if let Some((_, sh)) = self.spec.iter_mut().find(|(a, _)| a == arr) {
                        sh.on_read(idx, t);
                        self.cycles += mark;
                    }
                }
                Ok(self.arrays[*arr].data.get(idx))
            }
            RExpr::Un(op, arg) => {
                let v = self.eval(arg)?;
                self.cycles += c.alu;
                match op {
                    UnOp::Neg => Ok(match v {
                        V::I(x) => V::I(-x),
                        V::R(x) => V::R(-x),
                        V::B(_) => return Err(MachineError::Type("negated logical".into())),
                    }),
                    UnOp::Not => Ok(V::B(!v.as_b()?)),
                }
            }
            RExpr::Bin(op, lhs, rhs) => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                eval_binop(c, &mut self.cycles, *op, a, b)
            }
            RExpr::Intrin(intr, args) => {
                let vals: Vec<V> =
                    args.iter().map(|a| self.eval(a)).collect::<Result<Vec<_>, _>>()?;
                eval_intrinsic(c, &mut self.cycles, *intr, &vals)
            }
        }
    }

    fn element_index(&mut self, arr: usize, subs: &[RExpr]) -> Result<usize, MachineError> {
        let mut idxs = Vec::with_capacity(subs.len());
        for s in subs {
            idxs.push(self.eval(s)?.as_i()?);
        }
        self.arrays[arr].flatten(&idxs)
    }
}

/// Apply a binary operator with the simulated cycle charge. Shared by
/// both engines (tree-walk `eval` and the VM's `Bin` dispatch) so the
/// charge table and numeric semantics cannot diverge.
pub(crate) fn eval_binop(
    c: &CostModel,
    cycles: &mut u64,
    op: BinOp,
    a: V,
    b: V,
) -> Result<V, MachineError> {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow => {
            // Back ends strength-reduce small constant powers
            // (x**2 -> x*x) and power-of-two divides (the paper's
            // §3.2 code-expansion remark assumes exactly this);
            // charge accordingly.
            *cycles += match op {
                BinOp::Mul => c.mul,
                BinOp::Div => match b {
                    V::I(d) if d > 0 && (d & (d - 1)) == 0 => c.alu,
                    _ => c.div,
                },
                BinOp::Pow => match b {
                    V::I(k) if (0..=3).contains(&k) => c.mul * (k.max(1) as u64),
                    _ => c.intrinsic,
                },
                _ => c.alu,
            };
            if a.is_real() || b.is_real() {
                let (x, y) = (a.as_r()?, b.as_r()?);
                Ok(V::R(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.powf(y),
                    _ => unreachable!(),
                }))
            } else {
                let (x, y) = (a.as_i()?, b.as_i()?);
                Ok(V::I(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return Err(MachineError::DivByZero);
                        }
                        x.wrapping_div(y)
                    }
                    BinOp::Pow => int_pow(x, y),
                    _ => unreachable!(),
                }))
            }
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
            *cycles += c.alu;
            let r = if a.is_real() || b.is_real() {
                let (x, y) = (a.as_r()?, b.as_r()?);
                match op {
                    BinOp::Lt => x < y,
                    BinOp::Le => x <= y,
                    BinOp::Gt => x > y,
                    BinOp::Ge => x >= y,
                    BinOp::Eq => x == y,
                    BinOp::Ne => x != y,
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_i()?, b.as_i()?);
                match op {
                    BinOp::Lt => x < y,
                    BinOp::Le => x <= y,
                    BinOp::Gt => x > y,
                    BinOp::Ge => x >= y,
                    BinOp::Eq => x == y,
                    BinOp::Ne => x != y,
                    _ => unreachable!(),
                }
            };
            Ok(V::B(r))
        }
        BinOp::And => {
            *cycles += c.alu;
            Ok(V::B(a.as_b()? && b.as_b()?))
        }
        BinOp::Or => {
            *cycles += c.alu;
            Ok(V::B(a.as_b()? || b.as_b()?))
        }
    }
}

/// Apply an intrinsic with the simulated cycle charge; shared by both
/// engines for the same reason as [`eval_binop`].
pub(crate) fn eval_intrinsic(
    c: &CostModel,
    cycles: &mut u64,
    intr: Intr,
    vals: &[V],
) -> Result<V, MachineError> {
    let cheap = matches!(
        intr,
        Intr::Mod | Intr::Max | Intr::Min | Intr::Abs | Intr::Int | Intr::Nint | Intr::ToReal | Intr::Sign
    );
    *cycles += if cheap { c.mul } else { c.intrinsic };
    let arity = |n: usize| -> Result<(), MachineError> {
        if vals.len() == n {
            Ok(())
        } else {
            Err(MachineError::Type(format!("intrinsic arity {n} expected")))
        }
    };
    let any_real = vals.iter().any(|v| v.is_real());
    Ok(match intr {
        Intr::Mod => {
            arity(2)?;
            if any_real {
                let (x, y) = (vals[0].as_r()?, vals[1].as_r()?);
                V::R(x % y)
            } else {
                let (x, y) = (vals[0].as_i()?, vals[1].as_i()?);
                if y == 0 {
                    return Err(MachineError::DivByZero);
                }
                V::I(x % y)
            }
        }
        Intr::Max | Intr::Min => {
            if vals.is_empty() {
                return Err(MachineError::Type("MAX/MIN need arguments".into()));
            }
            if any_real {
                let mut acc = vals[0].as_r()?;
                for v in &vals[1..] {
                    let x = v.as_r()?;
                    acc = if intr == Intr::Max { acc.max(x) } else { acc.min(x) };
                }
                V::R(acc)
            } else {
                let mut acc = vals[0].as_i()?;
                for v in &vals[1..] {
                    let x = v.as_i()?;
                    acc = if intr == Intr::Max { acc.max(x) } else { acc.min(x) };
                }
                V::I(acc)
            }
        }
        Intr::Abs => {
            arity(1)?;
            match vals[0] {
                V::I(x) => V::I(x.abs()),
                V::R(x) => V::R(x.abs()),
                V::B(_) => return Err(MachineError::Type("ABS of logical".into())),
            }
        }
        Intr::Sign => {
            arity(2)?;
            if any_real {
                let (x, y) = (vals[0].as_r()?, vals[1].as_r()?);
                V::R(x.abs() * if y < 0.0 { -1.0 } else { 1.0 })
            } else {
                let (x, y) = (vals[0].as_i()?, vals[1].as_i()?);
                V::I(x.abs() * if y < 0 { -1 } else { 1 })
            }
        }
        Intr::Sqrt => {
            arity(1)?;
            V::R(vals[0].as_r()?.sqrt())
        }
        Intr::Sin => {
            arity(1)?;
            V::R(vals[0].as_r()?.sin())
        }
        Intr::Cos => {
            arity(1)?;
            V::R(vals[0].as_r()?.cos())
        }
        Intr::Tan => {
            arity(1)?;
            V::R(vals[0].as_r()?.tan())
        }
        Intr::Exp => {
            arity(1)?;
            V::R(vals[0].as_r()?.exp())
        }
        Intr::Log => {
            arity(1)?;
            V::R(vals[0].as_r()?.ln())
        }
        Intr::Atan => {
            arity(1)?;
            V::R(vals[0].as_r()?.atan())
        }
        Intr::Int => {
            arity(1)?;
            V::I(vals[0].as_i()?)
        }
        Intr::Nint => {
            arity(1)?;
            V::I(vals[0].as_r()?.round() as i64)
        }
        Intr::ToReal => {
            arity(1)?;
            V::R(vals[0].as_r()?)
        }
    })
}

impl<'a> Interp<'a> {
    // ---- statements ----------------------------------------------------

    fn run_list(&mut self, stmts: &[RStmt]) -> Result<Flow, MachineError> {
        for s in stmts {
            match self.run_stmt(s)? {
                Flow::Normal => {}
                Flow::Stop => return Ok(Flow::Stop),
            }
        }
        Ok(Flow::Normal)
    }

    /// Charge one unit of execution fuel (one statement or loop
    /// iteration). The budget is a straight monotonic counter — unlike
    /// `cycles` it is never rewound by the codegen model or parallel
    /// bucket accounting, so it bounds *work done*, not simulated time.
    /// This is also the cooperative preemption point: the cancel token
    /// and the chaos panic hook fire here, in both engines, so a
    /// cancelled or crashed run stops at the same boundary either way.
    pub(crate) fn charge_step(&mut self) -> Result<(), MachineError> {
        let done = if let Some(shared) = &self.shared_steps {
            // Threaded mode: all threads draw from one global budget.
            let d = shared.fetch_add(1, Ordering::Relaxed) + 1;
            self.steps = d;
            d
        } else {
            self.steps += 1;
            self.steps
        };
        if let Some(at) = self.cfg.panic_at_step {
            if done == at {
                panic!("injected: exec panic at step {at}");
            }
        }
        if let Some(tok) = &self.cfg.cancel {
            if tok.is_cancelled() {
                return Err(MachineError::Cancelled(
                    tok.reason().unwrap_or_else(|| "cancelled".into()),
                ));
            }
        }
        if let Some(limit) = self.cfg.fuel {
            if done > limit {
                return Err(MachineError::FuelExhausted { limit });
            }
        }
        Ok(())
    }

    pub(crate) fn run_stmt(&mut self, s: &RStmt) -> Result<Flow, MachineError> {
        self.charge_step()?;
        match s {
            RStmt::AssignS(slot, rhs) => {
                let v = self.eval(rhs)?;
                self.cycles += self.cfg.cost.scalar;
                if let Some(o) = self.oracle.as_deref_mut() {
                    o.scalar_write(*slot);
                }
                self.scalars[*slot].set(v)?;
                Ok(Flow::Normal)
            }
            RStmt::AssignE(arr, subs, rhs) => {
                let v = self.eval(rhs)?;
                let idx = self.element_index(*arr, subs)?;
                self.cycles += self.cfg.cost.memory;
                if !self.spec.is_empty() {
                    let t = self.spec_iter;
                    let mark = self.cfg.cost.spec_mark;
                    if let Some((_, sh)) = self.spec.iter_mut().find(|(a, _)| a == arr) {
                        sh.on_write(idx, t);
                        self.cycles += mark;
                    }
                }
                if let Some(o) = self.oracle.as_deref_mut() {
                    o.array_write(*arr, idx);
                }
                Arc::make_mut(&mut self.arrays[*arr].data).set(idx, v)?;
                Ok(Flow::Normal)
            }
            RStmt::Do(l) => self.run_loop(l, None),
            RStmt::If(arms, else_body) => {
                for (cond, body) in arms {
                    self.cycles += self.cfg.cost.branch;
                    if self.eval(cond)?.as_b()? {
                        return self.run_list(body);
                    }
                }
                self.run_list(else_body)
            }
            RStmt::Print(items) => {
                let mut line = String::new();
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        line.push(' ');
                    }
                    match item {
                        RExpr::Str(s) => line.push_str(s),
                        other => match self.eval(other)? {
                            V::I(v) => line.push_str(&v.to_string()),
                            V::R(v) => line.push_str(&format!("{v:.6E}")),
                            V::B(v) => line.push_str(if v { "T" } else { "F" }),
                        },
                    }
                }
                self.output.push(line);
                Ok(Flow::Normal)
            }
            RStmt::Stop => Ok(Flow::Stop),
        }
    }

    /// The per-loop stats slot for `l`, keyed by its dense loop id.
    pub(crate) fn loop_entry(&mut self, l: &RLoop) -> &mut LoopExecStats {
        let i = l.loop_id.0 as usize;
        if i >= self.loop_stats.len() {
            self.loop_stats.resize_with(i + 1, || None);
        }
        &mut self.loop_stats[i]
            .get_or_insert_with(|| (l.label.clone(), LoopExecStats::default()))
            .1
    }

    /// Fold the id-indexed stats into the label-keyed map `RunResult`
    /// exposes (two loops sharing a label merge, as the map always did).
    pub(crate) fn finish_loops(&mut self) -> BTreeMap<String, LoopExecStats> {
        let mut out: BTreeMap<String, LoopExecStats> = BTreeMap::new();
        for (label, st) in self.loop_stats.drain(..).flatten() {
            let e = out.entry(label).or_default();
            e.invocations += st.invocations;
            e.parallel_invocations += st.parallel_invocations;
            e.spec_success += st.spec_success;
            e.spec_fail += st.spec_fail;
            e.cycles += st.cycles;
        }
        out
    }

    /// The iteration values of a loop (evaluated once, F77 semantics).
    fn iteration_values(&mut self, l: &RLoop) -> Result<Vec<i64>, MachineError> {
        let init = self.eval(&l.init)?.as_i()?;
        let limit = self.eval(&l.limit)?.as_i()?;
        let step = match &l.step {
            Some(s) => self.eval(s)?.as_i()?,
            None => 1,
        };
        if step == 0 {
            return Err(MachineError::Type(format!("zero step in {}", l.label)));
        }
        // Pre-check the trip count analytically against the remaining fuel
        // *before* materializing the iteration vector: a miscompiled bound
        // like `DO I = 1, 2000000000` must fail fast with FuelExhausted,
        // not allocate gigabytes first.
        let trip: u128 = if (step > 0 && init <= limit) || (step < 0 && init >= limit) {
            ((limit as i128 - init as i128) / step as i128) as u128 + 1
        } else {
            0
        };
        if let Some(fuel) = self.cfg.fuel {
            let remaining = fuel.saturating_sub(self.steps);
            if trip > u128::from(remaining) {
                return Err(MachineError::FuelExhausted { limit: fuel });
            }
        }
        let mut out = self.iter_pool.pop().unwrap_or_default();
        out.clear();
        out.reserve(trip.min(1 << 20) as usize);
        let mut v = init;
        while (step > 0 && v <= limit) || (step < 0 && v >= limit) {
            out.push(v);
            // With no fuel cap, a huge iteration space would otherwise be
            // uncancellable until the allocation finishes: poll the token
            // while materializing.
            if out.len() & 0xFFFF == 0 {
                if let Some(tok) = &self.cfg.cancel {
                    if tok.is_cancelled() {
                        return Err(MachineError::Cancelled(
                            tok.reason().unwrap_or_else(|| "cancelled".into()),
                        ));
                    }
                }
            }
            // The next value is unrepresentable only when it would also be
            // past the limit, so stopping here preserves F77 semantics.
            match v.checked_add(step) {
                Some(nv) => v = nv,
                None => break,
            }
        }
        Ok(out)
    }

    /// Orchestrate one loop invocation. `body` is the loop's bytecode
    /// body block when running under `Engine::Vm` (`None` = tree-walk
    /// `l.body`); everything else — bounds, dispatch-mode choice,
    /// speculation, adversarial validation, threading, stats, the F77
    /// exit value — is engine-independent and shared.
    pub(crate) fn run_loop(&mut self, l: &RLoop, body: Option<u32>) -> Result<Flow, MachineError> {
        let iters = self.iteration_values(l)?;
        self.loop_entry(l).invocations += 1;
        let loop_start = self.cycles;
        // Oracle frame: pushed after the bound expressions are evaluated
        // (those reads belong to the enclosing loops, not this one).
        let n_scalars = self.scalars.len();
        if let Some(o) = self.oracle.as_deref_mut() {
            o.enter_loop(l.loop_id, &l.label, n_scalars);
        }

        let concurrent = !self.in_parallel && self.cfg.exec_procs() > 1;
        let loop_span = self.recorder.loop_span("exec", &l.label, l.loop_id);
        let adaptive = self.cfg.adaptive.is_some()
            && concurrent
            && !self.adversarial
            && (l.par.parallel || !l.par.spec_arrays.is_empty());
        let flow = if adaptive {
            self.run_adaptive(l, &iters, body)?
        } else if l.par.parallel && concurrent && !self.adversarial {
            self.count_loop_mode(polaris_obs::Counter::ExecLoopsParallel);
            match self.cfg.exec_mode {
                // Speculative loops stay on the simulated path even in
                // threaded mode (run_speculative, below); only loops the
                // pipeline *proved* parallel go to real threads.
                ExecMode::Threaded { .. } => {
                    crate::threaded::run_threaded_loop(self, l, &iters, body)?
                }
                ExecMode::Simulated => self.run_parallel(l, &iters, body)?,
            }
        } else if !l.par.spec_arrays.is_empty() && concurrent && !self.adversarial {
            self.count_loop_mode(polaris_obs::Counter::ExecLoopsSpeculative);
            self.run_speculative(l, &iters, body)?
        } else if l.par.parallel && self.adversarial && !self.in_parallel {
            self.count_loop_mode(polaris_obs::Counter::ExecLoopsAdversarial);
            self.run_adversarial(l, &iters, body)?
        } else {
            self.count_loop_mode(polaris_obs::Counter::ExecLoopsSerial);
            self.run_serial_loop(l, &iters, body)?
        };
        loop_span.end();
        if let Some(o) = self.oracle.as_deref_mut() {
            o.exit_loop();
        }
        let spent = self.cycles - loop_start;
        self.loop_entry(l).cycles += spent;
        // F77 semantics: the loop variable holds the first value past the
        // limit after the loop completes — and this must hold regardless
        // of execution order (the variable is implicitly private).
        if flow == Flow::Normal {
            let step = match &l.step {
                Some(s) => self.eval(s)?.as_i()?,
                None => 1,
            };
            let beyond = match iters.last() {
                Some(&last) => last + step,
                None => self.eval(&l.init)?.as_i()?,
            };
            self.scalars[l.var].set(V::I(beyond))?;
        }
        self.iter_pool.push(iters);
        Ok(flow)
    }

    /// Adaptive dispatch for one loop invocation: ask the controller for
    /// a (strategy, chunking, threads) decision, execute it, and feed the
    /// deterministic profile (trip, per-chunk cycles, misspeculation)
    /// back. The controller only ever sees — and its choices are clamped
    /// to — what the compiler proved sound, so an arbitrary adaptation
    /// history can change *performance*, never results (the determinism
    /// contract in DESIGN.md).
    fn run_adaptive(
        &mut self,
        l: &RLoop,
        iters: &[i64],
        body: Option<u32>,
    ) -> Result<Flow, MachineError> {
        use polaris_runtime::{Chunking, DecideEvent, Observation, Strategy};
        let ctrl = Arc::clone(self.cfg.adaptive.as_ref().expect("adaptive dispatch without controller"));
        let trip = iters.len() as u64;
        let hints = polaris_runtime::LoopHints {
            parallel: l.par.parallel,
            speculative: !l.par.spec_arrays.is_empty(),
            trip,
            procs: self.cfg.exec_procs(),
        };
        let d = ctrl.decide(l.loop_id.0, &l.label, hints);
        if self.recorder.is_enabled() {
            use polaris_obs::Counter as C;
            self.recorder.count(C::AdaptiveDecisions, 1);
            let ev = match d.event {
                DecideEvent::Measure => Some(C::AdaptiveMeasurements),
                DecideEvent::Redispatch => Some(C::AdaptiveRedispatch),
                DecideEvent::Throttle => Some(C::AdaptiveThrottled),
                DecideEvent::Probe => Some(C::AdaptiveProbes),
                DecideEvent::CorruptReset => Some(C::AdaptiveTableCorrupt),
                DecideEvent::Forced => None,
            };
            if let Some(ev) = ev {
                self.recorder.count(ev, 1);
            }
            self.recorder
                .span_with(
                    "adaptive",
                    format!("{}:{}", d.event.as_str(), d.strategy.as_str()),
                    0,
                    Some(l.loop_id),
                    None,
                )
                .end();
        }
        match d.strategy {
            Strategy::Serial => {
                self.count_loop_mode(polaris_obs::Counter::ExecLoopsSerial);
                let flow = self.run_serial_loop(l, iters, body)?;
                ctrl.observe(
                    l.loop_id.0,
                    Observation { trip, chunk_cycles: Vec::new(), misspeculated: None },
                );
                Ok(flow)
            }
            Strategy::Static => {
                let schedule = match d.chunking {
                    Chunking::Block => Schedule::Static,
                    Chunking::SelfSched { chunk } => Schedule::Dynamic { chunk },
                    Chunking::Stealing { chunk } => Schedule::Stealing { chunk },
                };
                self.sched_override = Some((d.threads.max(1), schedule));
                self.count_loop_mode(polaris_obs::Counter::ExecLoopsParallel);
                let res = match self.cfg.exec_mode {
                    ExecMode::Threaded { .. } => {
                        crate::threaded::run_threaded_loop(self, l, iters, body)
                    }
                    ExecMode::Simulated => self.run_parallel(l, iters, body),
                };
                self.sched_override = None;
                let flow = res?;
                let chunk_cycles = std::mem::take(&mut self.last_chunk_cycles);
                ctrl.observe(l.loop_id.0, Observation { trip, chunk_cycles, misspeculated: None });
                Ok(flow)
            }
            Strategy::Speculative => {
                self.count_loop_mode(polaris_obs::Counter::ExecLoopsSpeculative);
                let fails_before = self.loop_entry(l).spec_fail;
                let flow = self.run_speculative(l, iters, body)?;
                let misspec = self.loop_entry(l).spec_fail > fails_before;
                ctrl.observe(
                    l.loop_id.0,
                    Observation {
                        trip,
                        chunk_cycles: Vec::new(),
                        misspeculated: Some(misspec),
                    },
                );
                Ok(flow)
            }
        }
    }

    /// One dispatch decision for a lowered loop: bump the per-mode counter
    /// and the total, so `exec.loops.{parallel,speculative,serial,adversarial}`
    /// always partition `exec.loops.total`.
    fn count_loop_mode(&self, mode: polaris_obs::Counter) {
        if self.recorder.is_enabled() {
            self.recorder.count(mode, 1);
            self.recorder.count(polaris_obs::Counter::ExecLoopsTotal, 1);
        }
    }

    /// `bc` is the caller-hoisted bytecode handle paired with `body`
    /// (cloning the `Arc` once per loop invocation instead of once per
    /// iteration); it must be `Some` whenever `body` is.
    pub(crate) fn run_one_iteration(
        &mut self,
        l: &RLoop,
        v: i64,
        body: Option<u32>,
        bc: Option<&crate::bytecode::BcUnit>,
    ) -> Result<Flow, MachineError> {
        if !self.quiet_steps {
            self.charge_step()?;
        }
        self.cycles += self.cfg.cost.loop_iter;
        self.scalars[l.var].set(V::I(v))?;
        let b0 = self.cycles;
        let flow = match body {
            Some(blk) => {
                let bc = bc.expect("VM loop body without bytecode");
                self.run_block(bc, blk)?
            }
            None => self.run_list(&l.body)?,
        };
        if l.innermost && self.cfg.codegen.enabled {
            let delta = self.cycles - b0;
            self.cycles = b0 + self.cfg.codegen.scale(delta, l.has_conditional);
        }
        Ok(flow)
    }

    pub(crate) fn run_serial_loop(
        &mut self,
        l: &RLoop,
        iters: &[i64],
        body: Option<u32>,
    ) -> Result<Flow, MachineError> {
        let bc = body.map(|_| Arc::clone(self.bc.as_ref().expect("VM loop body without bytecode")));
        for (idx, &v) in iters.iter().enumerate() {
            if let Some(o) = self.oracle.as_deref_mut() {
                o.begin_iteration(idx as u64);
            }
            if self.run_one_iteration(l, v, body, bc.as_deref())? == Flow::Stop {
                return Ok(Flow::Stop);
            }
        }
        Ok(Flow::Normal)
    }

    /// Effective `(workers, schedule)` for the simulated parallel paths:
    /// the adaptive override when one is installed, else the config.
    pub(crate) fn sim_sched(&self) -> (usize, Schedule) {
        self.sched_override.unwrap_or((self.cfg.procs, self.cfg.schedule))
    }

    /// Which processor executes iteration `idx` of `trip` iterations?
    fn proc_of(&self, idx: usize, trip: usize) -> usize {
        let (procs, schedule) = self.sim_sched();
        match schedule {
            Schedule::Static => {
                let per = trip.div_ceil(procs).max(1);
                (idx / per).min(procs - 1)
            }
            // Stealing uses the same chunk → bucket mapping as dynamic
            // self-scheduling: the simulator models where the *cost*
            // lands, and stealing only perturbs which lane runs a chunk,
            // round-robin being the no-steals baseline.
            Schedule::Dynamic { chunk } | Schedule::Stealing { chunk } => {
                (idx / chunk.max(1)) % procs
            }
        }
    }

    fn run_parallel(
        &mut self,
        l: &RLoop,
        iters: &[i64],
        body: Option<u32>,
    ) -> Result<Flow, MachineError> {
        let c0 = self.cycles;
        let trip = iters.len();
        let (procs, schedule) = self.sim_sched();
        let mut buckets = vec![0u64; procs];
        self.in_parallel = true;
        let mut flow = Flow::Normal;
        let bc = body.map(|_| Arc::clone(self.bc.as_ref().expect("VM loop body without bytecode")));
        for (idx, &v) in iters.iter().enumerate() {
            let b0 = self.cycles;
            flow = self.run_one_iteration(l, v, body, bc.as_deref())?;
            buckets[self.proc_of(idx, trip)] += self.cycles - b0;
            if flow == Flow::Stop {
                break;
            }
        }
        self.in_parallel = false;
        self.cycles = c0;
        if self.cfg.adaptive.is_some() {
            self.last_chunk_cycles = buckets.clone();
        }
        // Run-time profitability guard (the generated code wraps the
        // parallel region in an IF, as both PFA and Polaris did): a loop
        // whose total work cannot amortize the fork runs serially.
        let total: u64 = buckets.iter().sum();
        if total < 2 * self.cfg.cost.fork_join {
            self.cycles += total + self.cfg.cost.branch;
            return Ok(flow);
        }
        let mut charged = self.cfg.cost.fork_join + buckets.iter().copied().max().unwrap_or(0);
        if let Schedule::Dynamic { chunk } | Schedule::Stealing { chunk } = schedule {
            charged += (trip.div_ceil(chunk.max(1)) as u64) * self.cfg.cost.dispatch;
        }
        charged += self.merge_costs(&l.par);
        self.cycles += charged;
        self.loop_entry(l).parallel_invocations += 1;
        Ok(flow)
    }

    pub(crate) fn merge_costs(&self, par: &RPar) -> u64 {
        let c = &self.cfg.cost;
        let mut total = 0u64;
        for red in &par.reductions {
            total += match red.target {
                RRef::Scalar(_) => self.cfg.procs as u64 * c.reduction_merge,
                RRef::Array(a) => self.arrays[a].data.len() as u64 * c.reduction_merge,
            };
        }
        for &a in &par.private_arrays {
            total += self.arrays[a].data.len() as u64 * c.private_setup;
        }
        total
    }

    fn run_speculative(
        &mut self,
        l: &RLoop,
        iters: &[i64],
        body: Option<u32>,
    ) -> Result<Flow, MachineError> {
        debug_assert!(self.spec.is_empty(), "nested speculation");
        for &a in &l.par.spec_arrays {
            self.spec.push((a, ShadowSim::new(self.arrays[a].data.len())));
        }
        let c0 = self.cycles;
        let trip = iters.len();
        let mut buckets = vec![0u64; self.cfg.procs];
        self.in_parallel = true;
        let mut flow = Flow::Normal;
        let bc = body.map(|_| Arc::clone(self.bc.as_ref().expect("VM loop body without bytecode")));
        for (idx, &v) in iters.iter().enumerate() {
            self.spec_iter = idx as u32;
            let b0 = self.cycles;
            flow = self.run_one_iteration(l, v, body, bc.as_deref())?;
            let t = self.spec_iter;
            for (_, sh) in self.spec.iter_mut() {
                sh.end_iteration(t);
            }
            buckets[self.proc_of(idx, trip)] += self.cycles - b0;
            if flow == Flow::Stop {
                break;
            }
        }
        self.in_parallel = false;
        self.cycles = c0;

        let shadows = std::mem::take(&mut self.spec);
        let success = shadows.iter().all(|(_, sh)| sh.verdict().plain_ok());
        let tracked_elems: u64 = shadows.iter().map(|(_, sh)| sh.len() as u64).sum();
        let marks_done: u64 = shadows.iter().map(|(_, sh)| sh.marks_done).sum();
        let analysis = tracked_elems * self.cfg.cost.spec_analysis / self.cfg.procs as u64
            + self.cfg.cost.fork_join / 2;
        let attempt = self.cfg.cost.fork_join
            + buckets.iter().copied().max().unwrap_or(0)
            + analysis
            + self.merge_costs(&l.par);
        if success {
            self.cycles += attempt;
            let entry = self.loop_entry(l);
            entry.spec_success += 1;
            entry.parallel_invocations += 1;
            self.recorder.count(polaris_obs::Counter::LrpdPass, 1);
        } else {
            // Failed speculation: the attempt is wasted, the loop then
            // re-executes sequentially (values are already correct — the
            // simulator executed in order — only the cost is charged).
            // Marking cycles belong to the failed attempt, not to the
            // sequential re-execution, so they are subtracted here.
            let total: u64 = buckets.iter().sum();
            let marking = (marks_done * self.cfg.cost.spec_mark).min(total);
            let sequential = total - marking;
            self.cycles += attempt + sequential;
            self.loop_entry(l).spec_fail += 1;
            self.recorder.count(polaris_obs::Counter::LrpdFail, 1);
        }
        Ok(flow)
    }

    /// Adversarial validation: iterate in reverse with real privatization
    /// and reduction semantics. If the compiler's annotations are wrong,
    /// the final state differs from sequential execution.
    fn run_adversarial(
        &mut self,
        l: &RLoop,
        iters: &[i64],
        body: Option<u32>,
    ) -> Result<Flow, MachineError> {
        // stash shared state of private vars
        let saved_scalars: Vec<(usize, Scalar)> =
            l.par.private_scalars.iter().map(|&s| (s, self.scalars[s])).collect();
        let saved_arrays: Vec<(usize, Arc<ArrData>)> = l
            .par
            .private_arrays
            .iter()
            .map(|&a| (a, self.arrays[a].data.clone()))
            .collect();
        // reduction setup
        let mut red_state: Vec<(RRed, RedAccum)> = Vec::new();
        for red in &l.par.reductions {
            red_state.push((red.clone(), RedAccum::identity(red, self)));
        }

        self.in_parallel = true;
        let mut flow = Flow::Normal;
        let last = iters.last().copied();
        let mut copy_out_values: Vec<(usize, Scalar)> = Vec::new();
        let bc = body.map(|_| Arc::clone(self.bc.as_ref().expect("VM loop body without bytecode")));
        for &v in iters.iter().rev() {
            // poison privates
            for &s in &l.par.private_scalars {
                self.scalars[s] = poison_scalar(self.scalars[s]);
            }
            for &a in &l.par.private_arrays {
                poison_array(&mut self.arrays[a].data);
            }
            // reduction slots start at identity each iteration
            for (red, _) in &red_state {
                set_identity(red, self);
            }
            flow = self.run_one_iteration(l, v, body, bc.as_deref())?;
            // fold partials
            for (red, accum) in red_state.iter_mut() {
                accum.fold(red, self);
            }
            if Some(v) == last {
                for &s in &l.par.copy_out_scalars {
                    copy_out_values.push((s, self.scalars[s]));
                }
            }
            if flow == Flow::Stop {
                break;
            }
        }
        self.in_parallel = false;
        // restore privates
        for (s, v) in saved_scalars {
            self.scalars[s] = v;
        }
        for (a, d) in saved_arrays {
            self.arrays[a].data = d;
        }
        // reductions: shared := shared op total
        for (red, accum) in red_state {
            accum.commit(&red, self)?;
        }
        // copy-out wins over the restored value
        for (s, v) in copy_out_values {
            self.scalars[s] = v;
        }
        Ok(flow)
    }

    /// Execute the unit's top-level code under the configured engine:
    /// tree-walk runs `image.code` directly; the VM compiles the image
    /// to bytecode once and dispatches its entry block.
    fn run_program(&mut self, image: &Image) -> Result<Flow, MachineError> {
        match self.cfg.engine {
            Engine::TreeWalk => self.run_list(&image.code),
            Engine::Vm => {
                // A config that cannot observe step counts gets the
                // Step-free stream (see `bytecode::compile_quiet`).
                let bc = Arc::new(if self.quiet_steps {
                    crate::bytecode::compile_quiet(image)?
                } else {
                    crate::bytecode::compile(image)?
                });
                self.bc = Some(Arc::clone(&bc));
                self.run_block(&bc, bc.entry)
            }
        }
    }
}

pub(crate) fn int_pow(base: i64, exp: i64) -> i64 {
    if exp < 0 {
        return if base.abs() == 1 {
            if exp % 2 == 0 {
                1
            } else {
                base
            }
        } else {
            0
        };
    }
    let mut acc: i64 = 1;
    for _ in 0..exp {
        acc = acc.wrapping_mul(base);
    }
    acc
}

fn poison_scalar(s: Scalar) -> Scalar {
    match s {
        Scalar::I(_) => Scalar::I(POISON_I),
        Scalar::R(_) => Scalar::R(f64::NAN),
        Scalar::B(_) => Scalar::B(false),
    }
}

fn poison_array(d: &mut Arc<ArrData>) {
    match Arc::make_mut(d) {
        ArrData::I(v) => v.fill(POISON_I),
        ArrData::R(v) => v.fill(f64::NAN),
        ArrData::B(v) => v.fill(false),
    }
}

/// Accumulated reduction partials during adversarial execution.
enum RedAccum {
    Scalar { initial: Scalar, total: f64, total_i: i64, any: bool },
    Array { initial: Arc<ArrData>, totals_r: Vec<f64>, totals_i: Vec<i64> },
}

impl RedAccum {
    fn identity(red: &RRed, interp: &Interp<'_>) -> RedAccum {
        match red.target {
            RRef::Scalar(s) => RedAccum::Scalar {
                initial: interp.scalars[s],
                total: red_identity_r(red.op),
                total_i: red_identity_i(red.op),
                any: false,
            },
            RRef::Array(a) => {
                let n = interp.arrays[a].data.len();
                RedAccum::Array {
                    initial: interp.arrays[a].data.clone(),
                    totals_r: vec![red_identity_r(red.op); n],
                    totals_i: vec![red_identity_i(red.op); n],
                }
            }
        }
    }

    fn fold(&mut self, red: &RRed, interp: &mut Interp<'_>) {
        match (self, red.target) {
            (RedAccum::Scalar { total, total_i, any, .. }, RRef::Scalar(s)) => {
                match interp.scalars[s] {
                    Scalar::R(v) => *total = red_apply_r(red.op, *total, v),
                    Scalar::I(v) => *total_i = red_apply_i(red.op, *total_i, v),
                    Scalar::B(_) => {}
                }
                *any = true;
            }
            (RedAccum::Array { totals_r, totals_i, .. }, RRef::Array(a)) => {
                match interp.arrays[a].data.as_ref() {
                    ArrData::R(vals) => {
                        for (t, v) in totals_r.iter_mut().zip(vals) {
                            *t = red_apply_r(red.op, *t, *v);
                        }
                    }
                    ArrData::I(vals) => {
                        for (t, v) in totals_i.iter_mut().zip(vals) {
                            *t = red_apply_i(red.op, *t, *v);
                        }
                    }
                    ArrData::B(_) => {}
                }
            }
            _ => unreachable!("reduction target shape mismatch"),
        }
    }

    fn commit(self, red: &RRed, interp: &mut Interp<'_>) -> Result<(), MachineError> {
        match (self, red.target) {
            (RedAccum::Scalar { initial, total, total_i, any }, RRef::Scalar(s)) => {
                if !any {
                    interp.scalars[s] = initial;
                    return Ok(());
                }
                interp.scalars[s] = match initial {
                    Scalar::R(v) => Scalar::R(red_apply_r(red.op, v, total)),
                    Scalar::I(v) => Scalar::I(red_apply_i(red.op, v, total_i)),
                    b => b,
                };
                Ok(())
            }
            (RedAccum::Array { initial, totals_r, totals_i }, RRef::Array(a)) => {
                let merged = match initial.as_ref() {
                    ArrData::R(vals) => ArrData::R(
                        vals.iter()
                            .zip(&totals_r)
                            .map(|(v, t)| red_apply_r(red.op, *v, *t))
                            .collect(),
                    ),
                    ArrData::I(vals) => ArrData::I(
                        vals.iter()
                            .zip(&totals_i)
                            .map(|(v, t)| red_apply_i(red.op, *v, *t))
                            .collect(),
                    ),
                    ArrData::B(_) => {
                        interp.arrays[a].data = initial;
                        return Ok(());
                    }
                };
                interp.arrays[a].data = Arc::new(merged);
                Ok(())
            }
            _ => unreachable!(),
        }
    }
}

fn set_identity(red: &RRed, interp: &mut Interp<'_>) {
    match red.target {
        RRef::Scalar(s) => {
            interp.scalars[s] = match interp.scalars[s] {
                Scalar::R(_) => Scalar::R(red_identity_r(red.op)),
                Scalar::I(_) => Scalar::I(red_identity_i(red.op)),
                b => b,
            };
        }
        RRef::Array(a) => match Arc::make_mut(&mut interp.arrays[a].data) {
            ArrData::R(v) => v.fill(red_identity_r(red.op)),
            ArrData::I(v) => v.fill(red_identity_i(red.op)),
            ArrData::B(_) => {}
        },
    }
}

pub(crate) fn red_identity_r(op: RedOp) -> f64 {
    match op {
        RedOp::Sum => 0.0,
        RedOp::Product => 1.0,
        RedOp::Max => f64::NEG_INFINITY,
        RedOp::Min => f64::INFINITY,
    }
}

pub(crate) fn red_identity_i(op: RedOp) -> i64 {
    match op {
        RedOp::Sum => 0,
        RedOp::Product => 1,
        RedOp::Max => i64::MIN,
        RedOp::Min => i64::MAX,
    }
}

pub(crate) fn red_apply_r(op: RedOp, a: f64, b: f64) -> f64 {
    match op {
        RedOp::Sum => a + b,
        RedOp::Product => a * b,
        RedOp::Max => a.max(b),
        RedOp::Min => a.min(b),
    }
}

pub(crate) fn red_apply_i(op: RedOp, a: i64, b: i64) -> i64 {
    match op {
        RedOp::Sum => a.wrapping_add(b),
        RedOp::Product => a.wrapping_mul(b),
        RedOp::Max => a.max(b),
        RedOp::Min => a.min(b),
    }
}

// ---- public entry points ---------------------------------------------

/// Run `program` on the machine (simulated or real-threaded per
/// `cfg.exec_mode`).
pub fn run(program: &Program, cfg: &MachineConfig) -> Result<RunResult, MachineError> {
    let t0 = Instant::now();
    let image = lower_with_cap(program, cfg.memory_cap)?;
    let mut interp = Interp::new(&image, cfg, false);
    interp.run_program(&image)?;
    Ok(RunResult {
        cycles: interp.cycles,
        loops: interp.finish_loops(),
        output: interp.output,
        wall: t0.elapsed(),
    })
}

/// A bit-exact snapshot of final memory, for differential comparison
/// between engines and execution modes: each scalar as a tagged exact
/// rendering (REALs by bit pattern, so `-0.0 != 0.0` and NaNs compare
/// by payload) and each array as an FNV-1a hash over its element bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDump {
    /// `(name, "I:<v>" | "R:<f64 bits as hex>" | "B:<v>")` per scalar.
    pub scalars: Vec<(String, String)>,
    /// `(name, fnv1a over element bit patterns)` per array.
    pub arrays: Vec<(String, u64)>,
}

fn dump_state(interp: &Interp<'_>, image: &Image) -> StateDump {
    let scalars = image
        .scalar_names
        .iter()
        .cloned()
        .zip(interp.scalars.iter().map(|s| match s {
            Scalar::I(v) => format!("I:{v}"),
            Scalar::R(v) => format!("R:{:016x}", v.to_bits()),
            Scalar::B(v) => format!("B:{v}"),
        }))
        .collect();
    let arrays = interp
        .arrays
        .iter()
        .map(|a| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut upd = |bytes: &[u8]| {
                for &b in bytes {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            };
            match a.data.as_ref() {
                ArrData::I(v) => v.iter().for_each(|x| upd(&x.to_le_bytes())),
                ArrData::R(v) => v.iter().for_each(|x| upd(&x.to_bits().to_le_bytes())),
                ArrData::B(v) => v.iter().for_each(|x| upd(&[u8::from(*x)])),
            }
            (a.name.clone(), h)
        })
        .collect();
    StateDump { scalars, arrays }
}

/// [`run`] + a [`StateDump`] of the final memory state. The equivalence
/// suites use this to hold engines/modes to *equal final state*, not
/// just equal output.
pub fn run_with_state(
    program: &Program,
    cfg: &MachineConfig,
) -> Result<(RunResult, StateDump), MachineError> {
    let t0 = Instant::now();
    let image = lower_with_cap(program, cfg.memory_cap)?;
    let mut interp = Interp::new(&image, cfg, false);
    interp.run_program(&image)?;
    let state = dump_state(&interp, &image);
    Ok((
        RunResult {
            cycles: interp.cycles,
            loops: interp.finish_loops(),
            output: interp.output,
            wall: t0.elapsed(),
        },
        state,
    ))
}

/// [`run`] with an observability [`polaris_obs::Recorder`] attached: an
/// `exec` root span encloses a `loop:<label>` span (carrying the loop's
/// provenance [`polaris_ir::stmt::LoopId`]) per loop invocation, and the
/// dispatch decisions, LRPD verdicts and threaded-backend work are
/// mirrored into typed counters. `run` is exactly this with
/// `Recorder::disabled()`.
pub fn run_recorded(
    program: &Program,
    cfg: &MachineConfig,
    rec: &polaris_obs::Recorder,
) -> Result<RunResult, MachineError> {
    let t0 = Instant::now();
    let image = lower_with_cap(program, cfg.memory_cap)?;
    let mut interp = Interp::new(&image, cfg, false);
    interp.recorder = rec.clone();
    let exec_span = rec.span("exec", "exec");
    let run_result = interp.run_program(&image);
    exec_span.end();
    run_result?;
    Ok(RunResult {
        cycles: interp.cycles,
        loops: interp.finish_loops(),
        output: interp.output,
        wall: t0.elapsed(),
    })
}

/// Run serially (annotations have no effect; the serial reference time).
pub fn run_serial(program: &Program) -> Result<RunResult, MachineError> {
    run(program, &MachineConfig::serial())
}

/// Run `image` serially with the dependence-oracle trace attached and
/// return the collected per-loop observations. `cfg` must be a serial
/// configuration — program order *is* the thing being traced.
pub(crate) fn run_traced(
    image: &Image,
    cfg: &MachineConfig,
) -> Result<crate::oracle::OracleState, MachineError> {
    debug_assert_eq!(cfg.exec_procs(), 1, "oracle traces require serial execution");
    let mut interp = Interp::new(image, cfg, false);
    interp.oracle = Some(Box::new(crate::oracle::OracleState::new()));
    interp.run_program(image)?;
    Ok(*interp.oracle.take().expect("oracle state survives the run"))
}

/// Validate the compiler's parallelization: execute sequentially, then
/// adversarially (parallel loops in reverse order with real
/// privatization/reduction semantics), and compare the final memory
/// state and output. Returns the two results on success.
pub fn run_validated(
    program: &Program,
    cfg: &MachineConfig,
) -> Result<(RunResult, RunResult), MachineError> {
    let image = lower_with_cap(program, cfg.memory_cap)?;
    let mut serial_cfg = MachineConfig::serial();
    serial_cfg.fuel = cfg.fuel;
    serial_cfg.memory_cap = cfg.memory_cap;
    serial_cfg.engine = cfg.engine;
    let t_seq = Instant::now();
    let mut seq = Interp::new(&image, &serial_cfg, false);
    seq.run_program(&image)?;
    let seq_wall = t_seq.elapsed();
    let t_adv = Instant::now();
    let mut adv = Interp::new(&image, cfg, true);
    adv.run_program(&image)?;
    let adv_wall = t_adv.elapsed();

    // Variables privatized without copy-out have unspecified values after
    // a parallel loop: exclude them from the comparison. (If a later use
    // actually depended on them, the dependence driver would have
    // demanded copy-out or refused privatization; a poisoned value that
    // *does* flow somewhere observable still trips the comparison there.)
    let (skip_scalars, skip_arrays) = private_without_copyout(&image.code);

    const TOL: f64 = 1e-6;
    for (i, (a, b)) in seq.scalars.iter().zip(&adv.scalars).enumerate() {
        if skip_scalars.contains(&i) {
            continue;
        }
        if !scalar_approx_eq(a, b, TOL) {
            return Err(MachineError::ValidationMismatch(format!(
                "scalar `{}`: sequential {a:?} vs adversarial {b:?}",
                image.scalar_names[i]
            )));
        }
    }
    for (i, (sa, aa)) in seq.arrays.iter().zip(&adv.arrays).enumerate() {
        if skip_arrays.contains(&i) {
            continue;
        }
        if !sa.data.approx_eq(&aa.data, TOL) {
            return Err(MachineError::ValidationMismatch(format!(
                "array `{}` differs between sequential and adversarial runs",
                sa.name
            )));
        }
    }
    if !outputs_match(&seq.output, &adv.output, TOL) {
        return Err(MachineError::ValidationMismatch(format!(
            "program output differs:\n  seq: {:?}\n  adv: {:?}",
            seq.output, adv.output
        )));
    }
    Ok((
        RunResult {
            cycles: seq.cycles,
            loops: seq.finish_loops(),
            output: seq.output,
            wall: seq_wall,
        },
        RunResult {
            cycles: adv.cycles,
            loops: adv.finish_loops(),
            output: adv.output,
            wall: adv_wall,
        },
    ))
}

/// Slots privatized (without copy-out) in any loop of the code.
fn private_without_copyout(code: &[RStmt]) -> (Vec<usize>, Vec<usize>) {
    let mut scalars = Vec::new();
    let mut arrays = Vec::new();
    fn walk(code: &[RStmt], scalars: &mut Vec<usize>, arrays: &mut Vec<usize>) {
        for s in code {
            match s {
                RStmt::Do(l) => {
                    for &p in &l.par.private_scalars {
                        if !l.par.copy_out_scalars.contains(&p) {
                            scalars.push(p);
                        }
                    }
                    arrays.extend(l.par.private_arrays.iter().copied());
                    walk(&l.body, scalars, arrays);
                }
                RStmt::If(arms, e) => {
                    for (_, b) in arms {
                        walk(b, scalars, arrays);
                    }
                    walk(e, scalars, arrays);
                }
                _ => {}
            }
        }
    }
    walk(code, &mut scalars, &mut arrays);
    (scalars, arrays)
}

/// Line-by-line output comparison with a relative tolerance on numeric
/// fields (formatted REALs may differ in the last digits between
/// differently-associated reductions). Public for the differential fuzz
/// harness.
pub fn outputs_match(a: &[String], b: &[String], tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(x, y)| {
        if x == y {
            return true;
        }
        let tx: Vec<&str> = x.split_whitespace().collect();
        let ty: Vec<&str> = y.split_whitespace().collect();
        tx.len() == ty.len()
            && tx.iter().zip(&ty).all(|(u, v)| {
                if u == v {
                    return true;
                }
                match (u.parse::<f64>(), v.parse::<f64>()) {
                    (Ok(fu), Ok(fv)) => {
                        let scale = fu.abs().max(fv.abs()).max(1.0);
                        (fu - fv).abs() <= tol * scale
                    }
                    _ => false,
                }
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        polaris_ir::parse(src).unwrap()
    }

    #[test]
    fn sequential_semantics() {
        let p = parse(
            "program t\nreal a(10)\ns = 0.0\ndo i = 1, 10\n  a(i) = i * 2.0\n  s = s + a(i)\nend do\nprint *, 'sum', s\nend\n",
        );
        let r = run_serial(&p).unwrap();
        assert_eq!(r.output.len(), 1);
        assert!(r.output[0].contains("sum"));
        assert!(r.output[0].contains("1.100000E2"), "{:?}", r.output);
        assert!(r.cycles > 0);
    }

    #[test]
    fn stop_halts() {
        let p = parse("program t\nx = 1.0\nstop\ny = 2.0\nprint *, y\nend\n");
        let r = run_serial(&p).unwrap();
        assert!(r.output.is_empty());
    }

    #[test]
    fn if_else_and_intrinsics() {
        let p = parse(
            "program t\nx = -3.5\nif (x < 0.0) then\n  y = abs(x)\nelse\n  y = sqrt(x)\nend if\nprint *, y, max(1, 2, 3), mod(7, 3)\nend\n",
        );
        let r = run_serial(&p).unwrap();
        assert!(r.output[0].contains("3.500000E0"), "{:?}", r.output);
        assert!(r.output[0].contains('3'));
        assert!(r.output[0].contains('1'));
    }

    #[test]
    fn parallel_loop_faster_than_serial() {
        let src = "program t\nreal a(10000)\n!$polaris doall\ndo i = 1, 10000\n  a(i) = i * 2.0 + 1.0\nend do\nprint *, a(5000)\nend\n";
        let p = parse(src);
        let serial = run_serial(&p).unwrap();
        let par = run(&p, &MachineConfig::challenge_8()).unwrap();
        assert_eq!(serial.output, par.output);
        let speedup = serial.cycles as f64 / par.cycles as f64;
        assert!(speedup > 4.0, "speedup {speedup} too low ({} vs {})", serial.cycles, par.cycles);
        assert!(speedup <= 8.0, "speedup {speedup} exceeds processor count");
    }

    #[test]
    fn fork_join_overhead_hurts_tiny_loops() {
        let src = "program t\nreal a(4)\ndo k = 1, 2000\n!$polaris doall\ndo i = 1, 4\n  a(i) = i * 1.0\nend do\nend do\nprint *, a(1)\nend\n";
        let p = parse(src);
        let serial = run_serial(&p).unwrap();
        let par = run(&p, &MachineConfig::challenge_8()).unwrap();
        assert!(par.cycles > serial.cycles, "tiny parallel loops must lose");
    }

    #[test]
    fn loop_stats_recorded() {
        let src = "program t\nreal a(5000)\n!$polaris doall\ndo i = 1, 5000\n  a(i) = 1.0\nend do\nend\n";
        let p = parse(src);
        let r = run(&p, &MachineConfig::challenge_8()).unwrap();
        let (label, stats) = r.loops.iter().next().unwrap();
        assert!(label.contains("do"));
        assert_eq!(stats.invocations, 1);
        assert_eq!(stats.parallel_invocations, 1);
    }

    #[test]
    fn nested_parallel_only_outer_counts() {
        let src = "program t\nreal a(40,40)\n!$polaris doall private(J)\ndo i = 1, 40\n!$polaris doall\ndo j = 1, 40\n  a(i,j) = 1.0\nend do\nend do\nend\n";
        let p = parse(src);
        let r = run(&p, &MachineConfig::challenge_8()).unwrap();
        let outer: Vec<_> = r.loops.values().collect();
        let total_parallel: u64 = outer.iter().map(|s| s.parallel_invocations).sum();
        // outer once; inner 40 invocations all serial
        assert_eq!(total_parallel, 1, "{:?}", r.loops);
    }

    #[test]
    fn validation_passes_for_correct_privatization() {
        let src = "program t\nreal a(100), b(100)\ndo k = 1, 100\n  b(k) = k * 1.0\nend do\n!$polaris doall private(T)\ndo i = 1, 100\n  t = b(i) * 2.0\n  a(i) = t + 1.0\nend do\nprint *, a(7)\nend\n";
        let p = parse(src);
        run_validated(&p, &MachineConfig::challenge_8()).unwrap();
    }

    #[test]
    fn validation_catches_bogus_parallel_annotation() {
        // A(i) = A(i-1) + 1 marked parallel: reverse-order execution
        // produces different values.
        let src = "program t\nreal a(101)\na(1) = 1.0\n!$polaris doall\ndo i = 2, 101\n  a(i) = a(i-1) + 1.0\nend do\nprint *, a(101)\nend\n";
        let p = parse(src);
        let err = run_validated(&p, &MachineConfig::challenge_8()).unwrap_err();
        assert!(matches!(err, MachineError::ValidationMismatch(_)), "{err}");
    }

    #[test]
    fn validation_catches_missing_privatization() {
        // T is carried shared state but marked parallel without PRIVATE.
        let src = "program t\nreal a(100), b(100)\n!$polaris doall\ndo i = 1, 100\n  t = b(i)\n  a(i) = t\nend do\nprint *, a(3)\nend\n";
        let p = parse(src);
        // in reverse order T still gets the right value per iteration —
        // this one is actually correct even unprivatized... make T truly
        // cross-iteration: read T before writing it.
        let src2 = "program t\nreal a(100), b(100)\ndo k = 1, 100\n  b(k) = k * 1.0\nend do\nt = 0.0\n!$polaris doall\ndo i = 1, 100\n  a(i) = t\n  t = b(i)\nend do\nprint *, a(3)\nend\n";
        let p2 = parse(src2);
        let _ = p;
        let err = run_validated(&p2, &MachineConfig::challenge_8()).unwrap_err();
        assert!(matches!(err, MachineError::ValidationMismatch(_)));
    }

    #[test]
    fn validation_reduction_semantics() {
        let src = "program t\nreal b(1000)\ndo k = 1, 1000\n  b(k) = k * 0.5\nend do\ns = 100.0\n!$polaris doall reduction(+:S)\ndo i = 1, 1000\n  s = s + b(i)\nend do\nprint *, s\nend\n";
        let p = parse(src);
        let (seq, adv) = run_validated(&p, &MachineConfig::challenge_8()).unwrap();
        assert_eq!(seq.output.len(), 1);
        assert_eq!(adv.output.len(), 1);
    }

    #[test]
    fn validation_max_reduction() {
        let src = "program t\nreal b(500)\ndo k = 1, 500\n  b(k) = mod(k * 37, 101) * 1.0\nend do\nt = -1.0\n!$polaris doall reduction(MAX:T)\ndo i = 1, 500\n  t = max(t, b(i))\nend do\nprint *, t\nend\n";
        let p = parse(src);
        run_validated(&p, &MachineConfig::challenge_8()).unwrap();
    }

    #[test]
    fn validation_lastprivate() {
        let src = "program t\nreal a(50), b(50)\ndo k = 1, 50\n  b(k) = k * 1.0\nend do\n!$polaris doall private(T) lastprivate(T)\ndo i = 1, 50\n  t = b(i)\n  a(i) = t\nend do\nprint *, t\nend\n";
        let p = parse(src);
        let (seq, _) = run_validated(&p, &MachineConfig::challenge_8()).unwrap();
        assert!(seq.output[0].contains("5.000000E1"), "{:?}", seq.output);
    }

    #[test]
    fn speculative_success_and_failure_costs() {
        // parallel access pattern (permutation via coprime stride)
        let ok = "program t\nreal a(128)\ninteger key(128)\ndo k = 1, 128\n  key(k) = mod(k * 77, 128) + 1\nend do\n!$polaris doall speculative(A)\ndo i = 1, 128\n  a(key(i)) = i * 1.0\nend do\nprint *, a(1)\nend\n";
        let p = parse(ok);
        let r = run(&p, &MachineConfig::challenge_8()).unwrap();
        let spec_loop = r.loops.values().find(|s| s.spec_success > 0);
        assert!(spec_loop.is_some(), "{:?}", r.loops);

        // colliding pattern: speculation fails, loop charged sequential+test
        let bad = "program t\nreal a(128)\ninteger key(128)\ndo k = 1, 128\n  key(k) = mod(k, 7) + 1\nend do\n!$polaris doall speculative(A)\ndo i = 1, 128\n  a(key(i)) = a(key(i)) + 1.0\nend do\nprint *, a(1)\nend\n";
        let p2 = parse(bad);
        let r2 = run(&p2, &MachineConfig::challenge_8()).unwrap();
        assert!(r2.loops.values().any(|s| s.spec_fail > 0), "{:?}", r2.loops);
        // failed speculation must cost more than plain serial execution
        let serial = run_serial(&p2).unwrap();
        assert!(r2.cycles > serial.cycles);
        // but values are still correct
        assert_eq!(r2.output, serial.output);
    }

    #[test]
    fn dynamic_scheduling_balances_triangular_loops() {
        // triangular work: static blocks are imbalanced, dynamic wins
        let src = "program t\nreal a(400,400)\n!$polaris doall private(J)\ndo i = 1, 400\n  do j = 1, i\n    a(j, i) = 1.0\n  end do\nend do\nend\n";
        let p = parse(src);
        let static_r = run(&p, &MachineConfig::challenge_8()).unwrap();
        let mut cfg = MachineConfig::challenge_8();
        cfg.schedule = Schedule::Dynamic { chunk: 4 };
        let dyn_r = run(&p, &cfg).unwrap();
        assert!(
            dyn_r.cycles < static_r.cycles,
            "dynamic {} should beat static {}",
            dyn_r.cycles,
            static_r.cycles
        );
    }

    #[test]
    fn codegen_model_changes_cost_only() {
        let src = "program t\nreal a(5000)\ndo i = 1, 5000\n  a(i) = i * 3.0\nend do\nprint *, a(17)\nend\n";
        let p = parse(src);
        let plain = run_serial(&p).unwrap();
        let cfg = MachineConfig::serial().with_codegen(crate::cost::CodegenModel::aggressive());
        let agg = run(&p, &cfg).unwrap();
        assert_eq!(plain.output, agg.output);
        assert!(agg.cycles < plain.cycles, "straight-line bonus expected");
        // conditional body: penalty
        let src2 = "program t\nreal a(5000)\ndo i = 1, 5000\n  if (mod(i, 2) == 0) then\n    a(i) = 1.0\n  else\n    a(i) = 2.0\n  end if\nend do\nprint *, a(17)\nend\n";
        let p2 = parse(src2);
        let plain2 = run_serial(&p2).unwrap();
        let agg2 = run(&p2, &cfg).unwrap();
        assert!(agg2.cycles > plain2.cycles, "conditional penalty expected");
    }

    #[test]
    fn out_of_bounds_is_caught() {
        let p = parse("program t\nreal a(10)\nk = 11\na(k) = 1.0\nend\n");
        assert!(matches!(run_serial(&p), Err(MachineError::OutOfBounds { .. })));
    }

    #[test]
    fn integer_semantics() {
        let p = parse(
            "program t\ni = 7\nj = 2\nprint *, i/j, mod(i,j), i**3, (-2)**3\nend\n",
        );
        let r = run_serial(&p).unwrap();
        assert_eq!(r.output[0], "3 1 343 -8");
    }
}

//! Real-thread execution backend for `PARALLEL DO` loops.
//!
//! The simulated machine (`exec::run_parallel`) charges iterations to
//! per-processor cycle buckets but executes them sequentially. This
//! module is the other half of the story: loops the pipeline *proved*
//! parallel are lowered to chunked iteration-space work lists and
//! executed by a persistent pool of OS threads, the way the paper's SGI
//! backend consumed Polaris directives.
//!
//! Correctness contract — results must be **deterministic and identical
//! to serial execution** even though execution order is not:
//!
//! * Every worker starts from a copy-on-write snapshot of the shared
//!   state (scalars are copied; arrays share storage via `Arc` until
//!   first write). Privatized variables are thereby trivially private.
//! * Reductions are accumulated **per chunk** (the target is reset to
//!   the identity at chunk start and the partial captured at chunk end)
//!   and merged on the main thread in chunk-index order by a fixed-shape
//!   binary tree ([`tree_merge_r`]), so the floating-point association
//!   is a function of the chunk plan alone — not of thread timing. The
//!   same program at the same thread count always produces bit-identical
//!   results; *across* thread counts, sums may differ from serial by
//!   reassociation roundoff (see the tolerance notes in the tests).
//! * Shared arrays are committed by diffing each worker's copy against
//!   the pre-fork snapshot (bit-level comparison, so `-0.0` vs `0.0` and
//!   NaN payloads are preserved) and applying only written elements, in
//!   worker order. A correctly-parallelized loop writes disjoint
//!   elements, so the order cannot matter; if a miscompile makes writes
//!   collide, the equivalence tests catch the divergence.
//! * Worker output (PRINT) and copy-out scalars are committed in chunk
//!   order; errors are reported for the smallest failing iteration
//!   index, matching what sequential execution would hit first.
//! * Loops whose body contains `STOP` fall back to exact serial
//!   execution (a mid-loop STOP must suppress later iterations), and
//!   speculative loops stay on the simulated LRPD path.
//!
//! Simulated cycle accounting is maintained alongside real execution
//! (per-chunk cycle deltas are assigned to buckets exactly like the
//! simulator's `proc_of`), so `--diag`-style speedup *models* remain
//! comparable between `ExecMode::Simulated` and `ExecMode::Threaded`.

use crate::cost::Schedule;
use crate::error::MachineError;
use crate::exec::{red_apply_i, red_apply_r, red_identity_i, red_identity_r, Flow, Interp};
use crate::lower::{RLoop, RRef, RStmt};
use crate::value::{ArrData, ArrObj, Scalar};
use crate::{ExecMode, MachineConfig};
use polaris_ir::expr::RedOp;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

// ---- the persistent worker pool --------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of OS threads fed from one shared job queue. It is
/// created lazily on the first threaded loop of a run and lives for the
/// whole run, so per-loop fork cost is a channel send, not a spawn.
pub struct ThreadPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    pub fn new(threads: usize) -> ThreadPool {
        let (tx, rx) = mpsc::channel::<Job>();
        ThreadPool::start(threads, tx, Arc::new(Mutex::new(rx)))
    }

    /// A pool whose queue lock is already poisoned when the workers first
    /// touch it — the state a panic-while-holding-the-lock leaves behind.
    /// Test hook for the poisoned-lock recovery path in the worker loop.
    #[doc(hidden)]
    pub fn new_with_poisoned_queue_lock(threads: usize) -> ThreadPool {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let poisoner = Arc::clone(&rx);
        let t = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("injected: poison the pool queue lock");
        });
        assert!(t.join().is_err(), "poisoning thread must have panicked");
        ThreadPool::start(threads, tx, rx)
    }

    fn start(threads: usize, tx: mpsc::Sender<Job>, rx: Arc<Mutex<mpsc::Receiver<Job>>>) -> ThreadPool {
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("polaris-worker-{i}"))
                    .spawn(move || loop {
                        // A panic while the lock is held (a job that
                        // unwinds between recv and release, or a poison
                        // injected by a test) poisons the mutex for every
                        // worker. The receiver itself is still intact —
                        // poisoning only records that *some* thread
                        // panicked — so recover the guard instead of
                        // dying, or the pool silently shrinks one worker
                        // per poison until submits hang forever.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(poisoned) => poisoned.into_inner().recv(),
                        };
                        match job {
                            Ok(job) => {
                                // A panicking job must not take the pool
                                // down: swallow it here; the main thread
                                // notices the missing result.
                                let _ = catch_unwind(AssertUnwindSafe(job));
                            }
                            Err(_) => return, // pool dropped
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { tx: Some(tx), workers }
    }

    pub fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("pool is live")
            .send(job)
            .expect("worker threads alive");
    }

    pub fn threads(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // disconnect: workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// ---- chunk plans ------------------------------------------------------

/// How the iteration space `0..trip` is cut into chunks. Chunk `k`
/// covers `bounds(k)`; the mapping is a pure function of `(trip,
/// schedule, procs)` so every run — and the simulator's `proc_of` —
/// agrees on it.
#[derive(Debug, Clone, Copy)]
enum ChunkPlan {
    /// One contiguous block per worker (chunk k belongs to worker k).
    Block { trip: usize, procs: usize },
    /// Fixed-size chunks claimed dynamically (self-scheduling).
    SelfSched { trip: usize, chunk: usize },
    /// Fixed-size chunks claimed through the work-stealing queue
    /// ([`crate::stealing::StealQueue`]). Chunk *bounds* are identical
    /// to `SelfSched` — only the chunk → worker assignment differs — so
    /// the merge (keyed by chunk index) is oblivious to who stole what.
    Stolen { trip: usize, chunk: usize },
}

impl ChunkPlan {
    fn new(trip: usize, procs: usize, schedule: Schedule) -> ChunkPlan {
        match schedule {
            Schedule::Static => ChunkPlan::Block { trip, procs },
            Schedule::Dynamic { chunk } => ChunkPlan::SelfSched { trip, chunk: chunk.max(1) },
            Schedule::Stealing { chunk } => ChunkPlan::Stolen { trip, chunk: chunk.max(1) },
        }
    }

    fn n_chunks(&self) -> usize {
        match *self {
            ChunkPlan::Block { procs, .. } => procs,
            ChunkPlan::SelfSched { trip, chunk } | ChunkPlan::Stolen { trip, chunk } => {
                trip.div_ceil(chunk)
            }
        }
    }

    fn bounds(&self, k: usize) -> (usize, usize) {
        match *self {
            ChunkPlan::Block { trip, procs } => {
                let per = trip.div_ceil(procs).max(1);
                ((k * per).min(trip), ((k + 1) * per).min(trip))
            }
            ChunkPlan::SelfSched { trip, chunk } | ChunkPlan::Stolen { trip, chunk } => {
                ((k * chunk).min(trip), ((k + 1) * chunk).min(trip))
            }
        }
    }

    /// Index of the chunk containing the final iteration (`trip-1`).
    fn last_chunk(&self) -> usize {
        match *self {
            ChunkPlan::Block { trip, procs } => {
                let per = trip.div_ceil(procs).max(1);
                ((trip.saturating_sub(1)) / per).min(procs - 1)
            }
            ChunkPlan::SelfSched { trip, chunk } | ChunkPlan::Stolen { trip, chunk } => {
                trip.saturating_sub(1) / chunk
            }
        }
    }

    /// Simulated processor bucket a chunk's cycles are charged to —
    /// kept identical to `exec::Interp::proc_of`'s iteration mapping.
    fn bucket_of(&self, k: usize) -> usize {
        match *self {
            ChunkPlan::Block { procs, .. } => k.min(procs - 1),
            // caller takes `% procs`
            ChunkPlan::SelfSched { .. } | ChunkPlan::Stolen { .. } => k,
        }
    }
}

// ---- shared loop cache ------------------------------------------------

/// A loop body made shareable across threads, cached per label so the
/// clone happens once per program run, not once per invocation.
#[derive(Clone)]
pub struct SharedLoop {
    pub l: Arc<RLoop>,
    /// Body contains STOP somewhere: fall back to serial execution.
    pub has_stop: bool,
}

fn body_has_stop(stmts: &[RStmt]) -> bool {
    stmts.iter().any(|s| match s {
        RStmt::Stop => true,
        RStmt::Do(l) => body_has_stop(&l.body),
        RStmt::If(arms, e) => arms.iter().any(|(_, b)| body_has_stop(b)) || body_has_stop(e),
        _ => false,
    })
}

// ---- worker-side results ---------------------------------------------

/// A reduction partial accumulated over one chunk.
#[derive(Debug, Clone)]
enum RedPartial {
    R(f64),
    I(i64),
    ArrR(Vec<f64>),
    ArrI(Vec<i64>),
    /// Logical target: reductions do not apply, nothing to merge.
    None,
}

#[derive(Debug, Clone)]
struct ChunkOut {
    k: usize,
    cycles: u64,
    output: Vec<String>,
    /// One partial per `l.par.reductions` entry, in order.
    partials: Vec<RedPartial>,
    /// Copy-out scalar values captured after the final iteration
    /// (only set on the chunk containing it).
    copy_out: Option<Vec<(usize, Scalar)>>,
}

struct WorkerOut {
    wid: usize,
    arrays: Vec<ArrObj>,
    loops: Vec<Option<(String, crate::exec::LoopExecStats)>>,
    chunks: Vec<ChunkOut>,
    /// First failing iteration index and its error, if any.
    err: Option<(usize, MachineError)>,
}

/// Everything a worker needs, owned, so the job closure is `'static`.
struct WorkerTask {
    wid: usize,
    l: Arc<RLoop>,
    iters: Arc<Vec<i64>>,
    plan: ChunkPlan,
    queue: Arc<AtomicUsize>,
    /// Work-stealing chunk queue (`ChunkPlan::Stolen` only).
    steal: Option<Arc<crate::stealing::StealQueue>>,
    cfg: MachineConfig,
    scalars: Vec<Scalar>,
    arrays: Vec<ArrObj>,
    shared_steps: Option<Arc<AtomicU64>>,
    /// Bytecode of the running unit + this loop's body block, when the
    /// VM engine drives execution (`None` pair = tree-walk).
    bc: Option<Arc<crate::bytecode::BcUnit>>,
    body: Option<u32>,
}

fn worker_run(task: WorkerTask) -> WorkerOut {
    let WorkerTask {
        wid,
        l,
        iters,
        plan,
        queue,
        steal,
        cfg,
        scalars,
        arrays,
        shared_steps,
        bc,
        body,
    } = task;
    let mut it = Interp::for_worker(&cfg, scalars, arrays, shared_steps);
    it.bc = bc;
    let bc_arc = it.bc.clone();
    let mut chunks: Vec<ChunkOut> = Vec::new();
    let mut err: Option<(usize, MachineError)> = None;
    let n_chunks = plan.n_chunks();
    let last_chunk = plan.last_chunk();
    let mut block_done = false;
    loop {
        let k = match plan {
            // Block: worker k owns exactly chunk k.
            ChunkPlan::Block { .. } => {
                if block_done {
                    break;
                }
                block_done = true;
                wid
            }
            // Self-scheduling: claim the next chunk index.
            ChunkPlan::SelfSched { .. } => queue.fetch_add(1, Ordering::Relaxed),
            // Work stealing: own deque first, then steal from victims.
            ChunkPlan::Stolen { .. } => {
                match steal.as_ref().expect("stolen plan without queue").next(wid) {
                    Some(k) => k,
                    None => break,
                }
            }
        };
        if k >= n_chunks {
            break;
        }
        let (start, end) = plan.bounds(k);
        if start >= end {
            continue;
        }
        let c0 = it.cycles;
        let out0 = it.output.len();
        for red in &l.par.reductions {
            reset_to_identity(&mut it, red.op, red.target);
        }
        let mut chunk_err: Option<(usize, MachineError)> = None;
        for idx in start..end {
            match it.run_one_iteration(&l, iters[idx], body, bc_arc.as_deref()) {
                Ok(Flow::Normal) => {}
                // STOP bodies never reach the threaded path (serial
                // fallback), but surface it as an error defensively
                // rather than silently dropping iterations.
                Ok(Flow::Stop) => {
                    chunk_err = Some((idx, MachineError::Stopped));
                    break;
                }
                Err(e) => {
                    chunk_err = Some((idx, e));
                    break;
                }
            }
        }
        let partials = l
            .par
            .reductions
            .iter()
            .map(|red| capture_partial(&it, red.target))
            .collect();
        let copy_out = if k == last_chunk && chunk_err.is_none() {
            Some(l.par.copy_out_scalars.iter().map(|&s| (s, it.scalars[s])).collect())
        } else {
            None
        };
        chunks.push(ChunkOut {
            k,
            cycles: it.cycles - c0,
            output: it.output.split_off(out0),
            partials,
            copy_out,
        });
        if let Some((idx, e)) = chunk_err {
            err = Some((idx, e));
            break;
        }
    }
    WorkerOut { wid, arrays: it.arrays, loops: it.loop_stats, chunks, err }
}

fn reset_to_identity(it: &mut Interp<'_>, op: RedOp, target: RRef) {
    match target {
        RRef::Scalar(s) => {
            it.scalars[s] = match it.scalars[s] {
                Scalar::R(_) => Scalar::R(red_identity_r(op)),
                Scalar::I(_) => Scalar::I(red_identity_i(op)),
                b => b,
            };
        }
        RRef::Array(a) => match Arc::make_mut(&mut it.arrays[a].data) {
            ArrData::R(v) => v.fill(red_identity_r(op)),
            ArrData::I(v) => v.fill(red_identity_i(op)),
            ArrData::B(_) => {}
        },
    }
}

fn capture_partial(it: &Interp<'_>, target: RRef) -> RedPartial {
    match target {
        RRef::Scalar(s) => match it.scalars[s] {
            Scalar::R(v) => RedPartial::R(v),
            Scalar::I(v) => RedPartial::I(v),
            Scalar::B(_) => RedPartial::None,
        },
        RRef::Array(a) => match it.arrays[a].data.as_ref() {
            ArrData::R(v) => RedPartial::ArrR(v.clone()),
            ArrData::I(v) => RedPartial::ArrI(v.clone()),
            ArrData::B(_) => RedPartial::None,
        },
    }
}

// ---- deterministic tree merge ----------------------------------------

/// Merge partials pairwise in a fixed-shape binary tree:
/// `[a,b,c,d,e]` → `[(a∘b),(c∘d),e]` → `[((a∘b)∘(c∘d)),e]` → result.
/// The association depends only on the *number and order* of partials
/// (chunk-index order), never on thread completion order.
pub fn tree_merge_r(mut vals: Vec<f64>, op: RedOp) -> Option<f64> {
    while vals.len() > 1 {
        vals = vals
            .chunks(2)
            .map(|p| if p.len() == 2 { red_apply_r(op, p[0], p[1]) } else { p[0] })
            .collect();
    }
    vals.pop()
}

/// Integer variant of [`tree_merge_r`]. Sum/product use wrapping
/// arithmetic, which is fully associative, so any tree shape gives the
/// exact serial answer; min/max are associative outright.
pub fn tree_merge_i(mut vals: Vec<i64>, op: RedOp) -> Option<i64> {
    while vals.len() > 1 {
        vals = vals
            .chunks(2)
            .map(|p| if p.len() == 2 { red_apply_i(op, p[0], p[1]) } else { p[0] })
            .collect();
    }
    vals.pop()
}

// ---- array diff-merge -------------------------------------------------

/// Apply to `dst` every element where `theirs` differs from `base`, and
/// return the number of bytes written (the `exec.threaded.merge_bytes`
/// contribution). Bit-level comparison for reals so `-0.0` vs `0.0`
/// writes and NaN payloads survive the round trip.
fn merge_diff(dst: &mut ArrData, theirs: &ArrData, base: &ArrData) -> u64 {
    let mut changed = 0u64;
    match (dst, theirs, base) {
        (ArrData::R(d), ArrData::R(t), ArrData::R(b)) => {
            for i in 0..d.len() {
                if t[i].to_bits() != b[i].to_bits() {
                    d[i] = t[i];
                    changed += 8;
                }
            }
        }
        (ArrData::I(d), ArrData::I(t), ArrData::I(b)) => {
            for i in 0..d.len() {
                if t[i] != b[i] {
                    d[i] = t[i];
                    changed += 8;
                }
            }
        }
        (ArrData::B(d), ArrData::B(t), ArrData::B(b)) => {
            for i in 0..d.len() {
                if t[i] != b[i] {
                    d[i] = t[i];
                    changed += 1;
                }
            }
        }
        _ => unreachable!("array type changed during execution"),
    }
    changed
}

/// Bytes a wholesale-adopted worker copy changed relative to the
/// snapshot — the observability-only twin of [`merge_diff`] (no write).
fn diff_bytes(theirs: &ArrData, base: &ArrData) -> u64 {
    match (theirs, base) {
        (ArrData::R(t), ArrData::R(b)) => {
            8 * t.iter().zip(b).filter(|(x, y)| x.to_bits() != y.to_bits()).count() as u64
        }
        (ArrData::I(t), ArrData::I(b)) => 8 * t.iter().zip(b).filter(|(x, y)| x != y).count() as u64,
        (ArrData::B(t), ArrData::B(b)) => t.iter().zip(b).filter(|(x, y)| x != y).count() as u64,
        _ => 0,
    }
}

// ---- the main-thread driver ------------------------------------------

/// Execute one `PARALLEL DO` on the worker pool. Called from
/// `Interp::run_loop` when `cfg.exec_mode` is `Threaded`.
pub(crate) fn run_threaded_loop(
    interp: &mut Interp<'_>,
    l: &RLoop,
    iters: &[i64],
    body: Option<u32>,
) -> Result<Flow, MachineError> {
    let trip = iters.len();
    if trip == 0 {
        return Ok(Flow::Normal);
    }
    let (procs, schedule) = match interp.sched_override {
        // Adaptive dispatch installs a per-invocation override; worker
        // count may be lower than the pool size (idle lanes are fine).
        Some((p, s)) => (p.max(1), s),
        None => match interp.cfg.exec_mode {
            ExecMode::Threaded { procs, schedule } => (procs.max(1), schedule),
            ExecMode::Simulated => unreachable!("threaded driver in simulated mode"),
        },
    };

    // STOP in the body means later iterations must not run at all:
    // only exact serial execution preserves that.
    let shared = cached_loop(interp, l);
    if shared.has_stop {
        return interp.run_serial_loop(l, iters, body);
    }

    let pool_procs = interp.cfg.exec_procs();
    let pool_threads = interp.pool.as_ref().map(|p| p.threads());
    debug_assert!(pool_threads.is_none() || pool_threads == Some(pool_procs));
    let plan = ChunkPlan::new(trip, procs, schedule);
    let iters_arc = Arc::new(iters.to_vec());
    let queue = Arc::new(AtomicUsize::new(0));
    let steal = match plan {
        ChunkPlan::Stolen { .. } => Some(Arc::new(
            crate::stealing::StealQueue::block_distributed(plan.n_chunks(), procs),
        )),
        _ => None,
    };
    let snapshot: Vec<Arc<ArrData>> = interp.arrays.iter().map(|a| Arc::clone(&a.data)).collect();

    let (tx, rx) = mpsc::channel::<WorkerOut>();
    {
        let pool = interp
            .pool
            .get_or_insert_with(|| ThreadPool::new(pool_procs));
        for wid in 0..procs {
            let task = WorkerTask {
                wid,
                l: Arc::clone(&shared.l),
                iters: Arc::clone(&iters_arc),
                plan,
                queue: Arc::clone(&queue),
                steal: steal.clone(),
                cfg: interp.cfg.clone(),
                scalars: interp.scalars.clone(),
                arrays: interp.arrays.clone(),
                shared_steps: interp.shared_steps.clone(),
                bc: interp.bc.clone(),
                body,
            };
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                let out = worker_run(task);
                let _ = tx.send(out);
            }));
        }
    }
    drop(tx);
    let mut results: Vec<WorkerOut> = rx.iter().collect();
    if results.len() < procs {
        return Err(MachineError::WorkerPanicked { loop_label: l.label.clone() });
    }
    results.sort_by_key(|w| w.wid);

    // Deterministic error: the smallest failing iteration index is what
    // sequential execution would have hit first.
    if let Some((_, e)) = results
        .iter()
        .filter_map(|w| w.err.clone())
        .min_by_key(|(idx, _)| *idx)
    {
        return Err(e);
    }

    let mut chunks: Vec<ChunkOut> = results.iter().flat_map(|w| w.chunks.iter().cloned()).collect();
    chunks.sort_by_key(|c| c.k);
    let mut merge_bytes = 0u64;

    // Observability: chunk spans are emitted here, post-join and sorted
    // by chunk index, *not* from the workers — the trace must not depend
    // on thread interleaving. The tid encodes the bucket (worker lane)
    // the plan assigned the chunk to.
    if interp.recorder.is_enabled() {
        interp.recorder.count(polaris_obs::Counter::ThreadedChunks, chunks.len() as u64);
        if let Some(q) = &steal {
            interp.recorder.count(polaris_obs::Counter::StealChunks, q.steals());
            interp.recorder.count(polaris_obs::Counter::StealAttempts, q.attempts());
        }
        for ch in &chunks {
            let tid = 1 + (plan.bucket_of(ch.k) % procs) as u32;
            interp
                .recorder
                .span_with("exec", format!("chunk:{}", ch.k), tid, Some(l.loop_id), None)
                .end();
        }
    }

    // -- simulated cycle accounting (mirrors exec::run_parallel) --------
    let c = &interp.cfg.cost;
    let total: u64 = chunks.iter().map(|ch| ch.cycles).sum();
    if total < 2 * c.fork_join {
        interp.cycles += total + c.branch;
    } else {
        let mut buckets = vec![0u64; procs];
        for ch in &chunks {
            buckets[plan.bucket_of(ch.k) % procs] += ch.cycles;
        }
        let mut charged = c.fork_join + buckets.iter().copied().max().unwrap_or(0);
        if let Schedule::Dynamic { .. } | Schedule::Stealing { .. } = schedule {
            charged += plan.n_chunks() as u64 * c.dispatch;
        }
        charged += interp.merge_costs(&l.par);
        interp.cycles += charged;
    }
    if interp.cfg.adaptive.is_some() {
        // Deterministic cost signal for the adaptive controller: chunk
        // cycle totals in chunk order (never wall time, never steal
        // interleaving).
        interp.last_chunk_cycles = chunks.iter().map(|ch| ch.cycles).collect();
    }

    // -- merge nested-loop stats ----------------------------------------
    for w in &results {
        for (i, slot) in w.loops.iter().enumerate() {
            let Some((label, st)) = slot else { continue };
            if i >= interp.loop_stats.len() {
                interp.loop_stats.resize_with(i + 1, || None);
            }
            let e = &mut interp.loop_stats[i]
                .get_or_insert_with(|| (label.clone(), Default::default()))
                .1;
            e.invocations += st.invocations;
            e.parallel_invocations += st.parallel_invocations;
            e.spec_success += st.spec_success;
            e.spec_fail += st.spec_fail;
            e.cycles += st.cycles;
        }
    }

    // -- commit shared arrays (diff vs snapshot, worker order) ----------
    let mut skip = vec![false; interp.arrays.len()];
    for &a in &l.par.private_arrays {
        skip[a] = true;
    }
    for red in &l.par.reductions {
        if let RRef::Array(a) = red.target {
            skip[a] = true;
        }
    }
    for w in &results {
        for (i, wa) in w.arrays.iter().enumerate() {
            if skip[i] || Arc::ptr_eq(&wa.data, &snapshot[i]) {
                continue;
            }
            if Arc::ptr_eq(&interp.arrays[i].data, &snapshot[i]) {
                // First writer: its copy differs from the snapshot only
                // where it wrote, so adopt it wholesale.
                if interp.recorder.is_enabled() {
                    merge_bytes += diff_bytes(&wa.data, &snapshot[i]);
                }
                interp.arrays[i].data = Arc::clone(&wa.data);
            } else {
                merge_bytes +=
                    merge_diff(Arc::make_mut(&mut interp.arrays[i].data), &wa.data, &snapshot[i]);
            }
        }
    }

    // -- reductions: chunk-ordered tree merge ---------------------------
    for (r, red) in l.par.reductions.iter().enumerate() {
        match red.target {
            RRef::Scalar(s) => {
                let rs: Vec<f64> = chunks
                    .iter()
                    .filter_map(|ch| match ch.partials[r] {
                        RedPartial::R(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                let is: Vec<i64> = chunks
                    .iter()
                    .filter_map(|ch| match ch.partials[r] {
                        RedPartial::I(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                if let Some(total) = tree_merge_r(rs, red.op) {
                    if let Scalar::R(v) = interp.scalars[s] {
                        interp.scalars[s] = Scalar::R(red_apply_r(red.op, v, total));
                        merge_bytes += 8;
                    }
                }
                if let Some(total) = tree_merge_i(is, red.op) {
                    if let Scalar::I(v) = interp.scalars[s] {
                        interp.scalars[s] = Scalar::I(red_apply_i(red.op, v, total));
                        merge_bytes += 8;
                    }
                }
            }
            RRef::Array(a) => {
                let parts_r: Vec<&Vec<f64>> = chunks
                    .iter()
                    .filter_map(|ch| match &ch.partials[r] {
                        RedPartial::ArrR(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                let parts_i: Vec<&Vec<i64>> = chunks
                    .iter()
                    .filter_map(|ch| match &ch.partials[r] {
                        RedPartial::ArrI(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                match Arc::make_mut(&mut interp.arrays[a].data) {
                    ArrData::R(base) => {
                        for (j, slot) in base.iter_mut().enumerate() {
                            let col: Vec<f64> = parts_r.iter().map(|p| p[j]).collect();
                            if let Some(total) = tree_merge_r(col, red.op) {
                                *slot = red_apply_r(red.op, *slot, total);
                                merge_bytes += 8;
                            }
                        }
                    }
                    ArrData::I(base) => {
                        for (j, slot) in base.iter_mut().enumerate() {
                            let col: Vec<i64> = parts_i.iter().map(|p| p[j]).collect();
                            if let Some(total) = tree_merge_i(col, red.op) {
                                *slot = red_apply_i(red.op, *slot, total);
                                merge_bytes += 8;
                            }
                        }
                    }
                    ArrData::B(_) => {}
                }
            }
        }
    }

    // -- copy-out (lastprivate) and output, in chunk order --------------
    for ch in &chunks {
        if let Some(vals) = &ch.copy_out {
            for &(s, v) in vals {
                interp.scalars[s] = v;
                merge_bytes += 8;
            }
        }
    }
    for ch in &mut chunks {
        interp.output.append(&mut ch.output);
    }
    interp.recorder.count(polaris_obs::Counter::ThreadedMergeBytes, merge_bytes);

    interp.loop_entry(l).parallel_invocations += 1;
    Ok(Flow::Normal)
}

fn cached_loop(interp: &mut Interp<'_>, l: &RLoop) -> SharedLoop {
    interp
        .tcache
        .entry(l.label.clone())
        .or_insert_with(|| SharedLoop {
            l: Arc::new(l.clone()),
            has_stop: body_has_stop(&l.body),
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic PRNG (SplitMix64) for the adversarial-order
    /// tests; the machine crate deliberately has no dev-dependencies on
    /// the fuzz harness.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Documented tolerance for floating-point reduction reassociation:
    /// merging P partials in a different association than the serial
    /// left fold perturbs a sum of N well-scaled terms by at most a few
    /// ULPs per level, far below 1e-12 relative for the sizes tested.
    const FP_REL_TOL: f64 = 1e-12;

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn tree_merge_matches_serial_fold_within_tolerance() {
        let mut rng = Rng(42);
        for n in [1usize, 2, 3, 7, 8, 64, 1000] {
            let vals: Vec<f64> = (0..n).map(|_| rng.f64() * 100.0).collect();
            let serial: f64 = vals.iter().fold(0.0, |a, v| a + v);
            let tree = tree_merge_r(vals.clone(), RedOp::Sum).unwrap();
            assert!(
                rel_err(serial, tree) <= FP_REL_TOL,
                "n={n}: serial {serial} vs tree {tree}"
            );
            // max/min are exact under any association
            let serial_max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(tree_merge_r(vals.clone(), RedOp::Max).unwrap(), serial_max);
        }
    }

    #[test]
    fn integer_tree_merge_is_exact() {
        let mut rng = Rng(7);
        for n in [1usize, 5, 17, 256] {
            let vals: Vec<i64> = (0..n).map(|_| (rng.next() % 1000) as i64 - 500).collect();
            let serial: i64 = vals.iter().fold(0i64, |a, v| a.wrapping_add(*v));
            assert_eq!(tree_merge_i(vals.clone(), RedOp::Sum).unwrap(), serial);
            let serial_prod: i64 = vals.iter().fold(1i64, |a, v| a.wrapping_mul(*v));
            assert_eq!(tree_merge_i(vals.clone(), RedOp::Product).unwrap(), serial_prod);
            assert_eq!(tree_merge_i(vals.clone(), RedOp::Min).unwrap(), *vals.iter().min().unwrap());
        }
    }

    /// Chunks complete in adversarial (shuffled) order, but the merge
    /// consumes them by chunk index — the result must be bit-identical
    /// no matter the completion order.
    #[test]
    fn seeded_adversarial_completion_order_is_bit_stable() {
        let mut rng = Rng(0xDEAD_BEEF);
        let n = 37;
        let partials: Vec<(usize, f64)> =
            (0..n).map(|k| (k, rng.f64() * 10.0 - 5.0)).collect();
        let reference = tree_merge_r(partials.iter().map(|(_, v)| *v).collect(), RedOp::Sum).unwrap();
        for seed in 0..50u64 {
            let mut shuffled = partials.clone();
            let mut r = Rng(seed);
            // Fisher-Yates with the seeded generator
            for i in (1..shuffled.len()).rev() {
                let j = (r.next() % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            // what the driver does: sort by chunk index, then merge
            shuffled.sort_by_key(|(k, _)| *k);
            let merged =
                tree_merge_r(shuffled.iter().map(|(_, v)| *v).collect(), RedOp::Sum).unwrap();
            assert_eq!(merged.to_bits(), reference.to_bits(), "seed {seed}");
        }
    }

    #[test]
    fn tree_merge_empty_and_singleton() {
        assert_eq!(tree_merge_r(vec![], RedOp::Sum), None);
        assert_eq!(tree_merge_r(vec![3.5], RedOp::Sum), Some(3.5));
        assert_eq!(tree_merge_i(vec![], RedOp::Max), None);
        assert_eq!(tree_merge_i(vec![-9], RedOp::Max), Some(-9));
    }

    #[test]
    fn chunk_plans_cover_iteration_space_exactly_once() {
        for trip in [0usize, 1, 3, 7, 8, 9, 100] {
            for procs in [1usize, 2, 4, 8] {
                for plan in [
                    ChunkPlan::new(trip, procs, Schedule::Static),
                    ChunkPlan::new(trip, procs, Schedule::Dynamic { chunk: 3 }),
                ] {
                    let mut seen = vec![0u32; trip];
                    for k in 0..plan.n_chunks() {
                        let (s, e) = plan.bounds(k);
                        for slot in &mut seen[s..e] {
                            *slot += 1;
                        }
                    }
                    assert!(seen.iter().all(|&c| c == 1), "trip={trip} procs={procs} {plan:?}");
                    if trip > 0 {
                        let (s, e) = plan.bounds(plan.last_chunk());
                        assert!(s < trip && trip - 1 < e, "last_chunk misses final iter");
                    }
                }
            }
        }
    }

    #[test]
    fn merge_diff_is_bitwise() {
        let base = ArrData::R(vec![0.0, 1.0, f64::NAN, 2.0]);
        // worker wrote -0.0 over 0.0 (bitwise change, value-equal)
        let theirs = ArrData::R(vec![-0.0, 1.0, f64::NAN, 5.0]);
        let mut dst = base.clone();
        merge_diff(&mut dst, &theirs, &base);
        match dst {
            ArrData::R(v) => {
                assert!(v[0].to_bits() == (-0.0f64).to_bits());
                assert_eq!(v[1], 1.0);
                assert!(v[2].is_nan()); // untouched NaN stays
                assert_eq!(v[3], 5.0);
            }
            _ => unreachable!(),
        }
    }

    // ---- whole-program equivalence through the public entry points ----

    fn parse(src: &str) -> polaris_ir::Program {
        polaris_ir::parse(src).unwrap()
    }

    fn run_both(src: &str, procs: usize, schedule: Schedule) -> (Vec<String>, Vec<String>) {
        let p = parse(src);
        let serial = crate::exec::run_serial(&p).unwrap();
        let threaded = crate::exec::run(&p, &MachineConfig::threaded(procs, schedule)).unwrap();
        (serial.output, threaded.output)
    }

    #[test]
    fn threaded_doall_matches_serial() {
        let src = "program t\nreal a(10000)\n!$polaris doall\ndo i = 1, 10000\n  a(i) = i * 2.0 + 1.0\nend do\nprint *, a(1), a(5000), a(10000)\nend\n";
        for procs in [2, 4, 8] {
            let (s, t) = run_both(src, procs, Schedule::Static);
            assert_eq!(s, t, "procs={procs}");
        }
        let (s, t) = run_both(src, 8, Schedule::Dynamic { chunk: 16 });
        assert_eq!(s, t);
    }

    #[test]
    fn threaded_privatization_and_lastprivate() {
        let src = "program t\nreal a(500), b(500)\ndo k = 1, 500\n  b(k) = k * 1.0\nend do\n!$polaris doall private(T) lastprivate(T)\ndo i = 1, 500\n  t = b(i) * 2.0\n  a(i) = t + 1.0\nend do\nprint *, a(7), a(499), t\nend\n";
        let (s, t) = run_both(src, 8, Schedule::Static);
        assert_eq!(s, t);
        let (s, t) = run_both(src, 3, Schedule::Dynamic { chunk: 7 });
        assert_eq!(s, t);
    }

    #[test]
    fn threaded_scalar_reduction_within_tolerance() {
        // A positive, well-scaled sum: the chunked tree association may
        // differ from the serial left fold by reassociation roundoff
        // only, far below the 1e-6 printed precision (see FP_REL_TOL).
        let src = "program t\nreal b(2000)\ndo k = 1, 2000\n  b(k) = k * 0.25\nend do\ns = 100.0\n!$polaris doall reduction(+:S)\ndo i = 1, 2000\n  s = s + b(i)\nend do\nprint *, s\nend\n";
        let p = parse(src);
        let serial = crate::exec::run_serial(&p).unwrap();
        for procs in [2, 4, 8] {
            let t = crate::exec::run(&p, &MachineConfig::threaded(procs, Schedule::Static)).unwrap();
            assert!(
                crate::exec::outputs_match(&serial.output, &t.output, FP_REL_TOL),
                "procs={procs}: {:?} vs {:?}",
                serial.output,
                t.output
            );
        }
    }

    #[test]
    fn threaded_max_reduction_is_exact() {
        let src = "program t\nreal b(777)\ndo k = 1, 777\n  b(k) = mod(k * 37, 101) * 1.0\nend do\nt = -1.0\n!$polaris doall reduction(MAX:T)\ndo i = 1, 777\n  t = max(t, b(i))\nend do\nprint *, t\nend\n";
        for procs in [2, 8] {
            let (s, t) = run_both(src, procs, Schedule::Static);
            assert_eq!(s, t, "max reduction must be exact at {procs} procs");
        }
    }

    #[test]
    fn threaded_dynamic_schedule_is_run_to_run_deterministic() {
        // Self-scheduling assigns chunks to threads nondeterministically;
        // the committed results must still be bit-identical across runs.
        let src = "program t\nreal a(300,300)\ns = 0.0\n!$polaris doall private(J) reduction(+:S)\ndo i = 1, 300\n  do j = 1, i\n    a(j, i) = i * 1.0 + j\n    s = s + a(j, i)\n  end do\nend do\nprint *, s, a(1,1), a(150,300)\nend\n";
        let p = parse(src);
        let cfg = MachineConfig::threaded(8, Schedule::Dynamic { chunk: 4 });
        let first = crate::exec::run(&p, &cfg).unwrap();
        for _ in 0..5 {
            let again = crate::exec::run(&p, &cfg).unwrap();
            assert_eq!(first.output, again.output, "dynamic schedule leaked nondeterminism");
        }
    }

    #[test]
    fn threaded_stop_in_body_falls_back_to_serial() {
        let src = "program t\nreal a(100)\n!$polaris doall\ndo i = 1, 100\n  a(i) = i * 1.0\n  if (i == 13) then\n    stop\n  end if\nend do\nprint *, a(1)\nend\n";
        let p = parse(src);
        let serial = crate::exec::run_serial(&p).unwrap();
        let t = crate::exec::run(&p, &MachineConfig::threaded(8, Schedule::Static)).unwrap();
        // STOP at i=13 suppresses the PRINT in both modes
        assert_eq!(serial.output, t.output);
        assert!(t.output.is_empty());
    }

    #[test]
    fn threaded_print_inside_parallel_loop_keeps_iteration_order() {
        let src = "program t\n!$polaris doall\ndo i = 1, 64\n  print *, 'iter', i\nend do\nend\n";
        let (s, t) = run_both(src, 8, Schedule::Static);
        assert_eq!(s, t);
        let (s, t) = run_both(src, 4, Schedule::Dynamic { chunk: 3 });
        assert_eq!(s, t);
    }

    #[test]
    fn threaded_out_of_bounds_is_reported() {
        let src = "program t\nreal a(50)\ninteger key(100)\ndo k = 1, 100\n  key(k) = k\nend do\n!$polaris doall\ndo i = 1, 100\n  a(key(i)) = i * 1.0\nend do\nend\n";
        let p = parse(src);
        let serial_err = crate::exec::run_serial(&p).unwrap_err();
        let err = crate::exec::run(&p, &MachineConfig::threaded(4, Schedule::Static)).unwrap_err();
        // the smallest failing iteration (i=51) determines the error
        assert_eq!(serial_err, err);
    }

    #[test]
    fn threaded_fuel_budget_is_global() {
        let src = "program t\nreal a(100000)\n!$polaris doall\ndo i = 1, 100000\n  a(i) = i * 1.0\nend do\nend\n";
        let p = parse(src);
        let cfg = MachineConfig::threaded(4, Schedule::Static).with_fuel(500);
        let err = crate::exec::run(&p, &cfg).unwrap_err();
        assert!(matches!(err, MachineError::FuelExhausted { .. }), "{err}");
    }

    #[test]
    fn threaded_nested_parallel_runs_inner_serial() {
        let src = "program t\nreal a(40,40)\n!$polaris doall private(J)\ndo i = 1, 40\n!$polaris doall\ndo j = 1, 40\n  a(i,j) = i * 100.0 + j\nend do\nend do\nprint *, a(3,5), a(40,40)\nend\n";
        let (s, t) = run_both(src, 8, Schedule::Static);
        assert_eq!(s, t);
    }

    #[test]
    fn threaded_array_reduction_matches_serial() {
        // histogram-style array reduction
        let src = "program t\ninteger h(10)\ninteger key(1000)\ndo k = 1, 1000\n  key(k) = mod(k * 7, 10) + 1\nend do\n!$polaris doall reduction(+:H)\ndo i = 1, 1000\n  h(key(i)) = h(key(i)) + 1\nend do\nprint *, h(1), h(5), h(10)\nend\n";
        for procs in [2, 8] {
            let (s, t) = run_both(src, procs, Schedule::Static);
            assert_eq!(s, t, "integer array reduction must be exact");
        }
    }

    #[test]
    fn threaded_loop_var_has_final_value_after_loop() {
        let src = "program t\nreal a(100)\n!$polaris doall\ndo i = 1, 100\n  a(i) = 1.0\nend do\nprint *, i\nend\n";
        let (s, t) = run_both(src, 8, Schedule::Static);
        assert_eq!(s, t);
        assert_eq!(t, vec!["101".to_string()]);
    }

    #[test]
    fn pool_survives_panicking_job() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(|| panic!("boom")));
        let tx2 = tx.clone();
        pool.submit(Box::new(move || {
            tx2.send(41).unwrap();
        }));
        pool.submit(Box::new(move || {
            tx.send(1).unwrap();
        }));
        let sum: i32 = rx.iter().take(2).sum();
        assert_eq!(sum, 42);
    }

    /// Regression for the silent worker death: a panic while holding the
    /// queue lock poisons the mutex, and workers used to `return` on the
    /// poisoned `lock()`, permanently shrinking the pool (here: to zero,
    /// since every worker sees the poison on its first acquisition).
    /// Recovery means *both* workers of a 2-thread pool must still be
    /// alive — proven by a barrier job pair that only completes if two
    /// workers pick up jobs concurrently.
    #[test]
    fn pool_keeps_capacity_after_panic_while_holding_queue_lock() {
        use std::sync::Barrier;
        use std::time::Duration;

        let pool = ThreadPool::new_with_poisoned_queue_lock(2);

        let barrier = Arc::new(Barrier::new(2));
        let (tx, rx) = mpsc::channel();
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                // Blocks until the *other* worker arrives: a pool that
                // lost a worker to the poisoned lock deadlocks here and
                // the recv_timeout below catches it.
                barrier.wait();
                tx.send(21).unwrap();
            }));
        }
        let mut sum = 0;
        for _ in 0..2 {
            sum += rx
                .recv_timeout(Duration::from_secs(10))
                .expect("pool lost a worker after the poisoned lock");
        }
        assert_eq!(sum, 42);
        assert_eq!(pool.threads(), 2);
    }
}

//! The cycle cost model and scheduling policies.
//!
//! Costs are loosely calibrated to an early-90s RISC multiprocessor
//! (R4400-class): single-cycle ALU, multi-cycle multiply/divide, a
//! couple of cycles per memory reference, and a fork/join cost of a few
//! microseconds. Absolute values matter less than ratios — the paper's
//! Figure 7 is about *shape* (see DESIGN.md).

/// Per-operation cycle charges.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// add/sub/compare/logical.
    pub alu: u64,
    pub mul: u64,
    pub div: u64,
    /// `**` and transcendental intrinsics.
    pub intrinsic: u64,
    /// Array element load/store (cache-friendly average).
    pub memory: u64,
    /// Scalar load/store.
    pub scalar: u64,
    /// Branch (IF arm selection).
    pub branch: u64,
    /// Per-iteration loop bookkeeping.
    pub loop_iter: u64,
    /// DOALL fork + join (per parallel loop instance).
    pub fork_join: u64,
    /// Dynamic scheduling: per chunk dispatch.
    pub dispatch: u64,
    /// Reduction merge, per element per processor.
    pub reduction_merge: u64,
    /// Private-array setup, per element per loop instance.
    pub private_setup: u64,
    /// Shadow-array marking per tracked access (speculative loops).
    pub spec_mark: u64,
    /// PD-test analysis per tracked element (divided by processors).
    pub spec_analysis: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            alu: 1,
            mul: 4,
            div: 16,
            intrinsic: 40,
            memory: 3,
            scalar: 1,
            branch: 2,
            loop_iter: 2,
            fork_join: 2000,
            dispatch: 40,
            reduction_merge: 8,
            private_setup: 1,
            spec_mark: 4,
            spec_analysis: 3,
        }
    }
}

impl CostModel {
    /// Per-access locality penalty for a stride class under the
    /// machine's column-major layout, as a function of the first-dim
    /// coefficient of the innermost loop variable and whether outer
    /// dimensions vary with it. This is the table the compiler's nest
    /// interchange cost model (`polaris_core::nestdeps::stride_penalty`)
    /// mirrors; the nest-conformance tier cross-checks the two copies
    /// stay equal (core cannot depend on this crate — the dependency
    /// points the other way).
    pub fn stride_penalty(&self, first_dim_coeff: i64, varies_in_outer_dims: bool) -> u64 {
        if varies_in_outer_dims {
            8 * self.memory
        } else if first_dim_coeff == 0 {
            0
        } else if first_dim_coeff.abs() == 1 {
            1
        } else {
            8 * self.memory
        }
    }
}

/// DOALL iteration scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous blocks, one per processor (no dispatch overhead).
    Static,
    /// Self-scheduling with the given chunk size: better balance for
    /// triangular loops, `dispatch` cycles per chunk.
    Dynamic { chunk: usize },
    /// Work stealing with the given chunk size: chunks start
    /// block-distributed across per-worker deques and idle workers steal
    /// from the top of a victim's deque. Chunk *bounds* are identical to
    /// `Dynamic` (the chunk → iteration mapping is a pure function of
    /// the plan, never of who ran it), so results stay bit-identical to
    /// serial under any victim/steal interleaving; only the chunk →
    /// worker assignment is dynamic. The simulated cost model charges it
    /// like `Dynamic` (per-chunk `dispatch`).
    Stealing { chunk: usize },
}

/// The back-end aggressiveness model (the PFA story of §4.2).
///
/// When enabled, every *innermost* loop's body cycles are scaled:
/// straight-line bodies benefit from unrolling/fusion; bodies with
/// conditionals suffer (speculated work, broken software pipelines).
#[derive(Debug, Clone)]
pub struct CodegenModel {
    pub enabled: bool,
    /// Multiplier for straight-line innermost bodies (< 1 is a bonus).
    pub straightline_factor: f64,
    /// Multiplier for innermost bodies containing IFs (> 1 is a penalty).
    pub conditional_factor: f64,
}

impl CodegenModel {
    /// Polaris' vanilla back end: no scaling.
    pub fn none() -> CodegenModel {
        CodegenModel { enabled: false, straightline_factor: 1.0, conditional_factor: 1.0 }
    }

    /// The PFA-like aggressive back end.
    pub fn aggressive() -> CodegenModel {
        CodegenModel { enabled: true, straightline_factor: 0.88, conditional_factor: 1.45 }
    }

    /// Scale a cycle count for an innermost-loop body.
    pub fn scale(&self, cycles: u64, has_conditional: bool) -> u64 {
        if !self.enabled {
            return cycles;
        }
        let f = if has_conditional { self.conditional_factor } else { self.straightline_factor };
        (cycles as f64 * f).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let c = CostModel::default();
        assert!(c.alu < c.mul && c.mul < c.div && c.div < c.intrinsic);
        assert!(c.fork_join > 100);
    }

    #[test]
    fn codegen_scaling() {
        let none = CodegenModel::none();
        assert_eq!(none.scale(1000, true), 1000);
        let agg = CodegenModel::aggressive();
        assert!(agg.scale(1000, false) < 1000);
        assert!(agg.scale(1000, true) > 1000);
    }
}

//! A fixed-capacity Chase–Lev work-stealing deque for chunk indices,
//! and the per-worker queue harness the threaded backend drives it with.
//!
//! The threaded backend knows every chunk of a loop up front (the chunk
//! plan is a pure function of `(trip, schedule, procs)`), so the deque
//! never needs to grow: capacity is the chunk count, the owner pushes
//! its initial block before any worker starts, and from then on the
//! owner only `pop`s its own bottom while idle workers `steal` from the
//! top. This is the classic Chase–Lev algorithm restricted to the
//! no-growth case — `push` is still owner-only and supported (the unit
//! tests exercise interleaved push/pop), but the runtime itself only
//! pushes during setup.
//!
//! Determinism: the deque decides **who executes** a chunk, never
//! **what** the chunk is. Chunk bounds, reduction partial order, and
//! the merge order downstream are all keyed by the chunk index, so any
//! victim/steal interleaving yields bit-identical results (see
//! `threaded.rs`).

use std::sync::atomic::{fence, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Result of a steal attempt against a victim deque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The victim's deque was empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Stole the chunk index.
    Success(usize),
}

/// One worker's deque of chunk indices. The owner pushes and pops at the
/// bottom (LIFO); thieves steal from the top (FIFO) with a CAS.
///
/// Contract: `push` and `pop` may only be called by the owning worker
/// (they are not mutually atomic); `steal` may be called from any
/// thread. Total pushes over the deque's lifetime must not exceed the
/// construction capacity.
pub struct ChunkDeque {
    top: AtomicI64,
    bottom: AtomicI64,
    buf: Box<[AtomicUsize]>,
}

impl ChunkDeque {
    pub fn with_capacity(cap: usize) -> ChunkDeque {
        ChunkDeque {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            buf: (0..cap.max(1)).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Owner-only: append a chunk index at the bottom.
    pub fn push(&self, v: usize) {
        let b = self.bottom.load(Ordering::Relaxed);
        debug_assert!((b as usize) < self.buf.len(), "deque capacity exceeded");
        self.buf[b as usize].store(v, Ordering::Relaxed);
        // Release: the slot write must be visible before the new bottom.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: take the most recently pushed chunk, racing thieves
    /// for the last element.
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the bottom write against the top read:
        // either a concurrent thief sees the decremented bottom, or we
        // see its incremented top — never neither.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let item = self.buf[b as usize].load(Ordering::Relaxed);
            if t == b {
                // Single element left: win it with the same CAS thieves
                // use, or concede it to whoever did.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then_some(item);
            }
            Some(item)
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief-side: try to take the oldest chunk.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let item = self.buf[t as usize].load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        Steal::Success(item)
    }

    /// Racy size estimate (diagnostics only).
    pub fn len_hint(&self) -> usize {
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }
}

/// Per-worker deques pre-filled with a block distribution of the chunk
/// space, plus steal counters for the `exec.steal.*` observability
/// columns. Workers call [`StealQueue::next`] until it returns `None`.
pub struct StealQueue {
    deques: Vec<ChunkDeque>,
    steals: AtomicU64,
    attempts: AtomicU64,
}

impl StealQueue {
    /// Distribute chunks `0..n_chunks` across `workers` deques in the
    /// same contiguous-block shape as `ChunkPlan::Block`, pushed in
    /// reverse so each owner pops its own chunks in ascending order.
    pub fn block_distributed(n_chunks: usize, workers: usize) -> StealQueue {
        let workers = workers.max(1);
        let per = n_chunks.div_ceil(workers).max(1);
        let deques: Vec<ChunkDeque> = (0..workers)
            .map(|w| {
                let (start, end) = ((w * per).min(n_chunks), ((w + 1) * per).min(n_chunks));
                let d = ChunkDeque::with_capacity(end - start);
                for k in (start..end).rev() {
                    d.push(k);
                }
                d
            })
            .collect();
        StealQueue { deques, steals: AtomicU64::new(0), attempts: AtomicU64::new(0) }
    }

    /// Claim the next chunk for worker `wid`: its own deque first, then
    /// round-robin steal attempts starting at `wid + 1`. Returns `None`
    /// only once every deque is drained (a `Retry` race keeps spinning —
    /// the contended chunk is still unclaimed by anyone).
    pub fn next(&self, wid: usize) -> Option<usize> {
        if let Some(k) = self.deques[wid].pop() {
            return Some(k);
        }
        let n = self.deques.len();
        loop {
            let mut contended = false;
            for off in 1..n {
                let victim = (wid + off) % n;
                self.attempts.fetch_add(1, Ordering::Relaxed);
                match self.deques[victim].steal() {
                    Steal::Success(k) => {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(k);
                    }
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                return None;
            }
            std::hint::spin_loop();
        }
    }

    /// Chunks obtained by stealing (vs popped from the owner's deque).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Steal attempts, successful or not.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    #[test]
    fn single_owner_push_pop_is_lifo_and_exact() {
        let d = ChunkDeque::with_capacity(8);
        assert_eq!(d.pop(), None);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len_hint(), 3);
        assert_eq!(d.pop(), Some(3));
        d.push(4);
        assert_eq!(d.pop(), Some(4));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop(), None);
        assert_eq!(d.len_hint(), 0);
    }

    #[test]
    fn steal_takes_the_oldest_and_empty_is_reported() {
        let d = ChunkDeque::with_capacity(4);
        assert_eq!(d.steal(), Steal::Empty);
        d.push(10);
        d.push(11);
        d.push(12);
        assert_eq!(d.steal(), Steal::Success(10));
        assert_eq!(d.steal(), Steal::Success(11));
        // owner and thief split the rest
        assert_eq!(d.pop(), Some(12));
        assert_eq!(d.steal(), Steal::Empty);
        assert_eq!(d.pop(), None);
    }

    /// Seeded stress: an owner popping and several thieves stealing must
    /// partition the chunk set exactly — every chunk claimed once,
    /// nothing lost, nothing duplicated — under many interleavings.
    #[test]
    fn concurrent_steal_claims_every_chunk_exactly_once() {
        for (n_chunks, thieves) in [(1usize, 4usize), (2, 4), (64, 2), (257, 7), (1000, 3)] {
            let d = Arc::new(ChunkDeque::with_capacity(n_chunks));
            for k in 0..n_chunks {
                d.push(k);
            }
            let go = Arc::new(AtomicBool::new(false));
            let claimed = Arc::new(Mutex::new(Vec::<usize>::new()));
            let mut handles = Vec::new();
            for _ in 0..thieves {
                let d = Arc::clone(&d);
                let go = Arc::clone(&go);
                let claimed = Arc::clone(&claimed);
                handles.push(std::thread::spawn(move || {
                    while !go.load(Ordering::Relaxed) {
                        std::hint::spin_loop();
                    }
                    let mut mine = Vec::new();
                    loop {
                        match d.steal() {
                            Steal::Success(k) => mine.push(k),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => break,
                        }
                    }
                    claimed.lock().unwrap().extend(mine);
                }));
            }
            go.store(true, Ordering::Relaxed);
            // The owner pops concurrently, contending for the last chunk.
            let mut mine = Vec::new();
            while let Some(k) = d.pop() {
                mine.push(k);
            }
            for h in handles {
                h.join().unwrap();
            }
            let mut all = claimed.lock().unwrap().clone();
            all.extend(mine);
            all.sort_unstable();
            assert_eq!(
                all,
                (0..n_chunks).collect::<Vec<_>>(),
                "chunks lost or duplicated at n={n_chunks} thieves={thieves}"
            );
        }
    }

    /// The race-to-last-chunk edge: exactly one claimant wins when the
    /// owner's pop and a thief's steal collide on a single element.
    #[test]
    fn race_to_last_chunk_has_exactly_one_winner() {
        for round in 0..200 {
            let d = Arc::new(ChunkDeque::with_capacity(1));
            d.push(round);
            let thief = {
                let d = Arc::clone(&d);
                std::thread::spawn(move || loop {
                    match d.steal() {
                        Steal::Success(k) => return Some(k),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => return None,
                    }
                })
            };
            let owner_got = d.pop();
            let thief_got = thief.join().unwrap();
            match (owner_got, thief_got) {
                (Some(k), None) | (None, Some(k)) => assert_eq!(k, round),
                other => panic!("round {round}: both or neither claimed: {other:?}"),
            }
        }
    }

    /// The harness drains every chunk exactly once across workers and
    /// reports a plausible steal count.
    #[test]
    fn steal_queue_partitions_the_chunk_space() {
        for (n_chunks, workers) in [(1usize, 8usize), (7, 3), (100, 4), (64, 64)] {
            let q = Arc::new(StealQueue::block_distributed(n_chunks, workers));
            let mut handles = Vec::new();
            for wid in 0..workers {
                let q = Arc::clone(&q);
                handles.push(std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(k) = q.next(wid) {
                        mine.push(k);
                    }
                    mine
                }));
            }
            let all: BTreeSet<usize> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            assert_eq!(all.len(), n_chunks, "n={n_chunks} w={workers}");
            assert_eq!(all.iter().copied().max(), n_chunks.checked_sub(1));
            assert!(q.attempts() >= q.steals());
        }
    }

    /// A skewed distribution (all chunks on worker 0) forces the other
    /// workers to live entirely off steals.
    #[test]
    fn idle_workers_survive_on_steals_alone() {
        let n_chunks = 200;
        let q = Arc::new(StealQueue::block_distributed(n_chunks, 1));
        // One owner-shaped deque, but four claimants: 1..4 have no deque
        // of their own in this construction, so give them wid 0 too —
        // instead, exercise via a 4-worker queue where 3 deques are empty.
        drop(q);
        let q = Arc::new(StealQueue {
            deques: {
                let d = ChunkDeque::with_capacity(n_chunks);
                for k in (0..n_chunks).rev() {
                    d.push(k);
                }
                vec![
                    d,
                    ChunkDeque::with_capacity(1),
                    ChunkDeque::with_capacity(1),
                    ChunkDeque::with_capacity(1),
                ]
            },
            steals: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
        });
        let mut handles = Vec::new();
        for wid in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(k) = q.next(wid) {
                    mine.push(k);
                }
                mine
            }));
        }
        let all: BTreeSet<usize> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        assert_eq!(all.len(), n_chunks);
    }
}

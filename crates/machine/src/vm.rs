//! The register VM: flat dispatch over [`crate::bytecode`] blocks.
//!
//! This is the hot loop of [`crate::Engine::Vm`]. It executes one
//! [`BcBlock`] at a time against the interpreter's live state (scalars,
//! arrays, cycle/fuel counters, oracle and speculation hooks), using a
//! recycled raw `u64` register frame per block activation (`f64` values
//! are bit-cast, logicals are `0`/`1`). `CallLoop` re-enters the shared
//! loop orchestration in `exec::run_loop`, which calls back into
//! [`Interp::run_block`] for each iteration of a VM-engine loop.
//!
//! **Parity contract** (pinned by `tests/vm_equivalence.rs` and the
//! existing machine suite, which runs under the VM by default): for any
//! program, the VM and the tree-walker produce bit-identical output,
//! identical simulated cycles, identical fuel-step positions, and the
//! same error (variant *and* payload) at the same execution point. Every
//! charge and side-effect below is therefore ordered exactly as in
//! `exec::eval`/`exec::run_stmt`:
//!
//! * subscripts are evaluated and converted left-to-right, *then*
//!   bounds-checked dimension by dimension (`element_index` order);
//! * an assignment's rhs evaluates before its subscripts; a binop's lhs
//!   before its rhs; operator cycles are charged before the operation;
//! * the data-dependent charges survive typing: integer divide by a
//!   positive power of two costs `alu`, `x**k` costs `k` multiplies for
//!   small non-negative `k` — both checked on the run-time value;
//! * read path: memory charge → oracle `array_read` → speculation mark;
//!   write path: memory charge → speculation mark → oracle `array_write`
//!   → store;
//! * statements the type inference could not prove safe run through
//!   [`Instr::Exec`], i.e. the tree-walker itself.
//!
//! Typed opcodes read their operand types from compile-time inference,
//! which is sound because F-Mini storage never changes type at run time
//! (`Scalar::set`/`ArrData::set` write through the existing variant).
//!
//! Cycle charges accumulate in a dispatch-local counter and flush to
//! `Interp::cycles` only at *observation points* — `CallLoop` and `Exec`
//! (the callee reads the running total) and block exit (the codegen
//! model rescales the block's delta). Between observation points only
//! the sum matters, so the accumulation order is free; cycles are not
//! part of any error payload, so early `?` returns may drop an
//! unflushed remainder without breaking engine parity.

use crate::bytecode::{ArrMeta, BcBlock, BcUnit, Instr, PrintItem, SubSrc};
use crate::error::MachineError;
use crate::exec::{int_pow, Flow, Interp};
use crate::value::{ArrData, Scalar};
use polaris_ir::expr::BinOp;
use std::fmt::Write as _;
use std::sync::Arc;

/// Flatten converted subscripts against pre-resolved strides, with the
/// tree-walker's exact bounds-check order and error payload.
///
/// The returned offset is always in range for the array's backing
/// vector: each term contributes at most `(extent-1) * stride`, and the
/// strides were derived from the extents at compile time.
#[inline(always)]
fn flatten(bc: &BcUnit, meta: &ArrMeta, idxs: &[i64]) -> Result<usize, MachineError> {
    let mut off = 0i64;
    for (s, d) in idxs.iter().zip(meta.dims.iter()) {
        let z = s - d.low;
        if z < 0 || z >= d.extent {
            return Err(MachineError::OutOfBounds {
                array: bc.interner.resolve(meta.name).to_string(),
                index: *s,
                len: d.extent as usize,
            });
        }
        off += z * d.stride;
    }
    Ok(off as usize)
}

impl Interp<'_> {
    /// Evaluate one fused subscript to its integer value, charging what
    /// its tree-walk expansion charges (in the same order): a scalar
    /// read for `Slot`, a scalar read plus one `alu` add for `SlotOff`,
    /// nothing for a register or literal. Conversion follows `V::as_i`.
    #[inline(always)]
    fn sub_value(&mut self, cyc: &mut u64, regs: &[u64], src: SubSrc) -> Result<i64, MachineError> {
        match src {
            SubSrc::RegI(r) => Ok(regs[r as usize] as i64),
            SubSrc::RegR(r) => Ok(f64::from_bits(regs[r as usize]) as i64),
            SubSrc::Imm(v) => Ok(v as i64),
            SubSrc::Slot(s) => {
                *cyc += self.cfg.cost.scalar;
                if let Some(o) = self.oracle.as_deref_mut() {
                    o.scalar_read(s as usize);
                }
                match self.scalars[s as usize] {
                    Scalar::I(x) => Ok(x),
                    Scalar::R(x) => Ok(x as i64),
                    Scalar::B(_) => Err(MachineError::Type("logical used as integer".into())),
                }
            }
            SubSrc::SlotOff(s, off) => {
                *cyc += self.cfg.cost.scalar;
                if let Some(o) = self.oracle.as_deref_mut() {
                    o.scalar_read(s as usize);
                }
                let v = self.scalars[s as usize];
                // eval_binop charges the Add before any type dispatch.
                *cyc += self.cfg.cost.alu;
                match v {
                    Scalar::I(x) => Ok(x.wrapping_add(off as i64)),
                    Scalar::R(x) => Ok((x + off as f64) as i64),
                    Scalar::B(_) => Err(MachineError::Type("logical used as integer".into())),
                }
            }
        }
    }

    /// Resolve a fused element access to a flat index: evaluate every
    /// subscript first (left to right, with per-subscript charges), then
    /// bounds-check against the pre-resolved dims — `element_index`'s
    /// order exactly.
    #[inline(always)]
    fn element(
        &mut self,
        cyc: &mut u64,
        bc: &BcUnit,
        regs: &[u64],
        arr: u32,
        sub: u32,
        n: u8,
    ) -> Result<usize, MachineError> {
        let window = &bc.subs[sub as usize..sub as usize + n as usize];
        let meta = &bc.arrays[arr as usize];
        // F-Mini arrays are low-rank; a stack buffer covers every real
        // program and the heap path covers pathological ones.
        if window.len() <= 8 {
            let mut buf = [0i64; 8];
            for (b, src) in buf.iter_mut().zip(window) {
                *b = self.sub_value(cyc, regs, *src)?;
            }
            flatten(bc, meta, &buf[..window.len()])
        } else {
            let mut heap = Vec::with_capacity(window.len());
            for src in window {
                heap.push(self.sub_value(cyc, regs, *src)?);
            }
            flatten(bc, meta, &heap)
        }
    }

    /// Execute block `blk` of `bc` to completion (Halt/Stop/error),
    /// drawing a register frame from the recycle pool. Frames are not
    /// cleared between activations: register allocation is stack-shaped
    /// and def-before-use, so stale values are never observable.
    pub(crate) fn run_block(&mut self, bc: &BcUnit, blk: u32) -> Result<Flow, MachineError> {
        let block = &bc.blocks[blk as usize];
        let mut regs = self.vm_pool.pop().unwrap_or_default();
        if regs.len() < block.max_regs {
            regs.resize(block.max_regs, 0);
        }
        let res = self.dispatch(bc, block, &mut regs);
        self.vm_pool.push(regs);
        res
    }

    fn dispatch(
        &mut self,
        bc: &BcUnit,
        block: &BcBlock,
        regs: &mut [u64],
    ) -> Result<Flow, MachineError> {
        // `cfg` is a shared reference field, so this borrow is
        // independent of `&mut self`.
        let c = &self.cfg.cost;
        let code = &block.code[..];
        let mut pc = 0usize;
        // Dispatch-local cycle accumulator; see the module doc for the
        // flush discipline.
        let mut cyc: u64 = 0;
        // SAFETY of the register accessors: the compiler sizes each
        // frame (`BcBlock::max_regs` tracks the highest register any
        // instruction touches) and `run_block` resizes the frame to at
        // least that, so every operand index is in bounds by
        // construction.
        macro_rules! rd {
            ($r:expr) => {{
                debug_assert!(($r as usize) < regs.len());
                unsafe { *regs.get_unchecked($r as usize) }
            }};
        }
        macro_rules! wr {
            ($r:expr, $v:expr) => {{
                let v = $v;
                debug_assert!(($r as usize) < regs.len());
                unsafe { *regs.get_unchecked_mut($r as usize) = v }
            }};
        }
        macro_rules! f {
            ($r:expr) => {
                f64::from_bits(rd!($r))
            };
        }
        macro_rules! i {
            ($r:expr) => {
                rd!($r) as i64
            };
        }
        loop {
            // SAFETY: `pc` only advances sequentially through a block
            // that the compiler terminates with Halt/Jump/Stop, or jumps
            // to a label the compiler resolved inside `code`.
            debug_assert!(pc < code.len());
            let instr = unsafe { code.get_unchecked(pc) };
            pc += 1;
            match instr {
                Instr::Step => {
                    if !self.quiet_steps {
                        self.charge_step()?;
                    }
                }
                Instr::LitI(d, v) => wr!(*d, *v as u64),
                Instr::LitR(d, v) => wr!(*d, v.to_bits()),
                Instr::LitB(d, v) => wr!(*d, *v as u64),
                Instr::LoadI(d, slot) => {
                    cyc += c.scalar;
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.scalar_read(*slot as usize);
                    }
                    let Scalar::I(x) = self.scalars[*slot as usize] else {
                        unreachable!("scalar slot retyped")
                    };
                    wr!(*d, x as u64);
                }
                Instr::LoadR(d, slot) => {
                    cyc += c.scalar;
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.scalar_read(*slot as usize);
                    }
                    let Scalar::R(x) = self.scalars[*slot as usize] else {
                        unreachable!("scalar slot retyped")
                    };
                    wr!(*d, x.to_bits());
                }
                Instr::LoadB(d, slot) => {
                    cyc += c.scalar;
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.scalar_read(*slot as usize);
                    }
                    let Scalar::B(x) = self.scalars[*slot as usize] else {
                        unreachable!("scalar slot retyped")
                    };
                    wr!(*d, x as u64);
                }
                Instr::StoreI(slot, r) => {
                    cyc += c.scalar;
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.scalar_write(*slot as usize);
                    }
                    let Scalar::I(x) = &mut self.scalars[*slot as usize] else {
                        unreachable!("scalar slot retyped")
                    };
                    *x = rd!(*r) as i64;
                }
                Instr::StoreR(slot, r) => {
                    cyc += c.scalar;
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.scalar_write(*slot as usize);
                    }
                    let Scalar::R(x) = &mut self.scalars[*slot as usize] else {
                        unreachable!("scalar slot retyped")
                    };
                    *x = f64::from_bits(rd!(*r));
                }
                Instr::StoreB(slot, r) => {
                    cyc += c.scalar;
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.scalar_write(*slot as usize);
                    }
                    let Scalar::B(x) = &mut self.scalars[*slot as usize] else {
                        unreachable!("scalar slot retyped")
                    };
                    *x = rd!(*r) != 0;
                }
                Instr::IToR(d, s) => wr!(*d, (i!(*s) as f64).to_bits()),
                Instr::RToI(d, s) => wr!(*d, (f!(*s) as i64) as u64),
                Instr::LoadEI { dst, arr, sub, n } => {
                    let idx = self.element(&mut cyc, bc, regs, *arr, *sub, *n)?;
                    let a = *arr as usize;
                    cyc += c.memory;
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.array_read(a, idx);
                    }
                    self.spec_read(&mut cyc, a, idx);
                    let ArrData::I(v) = &*self.arrays[a].data else {
                        unreachable!("array retyped")
                    };
                    debug_assert!(idx < v.len());
                    // SAFETY: `flatten` bounds-checked every dimension.
                    wr!(*dst, unsafe { *v.get_unchecked(idx) } as u64);
                }
                Instr::LoadER { dst, arr, sub, n } => {
                    let idx = self.element(&mut cyc, bc, regs, *arr, *sub, *n)?;
                    let a = *arr as usize;
                    cyc += c.memory;
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.array_read(a, idx);
                    }
                    self.spec_read(&mut cyc, a, idx);
                    let ArrData::R(v) = &*self.arrays[a].data else {
                        unreachable!("array retyped")
                    };
                    debug_assert!(idx < v.len());
                    // SAFETY: `flatten` bounds-checked every dimension.
                    wr!(*dst, unsafe { *v.get_unchecked(idx) }.to_bits());
                }
                Instr::LoadEB { dst, arr, sub, n } => {
                    let idx = self.element(&mut cyc, bc, regs, *arr, *sub, *n)?;
                    let a = *arr as usize;
                    cyc += c.memory;
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.array_read(a, idx);
                    }
                    self.spec_read(&mut cyc, a, idx);
                    let ArrData::B(v) = &*self.arrays[a].data else {
                        unreachable!("array retyped")
                    };
                    wr!(*dst, v[idx] as u64);
                }
                Instr::StoreEI { arr, src, sub, n } => {
                    let idx = self.element(&mut cyc, bc, regs, *arr, *sub, *n)?;
                    let a = *arr as usize;
                    cyc += c.memory;
                    self.spec_write(&mut cyc, a, idx);
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.array_write(a, idx);
                    }
                    let ArrData::I(v) = Arc::make_mut(&mut self.arrays[a].data) else {
                        unreachable!("array retyped")
                    };
                    debug_assert!(idx < v.len());
                    let x = rd!(*src) as i64;
                    // SAFETY: `flatten` bounds-checked every dimension.
                    unsafe { *v.get_unchecked_mut(idx) = x };
                }
                Instr::StoreER { arr, src, sub, n } => {
                    let idx = self.element(&mut cyc, bc, regs, *arr, *sub, *n)?;
                    let a = *arr as usize;
                    cyc += c.memory;
                    self.spec_write(&mut cyc, a, idx);
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.array_write(a, idx);
                    }
                    let ArrData::R(v) = Arc::make_mut(&mut self.arrays[a].data) else {
                        unreachable!("array retyped")
                    };
                    debug_assert!(idx < v.len());
                    let x = f64::from_bits(rd!(*src));
                    // SAFETY: `flatten` bounds-checked every dimension.
                    unsafe { *v.get_unchecked_mut(idx) = x };
                }
                Instr::StoreEB { arr, src, sub, n } => {
                    let idx = self.element(&mut cyc, bc, regs, *arr, *sub, *n)?;
                    let a = *arr as usize;
                    cyc += c.memory;
                    self.spec_write(&mut cyc, a, idx);
                    if let Some(o) = self.oracle.as_deref_mut() {
                        o.array_write(a, idx);
                    }
                    let ArrData::B(v) = Arc::make_mut(&mut self.arrays[a].data) else {
                        unreachable!("array retyped")
                    };
                    v[idx] = rd!(*src) != 0;
                }
                Instr::AddI(d, a, b) => {
                    cyc += c.alu;
                    wr!(*d, i!(*a).wrapping_add(i!(*b)) as u64);
                }
                Instr::SubI(d, a, b) => {
                    cyc += c.alu;
                    wr!(*d, i!(*a).wrapping_sub(i!(*b)) as u64);
                }
                Instr::MulI(d, a, b) => {
                    cyc += c.mul;
                    wr!(*d, i!(*a).wrapping_mul(i!(*b)) as u64);
                }
                Instr::DivI(d, a, b) => {
                    let y = i!(*b);
                    cyc += if y > 0 && (y & (y - 1)) == 0 { c.alu } else { c.div };
                    if y == 0 {
                        return Err(MachineError::DivByZero);
                    }
                    wr!(*d, i!(*a).wrapping_div(y) as u64);
                }
                Instr::PowI(d, a, b) => {
                    let k = i!(*b);
                    cyc += if (0..=3).contains(&k) {
                        c.mul * (k.max(1) as u64)
                    } else {
                        c.intrinsic
                    };
                    wr!(*d, int_pow(i!(*a), k) as u64);
                }
                Instr::AddR(d, a, b) => {
                    cyc += c.alu;
                    wr!(*d, (f!(*a) + f!(*b)).to_bits());
                }
                Instr::SubR(d, a, b) => {
                    cyc += c.alu;
                    wr!(*d, (f!(*a) - f!(*b)).to_bits());
                }
                Instr::MulR(d, a, b) => {
                    cyc += c.mul;
                    wr!(*d, (f!(*a) * f!(*b)).to_bits());
                }
                Instr::DivR(d, a, b) => {
                    cyc += c.div;
                    wr!(*d, (f!(*a) / f!(*b)).to_bits());
                }
                Instr::PowR(d, a, b) => {
                    cyc += c.intrinsic;
                    wr!(*d, f!(*a).powf(f!(*b)).to_bits());
                }
                Instr::DivRI(d, a, b) => {
                    // Real / integer-typed rhs: the power-of-two charge
                    // check reads the integer before promotion.
                    let y = i!(*b);
                    cyc += if y > 0 && (y & (y - 1)) == 0 { c.alu } else { c.div };
                    wr!(*d, (f!(*a) / y as f64).to_bits());
                }
                Instr::PowRI(d, a, b) => {
                    let k = i!(*b);
                    cyc += if (0..=3).contains(&k) {
                        c.mul * (k.max(1) as u64)
                    } else {
                        c.intrinsic
                    };
                    wr!(*d, f!(*a).powf(k as f64).to_bits());
                }
                Instr::NegI(d, s) => {
                    cyc += c.alu;
                    wr!(*d, (-i!(*s)) as u64);
                }
                Instr::NegR(d, s) => {
                    cyc += c.alu;
                    wr!(*d, (-f!(*s)).to_bits());
                }
                Instr::NotB(d, s) => {
                    cyc += c.alu;
                    wr!(*d, rd!(*s) ^ 1);
                }
                Instr::CmpI(op, d, a, b) => {
                    cyc += c.alu;
                    let (x, y) = (i!(*a), i!(*b));
                    wr!(
                        *d,
                        match op {
                            BinOp::Lt => x < y,
                            BinOp::Le => x <= y,
                            BinOp::Gt => x > y,
                            BinOp::Ge => x >= y,
                            BinOp::Eq => x == y,
                            BinOp::Ne => x != y,
                            _ => unreachable!("non-comparison in CmpI"),
                        } as u64
                    );
                }
                Instr::CmpR(op, d, a, b) => {
                    cyc += c.alu;
                    let (x, y) = (f!(*a), f!(*b));
                    wr!(
                        *d,
                        match op {
                            BinOp::Lt => x < y,
                            BinOp::Le => x <= y,
                            BinOp::Gt => x > y,
                            BinOp::Ge => x >= y,
                            BinOp::Eq => x == y,
                            BinOp::Ne => x != y,
                            _ => unreachable!("non-comparison in CmpR"),
                        } as u64
                    );
                }
                Instr::AndB(d, a, b) => {
                    cyc += c.alu;
                    wr!(*d, rd!(*a) & rd!(*b));
                }
                Instr::OrB(d, a, b) => {
                    cyc += c.alu;
                    wr!(*d, rd!(*a) | rd!(*b));
                }
                Instr::Intrin { intr, dst, n, real } => {
                    cyc += self.intrinsic(c, regs, *intr, *dst, *n, *real)?;
                }
                Instr::Branch => cyc += c.branch,
                Instr::Jump(l) => pc = block.labels[*l as usize] as usize,
                Instr::JumpIfNot(r, l) => {
                    if rd!(*r) == 0 {
                        pc = block.labels[*l as usize] as usize;
                    }
                }
                Instr::Print(items) => {
                    let mut line = String::new();
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            line.push(' ');
                        }
                        match item {
                            PrintItem::Str(sym) => line.push_str(bc.interner.resolve(*sym)),
                            PrintItem::RegI(r) => line.push_str(&i!(*r).to_string()),
                            PrintItem::RegR(r) => {
                                let _ = write!(line, "{:.6E}", f!(*r));
                            }
                            PrintItem::RegB(r) => {
                                line.push_str(if rd!(*r) != 0 { "T" } else { "F" })
                            }
                        }
                    }
                    self.output.push(line);
                }
                Instr::CallLoop(i) => {
                    // Observation point: loop orchestration snapshots and
                    // rescales `self.cycles`.
                    self.cycles += cyc;
                    cyc = 0;
                    let (l, body) = &bc.loops[*i as usize];
                    let l = Arc::clone(l);
                    if self.run_loop(&l, Some(*body))? == Flow::Stop {
                        return Ok(Flow::Stop);
                    }
                }
                Instr::Stop => {
                    self.cycles += cyc;
                    return Ok(Flow::Stop);
                }
                Instr::Exec(i) => {
                    // Observation point: the tree-walker charges into
                    // `self.cycles` directly.
                    self.cycles += cyc;
                    cyc = 0;
                    if self.run_stmt(&bc.stmts[*i as usize])? == Flow::Stop {
                        return Ok(Flow::Stop);
                    }
                }
                Instr::Halt => {
                    self.cycles += cyc;
                    return Ok(Flow::Normal);
                }
            }
        }
    }

    /// Speculation hooks shared by the element access opcodes; the
    /// `is_empty` check keeps them to one predictable branch outside
    /// speculative loops.
    #[inline]
    fn spec_read(&mut self, cyc: &mut u64, a: usize, idx: usize) {
        if !self.spec.is_empty() {
            let t = self.spec_iter;
            let mark = self.cfg.cost.spec_mark;
            if let Some((_, sh)) = self.spec.iter_mut().find(|(x, _)| *x == a) {
                sh.on_read(idx, t);
                *cyc += mark;
            }
        }
    }

    #[inline]
    fn spec_write(&mut self, cyc: &mut u64, a: usize, idx: usize) {
        if !self.spec.is_empty() {
            let t = self.spec_iter;
            let mark = self.cfg.cost.spec_mark;
            if let Some((_, sh)) = self.spec.iter_mut().find(|(x, _)| *x == a) {
                sh.on_write(idx, t);
                *cyc += mark;
            }
        }
    }

    /// Typed intrinsic over the register window `dst..dst+n`; returns
    /// the cycles to charge. Arguments were uniformly converted by the
    /// compiler when `real`; the charge and numeric semantics mirror
    /// `exec::eval_intrinsic` exactly.
    fn intrinsic(
        &mut self,
        c: &crate::cost::CostModel,
        regs: &mut [u64],
        intr: crate::lower::Intr,
        dst: crate::bytecode::Reg,
        n: u8,
        real: bool,
    ) -> Result<u64, MachineError> {
        use crate::lower::Intr;
        let cheap = matches!(
            intr,
            Intr::Mod
                | Intr::Max
                | Intr::Min
                | Intr::Abs
                | Intr::Int
                | Intr::Nint
                | Intr::ToReal
                | Intr::Sign
        );
        let charge = if cheap { c.mul } else { c.intrinsic };
        let base = dst as usize;
        let fa = |i: usize| f64::from_bits(regs[base + i]);
        let ia = |i: usize| regs[base + i] as i64;
        regs[base] = match (intr, real) {
            (Intr::Mod, true) => (fa(0) % fa(1)).to_bits(),
            (Intr::Mod, false) => {
                if ia(1) == 0 {
                    return Err(MachineError::DivByZero);
                }
                (ia(0) % ia(1)) as u64
            }
            (Intr::Max, true) => {
                (1..n as usize).fold(fa(0), |acc, i| acc.max(fa(i))).to_bits()
            }
            (Intr::Min, true) => {
                (1..n as usize).fold(fa(0), |acc, i| acc.min(fa(i))).to_bits()
            }
            (Intr::Max, false) => (1..n as usize).fold(ia(0), |acc, i| acc.max(ia(i))) as u64,
            (Intr::Min, false) => (1..n as usize).fold(ia(0), |acc, i| acc.min(ia(i))) as u64,
            (Intr::Abs, true) => fa(0).abs().to_bits(),
            // `.abs()` rather than `.unsigned_abs()`: the tree-walker
            // uses `i64::abs`, and debug-build overflow panics must
            // match between engines.
            #[allow(clippy::cast_abs_to_unsigned)]
            (Intr::Abs, false) => ia(0).abs() as u64,
            (Intr::Sign, true) => {
                (fa(0).abs() * if fa(1) < 0.0 { -1.0 } else { 1.0 }).to_bits()
            }
            (Intr::Sign, false) => (ia(0).abs() * if ia(1) < 0 { -1 } else { 1 }) as u64,
            (Intr::Sqrt, _) => fa(0).sqrt().to_bits(),
            (Intr::Sin, _) => fa(0).sin().to_bits(),
            (Intr::Cos, _) => fa(0).cos().to_bits(),
            (Intr::Tan, _) => fa(0).tan().to_bits(),
            (Intr::Exp, _) => fa(0).exp().to_bits(),
            (Intr::Log, _) => fa(0).ln().to_bits(),
            (Intr::Atan, _) => fa(0).atan().to_bits(),
            // INT of an integer is the identity (but still charges);
            // of a real it truncates like `V::as_i`.
            (Intr::Int, false) => regs[base],
            (Intr::Int, true) => (fa(0) as i64) as u64,
            // NINT always takes the real path (`as_r` then round).
            (Intr::Nint, _) => (fa(0).round() as i64) as u64,
            // REAL()'s argument was already converted by the compiler.
            (Intr::ToReal, _) => regs[base],
        };
        Ok(charge)
    }
}
